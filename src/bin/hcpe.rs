//! `hcpe` — ad-hoc hop-constrained s-t path enumeration on a graph file.
//!
//! ```text
//! hcpe <graph-file> <s> <t> <k> [--limit N] [--count-only]
//!      [--algorithm pathenum|idx-dfs|idx-join|bc-dfs|bc-join|t-dfs|yen]
//! ```
//!
//! The graph file's format is sniffed: `PEG2`/`PEG1` binary images are
//! accepted, and anything else is parsed as a whitespace-separated
//! `from to` edge list with `#`/`%` comment lines ignored (SNAP /
//! networkrepository format).

use std::process::ExitCode;

use pathenum_repro::graph::io_binary::read_graph_file;
use pathenum_repro::prelude::*;
use pathenum_repro::workloads::runner::BoundedSink;

struct Args {
    path: std::path::PathBuf,
    s: VertexId,
    t: VertexId,
    k: u32,
    limit: Option<u64>,
    count_only: bool,
    algorithm: Algorithm,
}

fn parse_args() -> Result<Args, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut limit = None;
    let mut count_only = false;
    let mut algorithm = Algorithm::PathEnum;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--limit" => {
                limit = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--limit expects a positive integer")?,
                );
            }
            "--count-only" => count_only = true,
            "--algorithm" => {
                // FromStr accepts every Method spelling too (dfs, join,
                // IDX-DFS, ...), so runs can force a method without code
                // changes.
                let name = iter.next().ok_or("--algorithm expects a name")?;
                algorithm = name.parse::<Algorithm>()?;
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 4 {
        return Err("expected: <graph-file> <s> <t> <k>".to_string());
    }
    Ok(Args {
        path: positional[0].clone().into(),
        s: positional[1].parse().map_err(|_| "s must be a vertex id")?,
        t: positional[2].parse().map_err(|_| "t must be a vertex id")?,
        k: positional[3].parse().map_err(|_| "k must be a hop count")?,
        limit,
        count_only,
        algorithm,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: hcpe <graph-file> <s> <t> <k> [--limit N] [--count-only] \
                 [--algorithm pathenum|idx-dfs|idx-join|bc-dfs|bc-join|t-dfs|yen]"
            );
            return ExitCode::FAILURE;
        }
    };

    let handle = match read_graph_file(&args.path) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.path.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {} ({}): {} vertices, {} edges",
        args.path.display(),
        handle.representation(),
        handle.num_vertices(),
        handle.num_edges()
    );
    // The baseline algorithm drivers are CSR-bound; thaw frozen images
    // (one allocation pass, no re-sort) rather than forking every
    // baseline over the trait.
    let graph = match handle {
        GraphHandle::Heap(g) => (*g).clone(),
        GraphHandle::Frozen(g) => g.to_csr(),
        GraphHandle::Dynamic(g) => g.snapshot(),
    };

    let query = match Query::new(args.s, args.t, args.k)
        .and_then(|q| q.validate(graph.num_vertices()).map(|()| q))
    {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: invalid query: {e}");
            return ExitCode::FAILURE;
        }
    };

    let start = std::time::Instant::now();
    let count = if args.count_only {
        let mut sink = BoundedSink::new(args.limit, None);
        args.algorithm.run(&graph, query, &mut sink);
        sink.count
    } else {
        let mut printed = 0u64;
        let limit = args.limit.unwrap_or(u64::MAX);
        let mut sink = FnSinkAdapter(|path: &[VertexId]| {
            println!(
                "{}",
                path.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" -> ")
            );
            printed += 1;
            if printed >= limit {
                SearchControl::Stop
            } else {
                SearchControl::Continue
            }
        });
        args.algorithm.run(&graph, query, &mut sink);
        printed
    };
    eprintln!(
        "{count} path(s) from {} to {} within {} hops via {} in {:.3?}",
        args.s,
        args.t,
        args.k,
        args.algorithm,
        start.elapsed()
    );
    ExitCode::SUCCESS
}

/// Local closure adapter (the library's `FnSink` has an explicit type
/// parameter; this keeps the binary self-contained).
struct FnSinkAdapter<F: FnMut(&[VertexId]) -> SearchControl>(F);

impl<F: FnMut(&[VertexId]) -> SearchControl> PathSink for FnSinkAdapter<F> {
    fn emit(&mut self, path: &[VertexId]) -> SearchControl {
        (self.0)(path)
    }
}

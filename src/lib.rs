//! Umbrella crate for the PathEnum reproduction workspace.
//!
//! Re-exports the public API of every member crate so examples and
//! integration tests can use one import root:
//!
//! * [`graph`] — the directed-graph substrate (`pathenum-graph`);
//! * [`core`] — the PathEnum algorithm itself (`pathenum`);
//! * [`baselines`] — competing algorithms (`pathenum-baselines`);
//! * [`workloads`] — datasets, query generation, measurement
//!   (`pathenum-workloads`).
//!
//! See the README for a tour and `examples/` for runnable entry points.

pub use pathenum as core;
pub use pathenum_baselines as baselines;
pub use pathenum_graph as graph;
pub use pathenum_workloads as workloads;

/// Convenience re-exports of the most common types.
pub mod prelude {
    pub use pathenum::constraints::{
        accumulative_dfs, automaton_dfs, path_enum_with_predicate, AccumulativeQuery, Automaton,
    };
    pub use pathenum::sink::{CollectingSink, CountingSink, PathSink, SearchControl};
    pub use pathenum::{
        path_enum, AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionStats,
        CacheOutcome, CancelToken, CatalogConfig, CatalogOutcome, CatalogRequest, CatalogService,
        CatalogTicket, CompactBits, ControlledSink, Counters, DenseBits, DynamicEngine,
        GraphCatalog, Index, Lane, Method, PathBuffer, PathEnumConfig, PathEnumError,
        PathEnumService, PathStream, PhysicalPlan, PlanCache, PlanCacheStats, Query, QueryEngine,
        QueryRequest, QueryResponse, ResultCache, ResultCacheStats, RunReport, ServeReport,
        ServiceConfig, SharedCacheStats, SharedControl, SharedPlanCache, SharedResultCache,
        Termination, Ticket,
    };
    pub use pathenum_graph::{
        CsrGraph, DynamicGraph, FrozenGraph, GraphBuilder, GraphHandle, GraphSnapshot,
        GraphVersion, NeighborAccess, OverlayView, VertexId,
    };
    pub use pathenum_workloads::{Algorithm, MeasureConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let mut b = GraphBuilder::new(3);
        b.add_edges([(0, 1), (1, 2), (0, 2)]).unwrap();
        let g = b.finish();
        let mut sink = CollectingSink::default();
        let report = path_enum(
            &g,
            Query::new(0, 2, 2).unwrap(),
            PathEnumConfig::default(),
            &mut sink,
        )
        .unwrap();
        assert_eq!(report.counters.results, 2);
    }

    #[test]
    fn prelude_exposes_the_request_api() {
        let mut b = GraphBuilder::new(3);
        b.add_edges([(0, 1), (1, 2), (0, 2)]).unwrap();
        let g = b.finish();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let response = engine
            .execute(&QueryRequest::paths(0, 2).max_hops(2).collect_paths(true))
            .unwrap();
        assert_eq!(response.termination, Termination::Completed);
        assert_eq!(response.paths.len(), 2);
    }
}

//! Compact binary graph serialization.
//!
//! Text edge lists parse at tens of MB/s; reloading a large graph for
//! every experiment run dominates harness start-up. This module defines a
//! versioned little-endian binary format that round-trips a [`CsrGraph`]
//! through one sequential read:
//!
//! ```text
//! magic  "PEG1"           4 bytes
//! vertices: u64           8 bytes
//! edges:    u64           8 bytes
//! edge list: (u32, u32) x edges, sorted by (from, to)
//! ```

use std::io::{Read, Write};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::VertexId;

const MAGIC: &[u8; 4] = b"PEG1";

/// Errors raised while decoding a binary graph.
#[derive(Debug)]
pub enum BinaryError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The stream does not start with the `PEG1` magic.
    BadMagic([u8; 4]),
    /// The header promises more data than the stream holds, or an edge is
    /// malformed (self-loop / out-of-range endpoint).
    Corrupt(&'static str),
}

impl std::fmt::Display for BinaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinaryError::Io(e) => write!(f, "io error: {e}"),
            BinaryError::BadMagic(m) => write!(f, "bad magic {m:?}, expected {MAGIC:?}"),
            BinaryError::Corrupt(what) => write!(f, "corrupt graph stream: {what}"),
        }
    }
}

impl std::error::Error for BinaryError {}

impl From<std::io::Error> for BinaryError {
    fn from(e: std::io::Error) -> Self {
        BinaryError::Io(e)
    }
}

/// Serializes a graph to the binary format.
pub fn write_binary<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    let mut buffer = Vec::with_capacity(8 * 1024);
    for (from, to) in graph.edges() {
        buffer.extend_from_slice(&from.to_le_bytes());
        buffer.extend_from_slice(&to.to_le_bytes());
        if buffer.len() >= 8 * 1024 - 8 {
            writer.write_all(&buffer)?;
            buffer.clear();
        }
    }
    writer.write_all(&buffer)?;
    Ok(())
}

/// Deserializes a graph from the binary format.
pub fn read_binary<R: Read>(mut reader: R) -> Result<CsrGraph, BinaryError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinaryError::BadMagic(magic));
    }
    let mut word = [0u8; 8];
    reader.read_exact(&mut word)?;
    let vertices = u64::from_le_bytes(word);
    reader.read_exact(&mut word)?;
    let edges = u64::from_le_bytes(word);
    if vertices > u32::MAX as u64 {
        return Err(BinaryError::Corrupt("vertex count exceeds u32 id space"));
    }
    let mut builder = GraphBuilder::new(vertices as usize);
    builder.reserve(edges as usize);
    let mut pair = [0u8; 8];
    for _ in 0..edges {
        reader
            .read_exact(&mut pair)
            .map_err(|_| BinaryError::Corrupt("truncated edge list"))?;
        let from = VertexId::from_le_bytes(pair[..4].try_into().expect("4-byte slice"));
        let to = VertexId::from_le_bytes(pair[4..].try_into().expect("4-byte slice"));
        builder
            .add_edge(from, to)
            .map_err(|_| BinaryError::Corrupt("invalid edge (self-loop or out of range)"))?;
    }
    Ok(builder.finish())
}

/// Writes a graph to a file in the binary format.
pub fn write_binary_file(graph: &CsrGraph, path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_binary(graph, std::io::BufWriter::new(file))
}

/// Reads a graph from a binary-format file.
pub fn read_binary_file(path: &std::path::Path) -> Result<CsrGraph, BinaryError> {
    let file = std::fs::File::open(path)?;
    read_binary(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn roundtrip_preserves_the_graph() {
        let g = erdos_renyi(200, 1500, 9);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(
            back.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = erdos_renyi(5, 0, 0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), 5);
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_binary(&b"XXXX\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, BinaryError::BadMagic(_)));
    }

    #[test]
    fn rejects_truncated_stream() {
        let g = erdos_renyi(10, 20, 1);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, BinaryError::Corrupt(_)));
    }

    #[test]
    fn rejects_out_of_range_edges() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PEG1");
        buf.extend_from_slice(&2u64.to_le_bytes()); // 2 vertices
        buf.extend_from_slice(&1u64.to_le_bytes()); // 1 edge
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&9u32.to_le_bytes()); // vertex 9 out of range
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, BinaryError::Corrupt(_)));
    }

    #[test]
    fn file_roundtrip() {
        let g = erdos_renyi(30, 100, 2);
        let dir = std::env::temp_dir().join("pathenum_io_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.peg");
        write_binary_file(&g, &path).unwrap();
        let back = read_binary_file(&path).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }
}

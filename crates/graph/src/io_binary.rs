//! Compact binary graph serialization: `PEG1` (edge list) and `PEG2`
//! (CSR-native, zero-copy).
//!
//! Text edge lists parse at tens of MB/s; reloading a large graph for
//! every experiment run dominates harness start-up. Two little-endian
//! binary formats fix that at different points on the cost curve:
//!
//! `PEG1` — a sorted edge list that round-trips a [`CsrGraph`] through
//! one sequential read, rebuilding the CSR arrays on load:
//!
//! ```text
//! magic  "PEG1"           4 bytes
//! vertices: u64           8 bytes
//! edges:    u64           8 bytes
//! edge list: (u32, u32) x edges, sorted by (from, to)
//! ```
//!
//! `PEG2` — the CSR arrays themselves, laid out so the file *is* the
//! query-ready representation: load is one bulk read into an aligned
//! buffer plus a validation pass, and a [`FrozenGraph`] then serves
//! [`NeighborAccess`](crate::NeighborAccess) straight off that buffer
//! with zero re-sort and zero rebuild:
//!
//! ```text
//! header (32 bytes):
//!   magic "PEG2"          4 bytes
//!   flags: u32            4 bytes   bit 0 = varint/delta adjacency
//!   vertices: u64         8 bytes
//!   edges:    u64         8 bytes
//!   checksum: u64         8 bytes   FNV-1a over the payload
//! section table (4 x 16 bytes): (offset: u64, len: u64) each
//!   [0] fwd offsets  [1] fwd adjacency  [2] rev offsets  [3] rev adjacency
//! payload: the sections, each starting 8-byte aligned (zero padding
//!   between), offsets absolute from the start of the image
//! ```
//!
//! Raw adjacency sections hold `(V+1) x u64` element offsets and
//! `E x u32` neighbor ids; compressed sections hold `(V+1) x u64` *byte*
//! offsets into per-row varint streams (`degree, first, delta, …`). See
//! [`crate::frozen`] for the serving side and the validation story.

use std::io::{Read, Write};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::frozen::{push_varint, FrozenGraph};
use crate::handle::GraphHandle;
use crate::types::VertexId;
use crate::zerocopy::AlignedBuf;

const MAGIC: &[u8; 4] = b"PEG1";
const MAGIC2: &[u8; 4] = b"PEG2";

/// Flag bit 0: adjacency sections are varint/delta streams.
pub(crate) const FLAG_COMPRESSED: u32 = 1;

/// Bytes of the fixed `PEG2` header (magic, flags, counts, checksum).
pub(crate) const PEG2_HEADER_LEN: usize = 32;

/// Bytes of the `PEG2` section table (4 sections x 16 bytes).
const SECTION_TABLE_LEN: usize = 64;

/// First payload byte: everything before this is header + table.
const PAYLOAD_BASE: usize = PEG2_HEADER_LEN + SECTION_TABLE_LEN;

/// Cap on the edge-count-driven preallocation in [`read_binary`]. A
/// corrupt header claiming `u64::MAX` edges must not drive a
/// multi-gigabyte reserve before the first truncated read is noticed;
/// genuine graphs larger than this simply grow the vectors as edges
/// actually arrive.
const MAX_EDGE_PREALLOC: usize = 1 << 20;

/// Errors raised while decoding a binary graph.
#[derive(Debug)]
pub enum BinaryError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The stream starts with neither the `PEG1` nor the `PEG2` magic.
    BadMagic([u8; 4]),
    /// The header promises more data than the stream holds, a section is
    /// malformed, or an edge is invalid (self-loop / out-of-range id).
    Corrupt(&'static str),
}

impl std::fmt::Display for BinaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinaryError::Io(e) => write!(f, "io error: {e}"),
            BinaryError::BadMagic(m) => {
                write!(f, "bad magic {m:?}, expected {MAGIC:?} or {MAGIC2:?}")
            }
            BinaryError::Corrupt(what) => write!(f, "corrupt graph stream: {what}"),
        }
    }
}

impl std::error::Error for BinaryError {}

impl From<std::io::Error> for BinaryError {
    fn from(e: std::io::Error) -> Self {
        BinaryError::Io(e)
    }
}

/// Serializes a graph to the `PEG1` edge-list format.
pub fn write_binary<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    let mut buffer = Vec::with_capacity(8 * 1024);
    for (from, to) in graph.edges() {
        buffer.extend_from_slice(&from.to_le_bytes());
        buffer.extend_from_slice(&to.to_le_bytes());
        if buffer.len() >= 8 * 1024 - 8 {
            writer.write_all(&buffer)?;
            buffer.clear();
        }
    }
    writer.write_all(&buffer)?;
    Ok(())
}

/// Deserializes a graph from the `PEG1` edge-list format.
pub fn read_binary<R: Read>(mut reader: R) -> Result<CsrGraph, BinaryError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinaryError::BadMagic(magic));
    }
    let mut word = [0u8; 8];
    reader.read_exact(&mut word)?;
    let vertices = u64::from_le_bytes(word);
    reader.read_exact(&mut word)?;
    let edges = u64::from_le_bytes(word);
    if vertices > u32::MAX as u64 {
        return Err(BinaryError::Corrupt("vertex count exceeds u32 id space"));
    }
    let mut builder = GraphBuilder::new(vertices as usize);
    // The header's edge count is untrusted until the stream backs it
    // up: bound the up-front reservation and let genuine larger inputs
    // grow organically (amortized O(1) pushes) instead of letting a
    // corrupt count drive an unbounded allocation.
    builder.reserve((edges as usize).min(MAX_EDGE_PREALLOC));
    let mut pair = [0u8; 8];
    for _ in 0..edges {
        reader
            .read_exact(&mut pair)
            .map_err(|_| BinaryError::Corrupt("truncated edge list"))?;
        let from = VertexId::from_le_bytes(pair[..4].try_into().expect("4-byte slice"));
        let to = VertexId::from_le_bytes(pair[4..].try_into().expect("4-byte slice"));
        builder
            .add_edge(from, to)
            .map_err(|_| BinaryError::Corrupt("invalid edge (self-loop or out of range)"))?;
    }
    Ok(builder.finish())
}

/// Writes a graph to a file in the `PEG1` format.
pub fn write_binary_file(graph: &CsrGraph, path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_binary(graph, std::io::BufWriter::new(file))
}

/// Reads a graph from a `PEG1` file.
pub fn read_binary_file(path: &std::path::Path) -> Result<CsrGraph, BinaryError> {
    let file = std::fs::File::open(path)?;
    read_binary(std::io::BufReader::new(file))
}

/// FNV-1a folded eight bytes at a time — the payload checksum of the
/// `PEG2` header. Word-wise folding keeps the checksum off the
/// cold-start critical path (a byte-at-a-time FNV costs more than the
/// structural validation it accompanies); any flipped bit still
/// perturbs the xor-multiply chain. Trailing bytes (the payload need
/// not be a multiple of 8) fold individually, so the function is
/// well-defined on any slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash ^= u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
        hash = hash.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Encodes one CSR direction as raw sections: `(V+1) x u64` element
/// offsets and `E x u32` neighbor ids.
fn encode_raw_direction(offsets: &[usize], targets: &[VertexId]) -> (Vec<u8>, Vec<u8>) {
    let mut off_bytes = Vec::with_capacity(offsets.len() * 8);
    for &o in offsets {
        off_bytes.extend_from_slice(&(o as u64).to_le_bytes());
    }
    let mut adj_bytes = Vec::with_capacity(targets.len() * 4);
    for &t in targets {
        adj_bytes.extend_from_slice(&t.to_le_bytes());
    }
    (off_bytes, adj_bytes)
}

/// Encodes one CSR direction as varint sections: `(V+1) x u64` *byte*
/// offsets and per-row `degree, first, delta, …` streams (rows are
/// strictly ascending, so every delta is >= 1).
fn encode_varint_direction(offsets: &[usize], targets: &[VertexId]) -> (Vec<u8>, Vec<u8>) {
    let mut off_bytes = Vec::with_capacity(offsets.len() * 8);
    let mut stream = Vec::new();
    for v in 0..offsets.len().saturating_sub(1) {
        off_bytes.extend_from_slice(&(stream.len() as u64).to_le_bytes());
        let row = &targets[offsets[v]..offsets[v + 1]];
        push_varint(&mut stream, row.len() as u64);
        let mut prev = 0u64;
        for (i, &n) in row.iter().enumerate() {
            let value = u64::from(n);
            push_varint(&mut stream, if i == 0 { value } else { value - prev });
            prev = value;
        }
    }
    off_bytes.extend_from_slice(&(stream.len() as u64).to_le_bytes());
    (off_bytes, stream)
}

/// Serializes a graph to the `PEG2` zero-copy format. `compress`
/// selects varint/delta adjacency sections (smaller image, decoded on
/// the fly) over raw ones (byte-for-byte the serving layout).
pub fn write_frozen<W: Write>(
    graph: &CsrGraph,
    compress: bool,
    mut writer: W,
) -> std::io::Result<()> {
    let (out_offsets, out_targets, in_offsets, in_sources) = graph.csr_parts();
    let [(fwd_off, fwd_adj), (rev_off, rev_adj)] = if compress {
        [
            encode_varint_direction(out_offsets, out_targets),
            encode_varint_direction(in_offsets, in_sources),
        ]
    } else {
        [
            encode_raw_direction(out_offsets, out_targets),
            encode_raw_direction(in_offsets, in_sources),
        ]
    };

    // Assemble the payload with 8-byte-aligned section starts and
    // record the absolute (offset, len) table entries.
    let mut payload = Vec::new();
    let mut table = [(0u64, 0u64); 4];
    for (slot, section) in [&fwd_off, &fwd_adj, &rev_off, &rev_adj]
        .into_iter()
        .enumerate()
    {
        while payload.len() % 8 != 0 {
            payload.push(0);
        }
        table[slot] = ((PAYLOAD_BASE + payload.len()) as u64, section.len() as u64);
        payload.extend_from_slice(section);
    }

    writer.write_all(MAGIC2)?;
    writer.write_all(&if compress { FLAG_COMPRESSED } else { 0 }.to_le_bytes())?;
    writer.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    writer.write_all(&fnv1a(&payload).to_le_bytes())?;
    for (offset, len) in table {
        writer.write_all(&offset.to_le_bytes())?;
        writer.write_all(&len.to_le_bytes())?;
    }
    writer.write_all(&payload)
}

/// Writes a graph to a file in the `PEG2` format.
pub fn write_frozen_file(
    graph: &CsrGraph,
    compress: bool,
    path: &std::path::Path,
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_frozen(graph, compress, std::io::BufWriter::new(file))
}

/// Parsed `PEG2` header: `(vertices, edges, compressed, section ranges)`.
pub(crate) type Peg2Header = (usize, usize, bool, [std::ops::Range<usize>; 4]);

/// Validates the fixed `PEG2` header + section table of a complete
/// image: magic, flags, id-space bounds, payload checksum, and section
/// geometry (in-bounds, 8-byte aligned, ascending, non-overlapping).
/// Returns `(vertices, edges, compressed, section ranges)`.
pub(crate) fn parse_peg2_header(buf: &AlignedBuf) -> Result<Peg2Header, BinaryError> {
    let bytes = buf.as_bytes();
    if bytes.len() < PAYLOAD_BASE {
        return Err(BinaryError::Corrupt("image shorter than the PEG2 header"));
    }
    let magic: [u8; 4] = bytes[..4].try_into().expect("4-byte slice");
    if &magic != MAGIC2 {
        return Err(BinaryError::BadMagic(magic));
    }
    let flags = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if flags & !FLAG_COMPRESSED != 0 {
        return Err(BinaryError::Corrupt("unknown header flags"));
    }
    let vertices = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let edges = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
    let checksum = u64::from_le_bytes(bytes[24..32].try_into().expect("8-byte slice"));
    if vertices > u32::MAX as u64 {
        return Err(BinaryError::Corrupt("vertex count exceeds u32 id space"));
    }
    let vertices = vertices as usize;
    let edges = usize::try_from(edges)
        .map_err(|_| BinaryError::Corrupt("edge count exceeds address space"))?;
    if fnv1a(&bytes[PAYLOAD_BASE..]) != checksum {
        return Err(BinaryError::Corrupt("payload checksum mismatch"));
    }

    let mut sections: [std::ops::Range<usize>; 4] = [0..0, 0..0, 0..0, 0..0];
    let mut previous_end = PAYLOAD_BASE;
    for (slot, section) in sections.iter_mut().enumerate() {
        let base = PEG2_HEADER_LEN + slot * 16;
        let offset = u64::from_le_bytes(bytes[base..base + 8].try_into().expect("8-byte slice"));
        let len = u64::from_le_bytes(bytes[base + 8..base + 16].try_into().expect("8-byte slice"));
        let offset = usize::try_from(offset)
            .map_err(|_| BinaryError::Corrupt("section offset exceeds address space"))?;
        let len = usize::try_from(len)
            .map_err(|_| BinaryError::Corrupt("section length exceeds address space"))?;
        if offset % 8 != 0 {
            return Err(BinaryError::Corrupt("section offset not 8-byte aligned"));
        }
        if offset < previous_end {
            return Err(BinaryError::Corrupt("sections out of order or overlapping"));
        }
        let end = offset
            .checked_add(len)
            .ok_or(BinaryError::Corrupt("section extends past address space"))?;
        if end > bytes.len() {
            return Err(BinaryError::Corrupt("section extends past the image"));
        }
        *section = offset..end;
        previous_end = end;
    }
    Ok((vertices, edges, flags & FLAG_COMPRESSED != 0, sections))
}

/// Deserializes a [`FrozenGraph`] from a `PEG2` stream. The stream is
/// drained fully, copied once into an aligned buffer, validated, and
/// served from there.
pub fn read_frozen<R: Read>(mut reader: R) -> Result<FrozenGraph, BinaryError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    FrozenGraph::from_buf(AlignedBuf::from_bytes(&bytes))
}

/// Loads a [`FrozenGraph`] from a `PEG2` file with one bulk read
/// directly into the aligned serving buffer — the zero-copy cold-start
/// path (the in-memory stand-in for an mmap, which the vendored-only
/// dependency policy rules out).
pub fn read_frozen_file(path: &std::path::Path) -> Result<FrozenGraph, BinaryError> {
    let mut file = std::fs::File::open(path)?;
    let len = usize::try_from(file.metadata()?.len())
        .map_err(|_| BinaryError::Corrupt("file exceeds address space"))?;
    let mut buf = AlignedBuf::zeroed(len);
    file.read_exact(buf.as_bytes_mut())?;
    FrozenGraph::from_buf(buf)
}

/// Errors raised by the format-sniffing [`read_graph_file`] loader.
#[derive(Debug)]
pub enum LoadError {
    /// The file looked binary (`PEG1`/`PEG2`) but failed to decode.
    Binary(BinaryError),
    /// The file was treated as a text edge list and failed to parse.
    Text(crate::io::ReadError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Binary(e) => write!(f, "{e}"),
            LoadError::Text(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<BinaryError> for LoadError {
    fn from(e: BinaryError) -> Self {
        LoadError::Binary(e)
    }
}

impl From<crate::io::ReadError> for LoadError {
    fn from(e: crate::io::ReadError) -> Self {
        LoadError::Text(e)
    }
}

/// Loads a graph file of any supported format, sniffing the magic:
/// `PEG2` images freeze in place (zero-copy), `PEG1` streams rebuild a
/// heap [`CsrGraph`], anything else parses as a text edge list. The
/// returned [`GraphHandle`] plugs into every engine and serving layer.
pub fn read_graph_file(path: &std::path::Path) -> Result<GraphHandle, LoadError> {
    let mut magic = [0u8; 4];
    {
        let mut file = std::fs::File::open(path).map_err(BinaryError::Io)?;
        // A file shorter than any magic can only be a (possibly empty)
        // text edge list; leave `magic` zeroed and fall through.
        let mut read = 0;
        while read < 4 {
            match file.read(&mut magic[read..]).map_err(BinaryError::Io)? {
                0 => break,
                n => read += n,
            }
        }
    }
    if &magic == MAGIC2 {
        Ok(GraphHandle::from(read_frozen_file(path)?))
    } else if &magic == MAGIC {
        Ok(GraphHandle::from(read_binary_file(path)?))
    } else {
        Ok(GraphHandle::from(
            crate::io::read_edge_list_file(path)?.graph,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;
    use crate::view::NeighborAccess;

    fn out_row(g: &impl NeighborAccess, v: VertexId) -> Vec<VertexId> {
        let mut row = Vec::new();
        g.for_each_out(v, |n| row.push(n));
        row
    }

    fn in_row(g: &impl NeighborAccess, v: VertexId) -> Vec<VertexId> {
        let mut row = Vec::new();
        g.for_each_in(v, |n| row.push(n));
        row
    }

    fn frozen_bytes(g: &CsrGraph, compress: bool) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frozen(g, compress, &mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_the_graph() {
        let g = erdos_renyi(200, 1500, 9);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(
            back.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = erdos_renyi(5, 0, 0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), 5);
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_binary(&b"XXXX\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, BinaryError::BadMagic(_)));
    }

    #[test]
    fn rejects_truncated_stream() {
        let g = erdos_renyi(10, 20, 1);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, BinaryError::Corrupt(_)));
    }

    #[test]
    fn rejects_out_of_range_edges() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PEG1");
        buf.extend_from_slice(&2u64.to_le_bytes()); // 2 vertices
        buf.extend_from_slice(&1u64.to_le_bytes()); // 1 edge
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&9u32.to_le_bytes()); // vertex 9 out of range
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, BinaryError::Corrupt(_)));
    }

    #[test]
    fn huge_claimed_edge_count_fails_fast_without_preallocating() {
        // Regression: a corrupt header claiming u64::MAX edges used to
        // drive `builder.reserve(u64::MAX as usize)` before the first
        // truncated read was noticed. The reserve is now bounded, so
        // this must fail quickly with a Corrupt error, not abort.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PEG1");
        buf.extend_from_slice(&4u64.to_le_bytes()); // 4 vertices
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd edge count
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // one real edge, then EOF
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, BinaryError::Corrupt("truncated edge list")));
    }

    #[test]
    fn file_roundtrip() {
        let g = erdos_renyi(30, 100, 2);
        let dir = std::env::temp_dir().join("pathenum_io_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.peg");
        write_binary_file(&g, &path).unwrap();
        let back = read_binary_file(&path).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn frozen_roundtrip_matches_source_adjacency() {
        let g = erdos_renyi(120, 900, 17);
        for compress in [false, true] {
            let frozen = read_frozen(frozen_bytes(&g, compress).as_slice()).unwrap();
            assert_eq!(frozen.num_vertices(), g.num_vertices());
            assert_eq!(frozen.num_edges(), g.num_edges());
            assert_eq!(frozen.is_compressed(), compress);
            for v in 0..g.num_vertices() as VertexId {
                assert_eq!(out_row(&frozen, v), out_row(&g, v), "out row {v}");
                assert_eq!(in_row(&frozen, v), in_row(&g, v), "in row {v}");
                assert_eq!(frozen.out_degree(v), g.out_degree(v));
                assert_eq!(frozen.in_degree(v), g.in_degree(v));
            }
        }
    }

    #[test]
    fn frozen_has_edge_agrees_with_source() {
        let g = erdos_renyi(40, 250, 3);
        for compress in [false, true] {
            let frozen = read_frozen(frozen_bytes(&g, compress).as_slice()).unwrap();
            for u in 0..40u32 {
                for w in 0..40u32 {
                    assert_eq!(frozen.has_edge(u, w), g.has_edge(u, w), "({u},{w})");
                }
            }
        }
    }

    #[test]
    fn frozen_roundtrip_empty_and_tiny() {
        for compress in [false, true] {
            let g = erdos_renyi(7, 0, 0);
            let frozen = read_frozen(frozen_bytes(&g, compress).as_slice()).unwrap();
            assert_eq!(frozen.num_vertices(), 7);
            assert_eq!(frozen.num_edges(), 0);
            let g = erdos_renyi(0, 0, 0);
            let frozen = read_frozen(frozen_bytes(&g, compress).as_slice()).unwrap();
            assert_eq!(frozen.num_vertices(), 0);
        }
    }

    #[test]
    fn frozen_to_csr_thaws_identically() {
        let g = erdos_renyi(60, 400, 5);
        for compress in [false, true] {
            let frozen = read_frozen(frozen_bytes(&g, compress).as_slice()).unwrap();
            let thawed = frozen.to_csr();
            assert_eq!(
                thawed.edges().collect::<Vec<_>>(),
                g.edges().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn frozen_rejects_bad_magic_and_short_images() {
        let err = read_frozen(&b"PEGX\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, BinaryError::Corrupt(_)), "short image");
        let mut image = frozen_bytes(&erdos_renyi(10, 30, 1), false);
        image[..4].copy_from_slice(b"PEGX");
        let err = read_frozen(image.as_slice()).unwrap_err();
        assert!(matches!(err, BinaryError::BadMagic(_)));
    }

    #[test]
    fn frozen_rejects_payload_corruption() {
        for compress in [false, true] {
            let mut image = frozen_bytes(&erdos_renyi(50, 300, 2), compress);
            let last = image.len() - 1;
            image[last] ^= 0x40;
            let err = read_frozen(image.as_slice()).unwrap_err();
            assert!(
                matches!(err, BinaryError::Corrupt("payload checksum mismatch")),
                "flipped payload byte must fail the checksum, got {err}"
            );
        }
    }

    #[test]
    fn frozen_rejects_truncation() {
        let image = frozen_bytes(&erdos_renyi(50, 300, 2), false);
        for keep in [10, PEG2_HEADER_LEN, PAYLOAD_BASE, image.len() - 5] {
            let err = read_frozen(&image[..keep]).unwrap_err();
            assert!(matches!(err, BinaryError::Corrupt(_)), "keep={keep}");
        }
    }

    #[test]
    fn frozen_rejects_misaligned_section_offset() {
        let mut image = frozen_bytes(&erdos_renyi(20, 80, 4), false);
        // Nudge section 1's offset off 8-byte alignment; the checksum
        // covers the payload only, so the table edit must be caught by
        // the geometry checks, not the checksum.
        let base = PEG2_HEADER_LEN + 16;
        let offset = u64::from_le_bytes(image[base..base + 8].try_into().unwrap());
        image[base..base + 8].copy_from_slice(&(offset + 4).to_le_bytes());
        let err = read_frozen(image.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            BinaryError::Corrupt("section offset not 8-byte aligned")
                | BinaryError::Corrupt("sections out of order or overlapping")
        ));
    }

    #[test]
    fn frozen_file_roundtrip_and_sniffing_loader() {
        let g = erdos_renyi(30, 120, 6);
        let dir = std::env::temp_dir().join("pathenum_io_binary_test");
        std::fs::create_dir_all(&dir).unwrap();

        let frozen_path = dir.join("g2.peg");
        write_frozen_file(&g, true, &frozen_path).unwrap();
        let frozen = read_frozen_file(&frozen_path).unwrap();
        assert_eq!(frozen.num_edges(), g.num_edges());
        let handle = read_graph_file(&frozen_path).unwrap();
        assert!(matches!(handle, GraphHandle::Frozen(_)));
        assert_eq!(handle.num_edges(), g.num_edges());

        let peg1_path = dir.join("g1.peg");
        write_binary_file(&g, &peg1_path).unwrap();
        let handle = read_graph_file(&peg1_path).unwrap();
        assert!(matches!(handle, GraphHandle::Heap(_)));
        assert_eq!(handle.num_edges(), g.num_edges());

        let text_path = dir.join("g.txt");
        let mut text = Vec::new();
        crate::io::write_edge_list(&g, &mut text).unwrap();
        std::fs::write(&text_path, &text).unwrap();
        let handle = read_graph_file(&text_path).unwrap();
        assert_eq!(handle.num_edges(), g.num_edges());

        for p in [&frozen_path, &peg1_path, &text_path] {
            std::fs::remove_file(p).ok();
        }
    }
}

//! Breadth-first-search distance computations.
//!
//! The PathEnum index needs the two constrained single-source distance maps
//! of the paper: `v.s = S(s, v | G − {t})` (forward BFS from `s` with `t`
//! deleted) and `v.t = S(v, t | G − {s})` (backward BFS from `t` with `s`
//! deleted). [`distances`] covers both through [`Direction`] and an optional
//! excluded vertex, plus an optional depth bound so callers exploring only a
//! `k`-neighborhood never pay for the full graph.

use std::collections::VecDeque;

use crate::epoch::EpochMap;
use crate::types::{Distance, VertexId, INFINITE_DISTANCE};
use crate::view::NeighborAccess;

/// Edge orientation for a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges: distances *from* the source.
    Forward,
    /// Follow in-edges: distances *to* the source.
    Backward,
}

/// Options for [`distances`].
#[derive(Debug, Clone, Copy)]
pub struct BfsOptions {
    /// Traversal orientation.
    pub direction: Direction,
    /// Vertex removed from the graph (`G − {x}`); it keeps distance
    /// [`INFINITE_DISTANCE`] and is never expanded.
    pub excluded: Option<VertexId>,
    /// Stop expanding once this depth is reached; vertices further away
    /// keep [`INFINITE_DISTANCE`].
    pub max_depth: Option<Distance>,
}

impl Default for BfsOptions {
    fn default() -> Self {
        BfsOptions {
            direction: Direction::Forward,
            excluded: None,
            max_depth: None,
        }
    }
}

/// Single-source BFS distances with optional exclusion and depth bound.
///
/// Returns a vector indexed by vertex id. The source has distance 0 unless
/// it is the excluded vertex (then everything is unreachable).
///
/// Generic over [`NeighborAccess`], so the traversal runs identically on
/// a [`CsrGraph`](crate::CsrGraph) and on a borrowed
/// [`OverlayView`](crate::dynamic::OverlayView) of a dynamic graph.
pub fn distances<G: NeighborAccess>(
    graph: &G,
    source: VertexId,
    options: BfsOptions,
) -> Vec<Distance> {
    // alloc: setup — convenience oracle entry point; hot paths call
    // distances_into with caller-owned buffers instead.
    let mut dist = Vec::new();
    let mut queue = VecDeque::new();
    distances_into(graph, source, options, &mut dist, &mut queue);
    dist
}

/// As [`distances`], but writing into caller-owned buffers so repeated
/// queries (the real-time workloads PathEnum targets) avoid per-query
/// allocation. `dist` is resized and reset; `queue` is cleared.
///
/// This is the *naive oracle* form: the reset is an `O(|V|)` memset per
/// call, which dominates small bounded traversals on large graphs. The
/// production path is [`distances_epoch_into`], whose epoch-stamped map
/// resets in O(1); the two are pinned identical by this module's tests
/// and by the `kernel_agreement` differential suite.
pub fn distances_into<G: NeighborAccess>(
    graph: &G,
    source: VertexId,
    options: BfsOptions,
    dist: &mut Vec<Distance>,
    queue: &mut VecDeque<VertexId>,
) {
    dist.clear();
    dist.resize(graph.num_vertices(), INFINITE_DISTANCE);
    queue.clear();
    if options.excluded == Some(source) || (source as usize) >= graph.num_vertices() {
        return;
    }
    let bound = options.max_depth.unwrap_or(INFINITE_DISTANCE);
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d >= bound {
            continue;
        }
        let mut visit = |n: VertexId| {
            if Some(n) == options.excluded {
                return;
            }
            if dist[n as usize] == INFINITE_DISTANCE {
                dist[n as usize] = d + 1;
                queue.push_back(n);
            }
        };
        match options.direction {
            Direction::Forward => graph.for_each_out(v, &mut visit),
            Direction::Backward => graph.for_each_in(v, &mut visit),
        }
    }
}

/// As [`distances_into`], but writing the distances into an
/// epoch-stamped map so the whole-map reset is O(1) instead of `O(|V|)`.
///
/// Vertices the traversal never reached read back as the map's default
/// (callers construct it with [`INFINITE_DISTANCE`]); the set of reached
/// vertices is available afterwards as `dist.touched()`, which is what
/// lets the index build iterate the visited neighborhood instead of
/// scanning every vertex. While expanding one vertex the traversal
/// prefetches the adjacency row of the next queued vertex
/// ([`NeighborAccess::prefetch_out`]/[`prefetch_in`]), overlapping the
/// offset indirection with current work.
///
/// [`prefetch_in`]: NeighborAccess::prefetch_in
pub fn distances_epoch_into<G: NeighborAccess>(
    graph: &G,
    source: VertexId,
    options: BfsOptions,
    dist: &mut EpochMap,
    queue: &mut VecDeque<VertexId>,
) {
    dist.reset(graph.num_vertices());
    queue.clear();
    if options.excluded == Some(source) || (source as usize) >= graph.num_vertices() {
        return;
    }
    let bound = options.max_depth.unwrap_or(INFINITE_DISTANCE);
    dist.set(source as usize, 0);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist.get(v as usize);
        if d >= bound {
            continue;
        }
        if let Some(&ahead) = queue.front() {
            match options.direction {
                Direction::Forward => graph.prefetch_out(ahead),
                Direction::Backward => graph.prefetch_in(ahead),
            }
        }
        let mut visit = |n: VertexId| {
            if Some(n) == options.excluded {
                return;
            }
            if !dist.contains(n as usize) {
                dist.set(n as usize, d + 1);
                queue.push_back(n);
            }
        };
        match options.direction {
            Direction::Forward => graph.for_each_out(v, &mut visit),
            Direction::Backward => graph.for_each_in(v, &mut visit),
        }
    }
}

/// `S(s, v | G − {t})` for every `v`: forward distances from `s` in the
/// graph with `t` removed, bounded by `max_depth`.
pub fn distances_from_source<G: NeighborAccess>(
    graph: &G,
    s: VertexId,
    t: VertexId,
    max_depth: Distance,
) -> Vec<Distance> {
    distances(
        graph,
        s,
        BfsOptions {
            direction: Direction::Forward,
            excluded: Some(t),
            max_depth: Some(max_depth),
        },
    )
}

/// `S(v, t | G − {s})` for every `v`: backward distances to `t` in the
/// graph with `s` removed, bounded by `max_depth`.
pub fn distances_to_target<G: NeighborAccess>(
    graph: &G,
    s: VertexId,
    t: VertexId,
    max_depth: Distance,
) -> Vec<Distance> {
    distances(
        graph,
        t,
        BfsOptions {
            direction: Direction::Backward,
            excluded: Some(s),
            max_depth: Some(max_depth),
        },
    )
}

/// Shortest-path length from `s` to `t` (unconstrained graph), bounded by
/// `max_depth`; [`INFINITE_DISTANCE`] if `t` is further than the bound.
///
/// Used by the workload generator to enforce the paper's
/// "`distance(s, t) ≤ 3`" query admission rule.
pub fn st_distance<G: NeighborAccess>(
    graph: &G,
    s: VertexId,
    t: VertexId,
    max_depth: Distance,
) -> Distance {
    if s == t {
        return 0;
    }
    let dist = distances(
        graph,
        s,
        BfsOptions {
            direction: Direction::Forward,
            excluded: None,
            max_depth: Some(max_depth),
        },
    );
    dist[t as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::csr::CsrGraph;

    /// The 9-vertex graph of the paper's Figure 1a.
    ///
    /// Vertices: s=0, t=1, v0=2, v1=3, v2=4, v3=5, v4=6, v5=7, v6=8, v7=9.
    pub(crate) fn figure1_graph() -> CsrGraph {
        let mut b = GraphBuilder::new(10);
        // Edges read off Figure 1a / the relations in Figure 3a:
        // s->v0, s->v1, s->v3, v0->v1, v0->v6, v0->t, v1->v2, v1->v3,
        // v2->v0, v2->t, v3->v4, v4->v5, v5->v2, v5->t, v6->v0, plus an
        // isolated-ish v7 with an edge from v7 to s (appears in no result).
        let (s, t, v0, v1, v2, v3, v4, v5, v6, v7) = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9);
        b.add_edges([
            (s, v0),
            (s, v1),
            (s, v3),
            (v0, v1),
            (v0, v6),
            (v0, t),
            (v1, v2),
            (v1, v3),
            (v2, v0),
            (v2, t),
            (v3, v4),
            (v4, v5),
            (v5, v2),
            (v5, t),
            (v6, v0),
            (v7, s),
        ])
        .unwrap();
        b.finish()
    }

    #[test]
    fn forward_distances_on_figure1() {
        let g = figure1_graph();
        let d = distances(&g, 0, BfsOptions::default());
        assert_eq!(d[0], 0); // s
        assert_eq!(d[2], 1); // v0
        assert_eq!(d[1], 2); // t via s->v0->t
        assert_eq!(d[6], 2); // v4 via s->v3->v4
        assert_eq!(d[9], INFINITE_DISTANCE); // v7 unreachable from s
    }

    #[test]
    fn excluding_target_blocks_paths_through_it() {
        let g = figure1_graph();
        // Distances from s with t removed: same here because no shortest
        // path routes through t, but t itself must read infinite.
        let d = distances_from_source(&g, 0, 1, 8);
        assert_eq!(d[1], INFINITE_DISTANCE);
        assert_eq!(d[2], 1);
    }

    #[test]
    fn backward_distances_reach_targets_of_t() {
        let g = figure1_graph();
        let d = distances_to_target(&g, 0, 1, 8);
        assert_eq!(d[1], 0); // t itself
        assert_eq!(d[2], 1); // v0 -> t
        assert_eq!(d[4], 1); // v2 -> t
        assert_eq!(d[7], 1); // v5 -> t
        assert_eq!(d[3], 2); // v1 -> v2 -> t
        assert_eq!(d[0], INFINITE_DISTANCE); // s is excluded
    }

    #[test]
    fn depth_bound_truncates_search() {
        let g = figure1_graph();
        let d = distances(
            &g,
            0,
            BfsOptions {
                max_depth: Some(1),
                ..BfsOptions::default()
            },
        );
        assert_eq!(d[2], 1);
        assert_eq!(d[1], INFINITE_DISTANCE); // t is at depth 2
    }

    #[test]
    fn st_distance_matches_bfs() {
        let g = figure1_graph();
        assert_eq!(st_distance(&g, 0, 1, 8), 2);
        assert_eq!(st_distance(&g, 0, 0, 8), 0);
        assert_eq!(st_distance(&g, 0, 9, 8), INFINITE_DISTANCE);
    }

    #[test]
    fn distances_into_reuses_buffers_cleanly() {
        let g = figure1_graph();
        let mut dist = vec![7u32; 3]; // wrong size, stale content
        let mut queue = std::collections::VecDeque::from([9u32]);
        distances_into(&g, 0, BfsOptions::default(), &mut dist, &mut queue);
        assert_eq!(dist, distances(&g, 0, BfsOptions::default()));
        // Second run from a different source must fully overwrite.
        distances_into(&g, 5, BfsOptions::default(), &mut dist, &mut queue);
        assert_eq!(dist, distances(&g, 5, BfsOptions::default()));
    }

    #[test]
    fn epoch_variant_matches_naive_across_options_and_reuse() {
        let g = figure1_graph();
        let mut map = EpochMap::new(INFINITE_DISTANCE);
        let mut queue = VecDeque::new();
        let option_grid = [
            BfsOptions::default(),
            BfsOptions {
                direction: Direction::Backward,
                ..BfsOptions::default()
            },
            BfsOptions {
                excluded: Some(1),
                max_depth: Some(3),
                ..BfsOptions::default()
            },
            BfsOptions {
                direction: Direction::Backward,
                excluded: Some(0),
                max_depth: Some(2),
            },
            BfsOptions {
                excluded: Some(0), // excluded == source
                ..BfsOptions::default()
            },
        ];
        // One map reused across every (source, options) pair: the epoch
        // reset must never leak a previous query's distances.
        for options in option_grid {
            for source in 0..g.num_vertices() as VertexId {
                let naive = distances(&g, source, options);
                distances_epoch_into(&g, source, options, &mut map, &mut queue);
                for (v, &expected) in naive.iter().enumerate() {
                    assert_eq!(
                        map.get(v),
                        expected,
                        "vertex {v}, source {source}, options {options:?}"
                    );
                }
                // Touched is exactly the finite-distance set.
                let reached = naive.iter().filter(|&&d| d != INFINITE_DISTANCE).count();
                assert_eq!(map.touched().len(), reached);
            }
        }
    }

    #[test]
    fn epoch_variant_survives_graph_size_changes() {
        let mut map = EpochMap::new(INFINITE_DISTANCE);
        let mut queue = VecDeque::new();
        let big = figure1_graph();
        distances_epoch_into(&big, 0, BfsOptions::default(), &mut map, &mut queue);
        let mut b = GraphBuilder::new(3);
        b.add_edges([(0, 1), (1, 2)]).unwrap();
        let small = b.finish();
        distances_epoch_into(&small, 0, BfsOptions::default(), &mut map, &mut queue);
        assert_eq!(map.capacity(), 3);
        assert_eq!(map.get(2), 2);
        distances_epoch_into(&big, 0, BfsOptions::default(), &mut map, &mut queue);
        assert_eq!(map.get(6), 2); // v4 via s->v3->v4
    }

    #[test]
    fn excluded_source_is_fully_unreachable() {
        let g = figure1_graph();
        let d = distances(
            &g,
            0,
            BfsOptions {
                excluded: Some(0),
                ..BfsOptions::default()
            },
        );
        assert!(d.iter().all(|&x| x == INFINITE_DISTANCE));
    }
}

//! A query-ready graph served directly from a `PEG2` load buffer.
//!
//! [`FrozenGraph`] is the zero-copy counterpart of [`CsrGraph`]: the
//! same CSR adjacency (forward offsets + targets, reverse offsets +
//! sources), but borrowed from the 8-byte-aligned buffer a `PEG2` file
//! was bulk-read into instead of owned as separate heap vectors. Load
//! is parse-free — one sequential read, one checksum/validation pass,
//! zero re-sort and zero rebuild — which is what makes cold-start on
//! large graphs an I/O problem instead of a CPU problem.
//!
//! Two adjacency encodings share the container (header flag bit 0):
//!
//! * **raw** — offsets are element indices, neighbor lists are plain
//!   `u32` arrays; iteration is a slice walk, `has_edge` a binary
//!   search. Byte-for-byte the hot layout [`CsrGraph`] already uses.
//! * **compressed** — offsets are byte offsets into varint streams;
//!   each row is `degree, first, delta, delta, …` (deltas ≥ 1 since
//!   rows are strictly ascending). ~2–4× smaller on generator and
//!   social-style graphs, decoded on the fly — the trade for cold
//!   segments where footprint beats iteration speed.
//!
//! All multi-byte integers are little-endian. The only `unsafe` these
//! paths rely on is the checked slice casting in [`crate::zerocopy`];
//! everything here is safe code over validated section ranges.
//!
//! Every load is validated before the first query: section table
//! geometry (bounds, 8-byte alignment, ordering), payload checksum,
//! offset monotonicity, per-row strict ascent, and id range. After that
//! pass the accessors can trust the buffer, so the query path carries
//! no per-access checks beyond slice indexing. Forward/reverse
//! consistency is the writer's contract (like `PEG1`, which trusts its
//! sorted-edge invariant); the checksum catches accidental corruption
//! of either side.

use std::ops::Range;

use crate::csr::CsrGraph;
use crate::io_binary::BinaryError;
use crate::types::VertexId;
use crate::version::GraphVersion;
use crate::view::NeighborAccess;
use crate::zerocopy::{as_u32s, as_u64s, AlignedBuf};

/// Appends `v` to `buf` as a LEB128 varint.
pub(crate) fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint at `*pos`, advancing it. `None` on a
/// truncated or over-long (> 64 bit) encoding.
pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut shift = 0u32;
    let mut out = 0u64;
    loop {
        let &b = bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        out |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
    }
}

/// An immutable CSR digraph borrowed from an owned, aligned `PEG2`
/// image. Implements [`NeighborAccess`], so every planner / index /
/// enumeration path runs on it unchanged; see the module docs for the
/// layout and validation story.
#[derive(Debug, Clone)]
pub struct FrozenGraph {
    buf: AlignedBuf,
    num_vertices: usize,
    num_edges: usize,
    compressed: bool,
    fwd_off: Range<usize>,
    fwd_adj: Range<usize>,
    rev_off: Range<usize>,
    rev_adj: Range<usize>,
    /// Fresh per load: a frozen image is a new edge-set value to every
    /// cache keyed by [`GraphVersion`].
    version: GraphVersion,
}

impl FrozenGraph {
    /// Validates a complete `PEG2` image and freezes it. The buffer is
    /// everything after this call — all adjacency is served from it.
    pub fn from_buf(buf: AlignedBuf) -> Result<FrozenGraph, BinaryError> {
        let (vertices, edges, compressed, sections) = crate::io_binary::parse_peg2_header(&buf)?;
        let [fwd_off, fwd_adj, rev_off, rev_adj] = sections;
        let graph = FrozenGraph {
            buf,
            num_vertices: vertices,
            num_edges: edges,
            compressed,
            fwd_off,
            fwd_adj,
            rev_off,
            rev_adj,
            version: GraphVersion::next(),
        };
        graph.validate()?;
        Ok(graph)
    }

    /// Structural validation of both directions: offset-table geometry,
    /// strict per-row ascent, id range, and total edge count. One O(V +
    /// E) pass per direction at load time buys check-free accessors.
    fn validate(&self) -> Result<(), BinaryError> {
        self.validate_direction(self.fwd_off.clone(), self.fwd_adj.clone())?;
        self.validate_direction(self.rev_off.clone(), self.rev_adj.clone())
    }

    fn validate_direction(&self, off: Range<usize>, adj: Range<usize>) -> Result<(), BinaryError> {
        let offsets = self.offsets_in(off)?;
        if offsets.len() != self.num_vertices + 1 {
            return Err(BinaryError::Corrupt("offset table has wrong length"));
        }
        if offsets.first() != Some(&0) {
            return Err(BinaryError::Corrupt("offset table does not start at 0"));
        }
        // Prove the whole offset chain non-decreasing (and therefore,
        // with first == 0 and last == total length, in bounds) BEFORE
        // slicing any row — a corrupt middle offset must surface as an
        // error, not an out-of-range panic.
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(BinaryError::Corrupt("offset table not monotonic"));
        }
        let adj_bytes = &self.buf.as_bytes()[adj];
        if self.compressed {
            if *offsets.last().unwrap_or(&0) != adj_bytes.len() as u64 {
                return Err(BinaryError::Corrupt(
                    "offset table does not cover the adjacency stream",
                ));
            }
            let mut total = 0usize;
            for v in 0..self.num_vertices {
                let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
                total = total.saturating_add(self.validate_varint_row(&adj_bytes[start..end])?);
            }
            if total != self.num_edges {
                return Err(BinaryError::Corrupt("degree sum disagrees with edge count"));
            }
        } else {
            let targets =
                as_u32s(adj_bytes).ok_or(BinaryError::Corrupt("misaligned adjacency section"))?;
            if targets.len() != self.num_edges
                || *offsets.last().unwrap_or(&0) != self.num_edges as u64
            {
                return Err(BinaryError::Corrupt(
                    "offset table does not cover the adjacency section",
                ));
            }
            for v in 0..self.num_vertices {
                let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
                let mut prev: Option<u32> = None;
                for &n in &targets[start..end] {
                    if n as usize >= self.num_vertices {
                        return Err(BinaryError::Corrupt("neighbor id out of range"));
                    }
                    if prev.is_some_and(|p| p >= n) {
                        return Err(BinaryError::Corrupt("neighbor row not strictly ascending"));
                    }
                    prev = Some(n);
                }
            }
        }
        Ok(())
    }

    /// Decodes one varint row for validation; returns its degree.
    fn validate_varint_row(&self, row: &[u8]) -> Result<usize, BinaryError> {
        let mut pos = 0usize;
        let degree =
            read_varint(row, &mut pos).ok_or(BinaryError::Corrupt("truncated varint row"))?;
        let degree = usize::try_from(degree)
            .map_err(|_| BinaryError::Corrupt("varint degree out of range"))?;
        if degree > self.num_edges {
            return Err(BinaryError::Corrupt("varint degree exceeds edge count"));
        }
        let mut prev: Option<u64> = None;
        for _ in 0..degree {
            let raw =
                read_varint(row, &mut pos).ok_or(BinaryError::Corrupt("truncated varint row"))?;
            let value = match prev {
                None => raw,
                Some(p) => {
                    if raw == 0 {
                        return Err(BinaryError::Corrupt("varint delta of zero"));
                    }
                    p.checked_add(raw)
                        .ok_or(BinaryError::Corrupt("varint neighbor overflows"))?
                }
            };
            if value >= self.num_vertices as u64 {
                return Err(BinaryError::Corrupt("neighbor id out of range"));
            }
            prev = Some(value);
        }
        if pos != row.len() {
            return Err(BinaryError::Corrupt("varint row has trailing bytes"));
        }
        Ok(degree)
    }

    fn offsets_in(&self, range: Range<usize>) -> Result<&[u64], BinaryError> {
        as_u64s(&self.buf.as_bytes()[range])
            .ok_or(BinaryError::Corrupt("misaligned offset section"))
    }

    /// The validated offsets of one direction. Infallible post-load.
    #[inline]
    fn offsets(&self, range: &Range<usize>) -> &[u64] {
        as_u64s(&self.buf.as_bytes()[range.clone()]).unwrap_or(&[])
    }

    /// The raw targets of one direction (raw encoding only).
    #[inline]
    fn adjacency(&self, range: &Range<usize>) -> &[u32] {
        as_u32s(&self.buf.as_bytes()[range.clone()]).unwrap_or(&[])
    }

    #[inline]
    fn row_raw(&self, off: &Range<usize>, adj: &Range<usize>, v: VertexId) -> &[u32] {
        let offsets = self.offsets(off);
        let (start, end) = (
            offsets[v as usize] as usize,
            offsets[v as usize + 1] as usize,
        );
        &self.adjacency(adj)[start..end]
    }

    #[inline]
    fn row_stream(&self, off: &Range<usize>, adj: &Range<usize>, v: VertexId) -> &[u8] {
        let offsets = self.offsets(off);
        let (start, end) = (
            offsets[v as usize] as usize,
            offsets[v as usize + 1] as usize,
        );
        &self.buf.as_bytes()[adj.clone()][start..end]
    }

    fn for_each_neighbor(
        &self,
        off: &Range<usize>,
        adj: &Range<usize>,
        v: VertexId,
        mut f: impl FnMut(VertexId),
    ) {
        if self.compressed {
            let row = self.row_stream(off, adj, v);
            let mut pos = 0usize;
            let Some(degree) = read_varint(row, &mut pos) else {
                return;
            };
            let mut current = 0u64;
            for i in 0..degree {
                let Some(raw) = read_varint(row, &mut pos) else {
                    return;
                };
                current = if i == 0 { raw } else { current + raw };
                f(current as VertexId);
            }
        } else {
            for &n in self.row_raw(off, adj, v) {
                f(n);
            }
        }
    }

    fn degree_of(&self, off: &Range<usize>, adj: &Range<usize>, v: VertexId) -> usize {
        if self.compressed {
            let row = self.row_stream(off, adj, v);
            read_varint(row, &mut 0).unwrap_or(0) as usize
        } else {
            let offsets = self.offsets(off);
            (offsets[v as usize + 1] - offsets[v as usize]) as usize
        }
    }

    fn contains_neighbor(
        &self,
        off: &Range<usize>,
        adj: &Range<usize>,
        v: VertexId,
        n: VertexId,
    ) -> bool {
        if self.compressed {
            let mut found = false;
            // Rows are ascending; a scan past `n` could stop early, but
            // rows are short enough that the callback keeps it simple.
            self.for_each_neighbor(off, adj, v, |w| found |= w == n);
            found
        } else {
            self.row_raw(off, adj, v).binary_search(&n).is_ok()
        }
    }

    /// The version epoch of this frozen edge set (fresh per load).
    #[inline]
    pub fn version(&self) -> GraphVersion {
        self.version
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether the adjacency sections are varint/delta compressed.
    #[inline]
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// Total bytes of the backing image — the whole memory footprint of
    /// this graph (plus the fixed struct header).
    #[inline]
    pub fn image_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Thaws into an owned [`CsrGraph`] (one allocation pass; edges are
    /// already sorted, so no re-sort happens). The escape hatch for
    /// callers that need mutation via [`DynamicGraph`](crate::DynamicGraph).
    pub fn to_csr(&self) -> CsrGraph {
        let mut edges = Vec::with_capacity(self.num_edges);
        for v in 0..self.num_vertices as VertexId {
            self.for_each_neighbor(&self.fwd_off, &self.fwd_adj, v, |n| edges.push((v, n)));
        }
        CsrGraph::from_sorted_dedup_edges(self.num_vertices, &edges)
    }
}

impl NeighborAccess for FrozenGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn for_each_out(&self, v: VertexId, f: impl FnMut(VertexId)) {
        self.for_each_neighbor(&self.fwd_off, &self.fwd_adj, v, f);
    }

    #[inline]
    fn for_each_in(&self, v: VertexId, f: impl FnMut(VertexId)) {
        self.for_each_neighbor(&self.rev_off, &self.rev_adj, v, f);
    }

    #[inline]
    fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.contains_neighbor(&self.fwd_off, &self.fwd_adj, from, to)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.degree_of(&self.fwd_off, &self.fwd_adj, v)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        self.degree_of(&self.rev_off, &self.rev_adj, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_boundary_values() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len(), "no trailing bytes for {v}");
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overlength() {
        assert_eq!(read_varint(&[0x80], &mut 0), None, "truncated");
        assert_eq!(read_varint(&[], &mut 0), None, "empty");
        let overlong = [0x80u8; 11];
        assert_eq!(read_varint(&overlong, &mut 0), None, "more than 64 bits");
    }
}

//! Dynamic-graph support: a base graph plus buffered edge insertions.
//!
//! The paper's Figure 8 experiment replays 10% of a graph's edges as
//! insertions: for each new edge `e(v, v')` it runs the query
//! `q(v', v, k-1)` on the graph *as of that moment* to surface the cycles
//! the insertion closes. Because the PathEnum index is rebuilt per query,
//! "dynamic support" only requires a graph view that reflects pending
//! insertions. [`DynamicGraph`] keeps an overlay of inserted edges and can
//! snapshot into a [`CsrGraph`]; since the per-query index build already
//! scans adjacency, algorithms simply run on the snapshot.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::hashing::FxHashSet;
use crate::types::{Edge, VertexId};

/// A base [`CsrGraph`] plus an insertion overlay.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    base: CsrGraph,
    inserted: Vec<Edge>,
    present: FxHashSet<u64>,
}

fn edge_key(from: VertexId, to: VertexId) -> u64 {
    (u64::from(from) << 32) | u64::from(to)
}

impl DynamicGraph {
    /// Wraps a base graph with an empty overlay.
    pub fn new(base: CsrGraph) -> Self {
        DynamicGraph {
            base,
            inserted: Vec::new(),
            present: FxHashSet::default(),
        }
    }

    /// The base graph the overlay started from.
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Edges inserted since construction, in insertion order.
    pub fn inserted_edges(&self) -> &[Edge] {
        &self.inserted
    }

    /// Inserts a directed edge. Returns `false` if the edge already exists
    /// (in the base or the overlay) or is a self-loop.
    pub fn insert_edge(&mut self, from: VertexId, to: VertexId) -> bool {
        if from == to {
            return false;
        }
        let n = self.base.num_vertices() as VertexId;
        if from >= n || to >= n {
            return false;
        }
        if self.base.has_edge(from, to) {
            return false;
        }
        if !self.present.insert(edge_key(from, to)) {
            return false;
        }
        self.inserted.push((from, to));
        true
    }

    /// Whether the edge exists in the current (base + overlay) graph.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.base.has_edge(from, to) || self.present.contains(&edge_key(from, to))
    }

    /// Total edge count of the current graph.
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.inserted.len()
    }

    /// Materializes the current graph as an immutable [`CsrGraph`].
    ///
    /// Cost is linear in the graph size; the Figure 8 harness snapshots in
    /// batches rather than per insertion.
    pub fn snapshot(&self) -> CsrGraph {
        let mut builder = GraphBuilder::new(self.base.num_vertices());
        builder.reserve(self.num_edges());
        builder
            .add_edges(self.base.edges())
            .expect("base edges are valid");
        builder
            .add_edges(self.inserted.iter().copied())
            .expect("overlay edges are valid");
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2)]).unwrap();
        b.finish()
    }

    #[test]
    fn insertions_are_visible_in_snapshot() {
        let mut d = DynamicGraph::new(base());
        assert!(d.insert_edge(2, 3));
        assert!(d.insert_edge(3, 0));
        let g = d.snapshot();
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(2, 3));
        assert!(g.has_edge(3, 0));
    }

    #[test]
    fn duplicate_and_loop_insertions_are_rejected() {
        let mut d = DynamicGraph::new(base());
        assert!(!d.insert_edge(0, 1), "already in base");
        assert!(d.insert_edge(2, 3));
        assert!(!d.insert_edge(2, 3), "already in overlay");
        assert!(!d.insert_edge(1, 1), "self-loop");
        assert!(!d.insert_edge(0, 9), "out of range");
        assert_eq!(d.inserted_edges(), &[(2, 3)]);
    }

    #[test]
    fn has_edge_sees_both_layers() {
        let mut d = DynamicGraph::new(base());
        d.insert_edge(3, 1);
        assert!(d.has_edge(0, 1));
        assert!(d.has_edge(3, 1));
        assert!(!d.has_edge(1, 3));
    }

    #[test]
    fn num_edges_counts_overlay() {
        let mut d = DynamicGraph::new(base());
        assert_eq!(d.num_edges(), 2);
        d.insert_edge(0, 2);
        assert_eq!(d.num_edges(), 3);
    }
}

//! Dynamic-graph support: a base graph plus buffered edge mutations.
//!
//! The paper's Figure 8 experiment replays 10% of a graph's edges as
//! insertions: for each new edge `e(v, v')` it runs the query
//! `q(v', v, k-1)` on the graph *as of that moment* to surface the cycles
//! the insertion closes. Because the PathEnum index is rebuilt per query,
//! "dynamic support" only requires a graph view that reflects pending
//! mutations. [`DynamicGraph`] keeps an overlay of inserted and deleted
//! edges and can snapshot into a [`CsrGraph`]; since the per-query index
//! build already scans adjacency, algorithms simply run on the snapshot.
//!
//! Every successful mutation advances the overlay's [`GraphVersion`]
//! epoch, and [`snapshot`](DynamicGraph::snapshot) stamps that epoch onto
//! the produced [`CsrGraph`]. Downstream per-query caches (the plan/index
//! cache in `pathenum::plan`) key their entries by this version, so a
//! mutation invalidates exactly the state computed against older
//! snapshots, while snapshots taken with no intervening mutation keep
//! sharing cached state.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::hashing::FxHashSet;
use crate::types::{Edge, VertexId};
use crate::version::GraphVersion;

/// A base [`CsrGraph`] plus insertion/deletion overlays.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    base: CsrGraph,
    inserted: Vec<Edge>,
    present: FxHashSet<u64>,
    /// Base edges masked out by [`remove_edge`](DynamicGraph::remove_edge).
    deleted: FxHashSet<u64>,
    version: GraphVersion,
}

fn edge_key(from: VertexId, to: VertexId) -> u64 {
    (u64::from(from) << 32) | u64::from(to)
}

impl DynamicGraph {
    /// Wraps a base graph with an empty overlay. The overlay starts at
    /// the base graph's version (no mutation has happened yet).
    pub fn new(base: CsrGraph) -> Self {
        let version = base.version();
        DynamicGraph {
            base,
            inserted: Vec::new(),
            present: FxHashSet::default(),
            deleted: FxHashSet::default(),
            version,
        }
    }

    /// The base graph the overlay started from.
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// The current version epoch; advances on every successful mutation.
    pub fn version(&self) -> GraphVersion {
        self.version
    }

    /// Edges inserted since construction, in insertion order. Edges later
    /// removed again by [`remove_edge`](DynamicGraph::remove_edge) do not
    /// appear.
    pub fn inserted_edges(&self) -> &[Edge] {
        &self.inserted
    }

    /// Inserts a directed edge. Returns `false` (and does not advance the
    /// version) if the edge already exists or is a self-loop / out of
    /// range. Re-inserting a base edge that was deleted restores it.
    pub fn insert_edge(&mut self, from: VertexId, to: VertexId) -> bool {
        if from == to {
            return false;
        }
        let n = self.base.num_vertices() as VertexId;
        if from >= n || to >= n {
            return false;
        }
        if self.base.has_edge(from, to) {
            // Restoring a deleted base edge is a mutation; a live base
            // edge is a duplicate.
            if self.deleted.remove(&edge_key(from, to)) {
                self.version = GraphVersion::next();
                return true;
            }
            return false;
        }
        if !self.present.insert(edge_key(from, to)) {
            return false;
        }
        self.inserted.push((from, to));
        self.version = GraphVersion::next();
        true
    }

    /// Deletes a directed edge (from the base or the overlay). Returns
    /// `false` (and does not advance the version) if the edge is not in
    /// the current graph.
    pub fn remove_edge(&mut self, from: VertexId, to: VertexId) -> bool {
        let n = self.base.num_vertices() as VertexId;
        if from >= n || to >= n {
            return false;
        }
        let key = edge_key(from, to);
        if self.present.remove(&key) {
            self.inserted.retain(|&e| e != (from, to));
            self.version = GraphVersion::next();
            return true;
        }
        if self.base.has_edge(from, to) && self.deleted.insert(key) {
            self.version = GraphVersion::next();
            return true;
        }
        false
    }

    /// Whether the edge exists in the current (base + overlay) graph.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        let key = edge_key(from, to);
        if self.present.contains(&key) {
            return true;
        }
        self.base.has_edge(from, to) && !self.deleted.contains(&key)
    }

    /// Total edge count of the current graph.
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.inserted.len() - self.deleted.len()
    }

    /// Materializes the current graph as an immutable [`CsrGraph`],
    /// stamped with the overlay's current [`GraphVersion`] — snapshots of
    /// an unmutated overlay are version-identical and can share cached
    /// per-query state.
    ///
    /// Cost is linear in the graph size; the Figure 8 harness snapshots in
    /// batches rather than per insertion.
    pub fn snapshot(&self) -> CsrGraph {
        let mut builder = GraphBuilder::new(self.base.num_vertices());
        builder.reserve(self.num_edges());
        builder
            .add_edges(
                self.base
                    .edges()
                    .filter(|&(from, to)| !self.deleted.contains(&edge_key(from, to))),
            )
            .expect("base edges are valid");
        builder
            .add_edges(self.inserted.iter().copied())
            .expect("overlay edges are valid");
        let mut snapshot = builder.finish();
        snapshot.set_version(self.version);
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2)]).unwrap();
        b.finish()
    }

    #[test]
    fn insertions_are_visible_in_snapshot() {
        let mut d = DynamicGraph::new(base());
        assert!(d.insert_edge(2, 3));
        assert!(d.insert_edge(3, 0));
        let g = d.snapshot();
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(2, 3));
        assert!(g.has_edge(3, 0));
    }

    #[test]
    fn duplicate_and_loop_insertions_are_rejected() {
        let mut d = DynamicGraph::new(base());
        assert!(!d.insert_edge(0, 1), "already in base");
        assert!(d.insert_edge(2, 3));
        assert!(!d.insert_edge(2, 3), "already in overlay");
        assert!(!d.insert_edge(1, 1), "self-loop");
        assert!(!d.insert_edge(0, 9), "out of range");
        assert_eq!(d.inserted_edges(), &[(2, 3)]);
    }

    #[test]
    fn has_edge_sees_both_layers() {
        let mut d = DynamicGraph::new(base());
        d.insert_edge(3, 1);
        assert!(d.has_edge(0, 1));
        assert!(d.has_edge(3, 1));
        assert!(!d.has_edge(1, 3));
    }

    #[test]
    fn num_edges_counts_overlay() {
        let mut d = DynamicGraph::new(base());
        assert_eq!(d.num_edges(), 2);
        d.insert_edge(0, 2);
        assert_eq!(d.num_edges(), 3);
    }

    #[test]
    fn deletions_mask_base_and_overlay_edges() {
        let mut d = DynamicGraph::new(base());
        assert!(d.remove_edge(0, 1), "base edge");
        assert!(!d.has_edge(0, 1));
        assert!(!d.remove_edge(0, 1), "already deleted");
        assert_eq!(d.num_edges(), 1);

        assert!(d.insert_edge(2, 3));
        assert!(d.remove_edge(2, 3), "overlay edge");
        assert!(!d.has_edge(2, 3));
        assert!(d.inserted_edges().is_empty());

        assert!(!d.remove_edge(3, 0), "never existed");
        assert!(!d.remove_edge(9, 0), "out of range returns false");
        assert!(!d.remove_edge(0, 9), "out of range returns false");

        let g = d.snapshot();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn reinserting_a_deleted_base_edge_restores_it() {
        let mut d = DynamicGraph::new(base());
        assert!(d.remove_edge(0, 1));
        assert!(d.insert_edge(0, 1));
        assert!(d.has_edge(0, 1));
        assert_eq!(d.num_edges(), 2);
        assert!(
            d.inserted_edges().is_empty(),
            "restored base edges are not overlay insertions"
        );
    }

    #[test]
    fn mutations_advance_the_version_and_rejections_do_not() {
        let mut d = DynamicGraph::new(base());
        let v0 = d.version();
        assert_eq!(v0, d.base().version());

        assert!(!d.insert_edge(0, 1));
        assert!(!d.remove_edge(3, 0));
        assert_eq!(d.version(), v0, "no-op mutations keep the version");

        assert!(d.insert_edge(2, 3));
        let v1 = d.version();
        assert!(v1 > v0);
        assert!(d.remove_edge(0, 1));
        assert!(d.version() > v1);
    }

    #[test]
    fn snapshots_share_the_version_until_the_next_mutation() {
        let mut d = DynamicGraph::new(base());
        d.insert_edge(2, 3);
        let a = d.snapshot();
        let b = d.snapshot();
        assert_eq!(a.version(), b.version());
        assert_eq!(a.version(), d.version());

        d.insert_edge(3, 0);
        let c = d.snapshot();
        assert_ne!(c.version(), a.version());
    }
}

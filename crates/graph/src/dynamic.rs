//! Dynamic-graph support: a base graph plus buffered edge mutations,
//! queryable **in place** through a borrowed [`OverlayView`].
//!
//! The paper's Figure 8 experiment replays 10% of a graph's edges as
//! insertions: for each new edge `e(v, v')` it runs the query
//! `q(v', v, k-1)` on the graph *as of that moment* to surface the cycles
//! the insertion closes. [`DynamicGraph`] keeps an overlay of inserted
//! and deleted edges over an immutable base [`CsrGraph`]; the graph at
//! any moment can be served two ways:
//!
//! * [`view`](DynamicGraph::view) — an `O(1)` borrowed [`OverlayView`]
//!   implementing [`NeighborAccess`], so the boundary BFS and the
//!   per-query index build run directly on base + overlay with zero
//!   materialization (the hot path for update→query streams);
//! * [`snapshot`](DynamicGraph::snapshot) — an `O(n + m)` materialized
//!   [`CsrGraph`] (for batch workloads, or when a standalone graph value
//!   is needed).
//!
//! Every successful mutation advances the overlay's [`GraphVersion`]
//! epoch and is appended to a bounded mutation log
//! ([`mutations_since`](DynamicGraph::mutations_since)). Downstream
//! per-query caches key their entries by the version; the log lets them
//! re-validate entries *surgically* — keeping entries whose recorded
//! footprint is provably untouched by the delta — instead of discarding
//! everything on any mutation.
//!
//! # Overlay invariants
//!
//! * `inserted` edges are never live base edges: inserting an edge the
//!   base already has either restores a deleted base edge or is a
//!   duplicate no-op. The insert overlay and the (non-deleted) base edge
//!   set are therefore disjoint.
//! * `deleted` only ever contains base edges; removing an overlay edge
//!   un-inserts it instead (in `O(log u + deg)` via the slot map — not by
//!   scanning the whole insert log).
//! * Per-vertex delta adjacency (`ins_out`/`ins_in`, `del_out`/`del_in`)
//!   is kept sorted, so [`OverlayView`] yields neighbors in ascending
//!   order — the same order a materialized snapshot would — which makes
//!   overlay execution emit results path-for-path identical to snapshot
//!   execution.

use std::collections::VecDeque;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::hashing::{FxHashMap, FxHashSet};
use crate::types::{Edge, VertexId};
use crate::version::GraphVersion;
use crate::view::NeighborAccess;

/// How many mutations the delta log retains. Cache entries older than
/// the log window can no longer be surgically re-validated and fall back
/// to plain invalidation; 1024 comfortably covers the mutation burst a
/// cache entry is expected to survive between touches.
pub const DELTA_LOG_CAPACITY: usize = 1024;

/// One logged edge mutation (see
/// [`DynamicGraph::mutations_since`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeMutation {
    /// The edge was added (a fresh overlay insertion, or the restore of
    /// a previously deleted base edge).
    Inserted,
    /// The edge was removed (a base-edge deletion, or the un-insertion
    /// of an overlay edge).
    Removed,
}

/// A base [`CsrGraph`] plus insertion/deletion overlays.
#[derive(Debug)]
pub struct DynamicGraph {
    base: CsrGraph,
    /// Identity of this overlay's mutation lineage. Fresh per
    /// construction *and per clone*: two graph values share a lineage
    /// only when one *is* the other, so "my mutation log is the
    /// complete history after version `v`" is a claim a consumer can
    /// trust only together with a lineage match. See
    /// [`lineage`](DynamicGraph::lineage).
    lineage: GraphVersion,
    /// Insertion-ordered overlay log; removed entries are tombstoned so
    /// removal never shifts (or scans) the rest of the log.
    inserted: Vec<Option<Edge>>,
    /// Live overlay edge key -> slot in `inserted`.
    present: FxHashMap<u64, u32>,
    /// Sorted per-vertex overlay adjacency: inserted out-neighbors.
    ins_out: FxHashMap<VertexId, Vec<VertexId>>,
    /// Sorted per-vertex overlay adjacency: inserted in-neighbors.
    ins_in: FxHashMap<VertexId, Vec<VertexId>>,
    /// Base edges masked out by [`remove_edge`](DynamicGraph::remove_edge).
    deleted: FxHashSet<u64>,
    /// Sorted per-vertex deletion adjacency: deleted base out-neighbors.
    del_out: FxHashMap<VertexId, Vec<VertexId>>,
    /// Sorted per-vertex deletion adjacency: deleted base in-neighbors.
    del_in: FxHashMap<VertexId, Vec<VertexId>>,
    version: GraphVersion,
    /// Recent mutations, oldest first; each entry carries the version the
    /// mutation produced.
    log: VecDeque<(GraphVersion, EdgeMutation, Edge)>,
    /// The log is complete for every version `>= log_floor`.
    log_floor: GraphVersion,
}

impl Clone for DynamicGraph {
    /// Clones the full overlay state but under a **fresh lineage**: the
    /// clone's mutation log answers only for versions the clone itself
    /// produces. Were the lineage shared, state stamped against one
    /// sibling could be re-validated against the other's log after the
    /// two diverge — replaying the wrong delta.
    fn clone(&self) -> Self {
        DynamicGraph {
            base: self.base.clone(),
            lineage: GraphVersion::next(),
            inserted: self.inserted.clone(),
            present: self.present.clone(),
            ins_out: self.ins_out.clone(),
            ins_in: self.ins_in.clone(),
            deleted: self.deleted.clone(),
            del_out: self.del_out.clone(),
            del_in: self.del_in.clone(),
            version: self.version,
            log: self.log.clone(),
            log_floor: self.log_floor,
        }
    }
}

fn edge_key(from: VertexId, to: VertexId) -> u64 {
    (u64::from(from) << 32) | u64::from(to)
}

/// Inserts `val` into the sorted list at `key`, creating it on demand.
fn adj_insert(map: &mut FxHashMap<VertexId, Vec<VertexId>>, key: VertexId, val: VertexId) {
    let list = map.entry(key).or_default();
    if let Err(pos) = list.binary_search(&val) {
        list.insert(pos, val);
    }
}

/// Removes `val` from the sorted list at `key`, dropping empty lists.
fn adj_remove(map: &mut FxHashMap<VertexId, Vec<VertexId>>, key: VertexId, val: VertexId) {
    if let Some(list) = map.get_mut(&key) {
        if let Ok(pos) = list.binary_search(&val) {
            list.remove(pos);
        }
        if list.is_empty() {
            map.remove(&key);
        }
    }
}

impl DynamicGraph {
    /// Wraps a base graph with an empty overlay. The overlay starts at
    /// the base graph's version (no mutation has happened yet).
    pub fn new(base: CsrGraph) -> Self {
        let version = base.version();
        DynamicGraph {
            base,
            lineage: GraphVersion::next(),
            inserted: Vec::new(),
            present: FxHashMap::default(),
            ins_out: FxHashMap::default(),
            ins_in: FxHashMap::default(),
            deleted: FxHashSet::default(),
            del_out: FxHashMap::default(),
            del_in: FxHashMap::default(),
            version,
            log: VecDeque::new(),
            log_floor: version,
        }
    }

    /// The base graph the overlay started from.
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Number of vertices (fixed by the base graph).
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// The current version epoch; advances on every successful mutation.
    pub fn version(&self) -> GraphVersion {
        self.version
    }

    /// The identity of this graph value's mutation lineage.
    ///
    /// [`mutations_since`](DynamicGraph::mutations_since) describes the
    /// delta between two versions *of this lineage only*. A consumer
    /// that stamped state against one graph value and later re-validates
    /// against another (caches move across engines, and `DynamicGraph`
    /// is cloneable) must require equal lineages first — a version drawn
    /// from a diverged sibling is meaningless in this graph's log, and
    /// treating it as a stamp would silently replay the wrong delta.
    /// Clones draw a fresh lineage for exactly that reason.
    pub fn lineage(&self) -> GraphVersion {
        self.lineage
    }

    /// A borrowed, zero-copy [`NeighborAccess`] view of the current
    /// graph (base + overlay). `O(1)`; queries run on it directly.
    pub fn view(&self) -> OverlayView<'_> {
        OverlayView { graph: self }
    }

    /// Edges inserted since construction, in insertion order. Edges later
    /// removed again by [`remove_edge`](DynamicGraph::remove_edge) do not
    /// appear.
    pub fn inserted_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.inserted.iter().filter_map(|e| *e)
    }

    /// The mutations applied after `since`, oldest first, or `None` when
    /// `since` predates the bounded log (entries that old cannot be
    /// re-validated and must be treated as stale).
    pub fn mutations_since(
        &self,
        since: GraphVersion,
    ) -> Option<impl Iterator<Item = (EdgeMutation, Edge)> + '_> {
        if since < self.log_floor {
            return None;
        }
        Some(
            self.log
                .iter()
                .skip_while(move |&&(v, _, _)| v <= since)
                .map(|&(_, kind, edge)| (kind, edge)),
        )
    }

    /// Advances the version and records the mutation in the bounded log.
    fn record(&mut self, kind: EdgeMutation, edge: Edge) {
        self.version = GraphVersion::next();
        self.log.push_back((self.version, kind, edge));
        if self.log.len() > DELTA_LOG_CAPACITY {
            let (dropped, _, _) = self.log.pop_front().expect("log is non-empty");
            self.log_floor = dropped;
        }
    }

    /// Inserts a directed edge. Returns `false` (and does not advance the
    /// version) if the edge already exists or is a self-loop / out of
    /// range. Re-inserting a base edge that was deleted restores it.
    pub fn insert_edge(&mut self, from: VertexId, to: VertexId) -> bool {
        if from == to {
            return false;
        }
        let n = self.base.num_vertices() as VertexId;
        if from >= n || to >= n {
            return false;
        }
        let key = edge_key(from, to);
        if self.base.has_edge(from, to) {
            // Restoring a deleted base edge is a mutation; a live base
            // edge is a duplicate.
            if self.deleted.remove(&key) {
                adj_remove(&mut self.del_out, from, to);
                adj_remove(&mut self.del_in, to, from);
                self.record(EdgeMutation::Inserted, (from, to));
                return true;
            }
            return false;
        }
        if self.present.contains_key(&key) {
            return false;
        }
        self.present.insert(key, self.inserted.len() as u32);
        self.inserted.push(Some((from, to)));
        adj_insert(&mut self.ins_out, from, to);
        adj_insert(&mut self.ins_in, to, from);
        self.record(EdgeMutation::Inserted, (from, to));
        true
    }

    /// Deletes a directed edge (from the base or the overlay). Returns
    /// `false` (and does not advance the version) if the edge is not in
    /// the current graph.
    ///
    /// Removing an overlay edge tombstones its slot via the key→slot map
    /// — `O(log u + deg)` per removal, independent of how many edges were
    /// ever inserted.
    pub fn remove_edge(&mut self, from: VertexId, to: VertexId) -> bool {
        let n = self.base.num_vertices() as VertexId;
        if from >= n || to >= n {
            return false;
        }
        let key = edge_key(from, to);
        if let Some(slot) = self.present.remove(&key) {
            self.inserted[slot as usize] = None;
            adj_remove(&mut self.ins_out, from, to);
            adj_remove(&mut self.ins_in, to, from);
            self.compact_inserted_if_sparse();
            self.record(EdgeMutation::Removed, (from, to));
            return true;
        }
        if self.base.has_edge(from, to) && self.deleted.insert(key) {
            adj_insert(&mut self.del_out, from, to);
            adj_insert(&mut self.del_in, to, from);
            self.record(EdgeMutation::Removed, (from, to));
            return true;
        }
        false
    }

    /// Drops tombstones once they outnumber live overlay edges, so the
    /// insert log stays `O(live overlay)` on unbounded churn streams
    /// (and slot indices stay far from `u32` range) instead of growing
    /// with every insertion ever made. Rebuilding the key→slot map is
    /// linear in the live count, amortized `O(1)` per removal.
    fn compact_inserted_if_sparse(&mut self) {
        if self.inserted.len() < 64 || self.inserted.len() < 2 * self.present.len() {
            return;
        }
        self.inserted.retain(Option::is_some);
        for (slot, edge) in self.inserted.iter().enumerate() {
            let (from, to) = edge.expect("only live slots retained");
            self.present.insert(edge_key(from, to), slot as u32);
        }
    }

    /// Whether the edge exists in the current (base + overlay) graph.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        let key = edge_key(from, to);
        if self.present.contains_key(&key) {
            return true;
        }
        self.base.has_edge(from, to) && !self.deleted.contains(&key)
    }

    /// Total edge count of the current graph.
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.present.len() - self.deleted.len()
    }

    /// Materializes the current graph as an immutable [`CsrGraph`],
    /// stamped with the overlay's current [`GraphVersion`] — snapshots of
    /// an unmutated overlay are version-identical and can share cached
    /// per-query state.
    ///
    /// Cost is linear: the sorted base edge stream is merged with the
    /// (small, sorted) overlay in one pass into an exactly sized buffer.
    /// When no deletions are pending, base edges are streamed through
    /// without any per-edge membership check. Prefer
    /// [`view`](DynamicGraph::view) for per-query execution — it skips
    /// this cost entirely.
    pub fn snapshot(&self) -> CsrGraph {
        let mut overlay: Vec<Edge> = self.inserted_edges().collect();
        overlay.sort_unstable();
        // Exact final size: (base − deleted) + live overlay. Both runs
        // are sorted and disjoint, so a single merge pass suffices and
        // the builder's sort/dedup can be bypassed.
        let mut edges: Vec<Edge> = Vec::with_capacity(self.num_edges());
        let mut next = 0usize;
        if self.deleted.is_empty() {
            // Fast path: no deletions → bulk-stream every base edge.
            for e in self.base.edges() {
                while next < overlay.len() && overlay[next] < e {
                    edges.push(overlay[next]);
                    next += 1;
                }
                edges.push(e);
            }
        } else {
            for e in self.base.edges() {
                if self.deleted.contains(&edge_key(e.0, e.1)) {
                    continue;
                }
                while next < overlay.len() && overlay[next] < e {
                    edges.push(overlay[next]);
                    next += 1;
                }
                edges.push(e);
            }
        }
        edges.extend_from_slice(&overlay[next..]);
        debug_assert_eq!(edges.len(), self.num_edges());
        let mut snapshot = CsrGraph::from_sorted_dedup_edges(self.base.num_vertices(), &edges);
        snapshot.set_version(self.version);
        snapshot
    }

    /// As [`snapshot`](DynamicGraph::snapshot) through the general
    /// [`GraphBuilder`] path — the pre-fast-path reference, kept for
    /// differential testing.
    #[doc(hidden)]
    pub fn snapshot_via_builder(&self) -> CsrGraph {
        let mut builder = GraphBuilder::new(self.base.num_vertices());
        builder.reserve(self.num_edges());
        builder
            .add_edges(
                self.base
                    .edges()
                    .filter(|&(from, to)| !self.deleted.contains(&edge_key(from, to))),
            )
            .expect("base edges are valid");
        builder
            .add_edges(self.inserted_edges())
            .expect("overlay edges are valid");
        let mut snapshot = builder.finish();
        snapshot.set_version(self.version);
        snapshot
    }
}

/// A borrowed, zero-materialization view of a [`DynamicGraph`]'s current
/// edge set, implementing [`NeighborAccess`].
///
/// Neighbor iteration merges the base CSR slice (skipping deleted base
/// edges) with the sorted per-vertex overlay list, yielding ascending
/// vertex order exactly as a materialized
/// [`snapshot`](DynamicGraph::snapshot) would. The view borrows the
/// overlay: it is `Copy`, costs nothing to create, and always reflects
/// the graph as of its creation (the borrow prevents mutation while any
/// view is alive).
#[derive(Debug, Clone, Copy)]
pub struct OverlayView<'g> {
    graph: &'g DynamicGraph,
}

/// Merges a sorted base slice (minus the sorted `del` subset) with the
/// sorted, disjoint `ins` run, calling `f` in ascending order.
fn merge_neighbors(
    base: &[VertexId],
    del: &[VertexId],
    ins: &[VertexId],
    mut f: impl FnMut(VertexId),
) {
    let mut di = 0usize;
    let mut ii = 0usize;
    for &b in base {
        while di < del.len() && del[di] < b {
            di += 1;
        }
        if di < del.len() && del[di] == b {
            di += 1;
            continue;
        }
        while ii < ins.len() && ins[ii] < b {
            f(ins[ii]);
            ii += 1;
        }
        f(b);
    }
    for &i in &ins[ii..] {
        f(i);
    }
}

impl<'g> OverlayView<'g> {
    /// The overlay this view reads.
    pub fn graph(&self) -> &'g DynamicGraph {
        self.graph
    }

    /// The version epoch of the viewed edge set.
    pub fn version(&self) -> GraphVersion {
        self.graph.version()
    }

    fn delta(map: &'g FxHashMap<VertexId, Vec<VertexId>>, v: VertexId) -> &'g [VertexId] {
        map.get(&v).map_or(&[], Vec::as_slice)
    }
}

impl NeighborAccess for OverlayView<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    fn for_each_out(&self, v: VertexId, f: impl FnMut(VertexId)) {
        merge_neighbors(
            self.graph.base.out_neighbors(v),
            Self::delta(&self.graph.del_out, v),
            Self::delta(&self.graph.ins_out, v),
            f,
        );
    }

    fn for_each_in(&self, v: VertexId, f: impl FnMut(VertexId)) {
        merge_neighbors(
            self.graph.base.in_neighbors(v),
            Self::delta(&self.graph.del_in, v),
            Self::delta(&self.graph.ins_in, v),
            f,
        );
    }

    #[inline]
    fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.graph.has_edge(from, to)
    }

    fn out_degree(&self, v: VertexId) -> usize {
        self.graph.base.out_degree(v) - Self::delta(&self.graph.del_out, v).len()
            + Self::delta(&self.graph.ins_out, v).len()
    }

    fn in_degree(&self, v: VertexId) -> usize {
        self.graph.base.in_degree(v) - Self::delta(&self.graph.del_in, v).len()
            + Self::delta(&self.graph.ins_in, v).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2)]).unwrap();
        b.finish()
    }

    fn out_of<G: NeighborAccess>(g: &G, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        g.for_each_out(v, |n| out.push(n));
        out
    }

    fn in_of<G: NeighborAccess>(g: &G, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        g.for_each_in(v, |n| out.push(n));
        out
    }

    #[test]
    fn insertions_are_visible_in_snapshot() {
        let mut d = DynamicGraph::new(base());
        assert!(d.insert_edge(2, 3));
        assert!(d.insert_edge(3, 0));
        let g = d.snapshot();
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(2, 3));
        assert!(g.has_edge(3, 0));
    }

    #[test]
    fn duplicate_and_loop_insertions_are_rejected() {
        let mut d = DynamicGraph::new(base());
        assert!(!d.insert_edge(0, 1), "already in base");
        assert!(d.insert_edge(2, 3));
        assert!(!d.insert_edge(2, 3), "already in overlay");
        assert!(!d.insert_edge(1, 1), "self-loop");
        assert!(!d.insert_edge(0, 9), "out of range");
        assert_eq!(d.inserted_edges().collect::<Vec<_>>(), vec![(2, 3)]);
    }

    #[test]
    fn has_edge_sees_both_layers() {
        let mut d = DynamicGraph::new(base());
        d.insert_edge(3, 1);
        assert!(d.has_edge(0, 1));
        assert!(d.has_edge(3, 1));
        assert!(!d.has_edge(1, 3));
    }

    #[test]
    fn num_edges_counts_overlay() {
        let mut d = DynamicGraph::new(base());
        assert_eq!(d.num_edges(), 2);
        d.insert_edge(0, 2);
        assert_eq!(d.num_edges(), 3);
    }

    #[test]
    fn deletions_mask_base_and_overlay_edges() {
        let mut d = DynamicGraph::new(base());
        assert!(d.remove_edge(0, 1), "base edge");
        assert!(!d.has_edge(0, 1));
        assert!(!d.remove_edge(0, 1), "already deleted");
        assert_eq!(d.num_edges(), 1);

        assert!(d.insert_edge(2, 3));
        assert!(d.remove_edge(2, 3), "overlay edge");
        assert!(!d.has_edge(2, 3));
        assert_eq!(d.inserted_edges().count(), 0);

        assert!(!d.remove_edge(3, 0), "never existed");
        assert!(!d.remove_edge(9, 0), "out of range returns false");
        assert!(!d.remove_edge(0, 9), "out of range returns false");

        let g = d.snapshot();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn reinserting_a_deleted_base_edge_restores_it() {
        let mut d = DynamicGraph::new(base());
        assert!(d.remove_edge(0, 1));
        assert!(d.insert_edge(0, 1));
        assert!(d.has_edge(0, 1));
        assert_eq!(d.num_edges(), 2);
        assert_eq!(
            d.inserted_edges().count(),
            0,
            "restored base edges are not overlay insertions"
        );
    }

    #[test]
    fn mutations_advance_the_version_and_rejections_do_not() {
        let mut d = DynamicGraph::new(base());
        let v0 = d.version();
        assert_eq!(v0, d.base().version());

        assert!(!d.insert_edge(0, 1));
        assert!(!d.remove_edge(3, 0));
        assert_eq!(d.version(), v0, "no-op mutations keep the version");

        assert!(d.insert_edge(2, 3));
        let v1 = d.version();
        assert!(v1 > v0);
        assert!(d.remove_edge(0, 1));
        assert!(d.version() > v1);
    }

    #[test]
    fn snapshots_share_the_version_until_the_next_mutation() {
        let mut d = DynamicGraph::new(base());
        d.insert_edge(2, 3);
        let a = d.snapshot();
        let b = d.snapshot();
        assert_eq!(a.version(), b.version());
        assert_eq!(a.version(), d.version());

        d.insert_edge(3, 0);
        let c = d.snapshot();
        assert_ne!(c.version(), a.version());
    }

    #[test]
    fn view_merges_base_and_overlay_in_ascending_order() {
        let mut b = GraphBuilder::new(6);
        b.add_edges([(0, 1), (0, 3), (0, 5), (2, 0)]).unwrap();
        let mut d = DynamicGraph::new(b.finish());
        assert!(d.insert_edge(0, 4));
        assert!(d.insert_edge(0, 2));
        assert!(d.remove_edge(0, 3));
        let view = d.view();
        assert_eq!(out_of(&view, 0), vec![1, 2, 4, 5]);
        assert_eq!(in_of(&view, 0), vec![2]);
        assert!(d.insert_edge(4, 0));
        assert_eq!(in_of(&d.view(), 0), vec![2, 4]);
        assert_eq!(d.view().out_degree(0), 4);
        assert_eq!(d.view().in_degree(0), 2);
        assert_eq!(d.view().num_edges(), d.num_edges());
    }

    #[test]
    fn view_matches_snapshot_adjacency_under_churn() {
        let mut b = GraphBuilder::new(8);
        b.add_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 6)])
            .unwrap();
        let mut d = DynamicGraph::new(b.finish());
        let ops: [(bool, u32, u32); 9] = [
            (true, 0, 7),
            (true, 7, 1),
            (false, 1, 2),
            (true, 1, 2),
            (false, 0, 7),
            (true, 6, 0),
            (false, 5, 0),
            (true, 0, 3),
            (false, 1, 6),
        ];
        for (insert, u, v) in ops {
            if insert {
                d.insert_edge(u, v);
            } else {
                d.remove_edge(u, v);
            }
            let snap = d.snapshot();
            let view = d.view();
            for w in 0..8u32 {
                assert_eq!(out_of(&view, w), snap.out_neighbors(w), "out of {w}");
                assert_eq!(in_of(&view, w), snap.in_neighbors(w), "in of {w}");
            }
            assert_eq!(view.num_edges(), snap.num_edges());
        }
    }

    #[test]
    fn fast_snapshot_equals_builder_snapshot() {
        let mut b = GraphBuilder::new(8);
        b.add_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 5)])
            .unwrap();
        let mut d = DynamicGraph::new(b.finish());
        d.insert_edge(5, 6);
        d.insert_edge(0, 4);
        d.remove_edge(1, 2);
        d.remove_edge(0, 4);
        d.insert_edge(1, 2); // restore
        let fast = d.snapshot();
        let slow = d.snapshot_via_builder();
        assert_eq!(fast.num_edges(), slow.num_edges());
        assert_eq!(
            fast.edges().collect::<Vec<_>>(),
            slow.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn mutation_log_replays_the_delta() {
        let mut d = DynamicGraph::new(base());
        let v0 = d.version();
        d.insert_edge(2, 3);
        let v1 = d.version();
        d.remove_edge(0, 1);
        d.insert_edge(0, 1); // restore logs as an insertion
        let since_start: Vec<_> = d.mutations_since(v0).unwrap().collect();
        assert_eq!(
            since_start,
            vec![
                (EdgeMutation::Inserted, (2, 3)),
                (EdgeMutation::Removed, (0, 1)),
                (EdgeMutation::Inserted, (0, 1)),
            ]
        );
        let since_v1: Vec<_> = d.mutations_since(v1).unwrap().collect();
        assert_eq!(since_v1.len(), 2);
        assert_eq!(d.mutations_since(d.version()).unwrap().count(), 0);
    }

    #[test]
    fn clones_draw_a_fresh_lineage_but_keep_state_and_version() {
        let mut d = DynamicGraph::new(base());
        d.insert_edge(2, 3);
        let c = d.clone();
        assert_ne!(c.lineage(), d.lineage());
        assert_eq!(c.version(), d.version());
        assert_eq!(c.num_edges(), d.num_edges());
        assert!(c.has_edge(2, 3));
    }

    #[test]
    fn churned_insert_log_stays_bounded_by_live_overlay() {
        // Unbounded insert/remove churn with a tiny live overlay: the
        // tombstoned log must compact instead of growing with every
        // insertion ever made.
        let mut b = GraphBuilder::new(64);
        b.add_edge(0, 1).unwrap();
        let mut d = DynamicGraph::new(b.finish());
        for round in 0..5_000u32 {
            let u = (round * 7 + 1) % 64;
            let v = (round * 13 + 2) % 64;
            if u != v {
                d.insert_edge(u, v);
                d.remove_edge(u, v);
            }
        }
        assert!(
            d.inserted.len() <= 2 * d.present.len() + 64,
            "insert log holds {} slots for {} live overlay edges",
            d.inserted.len(),
            d.present.len()
        );
        assert_eq!(d.inserted_edges().count(), d.present.len());
        assert_eq!(d.snapshot().num_edges(), d.num_edges());
    }

    #[test]
    fn removal_after_compaction_hits_the_right_slot() {
        // Compaction rewrites the key -> slot map; later removals must
        // still tombstone the edge they name.
        let mut b = GraphBuilder::new(256);
        b.add_edge(0, 1).unwrap();
        let mut d = DynamicGraph::new(b.finish());
        for v in 2..200u32 {
            assert!(d.insert_edge(0, v));
        }
        // Remove most of them to force at least one compaction.
        for v in 2..190u32 {
            assert!(d.remove_edge(0, v));
        }
        for v in 190..200u32 {
            assert!(d.has_edge(0, v));
            assert!(d.remove_edge(0, v), "surviving edge {v} must be removable");
            assert!(!d.has_edge(0, v));
        }
        assert_eq!(d.inserted_edges().count(), 0);
        assert_eq!(d.num_edges(), 1);
    }

    #[test]
    fn mutation_log_truncates_beyond_capacity() {
        let n = 80usize;
        let mut b = GraphBuilder::new(n);
        b.add_edge(0, 1).unwrap();
        let mut d = DynamicGraph::new(b.finish());
        let v0 = d.version();
        // Insert+remove the same pool of edges repeatedly: more than
        // DELTA_LOG_CAPACITY mutations without unbounded state.
        let mut count = 0usize;
        'outer: loop {
            for u in 1..n as u32 - 1 {
                d.insert_edge(u, u + 1);
                d.remove_edge(u, u + 1);
                count += 2;
                if count > DELTA_LOG_CAPACITY + 10 {
                    break 'outer;
                }
            }
        }
        assert!(d.mutations_since(v0).is_none(), "window slid past v0");
        assert!(d.mutations_since(d.version()).is_some());
    }
}

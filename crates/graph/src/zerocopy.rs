//! The single `unsafe` boundary of the zero-copy storage layer.
//!
//! [`FrozenGraph`](crate::FrozenGraph) serves adjacency straight out of
//! the bytes a `PEG2` file was read into — no per-array copies, no
//! re-sort, no rebuild. Doing that requires reinterpreting byte ranges
//! of the load buffer as `&[u64]` / `&[u32]`, which is exactly the kind
//! of cast the repo's lint gate confines to allowlisted files. This
//! module is that file for the storage layer: every `unsafe` block the
//! frozen-graph path needs lives here, behind total (checked) safe
//! wrappers, so the rest of `io_binary.rs`/`frozen.rs` stays 100% safe
//! code.
//!
//! # Soundness argument
//!
//! The casts below are sound because every precondition is *checked at
//! the call site inside this module*, not assumed:
//!
//! * **Alignment** — [`AlignedBuf`] owns its storage as `Vec<u64>`, so
//!   its base pointer is 8-byte aligned by construction; the slice
//!   casts additionally verify `align_of` at runtime and return `None`
//!   on a misaligned input instead of casting.
//! * **Size** — byte lengths are checked to be exact multiples of the
//!   target element size; no trailing partial element is ever included.
//! * **Validity** — `u64`/`u32` have no invalid bit patterns and no
//!   padding, so any initialized bytes form valid values.
//! * **Aliasing** — the wrappers take and return shared references with
//!   the same lifetime; no `&mut` aliasing can be constructed through
//!   them.
//!
//! The on-disk format is little-endian; reinterpreting raw bytes as
//! host integers is only correct on little-endian targets, which the
//! compile-time assertion below pins (the supported platforms are all
//! LE — a BE port would decode via `from_le_bytes` instead).

// PEG2 stores integers little-endian and this module reinterprets the
// raw bytes in place; refuse to compile where that would misread.
const _: () = assert!(
    cfg!(target_endian = "little"),
    "the zero-copy storage layer requires a little-endian target"
);

/// An owned byte buffer whose base address is 8-byte aligned.
///
/// Backed by a `Vec<u64>` so the alignment holds by construction — this
/// is what makes the section casts in [`as_u64s`]/[`as_u32s`] sound for
/// any 8-byte-aligned section offset. The logical length is tracked in
/// bytes and may be any value up to the backing capacity (files are not
/// required to be multiples of 8; sections are).
#[derive(Debug, Clone)]
pub struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// A zero-filled buffer of exactly `len` bytes.
    pub fn zeroed(len: usize) -> AlignedBuf {
        AlignedBuf {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// Copies an arbitrary (possibly unaligned) byte slice into a fresh
    /// aligned buffer. One memcpy — the price of accepting input from
    /// readers that cannot target caller-provided storage.
    pub fn from_bytes(bytes: &[u8]) -> AlignedBuf {
        let mut buf = AlignedBuf::zeroed(bytes.len());
        buf.as_bytes_mut().copy_from_slice(bytes);
        buf
    }

    /// Logical length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer contents as bytes. The base pointer is 8-byte aligned.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: the pointer comes from a live Vec<u64> allocation of
        // `words.len() * 8 >= self.len` bytes (zeroed eagerly, hence
        // initialized); u8 has alignment 1 and no invalid bit patterns;
        // the returned borrow shares `self`'s lifetime so the Vec
        // cannot be freed or mutated while the slice is alive.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }

    /// The buffer contents as mutable bytes, for filling via bulk reads.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: same allocation/size/initialization argument as
        // `as_bytes`; the &mut self receiver guarantees exclusive
        // access, so handing out one mutable byte view cannot alias.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), self.len) }
    }
}

/// Reinterprets an 8-byte-aligned byte slice whose length is a multiple
/// of 8 as little-endian `u64`s, without copying. Returns `None` (never
/// casts) when either precondition fails.
#[inline]
pub fn as_u64s(bytes: &[u8]) -> Option<&[u64]> {
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u64>())
        || !bytes.len().is_multiple_of(8)
    {
        return None;
    }
    // SAFETY: alignment and exact-multiple length were just checked;
    // the source slice is initialized for its whole length and u64 has
    // no padding or invalid bit patterns; element count len/8 covers
    // exactly the input bytes; the output borrows the input's lifetime.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) })
}

/// Reinterprets a 4-byte-aligned byte slice whose length is a multiple
/// of 4 as little-endian `u32`s, without copying. Returns `None` (never
/// casts) when either precondition fails.
#[inline]
pub fn as_u32s(bytes: &[u8]) -> Option<&[u32]> {
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>())
        || !bytes.len().is_multiple_of(4)
    {
        return None;
    }
    // SAFETY: alignment and exact-multiple length were just checked;
    // the source slice is initialized for its whole length and u32 has
    // no padding or invalid bit patterns; element count len/4 covers
    // exactly the input bytes; the output borrows the input's lifetime.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_buf_is_aligned_and_sized() {
        for len in [0usize, 1, 7, 8, 9, 4096, 4097] {
            let buf = AlignedBuf::zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.as_bytes().len(), len);
            assert_eq!(buf.as_bytes().as_ptr() as usize % 8, 0);
        }
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut buf = AlignedBuf::zeroed(16);
        buf.as_bytes_mut().copy_from_slice(&[
            1, 0, 0, 0, 0, 0, 0, 0, //
            2, 0, 0, 0, 3, 0, 0, 0,
        ]);
        assert_eq!(as_u64s(&buf.as_bytes()[..8]), Some(&[1u64][..]));
        assert_eq!(as_u32s(&buf.as_bytes()[8..16]), Some(&[2u32, 3][..]));
    }

    #[test]
    fn rejects_misaligned_and_ragged_slices() {
        let buf = AlignedBuf::zeroed(24);
        let bytes = buf.as_bytes();
        assert!(as_u64s(&bytes[1..17]).is_none(), "misaligned base");
        assert!(as_u64s(&bytes[..12]).is_none(), "ragged length");
        assert!(as_u32s(&bytes[2..10]).is_none(), "misaligned base");
        assert!(as_u32s(&bytes[..10]).is_none(), "ragged length");
        assert_eq!(as_u64s(&bytes[..0]), Some(&[][..]), "empty is fine");
    }

    #[test]
    fn from_bytes_copies_unaligned_input() {
        let raw: Vec<u8> = (0u8..32).collect();
        let buf = AlignedBuf::from_bytes(&raw[1..20]);
        assert_eq!(buf.as_bytes(), &raw[1..20]);
        assert_eq!(buf.as_bytes().as_ptr() as usize % 8, 0);
    }
}

//! Degree statistics and the paper's degree-based vertex partition.

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Summary degree statistics of a graph (Table 2 columns).
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Average total degree (`(in + out) / n`), the paper's `d_avg` uses
    /// `|E| / |V|` on directed edges; both are reported.
    pub avg_out_degree: f64,
    /// Maximum out-degree over all vertices.
    pub max_out_degree: usize,
    /// Maximum in-degree over all vertices.
    pub max_in_degree: usize,
    /// Number of vertices with zero total degree.
    pub isolated_vertices: usize,
}

/// Computes [`DegreeStats`] in one pass.
pub fn degree_stats(graph: &CsrGraph) -> DegreeStats {
    let n = graph.num_vertices().max(1);
    let mut max_out = 0usize;
    let mut max_in = 0usize;
    let mut isolated = 0usize;
    for v in graph.vertices() {
        let out = graph.out_degree(v);
        let inn = graph.in_degree(v);
        max_out = max_out.max(out);
        max_in = max_in.max(inn);
        if out + inn == 0 {
            isolated += 1;
        }
    }
    DegreeStats {
        avg_out_degree: graph.num_edges() as f64 / n as f64,
        max_out_degree: max_out,
        max_in_degree: max_in,
        isolated_vertices: isolated,
    }
}

/// Splits the vertex set into the paper's `V'` (top `fraction` by total
/// degree, descending) and `V''` (the rest).
///
/// Ties at the cut are broken by vertex id to keep the split deterministic.
/// Returns `(high_degree, low_degree)`.
pub fn degree_split(graph: &CsrGraph, fraction: f64) -> (Vec<VertexId>, Vec<VertexId>) {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let mut order: Vec<VertexId> = graph.vertices().collect();
    order.sort_unstable_by(|&a, &b| {
        graph
            .degree(b)
            .cmp(&graph.degree(a))
            .then_with(|| a.cmp(&b))
    });
    let cut = ((graph.num_vertices() as f64) * fraction).round() as usize;
    let cut = cut.min(order.len());
    let low = order.split_off(cut);
    (order, low)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn star_plus_chain() -> CsrGraph {
        // Vertex 0 is a hub with 5 out-edges; 6..8 form a chain; 9 isolated.
        let mut b = GraphBuilder::new(10);
        b.add_edges([(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (6, 7), (7, 8)])
            .unwrap();
        b.finish()
    }

    #[test]
    fn stats_reflect_structure() {
        let g = star_plus_chain();
        let s = degree_stats(&g);
        assert_eq!(s.max_out_degree, 5);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.isolated_vertices, 1);
        assert!((s.avg_out_degree - 0.7).abs() < 1e-9);
    }

    #[test]
    fn split_puts_hub_in_high_partition() {
        let g = star_plus_chain();
        let (high, low) = degree_split(&g, 0.1);
        assert_eq!(high, vec![0]);
        assert_eq!(low.len(), 9);
        assert!(!low.contains(&0));
    }

    #[test]
    fn split_fraction_bounds() {
        let g = star_plus_chain();
        let (high, low) = degree_split(&g, 1.0);
        assert_eq!(high.len(), 10);
        assert!(low.is_empty());
        let (high, low) = degree_split(&g, 0.0);
        assert!(high.is_empty());
        assert_eq!(low.len(), 10);
    }

    #[test]
    fn split_is_deterministic_under_ties() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let g = b.finish();
        let (high1, _) = degree_split(&g, 0.5);
        let (high2, _) = degree_split(&g, 0.5);
        assert_eq!(high1, high2);
        assert_eq!(high1, vec![0, 1]); // all degree-2; id order breaks ties
    }
}

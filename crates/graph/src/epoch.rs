//! Epoch-stamped flat maps: O(1)-reset scratch for per-query traversals.
//!
//! The boundary BFS and the index build need several `vertex -> value`
//! maps per query. A plain `Vec` reset costs `O(|V|)` per query (a
//! `clear` + `resize` memset), which dominates small bounded traversals
//! on large graphs; a hash map avoids the reset but pays hashing and
//! pointer-chasing on every probe. An *epoch-stamped* map keeps the flat
//! `Vec` layout (one direct load per probe) while making reset O(1):
//! every slot carries the epoch in which it was last written, and a
//! "reset" just bumps the current epoch — stale slots are recognized by
//! their old stamp and read as the default value. On the (practically
//! unreachable) epoch wrap the stamps are zeroed once, keeping the
//! scheme sound over arbitrarily many queries.
//!
//! Two flavors cover the kernels' needs:
//!
//! * [`EpochMap`]: `u32 -> u32` with a configurable default, plus a
//!   *touched list* recording every written key — the index build
//!   iterates the touched set instead of scanning all of `0..|V|`.
//! * [`EpochStamps`]: membership marks only (`mark`/`unmark`/
//!   `is_marked`), for DFS on-path sets and join-key dedup.

/// A flat `u32 -> u32` map with O(1) whole-map reset and a touched-key
/// list. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct EpochMap {
    /// Current epoch; slots whose stamp differs hold no value. Starts at
    /// 0 so a freshly constructed map (all stamps 0) must be `reset`
    /// before use; [`EpochMap::reset`] never leaves it at 0 again.
    epoch: u32,
    stamps: Vec<u32>,
    values: Vec<u32>,
    touched: Vec<u32>,
    /// Value reported for unwritten keys.
    default: u32,
    /// Key-space size established by the last `reset`.
    len: usize,
}

impl EpochMap {
    /// An empty map whose unwritten keys read as `default`.
    pub fn new(default: u32) -> Self {
        EpochMap {
            default,
            ..EpochMap::default()
        }
    }

    /// Clears the map and (re)sizes the key space to `0..n`. O(1) except
    /// when growing past the previous capacity or on epoch wrap.
    pub fn reset(&mut self, n: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One full clear every 2^32 - 1 resets keeps stale stamps
            // from a previous life of the counter unreadable.
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        if n > self.stamps.len() {
            self.stamps.resize(n, 0);
            self.values.resize(n, self.default);
        }
        self.len = n;
        self.touched.clear();
    }

    /// Key-space size (`n` of the last [`EpochMap::reset`]).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Paranoid-only generation monotonicity: a slot stamped beyond the
    /// current epoch means a wrap-clear was skipped and a stale value
    /// could masquerade as current.
    #[cfg(feature = "paranoid")]
    #[inline]
    fn assert_stamp_monotone(&self, key: usize) {
        assert!(
            self.stamps[key] <= self.epoch,
            "epoch-map stamp {} at key {key} exceeds current epoch {}",
            self.stamps[key],
            self.epoch
        );
    }

    /// The value at `key`, or the default if unwritten this epoch.
    #[inline]
    pub fn get(&self, key: usize) -> u32 {
        debug_assert!(key < self.len, "key {key} out of range {}", self.len);
        #[cfg(feature = "paranoid")]
        self.assert_stamp_monotone(key);
        if self.stamps[key] == self.epoch {
            self.values[key]
        } else {
            self.default
        }
    }

    /// Whether `key` was written this epoch.
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        debug_assert!(key < self.len);
        #[cfg(feature = "paranoid")]
        self.assert_stamp_monotone(key);
        self.stamps[key] == self.epoch
    }

    /// Writes `value` at `key`, recording the key in the touched list on
    /// its first write of the epoch.
    #[inline]
    pub fn set(&mut self, key: usize, value: u32) {
        debug_assert!(key < self.len);
        #[cfg(feature = "paranoid")]
        self.assert_stamp_monotone(key);
        if self.stamps[key] != self.epoch {
            self.stamps[key] = self.epoch;
            self.touched.push(key as u32);
        }
        self.values[key] = value;
    }

    /// Every key written this epoch, in first-write order (no
    /// duplicates). [`EpochMap::sort_touched`] makes the order ascending.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Sorts the touched list ascending, so iterating it visits keys in
    /// the same order as a `0..n` scan would.
    pub fn sort_touched(&mut self) {
        self.touched.sort_unstable();
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        (self.stamps.capacity() + self.values.capacity() + self.touched.capacity())
            * std::mem::size_of::<u32>()
    }

    #[cfg(test)]
    fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

/// Membership marks with O(1) whole-set reset: the values-free sibling
/// of [`EpochMap`]. `unmark` writes stamp 0, which never equals a live
/// epoch (epochs are `>= 1` after the first reset), so marks can also be
/// retired one at a time — the DFS pops vertices off its on-path set
/// this way.
#[derive(Debug, Clone, Default)]
pub struct EpochStamps {
    epoch: u32,
    stamps: Vec<u32>,
    len: usize,
}

impl EpochStamps {
    /// Paranoid-only generation monotonicity; see
    /// [`EpochMap::assert_stamp_monotone`]'s sibling above.
    #[cfg(feature = "paranoid")]
    #[inline]
    fn assert_stamp_monotone(&self, key: usize) {
        assert!(
            self.stamps[key] <= self.epoch,
            "epoch-stamp {} at key {key} exceeds current epoch {}",
            self.stamps[key],
            self.epoch
        );
    }

    /// Clears every mark and (re)sizes the key space to `0..n`. O(1)
    /// except when growing or on epoch wrap.
    pub fn reset(&mut self, n: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        if n > self.stamps.len() {
            self.stamps.resize(n, 0);
        }
        self.len = n;
    }

    /// Marks `key`; returns `true` if it was not already marked.
    #[inline]
    pub fn mark(&mut self, key: usize) -> bool {
        debug_assert!(key < self.len);
        #[cfg(feature = "paranoid")]
        self.assert_stamp_monotone(key);
        let fresh = self.stamps[key] != self.epoch;
        self.stamps[key] = self.epoch;
        fresh
    }

    /// Removes the mark on `key` (no-op if unmarked).
    #[inline]
    pub fn unmark(&mut self, key: usize) {
        debug_assert!(key < self.len);
        self.stamps[key] = 0;
    }

    /// Whether `key` is currently marked.
    #[inline]
    pub fn is_marked(&self, key: usize) -> bool {
        debug_assert!(key < self.len);
        #[cfg(feature = "paranoid")]
        self.assert_stamp_monotone(key);
        self.stamps[key] == self.epoch
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.stamps.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_reads_default_until_written() {
        let mut m = EpochMap::new(77);
        m.reset(4);
        assert_eq!(m.get(2), 77);
        assert!(!m.contains(2));
        m.set(2, 5);
        assert_eq!(m.get(2), 5);
        assert!(m.contains(2));
        assert_eq!(m.touched(), &[2]);
    }

    #[test]
    fn reset_clears_in_constant_time() {
        let mut m = EpochMap::new(0);
        m.reset(8);
        for k in 0..8 {
            m.set(k, k as u32 + 1);
        }
        m.reset(8);
        assert!(m.touched().is_empty());
        for k in 0..8 {
            assert_eq!(m.get(k), 0, "key {k} must read default after reset");
        }
    }

    #[test]
    fn touched_records_first_writes_only() {
        let mut m = EpochMap::new(0);
        m.reset(10);
        m.set(7, 1);
        m.set(3, 1);
        m.set(7, 2);
        assert_eq!(m.touched(), &[7, 3]);
        m.sort_touched();
        assert_eq!(m.touched(), &[3, 7]);
        assert_eq!(m.get(7), 2);
    }

    #[test]
    fn reset_can_grow_and_shrink_the_key_space() {
        let mut m = EpochMap::new(9);
        m.reset(2);
        m.set(1, 4);
        m.reset(6);
        assert_eq!(m.capacity(), 6);
        assert_eq!(m.get(5), 9);
        assert_eq!(m.get(1), 9);
        m.reset(3);
        assert_eq!(m.capacity(), 3);
    }

    #[test]
    fn epoch_wrap_clears_stale_stamps() {
        let mut m = EpochMap::new(0);
        m.reset(4);
        m.set(1, 42);
        // Force the counter to the wrap boundary: the next reset must
        // not let the stale stamp at key 1 masquerade as current.
        m.force_epoch(u32::MAX);
        m.reset(4);
        assert_eq!(m.get(1), 0);
        m.set(2, 7);
        assert_eq!(m.get(2), 7);
    }

    #[test]
    fn stamps_mark_unmark_roundtrip() {
        let mut s = EpochStamps::default();
        s.reset(5);
        assert!(s.mark(3));
        assert!(!s.mark(3));
        assert!(s.is_marked(3));
        s.unmark(3);
        assert!(!s.is_marked(3));
        assert!(s.mark(3));
        s.reset(5);
        assert!(!s.is_marked(3));
    }

    #[test]
    fn heap_bytes_reported() {
        let mut m = EpochMap::new(0);
        m.reset(100);
        assert!(m.heap_bytes() >= 800);
        let mut s = EpochStamps::default();
        s.reset(100);
        assert!(s.heap_bytes() >= 400);
    }
}

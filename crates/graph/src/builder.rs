//! Mutable edge accumulator that finalizes into a [`CsrGraph`].

use crate::csr::CsrGraph;
use crate::types::{Edge, VertexId};

/// Errors raised while accumulating edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A self-loop `(v, v)` was offered; HcPE is defined on simple digraphs.
    SelfLoop(VertexId),
    /// An endpoint is `>=` the declared vertex count.
    VertexOutOfRange {
        vertex: VertexId,
        num_vertices: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::SelfLoop(v) => write!(f, "self-loop on vertex {v} is not allowed"),
            BuildError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {num_vertices} vertices"
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Accumulates directed edges and produces an immutable [`CsrGraph`].
///
/// Duplicate edges are silently deduplicated at [`GraphBuilder::finish`];
/// self-loops are rejected eagerly. The builder can either be created with a
/// fixed vertex count ([`GraphBuilder::new`]) or grow to fit the largest
/// endpoint ([`GraphBuilder::growable`]).
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    fixed: bool,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Builder for a graph with exactly `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            fixed: true,
            edges: Vec::new(),
        }
    }

    /// Builder whose vertex count is `1 + max(endpoint)` at finish time.
    pub fn growable() -> Self {
        GraphBuilder {
            num_vertices: 0,
            fixed: false,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates capacity for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Number of edges offered so far (duplicates included).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edge has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds the directed edge `(from, to)`.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) -> Result<(), BuildError> {
        if from == to {
            return Err(BuildError::SelfLoop(from));
        }
        if self.fixed {
            for v in [from, to] {
                if (v as usize) >= self.num_vertices {
                    return Err(BuildError::VertexOutOfRange {
                        vertex: v,
                        num_vertices: self.num_vertices,
                    });
                }
            }
        } else {
            self.num_vertices = self
                .num_vertices
                .max(from as usize + 1)
                .max(to as usize + 1);
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Adds every edge from an iterator; stops at the first error.
    pub fn add_edges<I: IntoIterator<Item = Edge>>(&mut self, edges: I) -> Result<(), BuildError> {
        for (from, to) in edges {
            self.add_edge(from, to)?;
        }
        Ok(())
    }

    /// Finalizes into a CSR graph, sorting and deduplicating edges.
    pub fn finish(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        CsrGraph::from_sorted_dedup_edges(self.num_vertices, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loops() {
        let mut b = GraphBuilder::new(4);
        assert_eq!(b.add_edge(2, 2), Err(BuildError::SelfLoop(2)));
    }

    #[test]
    fn rejects_out_of_range_vertices() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(0, 3),
            Err(BuildError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            b.add_edge(7, 1),
            Err(BuildError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn growable_tracks_max_endpoint() {
        let mut b = GraphBuilder::growable();
        b.add_edge(0, 9).unwrap();
        b.add_edge(4, 2).unwrap();
        let g = b.finish();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn deduplicates_parallel_edges() {
        let mut b = GraphBuilder::new(3);
        for _ in 0..5 {
            b.add_edge(0, 1).unwrap();
        }
        b.add_edge(1, 2).unwrap();
        let g = b.finish();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::growable().finish();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn display_of_errors_is_informative() {
        let e = BuildError::SelfLoop(3).to_string();
        assert!(e.contains("self-loop"));
        let e = BuildError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        }
        .to_string();
        assert!(e.contains("out of range"));
    }
}

//! Directed-graph substrate for the PathEnum reproduction.
//!
//! This crate provides everything the enumeration algorithms need from a
//! graph store:
//!
//! * [`CsrGraph`]: an immutable, cache-friendly compressed-sparse-row
//!   representation with both forward (out-neighbor) and reverse
//!   (in-neighbor) adjacency, built through [`GraphBuilder`].
//! * [`bfs`]: bounded and vertex-excluding breadth-first searches used for
//!   the paper's distance computations (`S(s, v | G − {t})` etc.).
//! * [`generators`]: synthetic graph generators (Erdős–Rényi, power-law /
//!   Barabási–Albert, complete, grid, layered DAG) standing in for the
//!   paper's real-world datasets.
//! * [`io`]: plain edge-list parsing and serialization.
//! * [`io_binary`]: the `PEG1` (edge list) and `PEG2` (CSR-native,
//!   zero-copy) binary formats, plus a format-sniffing file loader.
//! * [`frozen`]: [`FrozenGraph`], a query-ready graph served straight
//!   from an aligned `PEG2` load buffer — no rebuild, no re-sort.
//! * [`handle`]: [`GraphHandle`], one shareable handle over heap,
//!   frozen, and overlay-backed graphs, and the [`GraphSnapshot`]
//!   capability trait (adjacency + version epoch) the engines consume.
//! * [`zerocopy`]: the storage layer's single `unsafe` boundary —
//!   checked aligned-buffer casts (see the lint gate's allowlist).
//! * [`dynamic`]: an edit buffer layering edge insertions/deletions over a
//!   base graph for the dynamic-graph experiments (Figure 8), queryable in
//!   place through a borrowed [`OverlayView`].
//! * [`view`]: the [`NeighborAccess`] trait giving BFS and the per-query
//!   index build one adjacency surface over CSR graphs and overlays.
//! * [`pll`]: a pruned-landmark-labeling distance oracle — the offline
//!   "global index" the paper's discussion (§7.5) proposes for cutting
//!   per-query preprocessing.
//! * [`hashing`]: a fast FxHash-style hasher for integer keys.
//! * [`epoch`]: epoch-stamped flat maps — O(1)-reset per-query scratch
//!   for the BFS distance maps and the enumeration kernels.
//! * [`prefetch`]: software prefetch hints for CSR offset indirection.
//!
//! Vertices are dense `u32` identifiers in `0..num_vertices`. Parallel edges
//! are deduplicated at build time and self-loops are rejected (the HcPE
//! problem is defined on simple directed graphs).

pub mod bfs;
pub mod builder;
pub mod csr;
pub mod dynamic;
pub mod epoch;
pub mod frozen;
pub mod generators;
pub mod handle;
pub mod hashing;
pub mod io;
pub mod io_binary;
pub mod pll;
pub mod prefetch;
pub mod properties;
pub mod types;
pub mod version;
pub mod view;
pub mod zerocopy;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use dynamic::{DynamicGraph, EdgeMutation, OverlayView};
pub use epoch::{EpochMap, EpochStamps};
pub use frozen::FrozenGraph;
pub use handle::{GraphHandle, GraphSnapshot};
pub use pll::DistanceOracle;
pub use types::{VertexId, INFINITE_DISTANCE};
pub use version::GraphVersion;
pub use view::NeighborAccess;

//! Monotonic graph-version epochs.
//!
//! Per-query state cached *outside* a graph (the plan/index cache of
//! `pathenum::plan`) must be discarded when the graph it was computed
//! against changes. A [`GraphVersion`] is a process-wide monotonic epoch:
//! every freshly constructed [`CsrGraph`](crate::CsrGraph) draws a new
//! one, and a [`DynamicGraph`](crate::DynamicGraph) advances to a new one
//! on every successful mutation (edge insert or delete). Two graph values
//! carry the same version only when they are known to have identical
//! edge sets — a clone, or overlay snapshots taken with no mutation in
//! between — so `version` equality is a sound cache-freshness check.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic epoch identifying one immutable state of a graph.
///
/// Versions are only meaningful within one process (they come from a
/// process-global counter) and are never reused; serialized graphs get a
/// fresh version on load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphVersion(u64);

/// 0 is reserved so a default/sentinel can never collide with a real
/// version.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

impl GraphVersion {
    /// Draws the next unused epoch from the process-global counter.
    pub fn next() -> Self {
        // ordering: uniqueness only — the RMW total order on this one
        // location guarantees distinct values; nothing else is published.
        GraphVersion(NEXT_VERSION.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw epoch number (diagnostics and logs).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for GraphVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_unique_and_increasing() {
        let a = GraphVersion::next();
        let b = GraphVersion::next();
        assert!(a < b);
        assert_ne!(a, b);
        assert!(a.as_u64() >= 1);
    }

    #[test]
    fn version_displays_compactly() {
        let v = GraphVersion::next();
        assert_eq!(v.to_string(), format!("v{}", v.as_u64()));
    }
}

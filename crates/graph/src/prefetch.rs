//! Software prefetch hints for the pointer-chasing hot loops.
//!
//! The enumeration kernels walk CSR-style indirections: load an offset,
//! then load the slice it points at. When the next vertex to expand is
//! already known (BFS queue front, DFS child about to be descended
//! into), issuing a prefetch for its adjacency row overlaps that memory
//! latency with the current vertex's work. These are *hints*: they never
//! fault, never change results, and compile to nothing on architectures
//! without a stable prefetch intrinsic.

/// Hints the CPU to pull `data[index]`'s cache line toward L1. Out-of-range
/// indices are ignored (the hint is simply skipped), so callers can pass
/// speculative positions.
#[inline(always)]
pub fn prefetch_read<T>(data: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if index < data.len() {
            // SAFETY: `index` is in bounds, so the pointer is valid;
            // `_mm_prefetch` performs no memory access that could fault.
            unsafe {
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    data.as_ptr().add(index).cast::<i8>(),
                );
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_safe_no_op_semantically() {
        let data = [1u32, 2, 3];
        prefetch_read(&data, 0);
        prefetch_read(&data, 2);
        prefetch_read(&data, 3); // out of range: ignored
        prefetch_read::<u32>(&[], 0);
        assert_eq!(data, [1, 2, 3]);
    }
}

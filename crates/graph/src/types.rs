//! Fundamental identifier and distance types shared across the workspace.

/// Dense vertex identifier. Vertices of a graph with `n` vertices are
/// exactly `0..n`.
pub type VertexId = u32;

/// Hop distance between two vertices, in edges.
///
/// `u32::MAX` ([`INFINITE_DISTANCE`]) encodes "unreachable". All real
/// distances in this workspace are tiny (the hop constraint `k ≤ 16`), so a
/// saturating representation is safe and keeps distance arrays compact.
pub type Distance = u32;

/// Sentinel distance for unreachable vertices.
pub const INFINITE_DISTANCE: Distance = u32::MAX;

/// A directed edge `(source, target)`.
pub type Edge = (VertexId, VertexId);

/// Saturating addition over [`Distance`] that treats
/// [`INFINITE_DISTANCE`] as an absorbing element.
#[inline]
pub fn dist_add(a: Distance, b: Distance) -> Distance {
    a.saturating_add(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_distance_absorbs_addition() {
        assert_eq!(dist_add(INFINITE_DISTANCE, 1), INFINITE_DISTANCE);
        assert_eq!(dist_add(3, INFINITE_DISTANCE), INFINITE_DISTANCE);
        assert_eq!(dist_add(2, 3), 5);
    }
}

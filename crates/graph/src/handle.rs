//! One shareable handle over every graph representation the engines
//! serve.
//!
//! The serving layers (`PathEnumService`, `GraphCatalog`) used to own
//! an `Arc<CsrGraph>` — which hard-wired them to the heap
//! representation just as [`FrozenGraph`] made
//! borrowed/mapped storage real. [`GraphHandle`] closes that gap: a
//! cheap-to-clone enum of `Arc`'d representations that implements
//! [`NeighborAccess`] by direct dispatch, so a catalog can `register`
//! heap, frozen, and overlay-backed graphs uniformly while planning
//! and execution stay monomorphized over the trait.
//!
//! [`GraphSnapshot`] is the companion capability the engines need
//! beyond adjacency: a [`GraphVersion`] epoch identifying the edge set,
//! which is what keys every cache layer. Immutable representations
//! return their construction/load version; a dynamic handle reports
//! the overlay's current version, so cached plans stamped before a
//! mutation are correctly invalidated.

use std::sync::Arc;

use crate::csr::CsrGraph;
use crate::dynamic::DynamicGraph;
use crate::frozen::FrozenGraph;
use crate::types::VertexId;
use crate::version::GraphVersion;
use crate::view::NeighborAccess;

/// A versioned, queryable edge set: the full capability surface the
/// engines require of a graph (adjacency + cache-keying epoch).
pub trait GraphSnapshot: NeighborAccess {
    /// The version epoch of the edge set answers are computed against.
    fn version(&self) -> GraphVersion;
}

impl GraphSnapshot for CsrGraph {
    #[inline]
    fn version(&self) -> GraphVersion {
        CsrGraph::version(self)
    }
}

impl GraphSnapshot for FrozenGraph {
    #[inline]
    fn version(&self) -> GraphVersion {
        FrozenGraph::version(self)
    }
}

impl GraphSnapshot for crate::dynamic::OverlayView<'_> {
    #[inline]
    fn version(&self) -> GraphVersion {
        crate::dynamic::OverlayView::version(self)
    }
}

/// A shared, cheaply cloneable graph of any representation. See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub enum GraphHandle {
    /// A heap-resident CSR graph — the mutable-era default.
    Heap(Arc<CsrGraph>),
    /// A zero-copy `PEG2` image served in place.
    Frozen(Arc<FrozenGraph>),
    /// A dynamic graph queried through its overlay view. The handle
    /// shares the graph read-only; mutation happens wherever the
    /// `DynamicGraph` is still exclusively owned, after which a fresh
    /// handle (and version) is published.
    Dynamic(Arc<DynamicGraph>),
}

impl GraphHandle {
    /// The version epoch of the underlying edge set.
    #[inline]
    pub fn version(&self) -> GraphVersion {
        match self {
            GraphHandle::Heap(g) => g.version(),
            GraphHandle::Frozen(g) => g.version(),
            GraphHandle::Dynamic(g) => g.version(),
        }
    }

    /// The heap CSR graph behind this handle, when it is one — for
    /// callers migrating from the `Arc<CsrGraph>` era.
    #[inline]
    pub fn as_csr(&self) -> Option<&Arc<CsrGraph>> {
        match self {
            GraphHandle::Heap(g) => Some(g),
            _ => None,
        }
    }

    /// A short human label of the representation, for logs and stats.
    pub fn representation(&self) -> &'static str {
        match self {
            GraphHandle::Heap(_) => "heap-csr",
            GraphHandle::Frozen(g) if g.is_compressed() => "frozen-compressed",
            GraphHandle::Frozen(_) => "frozen",
            GraphHandle::Dynamic(_) => "dynamic-overlay",
        }
    }
}

impl NeighborAccess for GraphHandle {
    #[inline]
    fn num_vertices(&self) -> usize {
        match self {
            GraphHandle::Heap(g) => g.num_vertices(),
            GraphHandle::Frozen(g) => g.num_vertices(),
            GraphHandle::Dynamic(g) => g.num_vertices(),
        }
    }

    #[inline]
    fn num_edges(&self) -> usize {
        match self {
            GraphHandle::Heap(g) => g.num_edges(),
            GraphHandle::Frozen(g) => g.num_edges(),
            GraphHandle::Dynamic(g) => g.num_edges(),
        }
    }

    #[inline]
    fn for_each_out(&self, v: VertexId, f: impl FnMut(VertexId)) {
        match self {
            GraphHandle::Heap(g) => NeighborAccess::for_each_out(g.as_ref(), v, f),
            GraphHandle::Frozen(g) => g.for_each_out(v, f),
            GraphHandle::Dynamic(g) => g.view().for_each_out(v, f),
        }
    }

    #[inline]
    fn for_each_in(&self, v: VertexId, f: impl FnMut(VertexId)) {
        match self {
            GraphHandle::Heap(g) => NeighborAccess::for_each_in(g.as_ref(), v, f),
            GraphHandle::Frozen(g) => g.for_each_in(v, f),
            GraphHandle::Dynamic(g) => g.view().for_each_in(v, f),
        }
    }

    #[inline]
    fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        match self {
            GraphHandle::Heap(g) => g.has_edge(from, to),
            GraphHandle::Frozen(g) => NeighborAccess::has_edge(g.as_ref(), from, to),
            GraphHandle::Dynamic(g) => g.has_edge(from, to),
        }
    }

    #[inline]
    fn prefetch_out(&self, v: VertexId) {
        if let GraphHandle::Heap(g) = self {
            g.prefetch_out_row(v);
        }
    }

    #[inline]
    fn prefetch_in(&self, v: VertexId) {
        if let GraphHandle::Heap(g) = self {
            g.prefetch_in_row(v);
        }
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        match self {
            GraphHandle::Heap(g) => g.out_degree(v),
            GraphHandle::Frozen(g) => NeighborAccess::out_degree(g.as_ref(), v),
            GraphHandle::Dynamic(g) => g.view().out_degree(v),
        }
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        match self {
            GraphHandle::Heap(g) => g.in_degree(v),
            GraphHandle::Frozen(g) => NeighborAccess::in_degree(g.as_ref(), v),
            GraphHandle::Dynamic(g) => g.view().in_degree(v),
        }
    }
}

impl GraphSnapshot for GraphHandle {
    #[inline]
    fn version(&self) -> GraphVersion {
        GraphHandle::version(self)
    }
}

impl From<Arc<CsrGraph>> for GraphHandle {
    fn from(graph: Arc<CsrGraph>) -> Self {
        GraphHandle::Heap(graph)
    }
}

impl From<CsrGraph> for GraphHandle {
    fn from(graph: CsrGraph) -> Self {
        GraphHandle::Heap(Arc::new(graph))
    }
}

impl From<Arc<FrozenGraph>> for GraphHandle {
    fn from(graph: Arc<FrozenGraph>) -> Self {
        GraphHandle::Frozen(graph)
    }
}

impl From<FrozenGraph> for GraphHandle {
    fn from(graph: FrozenGraph) -> Self {
        GraphHandle::Frozen(Arc::new(graph))
    }
}

impl From<Arc<DynamicGraph>> for GraphHandle {
    fn from(graph: Arc<DynamicGraph>) -> Self {
        GraphHandle::Dynamic(graph)
    }
}

impl From<DynamicGraph> for GraphHandle {
    fn from(graph: DynamicGraph) -> Self {
        GraphHandle::Dynamic(Arc::new(graph))
    }
}

/// Shared snapshots report the inner representation's version, so an
/// `Arc<CsrGraph>`/`Arc<FrozenGraph>` is itself a [`GraphSnapshot`].
impl<G: GraphSnapshot> GraphSnapshot for Arc<G> {
    #[inline]
    fn version(&self) -> GraphVersion {
        (**self).version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;
    use crate::io_binary::{read_frozen, write_frozen};

    fn rows(g: &impl NeighborAccess, v: VertexId) -> (Vec<VertexId>, Vec<VertexId>) {
        let (mut out, mut inn) = (Vec::new(), Vec::new());
        g.for_each_out(v, |n| out.push(n));
        g.for_each_in(v, |n| inn.push(n));
        (out, inn)
    }

    #[test]
    fn all_representations_agree_on_adjacency() {
        let g = erdos_renyi(50, 300, 11);
        let mut image = Vec::new();
        write_frozen(&g, true, &mut image).unwrap();
        let frozen = GraphHandle::from(read_frozen(image.as_slice()).unwrap());
        let dynamic = GraphHandle::from(DynamicGraph::new(g.clone()));
        let heap = GraphHandle::from(g.clone());
        for v in 0..50u32 {
            let expected = rows(&g, v);
            assert_eq!(rows(&heap, v), expected, "heap v={v}");
            assert_eq!(rows(&frozen, v), expected, "frozen v={v}");
            assert_eq!(rows(&dynamic, v), expected, "dynamic v={v}");
            assert_eq!(heap.out_degree(v), expected.0.len());
            assert_eq!(frozen.in_degree(v), expected.1.len());
        }
        assert_eq!(heap.num_edges(), g.num_edges());
        assert_eq!(frozen.num_edges(), g.num_edges());
        assert_eq!(dynamic.num_edges(), g.num_edges());
    }

    #[test]
    fn versions_track_the_underlying_representation() {
        let g = erdos_renyi(10, 40, 1);
        let version = g.version();
        let heap = GraphHandle::from(g.clone());
        assert_eq!(heap.version(), version);
        assert_eq!(GraphSnapshot::version(&heap), version);

        let dynamic = DynamicGraph::new(g);
        let dynamic_version = dynamic.version();
        let handle = GraphHandle::from(dynamic);
        assert_eq!(handle.version(), dynamic_version);
    }

    #[test]
    fn representation_labels() {
        let g = erdos_renyi(5, 10, 2);
        assert_eq!(GraphHandle::from(g.clone()).representation(), "heap-csr");
        let mut image = Vec::new();
        write_frozen(&g, false, &mut image).unwrap();
        let frozen = read_frozen(image.as_slice()).unwrap();
        assert_eq!(GraphHandle::from(frozen).representation(), "frozen");
        assert_eq!(
            GraphHandle::from(DynamicGraph::new(g)).representation(),
            "dynamic-overlay"
        );
    }
}

//! A fast, non-cryptographic hasher for integer keys.
//!
//! The standard library's SipHash is collision-resistant but slow for
//! integer-keyed maps (plan-cache keys, workload bookkeeping, the I/O
//! layers). This module reimplements the well-known Fx (Firefox/rustc)
//! multiply-rotate hash so the workspace stays within the approved
//! dependency set.
//!
//! The *enumeration kernels* themselves no longer hash at all: their
//! per-query `u32 -> payload` maps moved to the epoch-stamped flat maps
//! of [`crate::epoch`], which probe with one direct load and reset in
//! O(1). Reach for `FxHashMap` when the key space is sparse or unbounded;
//! reach for [`EpochMap`](crate::epoch::EpochMap) when keys are dense
//! vertex ids and the map is rebuilt per query.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash design (64-bit golden-ratio
/// derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// FxHash-style streaming hasher.
///
/// Each ingested word is folded into the state with
/// `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("exact 8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_to_hash(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_to_hash(value as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast integer hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast integer hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(map.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut seen: HashSet<u64> = HashSet::new();
        for i in 0..10_000u32 {
            let mut hasher = FxHasher::default();
            hasher.write_u32(i);
            seen.insert(hasher.finish());
        }
        // FxHash on distinct small integers is injective in practice.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_word_stream_for_aligned_input() {
        let mut a = FxHasher::default();
        a.write_u64(0x0123_4567_89ab_cdef);
        let mut b = FxHasher::default();
        b.write(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}

//! Immutable compressed-sparse-row digraph with forward and reverse adjacency.

use crate::types::{Edge, VertexId};
use crate::version::GraphVersion;

/// An immutable directed graph in CSR form.
///
/// Both out-neighbor and in-neighbor adjacency are materialized because the
/// PathEnum index needs BFS from `s` along forward edges *and* BFS from `t`
/// along reverse edges, and the backward neighbor table of the full-fledged
/// estimator iterates in-neighbors.
///
/// Neighbor lists are sorted ascending, which makes `has_edge` a binary
/// search and keeps iteration cache-friendly.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    num_vertices: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<VertexId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<VertexId>,
    /// Epoch identifying this edge set; see [`GraphVersion`]. Fresh per
    /// construction (clones keep it — they are the same edge set).
    version: GraphVersion,
}

impl CsrGraph {
    /// Builds from edges that are already sorted by `(from, to)` and
    /// deduplicated. [`crate::GraphBuilder::finish`] guarantees this.
    pub(crate) fn from_sorted_dedup_edges(num_vertices: usize, edges: &[Edge]) -> Self {
        let mut out_offsets = vec![0usize; num_vertices + 1];
        for &(from, _) in edges {
            out_offsets[from as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<VertexId> = edges.iter().map(|&(_, to)| to).collect();

        let mut in_offsets = vec![0usize; num_vertices + 1];
        for &(_, to) in edges {
            in_offsets[to as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as VertexId; edges.len()];
        for &(from, to) in edges {
            let slot = cursor[to as usize];
            in_sources[slot] = from;
            cursor[to as usize] += 1;
        }
        // Edges were sorted by (from, to); filling in_sources in that order
        // already yields sorted in-neighbor lists, since sources are visited
        // in ascending order for each target.
        CsrGraph {
            num_vertices,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            version: GraphVersion::next(),
        }
    }

    /// The version epoch of this graph's edge set. Cache entries keyed by
    /// a graph should record this and treat a mismatch as stale.
    #[inline]
    pub fn version(&self) -> GraphVersion {
        self.version
    }

    /// Stamps an externally managed version (used by
    /// [`DynamicGraph::snapshot`](crate::DynamicGraph::snapshot) so that
    /// snapshots of an unmutated overlay share a version and stay
    /// cache-compatible).
    pub(crate) fn set_version(&mut self, version: GraphVersion) {
        self.version = version;
    }

    /// The raw CSR arrays `(out_offsets, out_targets, in_offsets,
    /// in_sources)` — what the `PEG2` writer serializes verbatim.
    pub(crate) fn csr_parts(&self) -> (&[usize], &[VertexId], &[usize], &[VertexId]) {
        (
            &self.out_offsets,
            &self.out_targets,
            &self.in_offsets,
            &self.in_sources,
        )
    }

    /// Number of vertices; vertex ids are `0..num_vertices`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbors of `v`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// In-neighbors of `v` (sources of edges into `v`), sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Prefetch hint for `v`'s out-adjacency: pulls the first cache line
    /// of the neighbor row toward L1 so a following
    /// [`out_neighbors`](CsrGraph::out_neighbors) walk starts warm.
    /// Advisory only; tolerates any `v < num_vertices`.
    #[inline]
    pub fn prefetch_out_row(&self, v: VertexId) {
        let v = v as usize;
        if v < self.num_vertices {
            crate::prefetch::prefetch_read(&self.out_targets, self.out_offsets[v]);
        }
    }

    /// As [`prefetch_out_row`](CsrGraph::prefetch_out_row), for the
    /// in-adjacency.
    #[inline]
    pub fn prefetch_in_row(&self, v: VertexId) {
        let v = v as usize;
        if v < self.num_vertices {
            crate::prefetch::prefetch_read(&self.in_sources, self.in_offsets[v]);
        }
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Total degree (in + out) of `v`; the paper's query generator splits
    /// vertices by this.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Whether the directed edge `(from, to)` exists.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.out_neighbors(from).binary_search(&to).is_ok()
    }

    /// Iterator over all edges in `(from, to)` order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices as VertexId)
            .flat_map(move |v| self.out_neighbors(v).iter().map(move |&to| (v, to)))
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices as VertexId
    }

    /// The reverse graph `G^r` (every edge flipped) as a new `CsrGraph`.
    ///
    /// The enumeration algorithms use the embedded reverse adjacency
    /// instead; this is provided for tests and for callers that need a
    /// standalone reversed graph.
    pub fn reversed(&self) -> CsrGraph {
        let mut edges: Vec<Edge> = self.edges().map(|(a, b)| (b, a)).collect();
        edges.sort_unstable();
        CsrGraph::from_sorted_dedup_edges(self.num_vertices, &edges)
    }

    /// Approximate heap footprint in bytes (for the memory experiments).
    pub fn heap_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<usize>()
            + self.in_offsets.len() * std::mem::size_of::<usize>()
            + self.out_targets.len() * std::mem::size_of::<VertexId>()
            + self.in_sources.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> CsrGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        b.finish()
    }

    #[test]
    fn adjacency_is_correct_and_sorted() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(1), &[3]);
        assert_eq!(g.out_neighbors(3), &[] as &[VertexId]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[] as &[VertexId]);
    }

    #[test]
    fn degrees_match_adjacency() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.degree(3), 2);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn has_edge_agrees_with_lists() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edges_iterator_yields_all_edges_in_order() {
        let g = diamond();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn reversed_flips_every_edge() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.num_edges(), g.num_edges());
        for (a, b) in g.edges() {
            assert!(r.has_edge(b, a));
        }
        assert_eq!(r.out_neighbors(3), &[1, 2]);
    }

    #[test]
    fn in_neighbors_are_sorted() {
        // Insert edges in an order that stresses the reverse fill.
        let mut b = GraphBuilder::new(5);
        b.add_edges([(4, 2), (1, 2), (3, 2), (0, 2)]).unwrap();
        let g = b.finish();
        assert_eq!(g.in_neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn heap_bytes_is_nonzero_for_nonempty_graph() {
        let g = diamond();
        assert!(g.heap_bytes() > 0);
    }
}

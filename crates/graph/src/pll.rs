//! Pruned landmark labeling: an offline all-pairs distance oracle.
//!
//! The PathEnum paper's discussion (Section 7.5) points at a *global*
//! index built once offline to cut the per-query preprocessing cost, and
//! its related work singles out pruned landmark labeling (Akiba et al.,
//! SIGMOD 2013) as the canonical scheme. This module implements 2-hop
//! PLL for directed graphs:
//!
//! * every vertex `v` carries an **out-label** `L_out(v)` of
//!   `(hub, d(v -> hub))` pairs and an **in-label** `L_in(v)` of
//!   `(hub, d(hub -> v))` pairs;
//! * `d(s -> t) = min over shared hubs h of d(s -> h) + d(h -> t)`;
//! * hubs are processed in descending-degree order and each hub BFS is
//!   *pruned* wherever the labels built so far already certify a
//!   distance no larger than the BFS depth — the trick that keeps labels
//!   small on real-world (hub-heavy) graphs.
//!
//! The PathEnum integration (`pathenum::global`) uses the oracle as an
//! existence filter: `d(s, t) > k` proves a query empty without touching
//! the graph.

use std::collections::VecDeque;

use crate::csr::CsrGraph;
use crate::types::{Distance, VertexId, INFINITE_DISTANCE};

/// One label entry: hubs are stored by *rank* (position in the hub
/// order), which makes merge-joins over sorted labels cheap.
type Label = Vec<(u32, Distance)>;

/// A 2-hop pruned-landmark-labeling distance oracle.
///
/// ```
/// use pathenum_graph::{DistanceOracle, GraphBuilder, INFINITE_DISTANCE};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edges([(0, 1), (1, 2), (2, 3)]).unwrap();
/// let oracle = DistanceOracle::build(&b.finish());
/// assert_eq!(oracle.distance(0, 3), 3);
/// assert_eq!(oracle.distance(3, 0), INFINITE_DISTANCE);
/// assert!(oracle.within(0, 2, 2));
/// ```
#[derive(Debug, Clone)]
pub struct DistanceOracle {
    /// `rank_of[v]`: the processing rank of vertex `v`.
    rank_of: Vec<u32>,
    /// `vertex_at[r]`: the vertex processed at rank `r`.
    vertex_at: Vec<VertexId>,
    /// `d(v -> hub)` entries per vertex, sorted by hub rank.
    out_labels: Vec<Label>,
    /// `d(hub -> v)` entries per vertex, sorted by hub rank.
    in_labels: Vec<Label>,
}

impl DistanceOracle {
    /// Builds the oracle. Hub order is descending total degree with
    /// vertex id as the tie-break, the standard heuristic.
    pub fn build(graph: &CsrGraph) -> DistanceOracle {
        let n = graph.num_vertices();
        let mut order: Vec<VertexId> = graph.vertices().collect();
        order.sort_unstable_by(|&a, &b| {
            graph
                .degree(b)
                .cmp(&graph.degree(a))
                .then_with(|| a.cmp(&b))
        });
        let mut rank_of = vec![0u32; n];
        for (rank, &v) in order.iter().enumerate() {
            rank_of[v as usize] = rank as u32;
        }
        let mut oracle = DistanceOracle {
            rank_of,
            vertex_at: order.clone(),
            out_labels: vec![Vec::new(); n],
            in_labels: vec![Vec::new(); n],
        };
        let mut queue = VecDeque::new();
        let mut dist = vec![INFINITE_DISTANCE; n];
        let mut touched: Vec<VertexId> = Vec::new();
        for (rank, &hub) in order.iter().enumerate() {
            let rank = rank as u32;
            // Forward BFS from the hub fills in-labels (d(hub -> v)).
            oracle.pruned_bfs(graph, hub, rank, true, &mut queue, &mut dist, &mut touched);
            // Backward BFS fills out-labels (d(v -> hub)).
            oracle.pruned_bfs(graph, hub, rank, false, &mut queue, &mut dist, &mut touched);
        }
        oracle
    }

    #[allow(clippy::too_many_arguments)] // internal: hub BFS with reused buffers
    fn pruned_bfs(
        &mut self,
        graph: &CsrGraph,
        hub: VertexId,
        rank: u32,
        forward: bool,
        queue: &mut VecDeque<VertexId>,
        dist: &mut [Distance],
        touched: &mut Vec<VertexId>,
    ) {
        queue.clear();
        touched.clear();
        dist[hub as usize] = 0;
        touched.push(hub);
        queue.push_back(hub);
        while let Some(v) = queue.pop_front() {
            let d = dist[v as usize];
            // Prune: if existing labels already certify d(hub, v) <= d,
            // neither label nor expand v. The hub itself is exempt.
            if v != hub {
                let certified = if forward {
                    self.query_partial(hub, v)
                } else {
                    self.query_partial(v, hub)
                };
                if certified <= d {
                    continue;
                }
                if forward {
                    self.in_labels[v as usize].push((rank, d));
                } else {
                    self.out_labels[v as usize].push((rank, d));
                }
            }
            let neighbors = if forward {
                graph.out_neighbors(v)
            } else {
                graph.in_neighbors(v)
            };
            for &next in neighbors {
                if dist[next as usize] == INFINITE_DISTANCE {
                    dist[next as usize] = d + 1;
                    touched.push(next);
                    queue.push_back(next);
                }
            }
        }
        for &v in touched.iter() {
            dist[v as usize] = INFINITE_DISTANCE;
        }
    }

    /// Distance query over the (possibly still partial) labels, with the
    /// endpoints' own hub roles included.
    fn query_partial(&self, s: VertexId, t: VertexId) -> Distance {
        if s == t {
            return 0;
        }
        let mut best = INFINITE_DISTANCE;
        // s or t may themselves be hubs already processed.
        let (s_rank, t_rank) = (self.rank_of[s as usize], self.rank_of[t as usize]);
        for &(hub, d) in &self.out_labels[s as usize] {
            if hub == t_rank {
                best = best.min(d);
            }
        }
        for &(hub, d) in &self.in_labels[t as usize] {
            if hub == s_rank {
                best = best.min(d);
            }
        }
        // Merge-join the sorted label lists on hub rank.
        let (a, b) = (&self.out_labels[s as usize], &self.in_labels[t as usize]);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(a[i].1.saturating_add(b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Shortest-path distance from `s` to `t`
    /// ([`INFINITE_DISTANCE`] if unreachable).
    pub fn distance(&self, s: VertexId, t: VertexId) -> Distance {
        self.query_partial(s, t)
    }

    /// Whether `t` is reachable from `s` within `max_hops` edges.
    pub fn within(&self, s: VertexId, t: VertexId, max_hops: Distance) -> bool {
        self.distance(s, t) <= max_hops
    }

    /// Total number of label entries (the oracle's size).
    pub fn label_entries(&self) -> usize {
        self.out_labels.iter().map(Vec::len).sum::<usize>()
            + self.in_labels.iter().map(Vec::len).sum::<usize>()
    }

    /// Average label entries per vertex.
    pub fn average_label_size(&self) -> f64 {
        if self.vertex_at.is_empty() {
            return 0.0;
        }
        self.label_entries() as f64 / (2 * self.vertex_at.len()) as f64
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.label_entries() * std::mem::size_of::<(u32, Distance)>()
            + self.rank_of.len() * std::mem::size_of::<u32>()
            + self.vertex_at.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{distances, BfsOptions};
    use crate::builder::GraphBuilder;
    use crate::generators::{complete_digraph, erdos_renyi, power_law, PowerLawConfig};

    fn check_all_pairs(graph: &CsrGraph) {
        let oracle = DistanceOracle::build(graph);
        for s in graph.vertices() {
            let reference = distances(graph, s, BfsOptions::default());
            for t in graph.vertices() {
                assert_eq!(
                    oracle.distance(s, t),
                    reference[t as usize],
                    "d({s} -> {t}) mismatch"
                );
            }
        }
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in 0..6u64 {
            check_all_pairs(&erdos_renyi(30, 120, seed));
        }
    }

    #[test]
    fn exact_on_sparse_disconnected_graphs() {
        for seed in 0..4u64 {
            check_all_pairs(&erdos_renyi(40, 30, seed));
        }
    }

    #[test]
    fn exact_on_dense_graphs() {
        check_all_pairs(&complete_digraph(12));
    }

    #[test]
    fn exact_on_power_law_graphs() {
        check_all_pairs(&power_law(PowerLawConfig::social(120, 3, 7)));
    }

    #[test]
    fn exact_on_directed_chain() {
        let mut b = GraphBuilder::new(6);
        b.add_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
            .unwrap();
        let g = b.finish();
        let oracle = DistanceOracle::build(&g);
        assert_eq!(oracle.distance(0, 5), 5);
        assert_eq!(oracle.distance(5, 0), INFINITE_DISTANCE);
        assert_eq!(oracle.distance(2, 2), 0);
        assert!(oracle.within(0, 3, 3));
        assert!(!oracle.within(0, 3, 2));
    }

    #[test]
    fn pruning_keeps_labels_small_on_hub_graphs() {
        // A star-through-hub graph: PLL should label almost everything
        // through the single hub, far below the n^2 worst case.
        let n = 200usize;
        let mut b = GraphBuilder::new(n);
        for v in 1..n as u32 {
            b.add_edge(0, v).unwrap();
            b.add_edge(v, 0).unwrap();
        }
        let g = b.finish();
        let oracle = DistanceOracle::build(&g);
        assert!(
            oracle.average_label_size() < 3.0,
            "avg label size {}",
            oracle.average_label_size()
        );
        assert_eq!(oracle.distance(5, 9), 2);
    }

    #[test]
    fn size_accessors_are_consistent() {
        let g = erdos_renyi(25, 100, 3);
        let oracle = DistanceOracle::build(&g);
        assert!(oracle.label_entries() > 0);
        assert!(oracle.heap_bytes() >= oracle.label_entries() * 8);
        assert!(oracle.average_label_size() > 0.0);
    }
}

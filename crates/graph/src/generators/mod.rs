//! Synthetic graph generators.
//!
//! The paper evaluates on 15 real-world graphs (SNAP / networkrepository).
//! Those datasets are not redistributable inside this repository, so the
//! workload layer substitutes generated graphs whose degree regime matches
//! each dataset's *type* (see `pathenum-workloads::datasets` and DESIGN.md).
//! The generators here are the primitives that substitution is built from:
//!
//! * [`erdos_renyi`](fn@erdos_renyi) — uniform random digraphs (near-regular degrees), the
//!   stand-in for citation-style graphs.
//! * [`power_law`](fn@power_law) — preferential-attachment digraphs with heavy-tailed
//!   degrees, the stand-in for social/web graphs.
//! * [`structured`] — deterministic families (complete digraph, directed
//!   grid, layered DAG) with analytically known path counts, used by the
//!   correctness and estimator-exactness tests.
//!
//! All generators are deterministic given a seed.

pub mod erdos_renyi;
pub mod power_law;
pub mod small_world;
pub mod structured;

pub use erdos_renyi::erdos_renyi;
pub use power_law::{power_law, PowerLawConfig};
pub use small_world::{watts_strogatz, SmallWorldConfig};
pub use structured::{complete_digraph, directed_grid, layered_dag};

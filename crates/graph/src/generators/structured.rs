//! Deterministic graph families with analytically known path counts.
//!
//! These are the reference substrates for correctness and estimator tests:
//! on a complete digraph or a layered DAG the exact number of
//! hop-constrained s-t paths has a closed form, so enumerator output can be
//! validated without a second enumerator.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Complete digraph `K_n`: every ordered pair `(u, v)`, `u != v`.
///
/// The number of s-t paths with at most `k` edges is
/// `sum_{l=1..=k} (n-2)! / (n-1-l)!` (choose and order the `l - 1`
/// intermediate vertices).
pub fn complete_digraph(n: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new(n);
    builder.reserve(n * n.saturating_sub(1));
    for from in 0..n as VertexId {
        for to in 0..n as VertexId {
            if from != to {
                builder.add_edge(from, to).expect("in-range, non-loop edge");
            }
        }
    }
    builder.finish()
}

/// Directed grid of `rows x cols` vertices with edges right and down.
///
/// Vertex `(r, c)` has id `r * cols + c`. The number of paths from the
/// top-left to the bottom-right is the binomial coefficient
/// `C(rows - 1 + cols - 1, rows - 1)`, and every such path has exactly
/// `rows + cols - 2` edges — handy for hop-constraint boundary tests.
pub fn directed_grid(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    let mut builder = GraphBuilder::new(n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder
                    .add_edge(id(r, c), id(r, c + 1))
                    .expect("in-range edge");
            }
            if r + 1 < rows {
                builder
                    .add_edge(id(r, c), id(r + 1, c))
                    .expect("in-range edge");
            }
        }
    }
    builder.finish()
}

/// Layered DAG: a source, `layers` layers of `width` vertices, and a sink.
///
/// Each vertex connects to `fanout` distinct random vertices of the next
/// layer (the source to `fanout` vertices of layer 0, the last layer fully
/// to the sink). Every source-to-sink path has exactly `layers + 1` edges
/// and the walk count equals the path count (no vertex repeats are
/// possible), which makes this family ideal for validating the full-fledged
/// estimator's exact-on-walks property in the δP = δW regime.
///
/// Returns `(graph, source, sink)`.
pub fn layered_dag(
    layers: usize,
    width: usize,
    fanout: usize,
    seed: u64,
) -> (CsrGraph, VertexId, VertexId) {
    assert!(layers >= 1 && width >= 1);
    let fanout = fanout.clamp(1, width);
    let n = 2 + layers * width;
    let source: VertexId = 0;
    let sink: VertexId = (n - 1) as VertexId;
    let layer_vertex = |layer: usize, slot: usize| (1 + layer * width + slot) as VertexId;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    let mut slots: Vec<usize> = (0..width).collect();

    let mut connect =
        |builder: &mut GraphBuilder, from: VertexId, layer: usize, rng: &mut StdRng| {
            slots.shuffle(rng);
            for &slot in slots.iter().take(fanout) {
                builder
                    .add_edge(from, layer_vertex(layer, slot))
                    .expect("in-range edge");
            }
        };

    connect(&mut builder, source, 0, &mut rng);
    for layer in 0..layers - 1 {
        for slot in 0..width {
            let from = layer_vertex(layer, slot);
            connect(&mut builder, from, layer + 1, &mut rng);
        }
    }
    for slot in 0..width {
        builder
            .add_edge(layer_vertex(layers - 1, slot), sink)
            .expect("in-range edge");
    }
    (builder.finish(), source, sink)
}

/// Closed-form count of s-t paths with at most `k` edges in `K_n`.
///
/// Returns `None` on overflow (counts grow factorially).
pub fn complete_digraph_path_count(n: usize, k: usize) -> Option<u64> {
    if n < 2 {
        return Some(0);
    }
    let mut total: u64 = 0;
    for l in 1..=k {
        // l-1 ordered intermediates from the n-2 non-endpoint vertices.
        if l - 1 > n - 2 {
            break;
        }
        let mut ways: u64 = 1;
        for i in 0..(l - 1) {
            ways = ways.checked_mul((n - 2 - i) as u64)?;
        }
        total = total.checked_add(ways)?;
    }
    Some(total)
}

/// Binomial coefficient `C(n, r)` with overflow checking.
pub fn binomial(n: u64, r: u64) -> Option<u64> {
    if r > n {
        return Some(0);
    }
    let r = r.min(n - r);
    let mut result: u64 = 1;
    for i in 0..r {
        result = result.checked_mul(n - i)?;
        result /= i + 1;
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_digraph_has_all_ordered_pairs() {
        let g = complete_digraph(6);
        assert_eq!(g.num_edges(), 30);
        assert!(g.has_edge(0, 5));
        assert!(g.has_edge(5, 0));
        assert!(!g.has_edge(3, 3));
    }

    #[test]
    fn closed_form_path_counts() {
        // K_4, k=3: l=1: 1, l=2: 2, l=3: 2*1=2 -> 5 paths.
        assert_eq!(complete_digraph_path_count(4, 3), Some(5));
        // K_3, k=2: direct + one intermediate = 1 + 1 = 2.
        assert_eq!(complete_digraph_path_count(3, 2), Some(2));
        // k exceeding available intermediates saturates.
        assert_eq!(complete_digraph_path_count(3, 10), Some(2));
    }

    #[test]
    fn grid_shape_and_degrees() {
        let g = directed_grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // Edges: right: 3 rows x 3 = 9; down: 2 x 4 = 8.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(11), 0);
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 2), Some(10));
        assert_eq!(binomial(6, 0), Some(1));
        assert_eq!(binomial(4, 7), Some(0));
        assert_eq!(binomial(52, 26), Some(495_918_532_948_104));
    }

    #[test]
    fn layered_dag_has_expected_structure() {
        let (g, source, sink) = layered_dag(3, 5, 2, 17);
        assert_eq!(g.num_vertices(), 17);
        assert_eq!(g.out_degree(source), 2);
        assert_eq!(g.out_degree(sink), 0);
        // Last layer connects fully to sink.
        assert_eq!(g.in_degree(sink), 5);
        // All source-sink paths have exactly layers + 1 = 4 edges.
        let d = crate::bfs::st_distance(&g, source, sink, 10);
        assert_eq!(d, 4);
    }

    #[test]
    fn layered_dag_deterministic() {
        let (a, _, _) = layered_dag(2, 4, 3, 5);
        let (b, _, _) = layered_dag(2, 4, 3, 5);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}

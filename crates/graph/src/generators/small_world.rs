//! Small-world digraphs (directed Watts–Strogatz).
//!
//! Several of the paper's datasets (interaction and miscellaneous graphs
//! such as `tr` and `wt`) combine high clustering with short diameters —
//! the small-world regime. The proxy starts from a directed ring lattice
//! where each vertex points at its `neighbors_per_side` successors in
//! both directions, then rewires each edge's target uniformly at random
//! with probability `rewire_probability`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::hashing::FxHashSet;
use crate::types::VertexId;

/// Configuration for [`watts_strogatz`].
#[derive(Debug, Clone, Copy)]
pub struct SmallWorldConfig {
    /// Number of vertices (>= 4).
    pub num_vertices: usize,
    /// Ring-lattice half-width: each vertex points at this many
    /// successors and this many predecessors (>= 1).
    pub neighbors_per_side: usize,
    /// Probability of rewiring each lattice edge's target.
    pub rewire_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a directed Watts–Strogatz small-world graph.
pub fn watts_strogatz(config: SmallWorldConfig) -> CsrGraph {
    let SmallWorldConfig {
        num_vertices: n,
        neighbors_per_side: half,
        rewire_probability,
        seed,
    } = config;
    assert!(n >= 4, "need at least 4 vertices");
    assert!(half >= 1 && 2 * half < n, "lattice width must fit the ring");
    assert!((0.0..=1.0).contains(&rewire_probability));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    let mut present: FxHashSet<u64> = FxHashSet::default();
    let key = |a: VertexId, b: VertexId| (u64::from(a) << 32) | u64::from(b);

    for v in 0..n {
        for offset in 1..=half {
            for target in [(v + offset) % n, (v + n - offset) % n] {
                let from = v as VertexId;
                let mut to = target as VertexId;
                if rng.gen_bool(rewire_probability) {
                    // Rewire to a uniform non-self target, retrying past
                    // duplicates a few times (duplicates are then dropped
                    // by the builder's dedup, keeping degree near-exact).
                    for _ in 0..8 {
                        let candidate = rng.gen_range(0..n) as VertexId;
                        if candidate != from && !present.contains(&key(from, candidate)) {
                            to = candidate;
                            break;
                        }
                    }
                }
                if to != from && present.insert(key(from, to)) {
                    builder.add_edge(from, to).expect("in-range, non-loop edge");
                }
            }
        }
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{distances, BfsOptions};
    use crate::types::INFINITE_DISTANCE;

    fn config(p: f64) -> SmallWorldConfig {
        SmallWorldConfig {
            num_vertices: 200,
            neighbors_per_side: 3,
            rewire_probability: p,
            seed: 5,
        }
    }

    #[test]
    fn zero_rewiring_gives_the_exact_lattice() {
        let g = watts_strogatz(config(0.0));
        assert_eq!(g.num_edges(), 200 * 6);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(0, 197));
        assert!(!g.has_edge(0, 4));
    }

    #[test]
    fn rewiring_shrinks_the_diameter() {
        let lattice = watts_strogatz(config(0.0));
        let small_world = watts_strogatz(config(0.3));
        let ecc = |g: &CsrGraph| {
            distances(g, 0, BfsOptions::default())
                .into_iter()
                .filter(|&d| d != INFINITE_DISTANCE)
                .max()
                .unwrap_or(0)
        };
        assert!(
            ecc(&small_world) < ecc(&lattice),
            "rewired {} vs lattice {}",
            ecc(&small_world),
            ecc(&lattice)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = watts_strogatz(config(0.2));
        let b = watts_strogatz(config(0.2));
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn edge_count_is_preserved_up_to_rewire_collisions() {
        let g = watts_strogatz(config(0.5));
        let expected = 200 * 6;
        assert!(g.num_edges() > expected * 9 / 10, "{} edges", g.num_edges());
        assert!(g.num_edges() <= expected);
    }

    #[test]
    #[should_panic(expected = "lattice width")]
    fn rejects_oversized_lattice() {
        watts_strogatz(SmallWorldConfig {
            num_vertices: 6,
            neighbors_per_side: 3,
            rewire_probability: 0.0,
            seed: 0,
        });
    }
}

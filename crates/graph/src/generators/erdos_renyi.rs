//! Uniform random digraphs `G(n, m)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::hashing::FxHashSet;
use crate::types::VertexId;

/// Samples a simple directed graph with `n` vertices and exactly `m`
/// distinct edges chosen uniformly at random (no self-loops).
///
/// `m` is clamped to `n * (n - 1)`, the maximum number of directed edges.
/// Deterministic for a fixed `seed`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(
        n >= 2 || m == 0,
        "need at least two vertices to place edges"
    );
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    let m = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    builder.reserve(m);
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.reserve(m);
    // Rejection sampling is efficient while m is well below max_edges; for
    // dense requests fall back to shuffling the full edge universe.
    if m * 3 < max_edges || max_edges > 50_000_000 {
        while seen.len() < m {
            let from = rng.gen_range(0..n) as VertexId;
            let to = rng.gen_range(0..n) as VertexId;
            if from == to {
                continue;
            }
            let key = (u64::from(from) << 32) | u64::from(to);
            if seen.insert(key) {
                builder.add_edge(from, to).expect("in-range, non-loop edge");
            }
        }
    } else {
        let mut universe: Vec<(VertexId, VertexId)> = Vec::with_capacity(max_edges);
        for from in 0..n as VertexId {
            for to in 0..n as VertexId {
                if from != to {
                    universe.push((from, to));
                }
            }
        }
        // Partial Fisher-Yates: draw m edges without replacement.
        for i in 0..m {
            let j = rng.gen_range(i..universe.len());
            universe.swap(i, j);
            let (from, to) = universe[i];
            builder.add_edge(from, to).expect("in-range, non-loop edge");
        }
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_size() {
        let g = erdos_renyi(100, 500, 7);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = erdos_renyi(50, 200, 42);
        let b = erdos_renyi(50, 200, 42);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        let c = erdos_renyi(50, 200, 43);
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    fn clamps_to_edge_universe() {
        let g = erdos_renyi(5, 10_000, 1);
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    fn dense_request_uses_every_edge_once() {
        let g = erdos_renyi(10, 80, 3);
        assert_eq!(g.num_edges(), 80);
        // No self-loops made it through.
        for (a, b) in g.edges() {
            assert_ne!(a, b);
        }
    }

    #[test]
    fn zero_edges_graph_is_valid() {
        let g = erdos_renyi(10, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }
}

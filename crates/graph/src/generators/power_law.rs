//! Preferential-attachment digraphs with heavy-tailed degree distributions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Configuration for [`power_law`].
#[derive(Debug, Clone, Copy)]
pub struct PowerLawConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Out-edges attached per new vertex (≥ 1).
    pub edges_per_vertex: usize,
    /// Probability that a target is drawn preferentially (by in-degree)
    /// rather than uniformly. Higher values sharpen the degree tail.
    pub preferential_probability: f64,
    /// Probability that the reverse edge is also inserted, giving hubs
    /// both high in-degree and high out-degree as in social graphs.
    pub reciprocal_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PowerLawConfig {
    /// A social-network-like default: strong preferential attachment with
    /// some reciprocity.
    pub fn social(num_vertices: usize, edges_per_vertex: usize, seed: u64) -> Self {
        PowerLawConfig {
            num_vertices,
            edges_per_vertex,
            preferential_probability: 0.8,
            reciprocal_probability: 0.3,
            seed,
        }
    }

    /// A web-graph-like default: sharper tail, little reciprocity.
    pub fn web(num_vertices: usize, edges_per_vertex: usize, seed: u64) -> Self {
        PowerLawConfig {
            num_vertices,
            edges_per_vertex,
            preferential_probability: 0.9,
            reciprocal_probability: 0.05,
            seed,
        }
    }
}

/// Generates a directed Barabási–Albert-style graph.
///
/// Vertices arrive one at a time; each attaches `edges_per_vertex`
/// out-edges whose targets are drawn from a repeated-endpoint pool
/// (classic preferential attachment) with probability
/// `preferential_probability`, otherwise uniformly. With probability
/// `reciprocal_probability` the reverse edge is inserted too. The resulting
/// in-degree distribution follows a power law; reciprocity spreads the tail
/// to out-degrees, mimicking the social/web graphs of the paper (`ep`,
/// `sl`, `gg`, `uk`, ...).
pub fn power_law(config: PowerLawConfig) -> CsrGraph {
    let PowerLawConfig {
        num_vertices: n,
        edges_per_vertex: d,
        preferential_probability,
        reciprocal_probability,
        seed,
    } = config;
    assert!(d >= 1, "edges_per_vertex must be at least 1");
    assert!(
        n > d + 1,
        "need more vertices than the attachment seed clique"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    builder.reserve(n * d);
    // Endpoint pool: each occurrence of a vertex is one unit of in-degree
    // mass, so uniform sampling from the pool is preferential attachment.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * d);

    // Seed: a small directed cycle over the first d+1 vertices so every
    // early vertex has nonzero degree mass.
    let seed_size = d + 1;
    for i in 0..seed_size {
        let from = i as VertexId;
        let to = ((i + 1) % seed_size) as VertexId;
        builder
            .add_edge(from, to)
            .expect("seed edges are in range and loop-free");
        pool.push(to);
        pool.push(from);
    }

    for v in seed_size..n {
        let v = v as VertexId;
        let mut attached = 0usize;
        let mut attempts = 0usize;
        while attached < d && attempts < 20 * d {
            attempts += 1;
            let target = if rng.gen_bool(preferential_probability) {
                pool[rng.gen_range(0..pool.len())]
            } else {
                rng.gen_range(0..v) // uniform among existing vertices
            };
            if target == v {
                continue;
            }
            builder
                .add_edge(v, target)
                .expect("in-range, non-loop edge");
            pool.push(target);
            pool.push(v);
            if rng.gen_bool(reciprocal_probability) {
                builder
                    .add_edge(target, v)
                    .expect("in-range, non-loop edge");
                pool.push(v);
                pool.push(target);
            }
            attached += 1;
        }
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_roughly_requested_density() {
        let g = power_law(PowerLawConfig::social(2000, 5, 11));
        assert_eq!(g.num_vertices(), 2000);
        // d out-edges per vertex plus ~30% reciprocal, minus dedup losses.
        let m = g.num_edges();
        assert!(m > 2000 * 5, "got {m} edges");
        assert!(m < 2000 * 5 * 2, "got {m} edges");
    }

    #[test]
    fn degree_distribution_has_heavy_tail() {
        let g = power_law(PowerLawConfig::social(5000, 4, 3));
        let mut degrees: Vec<usize> = g.vertices().map(|v| g.in_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let max = degrees[0];
        let median = degrees[degrees.len() / 2];
        // Heavy tail: the hub dwarfs the median vertex.
        assert!(max >= 20 * median.max(1), "max {max} vs median {median}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = power_law(PowerLawConfig::web(500, 3, 9));
        let b = power_law(PowerLawConfig::web(500, 3, 9));
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn no_self_loops() {
        let g = power_law(PowerLawConfig::social(300, 3, 5));
        for (a, b) in g.edges() {
            assert_ne!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "edges_per_vertex")]
    fn rejects_zero_attachment() {
        power_law(PowerLawConfig::social(10, 0, 0));
    }
}

//! Plain-text edge-list parsing and serialization.
//!
//! The format matches SNAP / networkrepository dumps the paper's datasets
//! ship in: one `from to` pair per line, `#` or `%` comment lines ignored,
//! whitespace-separated. Self-loops in inputs are skipped (with a count
//! reported) rather than failing, since several real datasets contain them.

use std::io::{BufRead, Write};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Outcome of parsing an edge list.
#[derive(Debug)]
pub struct ParsedGraph {
    /// The finished graph.
    pub graph: CsrGraph,
    /// Number of self-loop lines skipped.
    pub skipped_self_loops: usize,
}

/// Errors raised while reading an edge list.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A non-comment line did not contain two integers.
    Malformed { line_number: usize, content: String },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Malformed {
                line_number,
                content,
            } => {
                write!(f, "malformed edge on line {line_number}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Parses a whitespace-separated edge list from a reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<ParsedGraph, ReadError> {
    let mut builder = GraphBuilder::growable();
    let mut skipped_self_loops = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (from, to) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => {
                let from: VertexId = a.parse().map_err(|_| ReadError::Malformed {
                    line_number: idx + 1,
                    content: trimmed.to_string(),
                })?;
                let to: VertexId = b.parse().map_err(|_| ReadError::Malformed {
                    line_number: idx + 1,
                    content: trimmed.to_string(),
                })?;
                (from, to)
            }
            _ => {
                return Err(ReadError::Malformed {
                    line_number: idx + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        if from == to {
            skipped_self_loops += 1;
            continue;
        }
        builder
            .add_edge(from, to)
            .expect("growable builder only rejects self-loops, which are filtered above");
    }
    Ok(ParsedGraph {
        graph: builder.finish(),
        skipped_self_loops,
    })
}

/// Parses an edge list from a file on disk.
pub fn read_edge_list_file(path: &std::path::Path) -> Result<ParsedGraph, ReadError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file))
}

/// Writes a graph as a `# vertices edges` header plus one edge per line.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# vertices={} edges={}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (from, to) in graph.edges() {
        writeln!(writer, "{from} {to}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_edges() {
        let text = "# header\n% other comment\n\n0 1\n1 2\n 2   3 \n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.num_edges(), 3);
        assert_eq!(parsed.graph.num_vertices(), 4);
        assert_eq!(parsed.skipped_self_loops, 0);
    }

    #[test]
    fn skips_self_loops_counting_them() {
        let text = "0 0\n0 1\n5 5\n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.num_edges(), 1);
        assert_eq!(parsed.skipped_self_loops, 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::Malformed { line_number: 1, .. }));
        let err = read_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::Malformed { .. }));
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let g = b.finish();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(parsed.graph.num_vertices(), g.num_vertices());
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = parsed.graph.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn tab_separated_edges_parse() {
        let parsed = read_edge_list("0\t1\n1\t2\n".as_bytes()).unwrap();
        assert_eq!(parsed.graph.num_edges(), 2);
    }
}

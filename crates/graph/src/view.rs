//! Uniform neighbor access over different graph representations.
//!
//! The PathEnum pipeline only ever asks a graph four questions: how many
//! vertices, how many edges, and "call me back for every out-/in-neighbor
//! of `v`". [`NeighborAccess`] captures exactly that surface so the
//! boundary BFS and the per-query index build can run unchanged over
//!
//! * a materialized [`CsrGraph`], and
//! * a borrowed [`OverlayView`](crate::dynamic::OverlayView) of a
//!   [`DynamicGraph`](crate::dynamic::DynamicGraph) — base CSR plus the
//!   insert/delete overlay, with **zero** per-query materialization.
//!
//! The trait uses callback-style iteration (`for_each_out`) instead of
//! returning iterators: implementations stay object-simple, callers
//! monomorphize, and an overlay can interleave its delta adjacency with
//! the base slices without allocating.
//!
//! # Iteration-order contract
//!
//! Implementations **must** yield neighbors in strictly ascending vertex
//! order. The enumeration algorithms derive their (deterministic) result
//! emission order from adjacency order, so equality of this order across
//! representations is what makes overlay execution return *path-for-path*
//! identical results to executing on a snapshot.

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Read-only neighbor access for a directed graph with dense vertex ids
/// `0..num_vertices`.
///
/// See the [module docs](self) for the iteration-order contract.
pub trait NeighborAccess {
    /// Number of vertices; vertex ids are `0..num_vertices`.
    fn num_vertices(&self) -> usize;

    /// Number of directed edges.
    fn num_edges(&self) -> usize;

    /// Calls `f` for every out-neighbor of `v`, ascending.
    fn for_each_out(&self, v: VertexId, f: impl FnMut(VertexId));

    /// Calls `f` for every in-neighbor of `v` (sources of edges into
    /// `v`), ascending.
    fn for_each_in(&self, v: VertexId, f: impl FnMut(VertexId));

    /// Whether the directed edge `(from, to)` exists.
    fn has_edge(&self, from: VertexId, to: VertexId) -> bool;

    /// Hints the CPU to pull `v`'s out-adjacency toward cache ahead of a
    /// `for_each_out(v, ..)` call. Purely advisory — the default is a
    /// no-op, and implementations must not change observable behavior.
    #[inline]
    fn prefetch_out(&self, _v: VertexId) {}

    /// As [`NeighborAccess::prefetch_out`], for the in-adjacency.
    #[inline]
    fn prefetch_in(&self, _v: VertexId) {}

    /// Out-degree of `v`.
    fn out_degree(&self, v: VertexId) -> usize {
        let mut n = 0;
        self.for_each_out(v, |_| n += 1);
        n
    }

    /// In-degree of `v`.
    fn in_degree(&self, v: VertexId) -> usize {
        let mut n = 0;
        self.for_each_in(v, |_| n += 1);
        n
    }
}

impl NeighborAccess for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn for_each_out(&self, v: VertexId, mut f: impl FnMut(VertexId)) {
        for &n in self.out_neighbors(v) {
            f(n);
        }
    }

    #[inline]
    fn for_each_in(&self, v: VertexId, mut f: impl FnMut(VertexId)) {
        for &n in self.in_neighbors(v) {
            f(n);
        }
    }

    #[inline]
    fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        CsrGraph::has_edge(self, from, to)
    }

    #[inline]
    fn prefetch_out(&self, v: VertexId) {
        CsrGraph::prefetch_out_row(self, v);
    }

    #[inline]
    fn prefetch_in(&self, v: VertexId) {
        CsrGraph::prefetch_in_row(self, v);
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        CsrGraph::out_degree(self, v)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        CsrGraph::in_degree(self, v)
    }
}

/// Shared graphs answer through the inner representation, so call
/// sites holding an `Arc` plug into the generic engines directly.
impl<G: NeighborAccess> NeighborAccess for std::sync::Arc<G> {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    #[inline]
    fn for_each_out(&self, v: VertexId, f: impl FnMut(VertexId)) {
        (**self).for_each_out(v, f);
    }

    #[inline]
    fn for_each_in(&self, v: VertexId, f: impl FnMut(VertexId)) {
        (**self).for_each_in(v, f);
    }

    #[inline]
    fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        (**self).has_edge(from, to)
    }

    #[inline]
    fn prefetch_out(&self, v: VertexId) {
        (**self).prefetch_out(v);
    }

    #[inline]
    fn prefetch_in(&self, v: VertexId) {
        (**self).prefetch_in(v);
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        (**self).out_degree(v)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        (**self).in_degree(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn collect_out<G: NeighborAccess>(g: &G, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        g.for_each_out(v, |n| out.push(n));
        out
    }

    #[test]
    fn csr_trait_impl_matches_inherent_methods() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let g = b.finish();
        assert_eq!(NeighborAccess::num_vertices(&g), 4);
        assert_eq!(NeighborAccess::num_edges(&g), 4);
        assert_eq!(collect_out(&g, 0), vec![1, 2]);
        let mut ins = Vec::new();
        g.for_each_in(3, |n| ins.push(n));
        assert_eq!(ins, vec![1, 2]);
        assert!(NeighborAccess::has_edge(&g, 0, 1));
        assert!(!NeighborAccess::has_edge(&g, 1, 0));
        assert_eq!(NeighborAccess::out_degree(&g, 0), 2);
        assert_eq!(NeighborAccess::in_degree(&g, 3), 2);
    }
}

//! Analyzer self-tests: lexer edge cases, one fixture per rule with exact
//! diagnostic counts, suppression behavior, and the baseline ratchet.
//!
//! Fixtures live in `tests/fixtures/` as plain `.rs` text (never compiled;
//! the repo walker skips `tests/` and `fixtures/` directories) and are
//! analyzed under fake repo-relative paths chosen to hit each rule's scope.

use analysis::{analyze_source, apply_baseline, format_baseline, lex, parse_baseline, Finding};

fn by_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

fn lines(findings: &[&Finding]) -> Vec<usize> {
    findings.iter().map(|f| f.line).collect()
}

// ---------------------------------------------------------------- lexer

#[test]
fn lexer_blanks_raw_string_contents() {
    let text = lex("let s = r#\"has \"quotes\" and // not a comment\"#;\n");
    assert!(
        text.comments.is_empty(),
        "raw string must not open a comment"
    );
    assert!(!text.code[0].contains("quotes"));
    assert!(!text.code[0].contains("//"));
    // Geometry preserved: delimiters stay, contents become spaces.
    assert!(text.code[0].starts_with("let s = r#\""));
    assert!(text.code[0].ends_with("\"#;"));
}

#[test]
fn lexer_matches_raw_string_hash_count() {
    // The `"#` inside the literal does not close an `r##"…"##` string.
    let text = lex("let s = r##\"inner \"# still inside\"##; let x = 1;\n");
    assert!(text.comments.is_empty());
    assert!(!text.code[0].contains("inside"));
    assert!(text.code[0].contains("let x = 1;"));
}

#[test]
fn lexer_tracks_nested_block_comments() {
    let text = lex("/* outer /* inner */ still comment */ let x = 1;\n");
    assert_eq!(text.comments.len(), 1);
    assert!(text.comments[0].text.contains("inner"));
    assert!(!text.code[0].contains("inner"));
    assert!(text.code[0].contains("let x = 1;"));
}

#[test]
fn lexer_multiline_block_comment_spans_lines() {
    let text = lex("/* one\n   two\n   three */ let y = 2;\n");
    assert_eq!(text.comments.len(), 1);
    assert_eq!(text.comments[0].start_line, 1);
    assert_eq!(text.comments[0].end_line, 3);
    assert!(text.code[2].contains("let y = 2;"));
}

#[test]
fn lexer_leaves_raw_identifiers_in_code() {
    // `r#type` must not be parsed as the start of a raw string.
    let text = lex("let r#type = 1; let other = r#type + 1;\n");
    assert!(text.comments.is_empty());
    assert_eq!(text.code[0], "let r#type = 1; let other = r#type + 1;");
}

#[test]
fn lexer_distinguishes_char_literals_from_lifetimes() {
    let text = lex("fn f<'a>(s: &'a str) -> char { 'x' }\n");
    assert!(text.code[0].contains("<'a>"), "lifetime name must survive");
    assert!(text.code[0].contains("&'a str"));
    assert!(
        !text.code[0].contains("'x'"),
        "char contents must be blanked"
    );
}

#[test]
fn lexer_handles_escaped_quotes_and_byte_strings() {
    let text = lex("let a = \"he said \\\"hi\\\"\"; let b = b\"// bytes\";\n");
    assert!(
        text.comments.is_empty(),
        "byte string must not open a comment"
    );
    assert!(!text.code[0].contains("hi"));
    assert!(!text.code[0].contains("bytes"));
    assert!(text.code[0].contains("let b = b\""));
}

#[test]
fn lexer_preserves_line_count_across_multiline_strings() {
    let src = "let s = \"one\ntwo\nthree\";\nlet t = 4;\n";
    let text = lex(src);
    assert_eq!(text.code.len(), src.split('\n').count());
    assert!(text.code[3].contains("let t = 4;"));
}

// ---------------------------------------------------------------- rules

#[test]
fn no_panic_fixture_exact_counts() {
    let src = include_str!("fixtures/no_panic.rs");
    let findings = analyze_source("crates/pathenum/src/service.rs", src);
    let hits = by_rule(&findings, "no-panic");
    assert_eq!(lines(&hits), vec![5, 6, 8, 11]);
    assert_eq!(findings.len(), 4, "no other rule may fire: {findings:?}");
    // Exact geometry for one diagnostic, including the rendered form.
    assert_eq!(hits[0].col, 31);
    assert_eq!(
        hits[0].render().lines().last().unwrap(),
        "  --> crates/pathenum/src/service.rs:5:31"
    );
}

#[test]
fn no_panic_is_scoped_to_serving_files() {
    let src = include_str!("fixtures/no_panic.rs");
    let findings = analyze_source("crates/graph/src/bfs.rs", src);
    assert!(by_rule(&findings, "no-panic").is_empty());
}

#[test]
fn atomic_ordering_fixture_exact_counts() {
    let src = include_str!("fixtures/ordering.rs");
    let findings = analyze_source("crates/pathenum/src/results.rs", src);
    let hits = by_rule(&findings, "atomic-ordering");
    assert_eq!(
        lines(&hits),
        vec![10, 11],
        "annotated cluster, suppressed \
         use, and raw-string mention must all stay quiet: {findings:?}"
    );
    assert_eq!(findings.len(), 2);
    assert!(hits[0].message.contains("Ordering::Relaxed"));
    assert!(hits[1].message.contains("Ordering::SeqCst"));
}

#[test]
fn alloc_in_kernel_fixture_exact_counts() {
    let src = include_str!("fixtures/alloc.rs");
    let findings = analyze_source("crates/pathenum/src/enumerate/hot.rs", src);
    let hits = by_rule(&findings, "alloc-in-kernel");
    // 11/12/14 in the hot loop; 30 is past the blank line that resets the
    // `// alloc: scratch` annotation's coverage. Annotated setup lines and
    // the `#[cfg(test)]` module stay quiet.
    assert_eq!(lines(&hits), vec![11, 12, 14, 30]);
    assert_eq!(findings.len(), 4);
}

#[test]
fn std_hashmap_fixture_exact_counts() {
    let src = include_str!("fixtures/hashmap.rs");
    let findings = analyze_source("crates/pathenum/src/plan.rs", src);
    let hits = by_rule(&findings, "std-hashmap");
    // `FxHashMap` and `hash_map::Entry` must not trip the token matcher.
    assert_eq!(lines(&hits), vec![5, 8]);
    assert_eq!(findings.len(), 2);
}

#[test]
fn unsafe_inventory_fixture_outside_allowlist() {
    let src = include_str!("fixtures/unsafe.rs");
    let findings = analyze_source("crates/pathenum/src/engine.rs", src);
    let hits = by_rule(&findings, "unsafe-inventory");
    // Line 7 is SAFETY-covered but still outside the allowlist (1 finding);
    // line 11 is bare (2 findings); line 17 is suppressed; strings and
    // nested block comments never count.
    assert_eq!(lines(&hits), vec![7, 11, 11]);
    assert_eq!(findings.len(), 3);
}

#[test]
fn unsafe_inventory_fixture_inside_allowlist() {
    let src = include_str!("fixtures/unsafe.rs");
    let findings = analyze_source("crates/graph/src/prefetch.rs", src);
    let hits = by_rule(&findings, "unsafe-inventory");
    // Allowlisted file: only the missing-SAFETY finding on line 11 remains.
    assert_eq!(lines(&hits), vec![11]);
    assert!(hits[0].message.contains("SAFETY"));
}

#[test]
fn unsafe_inventory_storage_shim_is_allowlisted_but_not_its_neighbors() {
    let src = include_str!("fixtures/unsafe.rs");
    // The zero-copy cast shim is the storage layer's one sanctioned
    // unsafe file: SAFETY-covered blocks pass, bare ones still fail.
    let findings = analyze_source("crates/graph/src/zerocopy.rs", src);
    let hits = by_rule(&findings, "unsafe-inventory");
    assert_eq!(lines(&hits), vec![11]);
    assert!(hits[0].message.contains("SAFETY"));
    // The rest of the storage layer stays unsafe-free: the same code in
    // the format reader or the frozen-graph accessors is flagged even
    // when SAFETY-commented.
    for neighbor in [
        "crates/graph/src/io_binary.rs",
        "crates/graph/src/frozen.rs",
        "crates/graph/src/handle.rs",
    ] {
        let findings = analyze_source(neighbor, src);
        let hits = by_rule(&findings, "unsafe-inventory");
        assert_eq!(lines(&hits), vec![7, 11, 11], "{neighbor}");
    }
}

#[test]
fn lock_hygiene_fixture_exact_counts() {
    let src = include_str!("fixtures/lock.rs");
    let findings = analyze_source("crates/pathenum/src/worker.rs", src);
    let hits = by_rule(&findings, "lock-hygiene");
    assert_eq!(lines(&hits), vec![7]);
    assert_eq!(findings.len(), 1);
    assert!(hits[0].message.contains("catch_unwind"));
}

// ---------------------------------------------------------- suppressions

#[test]
fn suppression_with_unknown_rule_is_a_lint_syntax_finding() {
    let src = "// lint: allow(no-such-rule) — typo\nfn f() {}\n";
    let findings = analyze_source("crates/pathenum/src/service.rs", src);
    let hits = by_rule(&findings, "lint-syntax");
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("unknown rule"));
}

#[test]
fn suppression_without_reason_is_a_lint_syntax_finding() {
    let src = "// lint: allow(no-panic)\nfn f() { x.unwrap(); }\n";
    let findings = analyze_source("crates/pathenum/src/service.rs", src);
    let hits = by_rule(&findings, "lint-syntax");
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("missing a reason"));
    // A reasonless suppression grants nothing: the unwrap still fires.
    assert_eq!(by_rule(&findings, "no-panic").len(), 1);
}

#[test]
fn malformed_lint_comment_is_a_lint_syntax_finding() {
    let src = "// lint: deny(no-panic) — wrong verb\nfn f() {}\n";
    let findings = analyze_source("crates/pathenum/src/service.rs", src);
    let hits = by_rule(&findings, "lint-syntax");
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("malformed"));
}

#[test]
fn suppression_only_covers_its_contiguous_block() {
    let src = "\
// lint: allow(no-panic) — covers only the next contiguous lines.
fn near() { x.unwrap(); }

fn far() { y.unwrap(); }
";
    let findings = analyze_source("crates/pathenum/src/service.rs", src);
    let hits = by_rule(&findings, "no-panic");
    assert_eq!(lines(&hits), vec![4], "the blank line must end coverage");
}

// -------------------------------------------------------------- baseline

fn fake_finding(rule: &'static str, path: &str, line: usize) -> Finding {
    Finding {
        rule,
        path: path.to_string(),
        line,
        col: 1,
        message: "test".to_string(),
    }
}

#[test]
fn baseline_roundtrips_through_format_and_parse() {
    let mut baseline = analysis::Baseline::new();
    baseline.insert(("no-panic".into(), "crates/a.rs".into()), 2);
    baseline.insert(("std-hashmap".into(), "crates/b.rs".into()), 1);
    let parsed = parse_baseline(&format_baseline(&baseline)).unwrap();
    assert_eq!(parsed, baseline);
}

#[test]
fn baseline_parser_rejects_bad_lines() {
    assert!(parse_baseline("no-panic crates/a.rs\n").is_err());
    assert!(parse_baseline("no-panic crates/a.rs many\n").is_err());
    assert!(parse_baseline("# comment only\n\n").unwrap().is_empty());
}

#[test]
fn baseline_flags_groups_over_their_count() {
    let findings = vec![
        fake_finding("no-panic", "crates/a.rs", 1),
        fake_finding("no-panic", "crates/a.rs", 2),
    ];
    let mut baseline = analysis::Baseline::new();
    baseline.insert(("no-panic".into(), "crates/a.rs".into()), 1);
    let outcome = apply_baseline(&findings, &baseline);
    assert_eq!(outcome.violations.len(), 2, "the whole group is reported");
    assert!(outcome.stale.is_empty());
}

#[test]
fn baseline_accepts_groups_at_their_count() {
    let findings = vec![
        fake_finding("no-panic", "crates/a.rs", 1),
        fake_finding("no-panic", "crates/a.rs", 2),
    ];
    let mut baseline = analysis::Baseline::new();
    baseline.insert(("no-panic".into(), "crates/a.rs".into()), 2);
    let outcome = apply_baseline(&findings, &baseline);
    assert!(outcome.violations.is_empty());
    assert!(outcome.stale.is_empty());
}

#[test]
fn baseline_ratchet_reports_stale_entries() {
    // Fixed findings make the committed count stale: the shrink-only
    // ratchet demands a `--baseline` re-run to lock in the progress.
    let findings = vec![fake_finding("no-panic", "crates/a.rs", 1)];
    let mut baseline = analysis::Baseline::new();
    baseline.insert(("no-panic".into(), "crates/a.rs".into()), 3);
    baseline.insert(("std-hashmap".into(), "crates/gone.rs".into()), 1);
    let outcome = apply_baseline(&findings, &baseline);
    assert!(outcome.violations.is_empty());
    assert_eq!(outcome.stale.len(), 2);
    assert!(outcome.stale[0].contains("re-run"));
}

#[test]
fn unbaselined_findings_are_violations() {
    let findings = vec![fake_finding("std-hashmap", "crates/new.rs", 9)];
    let outcome = apply_baseline(&findings, &analysis::Baseline::new());
    assert_eq!(outcome.violations.len(), 1);
}

// Fixture: unsafe-inventory rule. One SAFETY-covered block (still flagged
// outside the allowlist), one bare block (two findings outside the
// allowlist: no SAFETY + wrong file), one suppressed, one in prose.

fn covered(ptr: *const u32) -> u32 {
    // SAFETY: fixture — caller guarantees `ptr` is valid and aligned.
    unsafe { *ptr }
}

fn bare(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}

fn suppressed(ptr: *const u32) -> u32 {
    // SAFETY: fixture — caller contract as above.
    // lint: allow(unsafe-inventory) — fixture exercising suppression.
    unsafe { *ptr }
}

fn prose() -> &'static str {
    "the word unsafe in a string never counts"
}

/* the word unsafe in a /* nested */ block comment never counts */

// Fixture: no-panic rule. Four live violations, one suppressed, one in a
// test module, one hidden in a string. Not compiled — lexed as text.

fn serve(values: &[u32]) -> u32 {
    let first = values.first().unwrap();
    let second = values.get(1).expect("second value");
    if *first == 0 {
        panic!("zero head");
    }
    if *second == 0 {
        unreachable!("checked above");
    }
    *first
}

fn quiet(values: &[u32]) -> u32 {
    // lint: allow(no-panic) — fixture exercising the suppression path.
    values.first().copied().unwrap()
}

fn strings_do_not_count() -> &'static str {
    "calling .unwrap() in a string or panic!( in prose is fine"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v = vec![1u32];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}

// Fixture: alloc-in-kernel rule. Four live violations (three in the hot
// loop, one past a blank line that resets annotation coverage), two
// annotated setup lines, one derive (never a call), one in a test module.

#[derive(Clone)]
struct Scratch {
    data: Vec<u32>,
}

fn hot_loop(input: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let copy = input.to_vec();

    let doubled: Vec<u32> = copy.iter().map(|x| x * 2).collect();
    out.extend(doubled);
    out
}

fn setup_path() -> Scratch {
    // alloc: setup — fixture arena built once; coverage spans the
    // contiguous lines below.
    let data = Vec::new();
    Scratch { data }
}

fn coverage_resets_at_blank_lines() -> Vec<u32> {
    // alloc: scratch — covers only until the blank line below.
    let kept = Vec::new();

    let flagged = kept.clone();
    flagged
}

#[cfg(test)]
mod tests {
    #[test]
    fn allocation_is_fine_in_tests() {
        let v: Vec<u32> = (0..4).collect();
        assert_eq!(v.clone().len(), 4);
    }
}

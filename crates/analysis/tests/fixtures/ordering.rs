// Fixture: atomic-ordering rule. Two unjustified uses, one annotated
// cluster of two, one suppressed, one only inside a raw string.

use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);
static OTHER: AtomicU64 = AtomicU64::new(0);

fn unjustified() -> u64 {
    COUNTER.fetch_add(1, Ordering::Relaxed);
    COUNTER.load(Ordering::SeqCst)
}

fn annotated_cluster() -> u64 {
    // ordering: advisory counters; the cluster below shares this line's
    // justification through contiguous-coverage.
    COUNTER.fetch_add(1, Ordering::Relaxed);
    OTHER.fetch_add(1, Ordering::Relaxed);
    0
}

fn suppressed() -> u64 {
    // lint: allow(atomic-ordering) — fixture exercising suppression.
    OTHER.load(Ordering::Acquire)
}

fn in_a_raw_string() -> &'static str {
    r#"Ordering::Relaxed inside a raw string never counts"#
}

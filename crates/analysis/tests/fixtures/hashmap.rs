// Fixture: std-hashmap rule. Two live violations (import + field), one
// Fx negative, one `hash_map::Entry` path negative, one raw-identifier
// line the lexer must not misread as a raw string.

use std::collections::HashMap;

struct Cache {
    entries: HashMap<u64, u64>,
    fast: FxHashMap<u64, u64>,
}

fn entry_api(cache: &mut Cache) {
    match cache.fast.entry(1) {
        std::collections::hash_map::Entry::Occupied(_) => {}
        std::collections::hash_map::Entry::Vacant(_) => {}
    }
    let r#type = 1u64;
    let _ = r#type;
}

// Fixture: lock-hygiene rule. One same-line violation, one suppressed,
// one negative (guard dropped before the callback).

use std::sync::Mutex;

fn violating(m: &Mutex<u32>, f: impl Fn(u32)) {
    let v = std::panic::catch_unwind(|| *m.lock().unwrap()).unwrap_or(0);
    f(v);
}

fn suppressed(m: &Mutex<u32>) {
    // lint: allow(lock-hygiene) — fixture exercising suppression.
    let _ = std::panic::catch_unwind(|| *m.lock().unwrap());
}

fn fine(m: &Mutex<u32>, f: impl Fn(u32)) {
    let v = *m.lock().unwrap();
    f(v);
}

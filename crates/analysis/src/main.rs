//! CLI driver for the repo-native static analyzer.
//!
//! Usage:
//!   cargo run -p analysis --release                 # check (exit 1 on findings)
//!   cargo run -p analysis --release -- --baseline   # rewrite the baseline
//!   cargo run -p analysis --release -- --root PATH  # analyze another tree
//!
//! Exit codes: 0 clean, 1 findings/stale baseline, 2 usage or I/O error.

use analysis::{
    analyze_source, apply_baseline, count_findings, format_baseline, parse_baseline, Baseline,
    Finding,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const BASELINE_FILE: &str = "analysis-baseline.txt";

/// Directories never walked: build output, vendored deps, test trees
/// (integration tests and lint fixtures are exempt from serving rules).
const SKIP_DIRS: [&str; 6] = ["target", "vendor", ".git", "tests", "benches", "fixtures"];

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut write_baseline = false;
    let mut root_override: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => write_baseline = true,
            "--root" => {
                let value = args.next().ok_or("--root requires a path")?;
                root_override = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                println!("usage: analysis [--baseline] [--root PATH]");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let root = match root_override {
        Some(path) => path,
        None => find_root().ok_or("could not locate the workspace root (Cargo.toml + crates/)")?,
    };

    let mut files = Vec::new();
    collect_rs_files(&root, &root, &mut files);
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    for (rel, path) in &files {
        let src = fs::read_to_string(path)
            .map_err(|err| format!("failed to read {}: {err}", path.display()))?;
        findings.extend(analyze_source(rel, &src));
    }

    let baseline_path = root.join(BASELINE_FILE);
    if write_baseline {
        let counts = count_findings(&findings);
        let total: usize = counts.values().sum();
        fs::write(&baseline_path, format_baseline(&counts))
            .map_err(|err| format!("failed to write {}: {err}", baseline_path.display()))?;
        println!(
            "analysis: baselined {total} finding(s) across {} (rule, file) group(s) into {}",
            counts.len(),
            BASELINE_FILE
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline: Baseline = match fs::read_to_string(&baseline_path) {
        Ok(text) => parse_baseline(&text)?,
        Err(_) => Baseline::new(),
    };
    let outcome = apply_baseline(&findings, &baseline);

    for finding in &outcome.violations {
        println!("{}\n", finding.render());
    }
    for stale in &outcome.stale {
        println!("error[baseline]: {stale}\n");
    }

    if outcome.violations.is_empty() && outcome.stale.is_empty() {
        println!(
            "analysis: {} file(s) checked, clean ({} baselined finding(s))",
            files.len(),
            baseline.values().sum::<usize>()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "analysis: {} violation(s), {} stale baseline entr(ies) — see \
             README \"Static analysis\" for the rule catalog and suppression \
             syntax",
            outcome.violations.len(),
            outcome.stale.len()
        );
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(err) => {
            eprintln!("analysis: error: {err}");
            ExitCode::from(2)
        }
    }
}

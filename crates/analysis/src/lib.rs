//! Repo-native static analysis for the PathEnum reproduction.
//!
//! An offline, dependency-free lint engine that enforces invariants the
//! compiler cannot see: atomic-ordering justifications, panic-free serving
//! paths, zero-allocation kernels, the deliberate `FxHashMap` choice in
//! hot modules, an `unsafe` inventory, and a lock-hygiene heuristic.
//!
//! The front end is a small hand-rolled Rust lexer (no `syn`): it blanks
//! comments and string/char-literal contents out of the source while
//! preserving line/column geometry, and collects the comments separately
//! so rules can match tokens in code without false positives from prose,
//! and annotations can be read from comments.
//!
//! ## Annotations and suppressions
//!
//! - `// ordering: <invariant>` — justifies `Ordering::*` uses (rule
//!   `atomic-ordering`).
//! - `// alloc: setup|scratch — <why>` — justifies allocation-shaped calls
//!   in kernel files (rule `alloc-in-kernel`).
//! - `// SAFETY: <argument>` — required above every `unsafe` (rule
//!   `unsafe-inventory`).
//! - `// lint: allow(<rule>) — <reason>` — suppresses any rule; the reason
//!   is mandatory (a missing reason is itself a `lint-syntax` finding).
//!
//! An annotation covers its own line plus every contiguous following
//! non-blank line; coverage resets at the first blank source line. This
//! lets one justification cover a tight cluster (e.g. the stats block in
//! `SharedResultCache::accumulate`) without annotating every line.

use std::collections::BTreeMap;

/// One comment as seen by the lexer, with 1-based start/end lines.
#[derive(Debug, Clone)]
pub struct Comment {
    pub start_line: usize,
    pub end_line: usize,
    pub text: String,
}

/// Lexed view of one source file.
#[derive(Debug)]
pub struct FileText {
    /// Source lines with comments and string/char contents blanked to
    /// spaces. Same line count and per-line width as the input.
    pub code: Vec<String>,
    /// All comments, in order of appearance.
    pub comments: Vec<Comment>,
    /// `blank[i]` is true when source line `i+1` is whitespace-only.
    pub blank: Vec<bool>,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src`: blank out comments and literal contents, collect comments.
///
/// Handles line comments, nested block comments, regular/byte strings with
/// escapes, raw strings (`r"…"`, `r#"…"#`, `br#"…"#`), raw identifiers
/// (`r#match`), and char literals vs. lifetimes.
pub fn lex(src: &str) -> FileText {
    let chars: Vec<char> = src.chars().collect();
    let mut out = chars.clone();
    let mut comments = Vec::new();
    let n = chars.len();
    let mut i = 0usize;
    let mut line = 1usize;

    // Consume a quoted span with escape processing, blanking the contents.
    // `i` points at the opening quote; returns with `i` past the close.
    fn eat_quoted(chars: &[char], out: &mut [char], i: &mut usize, line: &mut usize, quote: char) {
        *i += 1; // opening quote stays visible
        while *i < chars.len() {
            let c = chars[*i];
            if c == '\\' {
                out[*i] = ' ';
                *i += 1;
                if *i < chars.len() {
                    if chars[*i] == '\n' {
                        *line += 1;
                    } else {
                        out[*i] = ' ';
                    }
                    *i += 1;
                }
                continue;
            }
            if c == quote {
                *i += 1; // closing quote stays visible
                return;
            }
            if c == '\n' {
                *line += 1;
            } else {
                out[*i] = ' ';
            }
            *i += 1;
        }
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                out[i] = ' ';
                i += 1;
            }
            comments.push(Comment {
                start_line: line,
                end_line: line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            out[i] = ' ';
            out[i + 1] = ' ';
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    out[i] = ' ';
                    out[i + 1] = ' ';
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    out[i] = ' ';
                    out[i + 1] = ' ';
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    } else {
                        out[i] = ' ';
                    }
                    i += 1;
                }
            }
            comments.push(Comment {
                start_line,
                end_line: line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Identifier-ish run: also the entry point for raw strings, byte
        // strings, and raw identifiers (`r"…"`, `br#"…"#`, `b'x'`, `r#if`).
        if is_ident(c) && (i == 0 || !is_ident(chars[i - 1])) {
            let start = i;
            while i < n && is_ident(chars[i]) {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            let rawish = word == "r" || word == "br" || word == "rb";
            if rawish && i < n && (chars[i] == '"' || chars[i] == '#') {
                let mut j = i;
                let mut hashes = 0usize;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    // Raw string: no escapes; ends at `"` + `hashes` hashes.
                    i = j + 1;
                    'raw: while i < n {
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        if chars[i] == '\n' {
                            line += 1;
                        } else {
                            out[i] = ' ';
                        }
                        i += 1;
                    }
                } else if word == "r" && hashes == 1 && j < n && is_ident(chars[j]) {
                    // Raw identifier `r#ident`: skip the `#` and the word.
                    i = j;
                    while i < n && is_ident(chars[i]) {
                        i += 1;
                    }
                }
                continue;
            }
            if word == "b" && i < n && (chars[i] == '"' || chars[i] == '\'') {
                let quote = chars[i];
                eat_quoted(&chars, &mut out, &mut i, &mut line, quote);
                continue;
            }
            continue;
        }
        // Regular string.
        if c == '"' {
            eat_quoted(&chars, &mut out, &mut i, &mut line, '"');
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                eat_quoted(&chars, &mut out, &mut i, &mut line, '\'');
            } else if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                out[i + 1] = ' ';
                i += 3;
            } else {
                // Lifetime (or stray quote): leave the name in the code.
                i += 1;
            }
            continue;
        }
        i += 1;
    }

    let code: Vec<String> = out
        .split(|&c| c == '\n')
        .map(|l| l.iter().collect())
        .collect();
    let blank: Vec<bool> = src.split('\n').map(|l| l.trim().is_empty()).collect();
    FileText {
        code,
        comments,
        blank,
    }
}

/// One diagnostic. `path` uses forward slashes relative to the repo root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl Finding {
    /// rustc-style rendering: `error[rule]: msg\n  --> path:line:col`.
    pub fn render(&self) -> String {
        format!(
            "error[{}]: {}\n  --> {}:{}:{}",
            self.rule, self.message, self.path, self.line, self.col
        )
    }
}

pub const RULES: [&str; 7] = [
    "atomic-ordering",
    "no-panic",
    "alloc-in-kernel",
    "std-hashmap",
    "unsafe-inventory",
    "lock-hygiene",
    "lint-syntax",
];

/// Per-line annotation coverage for one file (1-based line indexing).
struct Coverage {
    ordering: Vec<bool>,
    alloc: Vec<bool>,
    safety: Vec<bool>,
    allow: BTreeMap<String, Vec<bool>>,
}

impl Coverage {
    fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allow
            .get(rule)
            .map(|v| v.get(line).copied().unwrap_or(false))
            .unwrap_or(false)
    }
}

/// Mark `cov[line..]` true through the contiguous non-blank run.
fn mark_coverage(cov: &mut [bool], blank: &[bool], line: usize) {
    let mut l = line;
    while l < cov.len() {
        if l > line && blank.get(l - 1).copied().unwrap_or(true) {
            break;
        }
        cov[l] = true;
        l += 1;
    }
}

/// Extract annotation coverage (and malformed-suppression findings).
fn scan_annotations(path: &str, text: &FileText, findings: &mut Vec<Finding>) -> Coverage {
    let lines = text.code.len();
    let mut cov = Coverage {
        ordering: vec![false; lines + 1],
        alloc: vec![false; lines + 1],
        safety: vec![false; lines + 1],
        allow: BTreeMap::new(),
    };
    for comment in &text.comments {
        let body = comment
            .text
            .trim_start_matches(['/', '*', '!'])
            .trim_start();
        let anchor = comment.end_line;
        if body.starts_with("ordering:") {
            mark_coverage(&mut cov.ordering, &text.blank, anchor);
        } else if body.starts_with("alloc:") {
            mark_coverage(&mut cov.alloc, &text.blank, anchor);
        } else if body.starts_with("SAFETY:") {
            mark_coverage(&mut cov.safety, &text.blank, anchor);
        } else if let Some(rest) = body.strip_prefix("lint:") {
            let rest = rest.trim_start();
            let parsed = rest.strip_prefix("allow(").and_then(|r| {
                r.split_once(')')
                    .map(|(rule, reason)| (rule.trim().to_string(), reason))
            });
            match parsed {
                Some((rule, reason)) => {
                    let reason_ok = reason
                        .trim_matches(|c: char| {
                            c.is_whitespace() || c == '-' || c == '—' || c == ':'
                        })
                        .chars()
                        .count()
                        >= 3;
                    if !RULES.contains(&rule.as_str()) {
                        findings.push(Finding {
                            rule: "lint-syntax",
                            path: path.to_string(),
                            line: comment.start_line,
                            col: 1,
                            message: format!("suppression names unknown rule `{rule}`"),
                        });
                    } else if !reason_ok {
                        findings.push(Finding {
                            rule: "lint-syntax",
                            path: path.to_string(),
                            line: comment.start_line,
                            col: 1,
                            message: format!(
                                "suppression for `{rule}` is missing a reason \
                                 (`// lint: allow({rule}) — <why>`)"
                            ),
                        });
                    } else {
                        let slot = cov
                            .allow
                            .entry(rule)
                            .or_insert_with(|| vec![false; lines + 1]);
                        mark_coverage(slot, &text.blank, anchor);
                    }
                }
                None => findings.push(Finding {
                    rule: "lint-syntax",
                    path: path.to_string(),
                    line: comment.start_line,
                    col: 1,
                    message: "malformed lint comment; expected \
                              `// lint: allow(<rule>) — <reason>`"
                        .to_string(),
                }),
            }
        }
    }
    cov
}

/// Lines inside `#[cfg(test)]`-gated items (brace-matched heuristically).
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len() + 1];
    let mut i = 0usize; // 0-based line index
    while i < code.len() {
        if !code[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0isize;
        let mut started = false;
        let mut j = i;
        'scan: while j < code.len() {
            for ch in code[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => {
                        depth -= 1;
                        if started && depth <= 0 {
                            break 'scan;
                        }
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let end = j.min(code.len() - 1);
        for mark in in_test.iter_mut().take(end + 2).skip(i + 1) {
            *mark = true;
        }
        i = end + 1;
    }
    in_test
}

/// Byte offsets of `needle` in `line` with identifier boundaries on both
/// sides (so `FxHashMap` never matches `HashMap`).
fn token_hits(line: &str, needle: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    for (off, _) in line.match_indices(needle) {
        let before = line[..off].chars().next_back();
        let after = line[off + needle.len()..].chars().next();
        let left_ok = !matches!(before, Some(c) if is_ident(c));
        let first = needle.chars().next().unwrap_or(' ');
        let last = needle.chars().next_back().unwrap_or(' ');
        let right_ok = !is_ident(last) || !matches!(after, Some(c) if is_ident(c));
        if (left_ok || !is_ident(first)) && right_ok {
            hits.push(off);
        }
    }
    hits
}

struct RuleCtx<'a> {
    path: &'a str,
    text: &'a FileText,
    cov: &'a Coverage,
    in_test: &'a [bool],
}

impl RuleCtx<'_> {
    fn push(
        &self,
        findings: &mut Vec<Finding>,
        rule: &'static str,
        line: usize,
        col: usize,
        msg: String,
    ) {
        if self.cov.allowed(rule, line) {
            return;
        }
        findings.push(Finding {
            rule,
            path: self.path.to_string(),
            line,
            col,
            message: msg,
        });
    }
}

const ORDERING_SCOPE: [&str; 8] = [
    "crates/pathenum/src/parallel.rs",
    "crates/pathenum/src/service.rs",
    "crates/pathenum/src/results.rs",
    "crates/pathenum/src/catalog.rs",
    "crates/pathenum/src/admission.rs",
    "crates/pathenum/src/plan.rs",
    "crates/graph/src/version.rs",
    "crates/graph/src/epoch.rs",
];

const NO_PANIC_SCOPE: [&str; 4] = [
    "crates/pathenum/src/service.rs",
    "crates/pathenum/src/catalog.rs",
    "crates/pathenum/src/admission.rs",
    "crates/pathenum/src/results.rs",
];

fn in_kernel_scope(path: &str) -> bool {
    path.starts_with("crates/pathenum/src/enumerate/")
        || path == "crates/graph/src/bfs.rs"
        || path == "crates/graph/src/epoch.rs"
}

fn in_hashmap_scope(path: &str) -> bool {
    in_kernel_scope(path)
        || path == "crates/pathenum/src/plan.rs"
        || path.starts_with("crates/pathenum/src/index/")
}

const UNSAFE_ALLOWLIST: [&str; 3] = [
    "crates/graph/src/prefetch.rs",
    "crates/graph/src/zerocopy.rs",
    "crates/bench/src/alloc.rs",
];

fn rule_atomic_ordering(ctx: &RuleCtx, findings: &mut Vec<Finding>) {
    if !ORDERING_SCOPE.contains(&ctx.path) {
        return;
    }
    const ORDERINGS: [&str; 5] = [
        "Ordering::Relaxed",
        "Ordering::Acquire",
        "Ordering::Release",
        "Ordering::AcqRel",
        "Ordering::SeqCst",
    ];
    for (idx, line) in ctx.text.code.iter().enumerate() {
        let lineno = idx + 1;
        if ctx.in_test[lineno] || ctx.cov.ordering[lineno] {
            continue;
        }
        for needle in ORDERINGS {
            for off in token_hits(line, needle) {
                ctx.push(
                    findings,
                    "atomic-ordering",
                    lineno,
                    off + 1,
                    format!(
                        "`{needle}` without an `// ordering:` justification \
                         naming the invariant it upholds"
                    ),
                );
            }
        }
    }
}

fn rule_no_panic(ctx: &RuleCtx, findings: &mut Vec<Finding>) {
    if !NO_PANIC_SCOPE.contains(&ctx.path) {
        return;
    }
    const PANICKY: [&str; 6] = [
        ".unwrap()",
        ".expect(",
        "panic!(",
        "unreachable!(",
        "todo!(",
        "unimplemented!(",
    ];
    for (idx, line) in ctx.text.code.iter().enumerate() {
        let lineno = idx + 1;
        if ctx.in_test[lineno] {
            continue;
        }
        for needle in PANICKY {
            for off in token_hits(line, needle) {
                ctx.push(
                    findings,
                    "no-panic",
                    lineno,
                    off + 1,
                    format!(
                        "`{}` on a serving path — a panic here burns a \
                         catch_unwind and a ticket; recover or return a \
                         typed error",
                        needle.trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

fn rule_alloc_in_kernel(ctx: &RuleCtx, findings: &mut Vec<Finding>) {
    if !in_kernel_scope(ctx.path) {
        return;
    }
    const ALLOCY: [&str; 10] = [
        "Vec::new",
        "VecDeque::new",
        "String::new",
        "vec!",
        "Box::new",
        ".to_vec(",
        ".collect(",
        ".clone(",
        ".to_string(",
        "format!",
    ];
    for (idx, line) in ctx.text.code.iter().enumerate() {
        let lineno = idx + 1;
        if ctx.in_test[lineno] || ctx.cov.alloc[lineno] {
            continue;
        }
        for needle in ALLOCY {
            for off in token_hits(line, needle) {
                ctx.push(
                    findings,
                    "alloc-in-kernel",
                    lineno,
                    off + 1,
                    format!(
                        "allocation-shaped call `{}` in a kernel file — \
                         annotate `// alloc: setup|scratch — <why>` or hoist \
                         it out of the hot loop",
                        needle.trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

fn rule_std_hashmap(ctx: &RuleCtx, findings: &mut Vec<Finding>) {
    if !in_hashmap_scope(ctx.path) {
        return;
    }
    for (idx, line) in ctx.text.code.iter().enumerate() {
        let lineno = idx + 1;
        if ctx.in_test[lineno] {
            continue;
        }
        for needle in ["HashMap", "HashSet"] {
            for off in token_hits(line, needle) {
                ctx.push(
                    findings,
                    "std-hashmap",
                    lineno,
                    off + 1,
                    format!(
                        "std `{needle}` (SipHash) in a kernel/plan-cache \
                         module — use `pathenum_graph::hashing::Fx{needle}`"
                    ),
                );
            }
        }
    }
}

fn rule_unsafe_inventory(ctx: &RuleCtx, findings: &mut Vec<Finding>) {
    let allowed_file = UNSAFE_ALLOWLIST.contains(&ctx.path);
    // "unsafe" in strings/comments is blanked by the lexer, so this file
    // does not flag itself.
    let needle = "unsafe";
    for (idx, line) in ctx.text.code.iter().enumerate() {
        let lineno = idx + 1;
        for off in token_hits(line, needle) {
            if !ctx.cov.safety[lineno] {
                ctx.push(
                    findings,
                    "unsafe-inventory",
                    lineno,
                    off + 1,
                    format!("`{needle}` without a `// SAFETY:` comment"),
                );
            }
            if !allowed_file {
                ctx.push(
                    findings,
                    "unsafe-inventory",
                    lineno,
                    off + 1,
                    format!(
                        "new `{needle}` outside the audited allowlist \
                         ({}) — keep raw-pointer code in those modules",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                );
            }
        }
    }
}

fn rule_lock_hygiene(ctx: &RuleCtx, findings: &mut Vec<Finding>) {
    const CALLBACKY: [&str; 3] = ["catch_unwind", "on_path(", "callback("];
    for (idx, line) in ctx.text.code.iter().enumerate() {
        let lineno = idx + 1;
        if ctx.in_test[lineno] {
            continue;
        }
        let locks: Vec<usize> = token_hits(line, ".lock(");
        if locks.is_empty() {
            continue;
        }
        for needle in CALLBACKY {
            if !token_hits(line, needle).is_empty() {
                ctx.push(
                    findings,
                    "lock-hygiene",
                    lineno,
                    locks[0] + 1,
                    format!(
                        "`.lock()` result held across `{}` in the same \
                         statement — drop the guard before running user \
                         code",
                        needle.trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

/// Analyze one file's source under its repo-relative path.
pub fn analyze_source(path: &str, src: &str) -> Vec<Finding> {
    let text = lex(src);
    let mut findings = Vec::new();
    let cov = scan_annotations(path, &text, &mut findings);
    let in_test = test_regions(&text.code);
    let ctx = RuleCtx {
        path,
        text: &text,
        cov: &cov,
        in_test: &in_test,
    };
    rule_atomic_ordering(&ctx, &mut findings);
    rule_no_panic(&ctx, &mut findings);
    rule_alloc_in_kernel(&ctx, &mut findings);
    rule_std_hashmap(&ctx, &mut findings);
    rule_unsafe_inventory(&ctx, &mut findings);
    rule_lock_hygiene(&ctx, &mut findings);
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

/// Baseline: `(rule, path) -> grandfathered finding count`.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parse the committed baseline file (`#` comments and blanks ignored).
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut baseline = Baseline::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (rule, path, count) = match (parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(p), Some(c)) => (r, p, c),
            _ => {
                return Err(format!(
                    "baseline line {}: expected `<rule> <path> <count>`",
                    idx + 1
                ))
            }
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
        baseline.insert((rule.to_string(), path.to_string()), count);
    }
    Ok(baseline)
}

/// Serialize a baseline in the committed format.
pub fn format_baseline(baseline: &Baseline) -> String {
    let mut out = String::from(
        "# Static-analysis baseline: `<rule> <path> <count>` per line.\n\
         # The ratchet is shrink-only — counts may go down, never up.\n\
         # Regenerate with `cargo run -p analysis --release -- --baseline`.\n",
    );
    for ((rule, path), count) in baseline {
        out.push_str(&format!("{rule} {path} {count}\n"));
    }
    out
}

/// Result of checking findings against the committed baseline.
pub struct BaselineOutcome {
    /// Findings in (rule, file) groups that exceed their baselined count.
    pub violations: Vec<Finding>,
    /// Baseline entries whose current count shrank (or vanished): the
    /// ratchet requires re-running `--baseline` to lock in the progress.
    pub stale: Vec<String>,
}

/// Apply the shrink-only ratchet: any (rule, file) group over its baseline
/// count is a violation; any group under it is stale and must be ratcheted.
pub fn apply_baseline(findings: &[Finding], baseline: &Baseline) -> BaselineOutcome {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in findings {
        *counts
            .entry((f.rule.to_string(), f.path.clone()))
            .or_insert(0) += 1;
    }
    let mut violations = Vec::new();
    let mut stale = Vec::new();
    for (key, &count) in &counts {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        if count > allowed {
            violations.extend(
                findings
                    .iter()
                    .filter(|f| f.rule == key.0 && f.path == key.1)
                    .cloned(),
            );
        }
    }
    for ((rule, path), &allowed) in baseline {
        let current = counts
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        if current < allowed {
            stale.push(format!(
                "baseline is stale: `{rule}` in {path} is baselined at \
                 {allowed} but only {current} remain — re-run with \
                 `--baseline` to ratchet down"
            ));
        }
    }
    BaselineOutcome { violations, stale }
}

/// Current finding counts in baseline form.
pub fn count_findings(findings: &[Finding]) -> Baseline {
    let mut counts = Baseline::new();
    for f in findings {
        *counts
            .entry((f.rule.to_string(), f.path.clone()))
            .or_insert(0) += 1;
    }
    counts
}

//! Criterion benches for the production-oriented variants: the
//! buffer-reusing [`pathenum::QueryEngine`] versus the one-shot API, and
//! the explicit-stack DFS versus the recursive one.

use criterion::{criterion_group, criterion_main, Criterion};
use pathenum::enumerate::{idx_dfs, idx_dfs_iterative};
use pathenum::{path_enum, Counters, CountingSink, Index, PathEnumConfig, QueryEngine};
use pathenum_workloads::datasets;
use pathenum_workloads::querygen::{generate_queries, QueryGenConfig};

fn bench_engine_vs_oneshot(c: &mut Criterion) {
    let graph = datasets::gg();
    let queries = generate_queries(&graph, QueryGenConfig::paper_default(20, 4, 6));
    let mut group = c.benchmark_group("engine_vs_oneshot_gg_20q");
    group.bench_function("one_shot_path_enum", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for &q in &queries {
                let mut sink = CountingSink::default();
                path_enum(&graph, q, PathEnumConfig::default(), &mut sink)
                    .expect("generated queries are in range");
                total += sink.count;
            }
            std::hint::black_box(total)
        })
    });
    group.bench_function("query_engine_reused_scratch", |b| {
        b.iter(|| {
            let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
            let mut total = 0u64;
            for &q in &queries {
                let mut sink = CountingSink::default();
                engine
                    .run(q, &mut sink)
                    .expect("generated queries are in range");
                total += sink.count;
            }
            std::hint::black_box(total)
        })
    });
    group.finish();
}

fn bench_recursive_vs_iterative(c: &mut Criterion) {
    let graph = datasets::ep();
    let query = generate_queries(&graph, QueryGenConfig::paper_default(1, 5, 8))[0];
    let index = Index::build(&graph, query);
    let mut group = c.benchmark_group("dfs_recursive_vs_iterative_ep_k5");
    group.bench_function("recursive", |b| {
        b.iter(|| {
            let mut sink = CountingSink::default();
            let mut counters = Counters::default();
            idx_dfs(&index, &mut sink, &mut counters);
            std::hint::black_box(sink.count)
        })
    });
    group.bench_function("iterative", |b| {
        b.iter(|| {
            let mut sink = CountingSink::default();
            let mut counters = Counters::default();
            idx_dfs_iterative(&index, &mut sink, &mut counters);
            std::hint::black_box(sink.count)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_vs_oneshot, bench_recursive_vs_iterative);
criterion_main!(benches);

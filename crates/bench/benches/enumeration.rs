//! Criterion micro-benchmarks for the enumeration strategies:
//! IDX-DFS / IDX-JOIN on the index versus the barrier and static-bound
//! baselines on the raw graph (the Table 3 comparison in microcosm).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pathenum::{enumerate, Counters, CountingSink, Index};
use pathenum_baselines::{bc_dfs, generic_dfs};
use pathenum_workloads::datasets;
use pathenum_workloads::querygen::{generate_queries, QueryGenConfig};

fn bench_enumeration(c: &mut Criterion) {
    let graph = datasets::ep();
    let query = generate_queries(&graph, QueryGenConfig::paper_default(1, 5, 3))[0];
    let index = Index::build(&graph, query);

    // Result count for throughput scaling.
    let mut count_sink = CountingSink::default();
    let mut counters = Counters::default();
    enumerate::idx_dfs(&index, &mut count_sink, &mut counters);
    let results = count_sink.count.max(1);

    let mut group = c.benchmark_group("enumeration_ep_k5");
    group.throughput(Throughput::Elements(results));
    group.bench_function("idx_dfs", |b| {
        b.iter(|| {
            let mut sink = CountingSink::default();
            let mut counters = Counters::default();
            enumerate::idx_dfs(&index, &mut sink, &mut counters);
            std::hint::black_box(sink.count)
        })
    });
    group.bench_function("idx_join_mid_cut", |b| {
        b.iter(|| {
            let mut sink = CountingSink::default();
            let mut counters = Counters::default();
            enumerate::idx_join(&index, query.k / 2, &mut sink, &mut counters);
            std::hint::black_box(sink.count)
        })
    });
    group.bench_function("bc_dfs_total", |b| {
        b.iter(|| {
            let mut sink = CountingSink::default();
            bc_dfs(&graph, query, &mut sink);
            std::hint::black_box(sink.count)
        })
    });
    group.bench_function("generic_dfs_total", |b| {
        b.iter(|| {
            let mut sink = CountingSink::default();
            generic_dfs(&graph, query, &mut sink);
            std::hint::black_box(sink.count)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);

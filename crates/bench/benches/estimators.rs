//! Criterion micro-benchmarks for the two cardinality estimators —
//! quantifying the cost gap the two-phase optimizer design exploits
//! (Section 6.2: O(k^2) preliminary vs O(k |E_I|) full-fledged).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathenum::estimator::{preliminary_estimate, FullEstimate};
use pathenum::{optimize_join_order, Index};
use pathenum_workloads::datasets;
use pathenum_workloads::querygen::{generate_queries, QueryGenConfig};

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimators");
    for name in ["ep", "gg"] {
        let graph = datasets::build(name).expect("registered dataset");
        let query = generate_queries(&graph, QueryGenConfig::paper_default(1, 6, 4))[0];
        let index = Index::build(&graph, query);
        group.bench_with_input(BenchmarkId::new("preliminary", name), &index, |b, idx| {
            b.iter(|| std::hint::black_box(preliminary_estimate(idx)))
        });
        group.bench_with_input(BenchmarkId::new("full_fledged", name), &index, |b, idx| {
            b.iter(|| std::hint::black_box(FullEstimate::compute(idx).total_walks()))
        });
        group.bench_with_input(BenchmarkId::new("optimize_join_order", name), &index, |b, idx| {
            b.iter(|| {
                let est = FullEstimate::compute(idx);
                std::hint::black_box(optimize_join_order(idx, &est))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);

//! Criterion micro-benchmarks for index construction (Algorithm 3):
//! the per-query preprocessing cost PathEnum pays instead of the full
//! reducer's relation scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathenum::relations::Relations;
use pathenum::{Index, Query};
use pathenum_workloads::datasets;
use pathenum_workloads::querygen::{generate_queries, QueryGenConfig};

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    for name in ["ep", "gg"] {
        let graph = datasets::build(name).expect("registered dataset");
        let query = generate_queries(&graph, QueryGenConfig::paper_default(1, 6, 1))[0];
        group.bench_with_input(BenchmarkId::new("build", name), &graph, |b, g| {
            b.iter(|| std::hint::black_box(Index::build(g, query)))
        });
    }
    group.finish();
}

fn bench_index_vs_full_reducer(c: &mut Criterion) {
    // The motivating comparison of Section 4.2: Algorithm 2 scans k
    // copies of E; Algorithm 3 does two BFS plus one adjacency scan.
    let mut group = c.benchmark_group("index_vs_reducer");
    let graph = datasets::ep();
    let query = generate_queries(&graph, QueryGenConfig::paper_default(1, 4, 2))[0];
    let q = Query::new(query.s, query.t, 4).expect("valid");
    group.bench_function("light_weight_index", |b| {
        b.iter(|| std::hint::black_box(Index::build(&graph, q)))
    });
    group.bench_function("full_reducer_relations", |b| {
        b.iter(|| std::hint::black_box(Relations::build_reduced(&graph, q)))
    });
    group.finish();
}

fn bench_pll_oracle(c: &mut Criterion) {
    // The offline global index of §7.5: one-time build cost vs the
    // per-lookup cost that replaces a per-query BFS pair.
    use pathenum_graph::DistanceOracle;
    let graph = datasets::gg();
    let mut group = c.benchmark_group("pll_oracle_gg");
    group.sample_size(10); // builds are slow; keep the suite fast
    group.bench_function("build", |b| {
        b.iter(|| std::hint::black_box(DistanceOracle::build(&graph)))
    });
    group.finish();

    let oracle = DistanceOracle::build(&graph);
    c.bench_function("pll_oracle_gg/distance_query", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(101);
            let s = i % graph.num_vertices() as u32;
            let t = (i * 7 + 13) % graph.num_vertices() as u32;
            std::hint::black_box(oracle.distance(s, t))
        })
    });
}

criterion_group!(benches, bench_index_build, bench_index_vs_full_reducer, bench_pll_oracle);
criterion_main!(benches);

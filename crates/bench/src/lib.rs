//! Benchmark harness regenerating every table and figure of the PathEnum
//! paper's evaluation (Section 7 + Appendix F) on the dataset proxies.
//!
//! Each experiment is a module under [`experiments`] with a single
//! `run(&ExperimentConfig)` entry point that prints the corresponding
//! table/series to stdout. The `reproduce` binary dispatches on a
//! subcommand (`table3`, `fig6`, ..., `all`).
//!
//! Absolute numbers differ from the paper (proxy graphs, scaled time
//! limits, Rust vs C++); the *shape* — which algorithm wins, by what
//! order of magnitude, where crossovers happen — is what these harnesses
//! reproduce. EXPERIMENTS.md records paper-vs-measured per experiment.

pub mod alloc;
pub mod config;
pub mod experiments;
pub mod output;

pub use config::ExperimentConfig;

/// Count allocation events so `reproduce perf` can assert the warmed
/// enumeration kernels allocate nothing (see [`alloc`]).
#[global_allocator]
static GLOBAL_ALLOCATOR: alloc::CountingAllocator = alloc::CountingAllocator;

//! Plain-text table output in the paper's notation.

/// Formats a number in the paper's scientific notation (`2.28e-1`).
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return "inf".to_string();
    }
    format!("{x:.2e}")
}

/// Formats a duration as milliseconds in scientific notation.
pub fn sci_ms(d: std::time::Duration) -> String {
    sci(d.as_secs_f64() * 1e3)
}

/// A fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an experiment banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Renders a flat list of numeric fields as a JSON object (hand-rolled —
/// the workspace takes no serde dependency). Non-finite values become
/// `null`.
pub fn json_object(fields: &[(&str, f64)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(key, value)| {
            let rendered = if value.is_finite() {
                // `f64`'s `Display` never prints exponents, so the
                // rendering is always valid JSON.
                format!("{value}")
            } else {
                "null".to_string()
            };
            format!("  \"{key}\": {rendered}")
        })
        .collect();
    format!("{{\n{}\n}}\n", body.join(",\n"))
}

/// Writes `fields` as a JSON object to `path` (relative to the working
/// directory, which is the repo root under `cargo run`) and announces
/// the write. Used by the serving experiments to leave a machine-readable
/// perf trail (`BENCH_serve.json`, `BENCH_overload.json`) for trend
/// tracking across PRs.
pub fn write_bench_json(path: &str, fields: &[(&str, f64)]) {
    match std::fs::write(path, json_object(fields)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_matches_paper_style() {
        assert_eq!(sci(0.228), "2.28e-1");
        assert_eq!(sci(120000.0), "1.20e5");
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(f64::INFINITY), "inf");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["ep", "1.00e2"]);
        t.row(["gg", "3"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.00e2"));
        assert!(lines[3].ends_with("3"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    fn json_object_renders_flat_numeric_fields() {
        let json = json_object(&[("throughput", 1234.5), ("p99_ms", 0.25), ("bad", f64::NAN)]);
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"throughput\": 1234.5,"));
        assert!(json.contains("\"p99_ms\": 0.25,"));
        assert!(json.contains("\"bad\": null"));
    }
}

//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce <experiment|all|list> [--quick] [--queries N]
//!           [--time-limit-ms M] [--seed S] [--method idx-dfs|idx-join]
//!           [--workers N] [--graph-file PATH]
//! ```
//!
//! Experiments: table3 table4 table5 table6 table7 fig6 fig7 fig8 fig9
//! fig10_11 fig12 fig13_15 fig16 fig17 fig18 ablation

use std::process::ExitCode;
use std::time::Duration;

use pathenum_bench::experiments::registry;
use pathenum_bench::ExperimentConfig;

fn usage() {
    eprintln!("usage: reproduce <experiment|all|list> [--quick] [--queries N]");
    eprintln!("                 [--time-limit-ms M] [--seed S] [--method idx-dfs|idx-join]");
    eprintln!("                 [--workers N] [--graph-file PATH]");
    eprintln!();
    eprintln!("experiments:");
    for (name, description, _) in registry() {
        eprintln!("  {name:<10} {description}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    let mut target: Option<String> = None;
    let mut config = ExperimentConfig::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {
                config = ExperimentConfig::quick();
            }
            "--queries" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.queries_per_set = n,
                None => {
                    eprintln!("--queries expects a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--time-limit-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(ms) => config.time_limit = Duration::from_millis(ms),
                None => {
                    eprintln!("--time-limit-ms expects milliseconds");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(s) => config.seed = s,
                None => {
                    eprintln!("--seed expects an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--method" => match iter.next().map(|v| v.parse::<pathenum::Method>()) {
                Some(Ok(method)) => {
                    // The table/figure experiments compare algorithms via
                    // the explicit Algorithm enum (which has forced
                    // variants as columns); only the full-pipeline
                    // experiments read this override.
                    eprintln!(
                        "note: --method {method} applies to experiments running the full \
                         PathEnum pipeline (currently: cache, stream, serve); others ignore it"
                    );
                    config.force_method = Some(method);
                }
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--method expects idx-dfs or idx-join");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => {
                    eprintln!(
                        "note: --workers {n} applies to the serving experiments \
                         (currently: serve, overload); others ignore it"
                    );
                    config.workers = Some(n);
                }
                Some(Ok(_)) | Some(Err(_)) | None => {
                    eprintln!("--workers expects a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--graph-file" => match iter.next() {
                Some(path) => {
                    eprintln!(
                        "note: --graph-file applies to experiments that accept an external \
                         graph (currently: memory); others ignore it"
                    );
                    config.graph_file = Some(path.into());
                }
                None => {
                    eprintln!("--graph-file expects a path (edge list, PEG1, or PEG2)");
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if target.is_none() && !other.starts_with('-') => {
                target = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(target) = target else {
        usage();
        return ExitCode::FAILURE;
    };

    match target.as_str() {
        "list" => {
            usage();
            ExitCode::SUCCESS
        }
        "all" => {
            println!(
                "running all {} experiments ({} queries/set, {:?} limit, seed {})",
                registry().len(),
                config.queries_per_set,
                config.time_limit,
                config.seed
            );
            for (name, _, runner) in registry() {
                let start = std::time::Instant::now();
                runner(&config);
                println!("[{name} finished in {:.1?}]", start.elapsed());
            }
            ExitCode::SUCCESS
        }
        name => match registry().into_iter().find(|(n, _, _)| *n == name) {
            Some((_, _, runner)) => {
                runner(&config);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment: {name}");
                usage();
                ExitCode::FAILURE
            }
        },
    }
}

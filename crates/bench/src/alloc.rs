//! A counting global allocator for the zero-allocation assertions of
//! `reproduce perf`.
//!
//! Wraps [`System`] and counts every allocation event (`alloc`,
//! `alloc_zeroed`, `realloc`) in a relaxed atomic. Installed as the
//! `#[global_allocator]` of this crate (see the crate root), which makes
//! it the allocator of the `reproduce` binary and of this crate's tests —
//! the library crates under measurement are unaffected elsewhere.
//!
//! The interesting reading is always a *delta*: snapshot
//! [`allocation_count`] around a warmed enumeration loop and assert the
//! difference is zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// [`System`], plus a process-wide count of allocation events.
pub struct CountingAllocator;

// SAFETY: defers every operation verbatim to `System`; the count is a
// side effect with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: verbatim delegation to `System` with the caller's contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: verbatim delegation to `System` with the caller's contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: verbatim delegation to `System` with the caller's contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocation events since process start (monotonic; diff two readings).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_heap_allocations() {
        let before = allocation_count();
        let v: Vec<u64> = Vec::with_capacity(1024);
        std::hint::black_box(&v);
        assert!(allocation_count() > before, "Vec::with_capacity allocates");
    }
}

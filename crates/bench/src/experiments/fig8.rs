//! Figure 8: 99.9% response-time latency on dynamic graphs.
//!
//! Following Section 7.2: 10% of each graph's edges (capped for the
//! proxies) are withheld as a stream of insertions; for each inserted
//! edge `e(v, v')` the cycle query `q(v', v, k - 1)` runs on the graph at
//! that moment, and the tail latency of the response time (first 1000
//! results) is reported for BC-DFS vs IDX-DFS.

use std::time::Duration;

use pathenum::query::Query;
use pathenum_graph::{DynamicGraph, GraphBuilder};
use pathenum_workloads::runner::{measure_response_time, percentile_ms};
use pathenum_workloads::Algorithm;

use crate::config::ExperimentConfig;
use crate::experiments::support::representative_graphs;
use crate::output::{banner, sci, Table};

/// Runs the experiment and prints the series.
pub fn run(config: &ExperimentConfig) {
    banner("Figure 8: 99.9% latency (ms) of response time on dynamic graphs");
    let updates = (config.queries_per_set * 4).clamp(10, 200);
    println!("replaying {updates} edge insertions per graph; query = q(v', v, k-1)\n");
    for (name, base_graph) in representative_graphs() {
        let all_edges: Vec<(u32, u32)> = base_graph.edges().collect();
        let keep = all_edges.len() - updates.min(all_edges.len() / 10);
        let (base_edges, stream) = all_edges.split_at(keep);
        let mut builder = GraphBuilder::new(base_graph.num_vertices());
        builder
            .add_edges(base_edges.iter().copied())
            .expect("base edges are valid");
        let mut dynamic = DynamicGraph::new(builder.finish());

        let mut table = Table::new(["k", "BC-DFS p99.9", "IDX-DFS p99.9"]);
        for k in config.k_sweep() {
            let mut bc: Vec<Duration> = Vec::new();
            let mut idx: Vec<Duration> = Vec::new();
            // Rebuild the overlay from scratch per k so each sweep sees
            // the same insertion sequence.
            let mut graph_now = dynamic.snapshot();
            for &(v, v2) in stream {
                if let Ok(query) = Query::new(v2, v, k.saturating_sub(1).max(2)) {
                    bc.push(measure_response_time(
                        Algorithm::BcDfs,
                        &graph_now,
                        query,
                        config.measure(),
                    ));
                    idx.push(measure_response_time(
                        Algorithm::IdxDfs,
                        &graph_now,
                        query,
                        config.measure(),
                    ));
                }
                dynamic.insert_edge(v, v2);
                graph_now = dynamic.snapshot();
            }
            table.row([
                k.to_string(),
                sci(percentile_ms(&bc, 99.9)),
                sci(percentile_ms(&idx, 99.9)),
            ]);
            // Reset the overlay for the next k.
            let mut builder = GraphBuilder::new(base_graph.num_vertices());
            builder
                .add_edges(base_edges.iter().copied())
                .expect("base edges are valid");
            dynamic = DynamicGraph::new(builder.finish());
        }
        println!("--- {name} ---");
        table.print();
        println!();
    }
}

//! Shared execution: batch-level result fan-out on a skewed read stream
//! (not a paper experiment — it characterizes the `pathenum::results`
//! layer and the plan-key grouping in `PathEnumService::execute_batch`).
//!
//! Real read streams repeat: the same `(s, t, k)` requests arrive over
//! and over. The PR-3 warm path already skips planning and index
//! construction on a repeat but still *re-enumerates* every path; the
//! result cache replays the stored `PathBuffer` instead, and the
//! service's batch dispatcher groups requests with overlapping plan
//! footprints onto one worker so each group pays one boundary BFS, one
//! index build, and one enumeration. This harness seeds both services,
//! replays the same skewed stream through each, and asserts:
//!
//! * the result-path responses are **path-for-path identical** to a
//!   cache-free oracle engine (the PR-2 deterministic merge makes that
//!   byte-identical-to-solo guarantee thread-count-invariant);
//! * steady-state shared serving is **at least 10x faster** than the
//!   warm plan-cache path on the repeat-heavy stream.

use std::sync::Arc;
use std::time::Duration;

use pathenum::{
    CacheOutcome, PathEnumConfig, PathEnumService, PlanCache, QueryEngine, QueryRequest,
    ServiceConfig,
};
use pathenum_graph::generators::{power_law, PowerLawConfig};
use pathenum_workloads::{generate_queries, skewed_stream, QueryGenConfig};

use crate::config::ExperimentConfig;
use crate::output::{banner, sci_ms, write_bench_json, Table};

/// How many times each distinct query recurs in the replayed stream.
const REPEATS: usize = 24;

/// The speedup the result layer must demonstrate over the warm
/// plan-cache path on the skewed stream.
const REQUIRED_SPEEDUP: f64 = 10.0;

fn service(
    graph: &Arc<pathenum_graph::CsrGraph>,
    config: PathEnumConfig,
    workers: usize,
    result_cache_bytes: usize,
) -> PathEnumService {
    PathEnumService::with_config(
        Arc::clone(graph),
        config,
        ServiceConfig {
            workers,
            result_cache_bytes,
            ..ServiceConfig::default()
        },
    )
}

/// Runs the experiment, asserts the claims, and writes
/// `BENCH_shared.json`.
pub fn run(config: &ExperimentConfig) {
    banner("Shared: grouped batches + result replay vs the warm plan-cache path");
    let quick = config.queries_per_set <= 4;
    let (n, d) = if quick { (6_000, 5) } else { (30_000, 6) };
    let graph = Arc::new(power_law(PowerLawConfig::social(n, d, config.seed)));
    let engine_config = PathEnumConfig {
        force: config.force_method,
        ..PathEnumConfig::default()
    };
    let workers = config.workers.unwrap_or(4);
    let k = config.default_k.max(6);
    // Enumeration cost is what the result layer amortizes away, so give
    // each request enough output to measure (the quick limit of 200 is
    // mostly index-build time).
    let limit = config.response_limit.max(10_000);

    // The claim is about re-enumeration, so the stream must be
    // enumeration-dominated: generate a wide candidate set and keep the
    // queries whose *warm* (plan-cache-hit) run costs the most — that is
    // exactly the work a result replay skips.
    let count = config.queries_per_set.max(4);
    let candidates = generate_queries(
        &graph,
        QueryGenConfig::paper_default(count * 8, k, config.seed),
    );
    let request = |q: pathenum::Query| QueryRequest::from_query(q).limit(limit);
    let mut sizer = QueryEngine::new(&graph, engine_config);
    let mut sized: Vec<(Duration, pathenum::Query)> = candidates
        .into_iter()
        .map(|q| {
            // First run warms the plan cache; the timed second run is
            // the steady-state re-enumeration cost.
            sizer
                .execute(&request(q))
                .expect("generated query is valid");
            let start = std::time::Instant::now();
            sizer
                .execute(&request(q))
                .expect("generated query is valid");
            (start.elapsed(), q)
        })
        .collect();
    sized.sort_by_key(|&(warm, q)| (std::cmp::Reverse(warm), q.s, q.t));
    let distinct: Vec<pathenum::Query> = sized.iter().take(count).map(|&(_, q)| q).collect();

    // Requests are not `Clone` (they may carry constraint closures), so
    // the stream is rebuilt per pass.
    let stream = || -> Vec<QueryRequest<'static>> {
        skewed_stream(&distinct, REPEATS)
            .into_iter()
            .map(request)
            .collect()
    };
    println!(
        "power-law graph: {} vertices, {} edges; stream: {} requests over {} distinct \
         queries (k={}, limit={}, workers={})\n",
        graph.num_vertices(),
        graph.num_edges(),
        distinct.len() * REPEATS,
        distinct.len(),
        k,
        limit,
        workers,
    );

    // PR-3 warm path: shared plan cache, re-enumerates every repeat.
    let warm = service(&graph, engine_config, workers, 0);
    // Shared path: result layer on, repeats replay the stored buffer.
    let shared = service(&graph, engine_config, workers, 64 << 20);
    // Seed both so the measured stream is pure steady state (plan hits
    // on one side, result hits on the other).
    for &q in &distinct {
        warm.execute(&request(q)).expect("generated query is valid");
        shared
            .execute(&request(q))
            .expect("generated query is valid");
    }

    let warm_report = warm.serve(stream());
    let shared_report = shared.serve(stream());
    for (w, s) in warm_report.responses.iter().zip(&shared_report.responses) {
        let (w, s) = (w.as_ref().unwrap(), s.as_ref().unwrap());
        assert_eq!(
            w.num_results(),
            s.num_results(),
            "shared execution changed a result count"
        );
    }

    // Path-for-path equality of the replayed answers against a
    // cache-free oracle (no plan cache, no result cache).
    let mut oracle = QueryEngine::with_cache(&graph, engine_config, PlanCache::new(0));
    let mut replayed = 0usize;
    for &q in &distinct {
        let expected = oracle
            .execute(&request(q).collect_paths(true))
            .expect("generated query is valid");
        let got = shared
            .execute(&request(q).collect_paths(true))
            .expect("generated query is valid");
        assert_eq!(
            got.report.cache,
            CacheOutcome::ResultHit,
            "seeded shared service must replay"
        );
        assert_eq!(
            got.paths, expected.paths,
            "replayed paths diverged from the cache-free oracle"
        );
        assert_eq!(got.termination, expected.termination);
        replayed += got.paths.len();
    }
    println!(
        "byte-identical outputs: {} distinct queries, {} replayed paths match the \
         cache-free oracle path-for-path",
        distinct.len(),
        replayed,
    );

    let mean = |wall: Duration, count: usize| wall / count.max(1) as u32;
    let mut table = Table::new(["pass", "wall", "mean/request", "throughput (req/s)"]);
    for (label, report) in [
        ("warm plan-cache path", &warm_report),
        ("shared result replay", &shared_report),
    ] {
        table.row([
            label.to_string(),
            sci_ms(report.wall),
            sci_ms(mean(report.wall, report.responses.len())),
            format!("{:.0}", report.throughput()),
        ]);
    }
    table.print();

    let stats = shared.result_cache_stats();
    let hit_rate = stats.hits as f64 / stats.lookups.max(1) as f64;
    let speedup = warm_report.wall.as_secs_f64() / shared_report.wall.as_secs_f64().max(1e-9);
    println!(
        "result-layer hit rate on the measured stream: {:.0}% ({} hits / {} lookups)",
        100.0 * hit_rate,
        stats.hits,
        stats.lookups,
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "shared execution must be >= {REQUIRED_SPEEDUP}x over the warm path on a skewed \
         stream, measured {speedup:.2}x ({:?} vs {:?})",
        warm_report.wall,
        shared_report.wall,
    );
    println!(
        "shared assertions passed: {speedup:.2}x over the warm plan-cache path \
         (required {REQUIRED_SPEEDUP:.0}x), outputs byte-identical"
    );

    write_bench_json(
        "BENCH_shared.json",
        &[
            ("warm_wall_ms", warm_report.wall.as_secs_f64() * 1e3),
            ("shared_wall_ms", shared_report.wall.as_secs_f64() * 1e3),
            (
                "warm_mean_ms",
                warm_report.wall.as_secs_f64() * 1e3 / warm_report.responses.len().max(1) as f64,
            ),
            (
                "shared_mean_ms",
                shared_report.wall.as_secs_f64() * 1e3
                    / shared_report.responses.len().max(1) as f64,
            ),
            ("shared_speedup", speedup),
            ("result_hit_rate", hit_rate),
            ("warm_throughput", warm_report.throughput()),
            ("shared_throughput", shared_report.throughput()),
        ],
    );
}

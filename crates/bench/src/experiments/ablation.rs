//! Ablations beyond the paper's figures, probing the design choices
//! DESIGN.md calls out:
//!
//! 1. **Pruning power** (Appendix B): edges kept by the light-weight
//!    index versus tuples kept by Algorithm 2's fully reduced relations
//!    versus the raw graph.
//! 2. **Barrier value**: BC-DFS versus the static-bound generic DFS
//!    (search-tree size and wall time).
//! 3. **Theoretical baselines**: T-DFS against the practical algorithms
//!    on a small workload (its per-step certificate BFS is the cost the
//!    paper's introduction motivates away from).

use std::time::Instant;

use pathenum::relations::Relations;
use pathenum::{Index, Query};
use pathenum_workloads::runner::run_query_set;
use pathenum_workloads::{datasets, Algorithm};

use crate::config::ExperimentConfig;
use crate::experiments::support::default_queries;
use crate::output::{banner, sci, sci_ms, Table};

/// Runs all five ablations.
pub fn run(config: &ExperimentConfig) {
    pruning_power(config);
    barrier_value(config);
    theoretical_baselines(config);
    global_index_filter(config);
    hot_index_memory(config);
}

fn pruning_power(config: &ExperimentConfig) {
    banner("Ablation 1: pruning power — index vs full reducer vs raw graph (ep)");
    let graph = datasets::ep();
    let k = config.default_k.min(5); // Algorithm 2 scans k copies of E
    let queries = default_queries(&graph, k, config);
    let sample = &queries[..queries.len().min(5)];
    let mut table = Table::new([
        "query",
        "raw edges",
        "reduced tuples",
        "index edges",
        "reducer ms",
        "index ms",
    ]);
    for &q in sample {
        let q = Query::new(q.s, q.t, k).expect("validated endpoints");
        let reducer_start = Instant::now();
        let relations = Relations::build_reduced(&graph, q);
        let reducer_time = reducer_start.elapsed();
        let index_start = Instant::now();
        let index = Index::build(&graph, q);
        let index_time = index_start.elapsed();
        table.row([
            format!("q({},{},{k})", q.s, q.t),
            sci((graph.num_edges() * k as usize) as f64),
            sci(relations.total_tuples() as f64),
            sci(index.num_edges() as f64),
            sci_ms(reducer_time),
            sci_ms(index_time),
        ]);
    }
    table.print();
    println!("claim (Appendix B): competitive pruning at a fraction of the build cost\n");
}

fn barrier_value(config: &ExperimentConfig) {
    banner("Ablation 2: dynamic barriers (BC-DFS) vs static bound (GEN-DFS)");
    let graph = datasets::ep();
    let queries = default_queries(&graph, config.default_k, config);
    let mut table = Table::new(["method", "mean ms", "partials/query", "invalid/query"]);
    for algo in [Algorithm::GenericDfs, Algorithm::BcDfs] {
        let summary = run_query_set(algo, &graph, &queries, config.measure());
        let n = summary.measurements.len().max(1) as f64;
        let partials = summary
            .measurements
            .iter()
            .map(|m| m.report.counters.partial_results as f64)
            .sum::<f64>()
            / n;
        let invalid = summary
            .measurements
            .iter()
            .map(|m| m.report.counters.invalid_partial_results as f64)
            .sum::<f64>()
            / n;
        table.row([
            algo.name().to_string(),
            sci(summary.mean_query_time_ms),
            sci(partials),
            sci(invalid),
        ]);
    }
    table.print();
    println!("claim (Fig. 6 discussion): barriers add little extra pruning over distances\n");
}

fn theoretical_baselines(config: &ExperimentConfig) {
    banner("Ablation 3: T-DFS vs practical algorithms (small workload)");
    let graph = datasets::build("tw").expect("tw is registered");
    let k = config.default_k.min(5);
    let queries = default_queries(&graph, k, config);
    let sample = &queries[..queries.len().min(6)];
    let mut table = Table::new(["method", "mean ms", "invalid/query", "timeouts"]);
    for algo in [Algorithm::TDfs, Algorithm::BcDfs, Algorithm::IdxDfs] {
        let summary = run_query_set(algo, &graph, sample, config.measure());
        let n = summary.measurements.len().max(1) as f64;
        let invalid = summary
            .measurements
            .iter()
            .map(|m| m.report.counters.invalid_partial_results as f64)
            .sum::<f64>()
            / n;
        table.row([
            algo.name().to_string(),
            sci(summary.mean_query_time_ms),
            sci(invalid),
            format!("{:.0}%", summary.timeout_fraction * 100.0),
        ]);
    }
    table.print();
    println!("claim (§1): T-DFS's zero invalid partials cost more than they save");
}

fn global_index_filter(config: &ExperimentConfig) {
    banner("Ablation 4: offline global index (PLL) as an existence filter (§7.5)");
    // Streaming-style workload: random endpoint pairs, most of which have
    // no result within k. The per-query index pays two BFS to learn that;
    // the oracle answers from labels.
    use pathenum::global::GlobalIndexedGraph;
    use pathenum::{CountingSink, PathEnumConfig, Query};
    use rand::{Rng, SeedableRng};

    let graph = datasets::build("gg").expect("registered");
    let k = 4u32;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let n = graph.num_vertices() as u32;
    let queries: Vec<Query> = (0..config.queries_per_set * 20)
        .filter_map(|_| Query::new(rng.gen_range(0..n), rng.gen_range(0..n), k).ok())
        .collect();

    let build_start = Instant::now();
    let indexed = GlobalIndexedGraph::new(graph.clone());
    let oracle_build = build_start.elapsed();

    let direct_start = Instant::now();
    let mut direct_results = 0u64;
    for &q in &queries {
        let mut sink = CountingSink::default();
        pathenum::path_enum(&graph, q, PathEnumConfig::default(), &mut sink)
            .expect("generated queries are in range");
        direct_results += sink.count;
    }
    let direct_time = direct_start.elapsed();

    let filtered_start = Instant::now();
    let mut filtered_results = 0u64;
    let mut skipped = 0usize;
    for &q in &queries {
        if !indexed.may_have_results(q) {
            skipped += 1;
            continue;
        }
        let mut sink = CountingSink::default();
        indexed
            .path_enum(q, PathEnumConfig::default(), &mut sink)
            .expect("generated queries are in range");
        filtered_results += sink.count;
    }
    let filtered_time = filtered_start.elapsed();

    assert_eq!(
        direct_results, filtered_results,
        "filter must not change results"
    );
    let mut table = Table::new(["variant", "total ms", "queries skipped"]);
    table.row([
        "per-query index only".to_string(),
        sci_ms(direct_time),
        "0".to_string(),
    ]);
    table.row([
        "PLL existence filter".to_string(),
        sci_ms(filtered_time),
        format!("{skipped}/{}", queries.len()),
    ]);
    table.print();
    println!(
        "oracle: one-time build {} (avg label size {:.1}, {} KiB)",
        sci_ms(oracle_build),
        indexed.oracle().average_label_size(),
        indexed.oracle().heap_bytes() / 1024
    );
    println!("claim (§7.5): a global index removes the per-query build for empty queries");
}

fn hot_index_memory(config: &ExperimentConfig) {
    banner("Ablation 5: HPI-style hot-pair path index vs PathEnum's per-query index");
    use pathenum_baselines::hot_index::HotIndex;

    let graph = datasets::build("sl").expect("registered");
    let queries = default_queries(&graph, config.default_k, config);
    let mut table = Table::new([
        "k",
        "HPI segments",
        "HPI KiB",
        "HPI build ms",
        "PathEnum index KiB (max)",
    ]);
    for k in [2u32, 3, 4, 5] {
        let build_start = Instant::now();
        let hpi = HotIndex::build(&graph, 0.1, k);
        let build_time = build_start.elapsed();
        let max_query_index = queries
            .iter()
            .map(|&q| {
                let q = Query::new(q.s, q.t, k).expect("validated endpoints");
                Index::build(&graph, q).heap_bytes()
            })
            .max()
            .unwrap_or(0);
        table.row([
            k.to_string(),
            hpi.num_segments().to_string(),
            (hpi.heap_bytes() / 1024).to_string(),
            sci_ms(build_time),
            (max_query_index / 1024).to_string(),
        ]);
    }
    table.print();
    println!("claim (§2.2): HPI's path materialization grows exponentially with the hop cap,");
    println!("while the query-dependent light-weight index stays near the graph size");
}

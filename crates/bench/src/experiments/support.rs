//! Helpers shared by the experiment drivers.

use pathenum::query::Query;
use pathenum_graph::CsrGraph;
use pathenum_workloads::querygen::{generate_queries, QueryGenConfig};

use crate::config::ExperimentConfig;

/// The two representative graphs Section 7 drills into: `ep` (long
/// queries) and `gg` (short queries).
pub fn representative_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("ep", pathenum_workloads::datasets::ep()),
        ("gg", pathenum_workloads::datasets::gg()),
    ]
}

/// The paper's default query set for a graph: `s, t in V'`, `k` hops.
pub fn default_queries(graph: &CsrGraph, k: u32, config: &ExperimentConfig) -> Vec<Query> {
    generate_queries(
        graph,
        QueryGenConfig::paper_default(config.queries_per_set, k, config.seed),
    )
}

/// Geometric mean of positive values (robust summary across orders of
/// magnitude); zero entries are clamped to `floor`.
pub fn geometric_mean(values: &[f64], floor: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(floor).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_graphs_build() {
        let graphs = representative_graphs();
        assert_eq!(graphs.len(), 2);
        assert!(graphs.iter().all(|(_, g)| g.num_edges() > 0));
    }

    #[test]
    fn default_queries_match_config() {
        let cfg = ExperimentConfig::quick();
        let g = pathenum_workloads::datasets::gg();
        let queries = default_queries(&g, 4, &cfg);
        assert_eq!(queries.len(), cfg.queries_per_set);
        assert!(queries.iter().all(|q| q.k == 4));
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[], 1e-9), 0.0);
        let gm = geometric_mean(&[1.0, 100.0], 1e-9);
        assert!((gm - 10.0).abs() < 1e-9);
        // Zero values are floored, not fatal.
        assert!(geometric_mean(&[0.0, 1.0], 1e-3) > 0.0);
    }
}

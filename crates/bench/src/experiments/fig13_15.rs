//! Figures 13, 14, 15 (Appendix F): query time, throughput, and response
//! time with k varied for all five algorithms on ep and gg.

use pathenum_workloads::runner::{measure_response_time, run_query_set};
use pathenum_workloads::Algorithm;

use crate::config::ExperimentConfig;
use crate::experiments::support::{default_queries, representative_graphs};
use crate::output::{banner, sci, Table};

/// Runs the experiment and prints the three series per graph.
pub fn run(config: &ExperimentConfig) {
    banner("Figures 13-15: query time (ms) / throughput (/s) / response time (ms) vs k");
    let algos = Algorithm::table3();
    for (name, graph) in representative_graphs() {
        let mut time_table = Table::new(
            ["k".to_string()]
                .into_iter()
                .chain(algos.iter().map(|a| a.name().to_string())),
        );
        let mut tput_table = Table::new(
            ["k".to_string()]
                .into_iter()
                .chain(algos.iter().map(|a| a.name().to_string())),
        );
        let mut resp_table = Table::new(["k", "BC-DFS", "IDX-DFS"]);
        for k in config.k_sweep() {
            let queries = default_queries(&graph, k, config);
            if queries.is_empty() {
                continue;
            }
            let mut time_cells = vec![k.to_string()];
            let mut tput_cells = vec![k.to_string()];
            for algo in algos {
                let summary = run_query_set(algo, &graph, &queries, config.measure());
                let star = if summary.timeout_fraction > 0.2 {
                    "*"
                } else {
                    ""
                };
                time_cells.push(format!("{}{}", sci(summary.mean_query_time_ms), star));
                tput_cells.push(sci(summary.mean_throughput));
            }
            time_table.row(time_cells);
            tput_table.row(tput_cells);

            let mut resp_cells = vec![k.to_string()];
            for algo in [Algorithm::BcDfs, Algorithm::IdxDfs] {
                let mean: f64 = queries
                    .iter()
                    .map(|&q| {
                        measure_response_time(algo, &graph, q, config.measure()).as_secs_f64() * 1e3
                    })
                    .sum::<f64>()
                    / queries.len() as f64;
                resp_cells.push(sci(mean));
            }
            resp_table.row(resp_cells);
        }
        println!("--- {name}: Figure 13 (query time, ms; '*' = >20% out of time) ---");
        time_table.print();
        println!("--- {name}: Figure 14 (throughput, results/s) ---");
        tput_table.print();
        println!("--- {name}: Figure 15 (response time, ms) ---");
        resp_table.print();
        println!();
    }
}

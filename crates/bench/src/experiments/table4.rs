//! Table 4: query-time distribution — fraction of queries finishing
//! within half the limit ("<60s" in the paper) and fraction running out
//! of time (">120s"), for BC-DFS vs IDX-DFS with k varied on ep and gg.

use pathenum_workloads::runner::run_query_set;
use pathenum_workloads::Algorithm;

use crate::config::ExperimentConfig;
use crate::experiments::support::{default_queries, representative_graphs};
use crate::output::{banner, Table};

/// Runs the experiment and prints the table.
pub fn run(config: &ExperimentConfig) {
    banner("Table 4: query-time distribution (fractions of the query set)");
    let half = config.time_limit / 2;
    println!(
        "scaled thresholds: '<fast' = finished within {:?}, '>limit' = hit the {:?} cap\n",
        half, config.time_limit
    );
    for (name, graph) in representative_graphs() {
        let mut table = Table::new([
            "k",
            "BC-DFS <fast",
            "BC-DFS >limit",
            "IDX-DFS <fast",
            "IDX-DFS >limit",
        ]);
        for k in config.k_sweep() {
            let queries = default_queries(&graph, k, config);
            if queries.is_empty() {
                continue;
            }
            let mut cells = vec![k.to_string()];
            for algo in [Algorithm::BcDfs, Algorithm::IdxDfs] {
                let summary = run_query_set(algo, &graph, &queries, config.measure());
                let n = summary.measurements.len() as f64;
                let fast = summary
                    .measurements
                    .iter()
                    .filter(|m| m.elapsed <= half)
                    .count() as f64
                    / n;
                cells.push(format!("{fast:.3}"));
                cells.push(format!("{:.3}", summary.timeout_fraction));
            }
            table.row(cells);
        }
        println!("--- {name} ---");
        table.print();
        println!();
    }
}

//! Overload serving: cost-based admission control vs an unbounded FIFO
//! (not a paper experiment — it characterizes the `pathenum::catalog`
//! admission layer at ≥2× capacity arrival rates).
//!
//! A mixed stream (75% cheap warm queries, 25% heavy) is calibrated
//! sequentially, then replayed open-loop through a `CatalogService`
//! three times:
//!
//! 1. **calm** — admission ON at a third of capacity: nothing may shed;
//! 2. **overload, admission ON** — arrivals at 2× capacity: the cost
//!    budget and bounded per-tenant queue shed the excess fast, and the
//!    two-lane dispatch keeps cheap queries flowing;
//! 3. **overload, admission OFF** — the same stream into the PR 5-style
//!    unbounded FIFO baseline: everything completes, but behind an
//!    ever-growing queue.
//!
//! Asserted invariants:
//!
//! * calm phase sheds nothing; the overload phase sheds (> 0);
//! * **goodput** (completions within an SLA of a quarter of the arrival
//!   span, per second) is *strictly higher* with admission ON;
//! * **interactive-class p99 sojourn** is *strictly lower* with
//!   admission ON;
//! * every completed request's paths are byte-identical to the
//!   sequential engine, in both runs (admission never corrupts, it only
//!   sheds).
//!
//! Why SLA-goodput and not raw completed throughput: at 2× capacity
//! both configurations complete ≈ capacity × wall queries — a FIFO
//! completes *all* arrivals eventually, just arbitrarily late. The
//! difference overload-safe serving buys is *when* the answers land.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pathenum::query::Query;
use pathenum::{
    AdmissionConfig, CatalogConfig, CatalogRequest, CatalogService, PathEnumConfig, QueryEngine,
    QueryRequest,
};
use pathenum_graph::generators::{power_law, PowerLawConfig};
use pathenum_workloads::serving::{run_overload, OverloadReport, ServingBounds};
use pathenum_workloads::{generate_queries, QueryGenConfig};

use crate::config::ExperimentConfig;
use crate::output::{banner, write_bench_json, Table};

/// Fraction of arrivals that are heavy queries (1 in `HEAVY_EVERY`).
const HEAVY_EVERY: usize = 4;

/// Runs the experiment, printing the three-phase comparison table.
pub fn run(config: &ExperimentConfig) {
    banner("Overload: cost-based admission control vs unbounded FIFO at 2x capacity");
    let quick = config.queries_per_set <= 4;
    let (n, d) = if quick { (5_000, 5) } else { (15_000, 6) };
    let graph = Arc::new(power_law(PowerLawConfig::social(n, d, config.seed)));
    let workers = config.workers.unwrap_or(2);
    // The limit must keep heavy queries *genuinely* heavy (hundreds of
    // microseconds of warm enumeration), or the whole experiment sits
    // below OS scheduling granularity and queueing dynamics drown in
    // sleep/wakeup jitter.
    let limit = config.response_limit.max(2_000);
    let arrivals = if quick { 240 } else { 400 };

    // Query mix: a small warm set of cheap queries plus a few heavy
    // ones, heavy every HEAVY_EVERY-th arrival. The heavy share bounds
    // max/mean service time structurally (mean >= max / HEAVY_EVERY),
    // which keeps the SLA derivation below well-conditioned, and the
    // k gap keeps the two classes far apart in both modeled cost and
    // service time (the lane split and the p99 comparison rely on it).
    let cheap = generate_queries(&graph, QueryGenConfig::paper_default(4, 3, config.seed));
    let heavy = generate_queries(
        &graph,
        QueryGenConfig::paper_default(2, config.default_k.max(7), config.seed + 1),
    );
    let mut distinct: Vec<Query> = cheap.clone();
    distinct.extend(heavy.iter().copied());
    let mut stream_ids = Vec::with_capacity(arrivals);
    for i in 0..arrivals {
        if i % HEAVY_EVERY == HEAVY_EVERY - 1 {
            stream_ids.push(cheap.len() + (i / HEAVY_EVERY) % heavy.len());
        } else {
            stream_ids.push(i % cheap.len());
        }
    }
    let stream: Vec<Query> = stream_ids.iter().map(|&id| distinct[id]).collect();

    // Sequential calibration: pass 1 warms the engine's plan cache,
    // pass 2 measures warm per-query service time and collects the
    // oracle paths plus each query's modeled plan cost (the admission
    // price the catalog will charge).
    let request_for = |q: Query| QueryRequest::from_query(q).limit(limit).collect_paths(true);
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    for &q in &distinct {
        engine.execute(&request_for(q)).expect("valid query");
    }
    let mut service_time = Vec::with_capacity(distinct.len());
    let mut cost = Vec::with_capacity(distinct.len());
    let mut oracle = Vec::with_capacity(distinct.len());
    for &q in &distinct {
        let start = Instant::now();
        let response = engine.execute(&request_for(q)).expect("valid query");
        service_time.push(start.elapsed());
        cost.push(
            response
                .plan
                .expect("executed queries carry a plan")
                .modeled_cost(),
        );
        oracle.push(response.paths);
    }
    let mean_stream = stream_ids
        .iter()
        .map(|&id| service_time[id])
        .sum::<Duration>()
        / arrivals as u32;
    let max_service = *service_time.iter().max().expect("non-empty calibration");

    // Interactive/batch split: between the classes when they separate,
    // at the median otherwise.
    let max_cheap_cost = *cost[..cheap.len()].iter().max().expect("cheap costs");
    let min_heavy_cost = *cost[cheap.len()..].iter().min().expect("heavy costs");
    let threshold = if min_heavy_cost > max_cheap_cost {
        max_cheap_cost + (min_heavy_cost - max_cheap_cost) / 2
    } else {
        let mut sorted = cost.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    };
    let max_cost = *cost.iter().max().expect("non-empty calibration");

    // 2x capacity: with `workers` servers clearing one request every
    // `mean_stream` on average, arrivals every mean/(2*workers) demand
    // twice what the pool can clear. The SLA is a quarter of the
    // arrival span: comfortably above the bounded-queue sojourn the
    // admission config below guarantees, comfortably below the sojourns
    // an unbounded FIFO accumulates by the end of the span.
    let overload_interval = (mean_stream / (2 * workers as u32)).max(Duration::from_micros(1));
    // Calm arrivals sit far below capacity, with an absolute floor so a
    // scheduler hiccup on a noisy CI runner cannot fake a backlog.
    let calm_interval = (max_service * 4).max(Duration::from_micros(300));
    let span = overload_interval * arrivals as u32;
    let sla = span / 4;

    // Tight bounds so an *admitted* request's sojourn is structurally
    // far inside the SLA: at most ~(workers + 1) requests of backlog
    // spread over `workers` servers is well under a quarter of the
    // span even if the replay runs slower than the calibration pass.
    let admission_on = AdmissionConfig {
        cost_budget: Some(max_cost.saturating_mul(workers as u64)),
        max_queue_per_tenant: workers + 1,
        interactive_cost_threshold: threshold,
    };
    println!(
        "power-law graph: {} vertices, {} edges; workers: {workers}; \
         stream: {arrivals} arrivals over {} distinct queries (limit {limit})",
        graph.num_vertices(),
        graph.num_edges(),
        distinct.len(),
    );
    println!(
        "calibrated: mean service {:.3}ms, max {:.3}ms; overload interval {:.3}ms \
         (2x capacity), SLA {:.2}ms; budget {}, tenant queue {}, lane threshold {}\n",
        mean_stream.as_secs_f64() * 1e3,
        max_service.as_secs_f64() * 1e3,
        overload_interval.as_secs_f64() * 1e3,
        sla.as_secs_f64() * 1e3,
        admission_on.cost_budget.expect("budget set"),
        admission_on.max_queue_per_tenant,
        admission_on.interactive_cost_threshold,
    );

    let bounds = ServingBounds {
        limit: Some(limit),
        time_budget: None,
        collect: true,
    };
    let service_with = |admission: AdmissionConfig| {
        let service = CatalogService::new(
            PathEnumConfig::default(),
            CatalogConfig {
                workers,
                admission,
                ..CatalogConfig::default()
            },
        );
        service.catalog().register("serving", Arc::clone(&graph));
        // Warm the tenant's plan cache so submit-side planning is a
        // cache lookup during the measured replay (both configurations
        // start equally warm).
        for &q in &distinct {
            service
                .execute(CatalogRequest::new("serving", "tenant-a", request_for(q)))
                .expect("warmup queries are valid");
        }
        service
    };

    // Phase 1: calm traffic through the admission-ON service.
    let on = service_with(admission_on);
    let calm = run_overload(&on, "serving", "tenant-a", &stream, calm_interval, bounds);
    assert_eq!(calm.shed(), 0, "calm traffic must never shed");
    assert_eq!(calm.completed(), arrivals, "calm traffic all completes");

    // Phase 2: 2x-capacity arrivals through the same (warm) service.
    let over_on = run_overload(
        &on,
        "serving",
        "tenant-a",
        &stream,
        overload_interval,
        bounds,
    );
    assert!(
        over_on.shed() > 0,
        "2x-capacity arrivals must trip admission control"
    );

    // Phase 3: the same stream into the unbounded-FIFO baseline.
    let off = service_with(AdmissionConfig::disabled());
    let over_off = run_overload(
        &off,
        "serving",
        "tenant-a",
        &stream,
        overload_interval,
        bounds,
    );
    assert_eq!(over_off.shed(), 0, "the baseline admits everything");

    // Admission never corrupts: every completed request in every run is
    // byte-identical to the sequential engine.
    for (label, report) in [("calm", &calm), ("on", &over_on), ("off", &over_off)] {
        for (i, outcome) in report.outcomes.iter().enumerate() {
            if let Ok(response) = &outcome.response {
                assert_eq!(
                    response.paths, oracle[stream_ids[i]],
                    "{label}: arrival {i} diverged from the sequential engine"
                );
            }
        }
    }

    // The interactive class, by the same cost threshold the admission
    // layer dispatches on, evaluated identically for both runs.
    let interactive: Vec<usize> = stream_ids
        .iter()
        .enumerate()
        .filter(|(_, &id)| cost[id] <= threshold)
        .map(|(i, _)| i)
        .collect();
    let class_p99 = |report: &OverloadReport| -> Duration {
        let mut sojourns: Vec<Duration> = interactive
            .iter()
            .filter(|&&i| report.outcomes[i].response.is_ok())
            .map(|&i| report.sojourns[i])
            .collect();
        assert!(!sojourns.is_empty(), "interactive completions exist");
        sojourns.sort();
        sojourns[((sojourns.len() - 1) as f64 * 0.99).round() as usize]
    };
    let p99_on = class_p99(&over_on);
    let p99_off = class_p99(&over_off);
    let goodput_on = over_on.goodput(sla);
    let goodput_off = over_off.goodput(sla);

    let mut table = Table::new([
        "phase",
        "arrivals",
        "done",
        "shed",
        "shed%",
        "goodput/s",
        "int p99",
        "wall",
    ]);
    for (label, report) in [
        ("calm (on)", &calm),
        ("2x (on)", &over_on),
        ("2x (off)", &over_off),
    ] {
        table.row([
            label.to_string(),
            report.arrivals().to_string(),
            report.completed().to_string(),
            report.shed().to_string(),
            format!("{:.1}%", 100.0 * report.shed_rate()),
            format!("{:.0}", report.goodput(sla)),
            format!("{:.3}ms", class_p99(report).as_secs_f64() * 1e3),
            format!("{:.1}ms", report.wall.as_secs_f64() * 1e3),
        ]);
    }
    table.print();

    if let Some(decision) = over_on
        .outcomes
        .iter()
        .filter_map(|o| o.decision.as_ref())
        .find(|d| !d.admitted())
    {
        println!("\nfirst shed request's admission decision:\n{decision}");
    }

    assert!(
        goodput_on > goodput_off,
        "admission must win on goodput: {goodput_on:.0}/s (on) vs {goodput_off:.0}/s (off)"
    );
    assert!(
        p99_on < p99_off,
        "admission must win on interactive p99: {p99_on:?} (on) vs {p99_off:?} (off)"
    );

    write_bench_json(
        "BENCH_overload.json",
        &[
            ("workers", workers as f64),
            ("arrivals", arrivals as f64),
            ("seed", config.seed as f64),
            ("shed_rate_on", over_on.shed_rate()),
            ("goodput_on", goodput_on),
            ("goodput_off", goodput_off),
            ("interactive_p99_on_ms", p99_on.as_secs_f64() * 1e3),
            ("interactive_p99_off_ms", p99_off.as_secs_f64() * 1e3),
        ],
    );
    println!(
        "\ncalm shed rate: 0% over {arrivals} arrivals; overload shed rate: {:.1}%",
        100.0 * over_on.shed_rate()
    );
    println!(
        "overload assertions passed: calm sheds zero, 2x sheds {}, goodput {:.0}/s > {:.0}/s, \
         interactive p99 {:.3}ms < {:.3}ms, all completed results identical to the sequential engine",
        over_on.shed(),
        goodput_on,
        goodput_off,
        p99_on.as_secs_f64() * 1e3,
        p99_off.as_secs_f64() * 1e3,
    );
}

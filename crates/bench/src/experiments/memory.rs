//! Storage-format measurement with pinned guarantees (`reproduce memory`).
//!
//! Quantifies what the zero-copy storage layer buys, asserting the
//! correctness contracts in-process before trusting any number:
//!
//! * **Bytes per edge** — serialized size of the text edge list, the
//!   `PEG1` edge-pair format, the CSR-native `PEG2` image, and the
//!   varint-compressed `PEG2` image.
//! * **Cold start** — time from serialized bytes to a query-ready
//!   graph: text parse (split + sort + CSR build) vs `PEG1` (parse +
//!   CSR build) vs `PEG2` (bulk load + validation, no rebuild). The
//!   `PEG2` path must be at least 10× faster than the text parse.
//! * **Serving** — query throughput over a [`FrozenGraph`] served
//!   straight from its load buffer vs the heap `CsrGraph`, with result
//!   paths asserted byte-identical across representations for *both*
//!   enumeration methods (IDX-DFS and IDX-JOIN) — the strictly
//!   ascending neighbor order makes enumeration order deterministic,
//!   so equality is exact, not set-wise.
//! * **Footprints** — compressed [`CompactBits`] reach sets vs the
//!   dense [`DenseBits`] oracle: byte ratio, with membership asserted
//!   identical over the whole vertex space (lossless compression).
//!
//! Honors `--graph-file PATH` (edge list, `PEG1`, or `PEG2`; see
//! [`read_graph_file`]) to measure a real dataset instead of the
//! built-in synthetic ones, and always exercises the on-disk `.peg`
//! round trip through the format-sniffing loader. Writes
//! `BENCH_memory.json` for trend tracking across PRs.

use std::hint::black_box;
use std::time::{Duration, Instant};

use pathenum::{CompactBits, DenseBits, Method, PathEnumConfig, QueryEngine, QueryRequest};
use pathenum_graph::bfs::{distances_epoch_into, BfsOptions, Direction};
use pathenum_graph::epoch::EpochMap;
use pathenum_graph::io::{read_edge_list, write_edge_list};
use pathenum_graph::io_binary::{
    read_binary, read_frozen, read_graph_file, write_binary, write_frozen, write_frozen_file,
};
use pathenum_graph::types::INFINITE_DISTANCE;
use pathenum_graph::{CsrGraph, FrozenGraph, GraphHandle, NeighborAccess, VertexId};

use super::support::{default_queries, geometric_mean, representative_graphs};
use crate::config::ExperimentConfig;
use crate::output::{banner, sci, sci_ms, write_bench_json, Table};

/// Cold-start floor asserted for `PEG2` vs text parse. Debug builds
/// keep a reduced floor: the validation pass deoptimizes harder than
/// string parsing does, and the release CI job is the pinned gate.
const COLDSTART_FLOOR: f64 = if cfg!(debug_assertions) { 2.0 } else { 10.0 };

/// The graphs under measurement: `--graph-file` if given (loaded
/// through the format-sniffing loader, materialized to a heap CSR as
/// the baseline representation), else the representative datasets.
fn measurement_graphs(config: &ExperimentConfig) -> Vec<(String, CsrGraph)> {
    let Some(path) = &config.graph_file else {
        return representative_graphs()
            .into_iter()
            .map(|(name, g)| (name.to_string(), g))
            .collect();
    };
    let handle = match read_graph_file(path) {
        Ok(handle) => handle,
        Err(e) => panic!("cannot load --graph-file {}: {e}", path.display()),
    };
    println!(
        "loaded {} as {} ({} vertices, {} edges)",
        path.display(),
        handle.representation(),
        handle.num_vertices(),
        handle.num_edges()
    );
    let graph = match &handle {
        GraphHandle::Heap(g) => (**g).clone(),
        GraphHandle::Frozen(g) => g.to_csr(),
        GraphHandle::Dynamic(g) => g.snapshot(),
    };
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "graph".to_string());
    vec![(name, graph)]
}

struct FormatMetrics {
    text_bytes: usize,
    peg1_bytes: usize,
    peg2_bytes: usize,
    peg2c_bytes: usize,
    text_load: Duration,
    peg1_load: Duration,
    peg2_load: Duration,
    /// text-parse time over `PEG2` load time.
    coldstart_speedup: f64,
}

/// Serializes `graph` into every format and times deserialization from
/// memory (min-of-reps; the disk round trip is exercised separately so
/// filesystem noise stays out of the comparison).
fn format_metrics(graph: &CsrGraph, reps: u32) -> (FormatMetrics, FrozenGraph, FrozenGraph) {
    let mut text = Vec::new();
    write_edge_list(graph, &mut text).expect("in-memory write");
    let mut peg1 = Vec::new();
    write_binary(graph, &mut peg1).expect("in-memory write");
    let mut peg2 = Vec::new();
    write_frozen(graph, false, &mut peg2).expect("in-memory write");
    let mut peg2c = Vec::new();
    write_frozen(graph, true, &mut peg2c).expect("in-memory write");

    let time_min = |f: &mut dyn FnMut()| {
        let mut best = Duration::MAX;
        for _ in 0..reps {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed());
        }
        best
    };
    let text_load = time_min(&mut || {
        black_box(read_edge_list(text.as_slice()).expect("round trip").graph);
    });
    let peg1_load = time_min(&mut || {
        black_box(read_binary(peg1.as_slice()).expect("round trip"));
    });
    let peg2_load = time_min(&mut || {
        black_box(read_frozen(peg2.as_slice()).expect("round trip"));
    });

    let frozen = read_frozen(peg2.as_slice()).expect("round trip");
    let frozen_c = read_frozen(peg2c.as_slice()).expect("round trip");
    let metrics = FormatMetrics {
        text_bytes: text.len(),
        peg1_bytes: peg1.len(),
        peg2_bytes: peg2.len(),
        peg2c_bytes: peg2c.len(),
        text_load,
        peg1_load,
        peg2_load,
        coldstart_speedup: text_load.as_secs_f64() / peg2_load.as_secs_f64().max(1e-12),
    };
    (metrics, frozen, frozen_c)
}

/// Runs the query set over one representation with one forced method,
/// returning the collected per-query path lists and the wall time.
fn run_queries<G: pathenum_graph::GraphSnapshot>(
    graph: &G,
    queries: &[pathenum::Query],
    method: Method,
) -> (Vec<Vec<Vec<VertexId>>>, Duration) {
    let engine_config = PathEnumConfig {
        force: Some(method),
        ..PathEnumConfig::default()
    };
    let mut engine = QueryEngine::new(graph, engine_config);
    let mut paths = Vec::with_capacity(queries.len());
    let start = Instant::now();
    for &q in queries {
        let response = engine
            .execute(&QueryRequest::from_query(q).collect_paths(true))
            .expect("valid query");
        paths.push(response.paths);
    }
    (paths, start.elapsed())
}

struct ServeMetrics {
    heap_qps: f64,
    frozen_qps: f64,
}

/// Asserts byte-identical results across heap, frozen, and compressed
/// frozen for both enumeration methods, and measures throughput of the
/// heap vs frozen representations (IDX-DFS, the default-leaning method).
fn serve_metrics(
    graph: &CsrGraph,
    frozen: &FrozenGraph,
    frozen_c: &FrozenGraph,
    queries: &[pathenum::Query],
) -> ServeMetrics {
    let mut heap_time = Duration::ZERO;
    let mut frozen_time = Duration::ZERO;
    for method in [Method::IdxDfs, Method::IdxJoin] {
        let (heap_paths, ht) = run_queries(graph, queries, method);
        let (frozen_paths, ft) = run_queries(frozen, queries, method);
        let (frozen_c_paths, _) = run_queries(frozen_c, queries, method);
        assert_eq!(
            heap_paths, frozen_paths,
            "representation disagreement: heap vs frozen ({method})"
        );
        assert_eq!(
            heap_paths, frozen_c_paths,
            "representation disagreement: heap vs frozen-compressed ({method})"
        );
        heap_time += ht;
        frozen_time += ft;
    }
    let qps = |d: Duration| 2.0 * queries.len() as f64 / d.as_secs_f64().max(1e-12);
    ServeMetrics {
        heap_qps: qps(heap_time),
        frozen_qps: qps(frozen_time),
    }
}

struct FootprintMetrics {
    dense_bytes: usize,
    compact_bytes: usize,
}

/// Builds the `k − 1`-bounded reach set of each query source and
/// compares the compressed footprint representation against the dense
/// oracle: identical membership over the whole vertex space, summed
/// byte cost for the ratio.
fn footprint_metrics(graph: &CsrGraph, queries: &[pathenum::Query]) -> FootprintMetrics {
    let mut dist = EpochMap::new(INFINITE_DISTANCE);
    let mut queue = std::collections::VecDeque::new();
    let mut dense_bytes = 0usize;
    let mut compact_bytes = 0usize;
    for q in queries {
        let options = BfsOptions {
            direction: Direction::Forward,
            excluded: Some(q.t),
            max_depth: Some(q.k.saturating_sub(1)),
        };
        distances_epoch_into(graph, q.s, options, &mut dist, &mut queue);
        let bound = q.k.saturating_sub(1);
        let compact = CompactBits::from_reach(&dist, bound);
        let dense = DenseBits::from_reach(&dist, bound);
        for v in 0..graph.num_vertices() as VertexId {
            assert_eq!(
                compact.contains(v),
                dense.contains(v),
                "footprint compression lost vertex {v}"
            );
        }
        dense_bytes += dense.heap_bytes();
        compact_bytes += compact.heap_bytes();
    }
    FootprintMetrics {
        dense_bytes,
        compact_bytes,
    }
}

/// The footprint regime the compression targets: `k − 1`-bounded reach
/// sets on a large sparse graph, where a bounded BFS touches thousands
/// of vertices out of hundreds of thousands. Returns `(dense_bytes,
/// compact_bytes)` summed over the sampled sources, with membership
/// asserted identical on every touched vertex.
fn footprint_scaling(config: &ExperimentConfig, quick: bool) -> (usize, usize) {
    let n: usize = if quick { 50_000 } else { 200_000 };
    let graph = pathenum_graph::generators::erdos_renyi(n, n * 3, config.seed);
    let mut dist = EpochMap::new(INFINITE_DISTANCE);
    let mut queue = std::collections::VecDeque::new();
    let mut dense_bytes = 0usize;
    let mut compact_bytes = 0usize;
    let sources = if quick { 8 } else { 16 };
    for i in 0..sources {
        let s = (i * (n / sources)) as VertexId;
        let t = ((i + 1) * (n / sources) - 1) as VertexId;
        let options = BfsOptions {
            direction: Direction::Forward,
            excluded: Some(t),
            max_depth: Some(3),
        };
        distances_epoch_into(&graph, s, options, &mut dist, &mut queue);
        let compact = CompactBits::from_reach(&dist, 3);
        let dense = DenseBits::from_reach(&dist, 3);
        for &v in dist.touched() {
            assert_eq!(
                compact.contains(v),
                dense.contains(v),
                "footprint compression lost vertex {v}"
            );
        }
        dense_bytes += dense.heap_bytes();
        compact_bytes += compact.heap_bytes();
    }
    (dense_bytes, compact_bytes)
}

/// Round trip through an on-disk `.peg` file and the format-sniffing
/// loader — the same path `reproduce --graph-file` exercises.
fn assert_file_round_trip(name: &str, graph: &CsrGraph) {
    let path =
        std::env::temp_dir().join(format!("pathenum-memory-{name}-{}.peg", std::process::id()));
    write_frozen_file(graph, true, &path).expect("write .peg");
    let handle = read_graph_file(&path).expect("reload .peg");
    let _ = std::fs::remove_file(&path);
    assert_eq!(handle.representation(), "frozen-compressed");
    assert_eq!(handle.num_vertices(), graph.num_vertices());
    assert_eq!(handle.num_edges(), graph.num_edges());
    for v in 0..graph.num_vertices() as VertexId {
        let mut expected = Vec::new();
        let mut got = Vec::new();
        graph.for_each_out(v, |n| expected.push(n));
        handle.for_each_out(v, |n| got.push(n));
        assert_eq!(expected, got, "file round trip changed adjacency of {v}");
    }
}

/// Entry point for `reproduce memory`.
pub fn run(config: &ExperimentConfig) {
    banner("memory: storage formats, cold start, and zero-copy serving");
    let quick = config.queries_per_set <= 4;
    let reps = if quick { 5 } else { 9 };

    let mut rows = Table::new(["graph", "format", "bytes/edge", "cold start", "speedup"]);
    let mut coldstart_speedups = Vec::new();
    let mut peg2_ratio = Vec::new();
    let mut heap_qps = Vec::new();
    let mut frozen_qps = Vec::new();
    let mut dense_bytes = 0usize;
    let mut compact_bytes = 0usize;
    for (name, graph) in measurement_graphs(config) {
        let edges = graph.num_edges().max(1) as f64;
        let (fmt, frozen, frozen_c) = format_metrics(&graph, reps);
        assert!(
            fmt.coldstart_speedup >= COLDSTART_FLOOR,
            "{name}: PEG2 cold start only {:.1}x over text parse (floor {COLDSTART_FLOOR}x)",
            fmt.coldstart_speedup
        );
        let per_edge = |bytes: usize| format!("{:.1}", bytes as f64 / edges);
        rows.row([
            name.clone(),
            "text".to_string(),
            per_edge(fmt.text_bytes),
            sci_ms(fmt.text_load),
            "1.0x".to_string(),
        ]);
        rows.row([
            String::new(),
            "PEG1".to_string(),
            per_edge(fmt.peg1_bytes),
            sci_ms(fmt.peg1_load),
            format!(
                "{:.1}x",
                fmt.text_load.as_secs_f64() / fmt.peg1_load.as_secs_f64().max(1e-12)
            ),
        ]);
        rows.row([
            String::new(),
            "PEG2".to_string(),
            per_edge(fmt.peg2_bytes),
            sci_ms(fmt.peg2_load),
            format!("{:.1}x", fmt.coldstart_speedup),
        ]);
        rows.row([
            String::new(),
            "PEG2+varint".to_string(),
            per_edge(fmt.peg2c_bytes),
            String::new(),
            String::new(),
        ]);
        coldstart_speedups.push(fmt.coldstart_speedup);
        peg2_ratio.push(fmt.peg2c_bytes as f64 / fmt.peg2_bytes as f64);

        let queries = default_queries(&graph, config.default_k.min(5), config);
        let serve = serve_metrics(&graph, &frozen, &frozen_c, &queries);
        heap_qps.push(serve.heap_qps);
        frozen_qps.push(serve.frozen_qps);

        let fp = footprint_metrics(&graph, &queries);
        dense_bytes += fp.dense_bytes;
        compact_bytes += fp.compact_bytes;

        assert_file_round_trip(&name, &graph);
    }
    rows.print();

    let (scale_dense, scale_compact) = footprint_scaling(config, quick);
    let scaling_ratio = scale_dense as f64 / scale_compact.max(1) as f64;
    assert!(
        scaling_ratio >= 2.0,
        "compressed footprints should win >= 2x on bounded reach over a large sparse graph, \
         got {scaling_ratio:.1}x"
    );

    let coldstart = geometric_mean(&coldstart_speedups, 1e-9);
    let footprint_ratio = dense_bytes as f64 / (compact_bytes.max(1)) as f64;
    let mut summary = Table::new(["metric", "value"]);
    summary.row([
        "PEG2 cold-start speedup (geomean)".to_string(),
        format!("{coldstart:.1}x"),
    ]);
    summary.row([
        "PEG2+varint vs PEG2 size".to_string(),
        format!("{:.2}x", geometric_mean(&peg2_ratio, 1e-9)),
    ]);
    summary.row([
        "heap-CSR throughput (q/s)".to_string(),
        sci(geometric_mean(&heap_qps, 1e-9)),
    ]);
    summary.row([
        "frozen throughput (q/s)".to_string(),
        sci(geometric_mean(&frozen_qps, 1e-9)),
    ]);
    summary.row([
        "footprint dense/compact (datasets)".to_string(),
        format!("{footprint_ratio:.1}x"),
    ]);
    summary.row([
        "footprint dense/compact (large sparse)".to_string(),
        format!("{scaling_ratio:.1}x"),
    ]);
    summary.print();

    println!(
        "memory assertions passed: PEG2 cold start {coldstart:.1}x >= {COLDSTART_FLOOR}x, \
         frozen results byte-identical across methods, footprints lossless, \
         .peg file round trip OK"
    );

    write_bench_json(
        "BENCH_memory.json",
        &[
            ("coldstart_speedup_geomean", coldstart),
            (
                "peg2_compressed_size_ratio",
                geometric_mean(&peg2_ratio, 1e-9),
            ),
            ("heap_qps_geomean", geometric_mean(&heap_qps, 1e-9)),
            ("frozen_qps_geomean", geometric_mean(&frozen_qps, 1e-9)),
            ("footprint_dense_bytes", dense_bytes as f64),
            ("footprint_compact_bytes", compact_bytes as f64),
            ("footprint_compression_ratio", footprint_ratio),
            ("footprint_scaling_dense_bytes", scale_dense as f64),
            ("footprint_scaling_compact_bytes", scale_compact as f64),
            ("footprint_scaling_ratio", scaling_ratio),
            ("quick", f64::from(u8::from(quick))),
            ("seed", config.seed as f64),
        ],
    );
}

//! Streaming serving: per-update snapshot vs overlay execution vs
//! overlay + surgically-retained cache (not a paper experiment — it
//! characterizes the snapshot-free dynamic-graph path built on the
//! reproduction, in the paper's Figure 8 scenario).
//!
//! One reproducible update→query stream (skewed query pool, configurable
//! update:query mix) over a ≥100k-edge power-law graph is replayed under
//! the three strategies of `pathenum_workloads::streaming`. All three
//! must produce identical per-query results; the table reports the
//! wall-clock split (queries vs updates), tail latency, and — for the
//! cached strategy — the hit rate the cache sustains *while the graph
//! mutates*, including the hits served purely by surgical retention.

use pathenum::PathEnumConfig;
use pathenum_graph::generators::{power_law, PowerLawConfig};
use pathenum_workloads::runner::percentile_ms;
use pathenum_workloads::streaming::{
    generate_stream, run_stream, StreamConfig, StreamOp, StreamStrategy,
};

use crate::config::ExperimentConfig;
use crate::output::{banner, sci_ms, Table};

/// Runs the experiment and prints the strategy table.
pub fn run(config: &ExperimentConfig) {
    banner("Stream: per-update snapshot vs overlay vs overlay + retained cache");
    let quick = config.queries_per_set <= 4;
    let (n, d, ops) = if quick {
        (6_000, 4, 400)
    } else {
        (25_000, 4, 2_000)
    };
    let graph = power_law(PowerLawConfig::social(n, d, config.seed));
    let engine_config = PathEnumConfig {
        force: config.force_method,
        ..PathEnumConfig::default()
    };
    let k = config.default_k.min(4);
    let stream_config = StreamConfig::serving_default(ops, k, config.seed);
    let stream = generate_stream(&graph, &stream_config);
    let queries = stream
        .iter()
        .filter(|op| matches!(op, StreamOp::Query(_)))
        .count();
    let updates = stream.len() - queries;
    println!(
        "power-law graph: {} vertices, {} edges; stream: {} ops \
         ({} queries over {} distinct, {} updates), k={}, limit={}\n",
        graph.num_vertices(),
        graph.num_edges(),
        stream.len(),
        queries,
        stream_config.distinct_queries,
        updates,
        k,
        config.response_limit,
    );

    let strategies = [
        StreamStrategy::SnapshotPerUpdate,
        StreamStrategy::Overlay,
        StreamStrategy::OverlayCached,
    ];
    let runs: Vec<_> = strategies
        .iter()
        .map(|&strategy| {
            run_stream(
                &graph,
                &stream,
                strategy,
                engine_config,
                Some(config.response_limit),
            )
        })
        .collect();

    for run in &runs[1..] {
        assert_eq!(
            runs[0].results, run.results,
            "strategy {} changed the enumerated output",
            run.strategy
        );
    }

    let mut table = Table::new([
        "strategy",
        "total",
        "query mean",
        "query p99",
        "update mean",
        "hit rate",
        "retained",
    ]);
    for run in &runs {
        table.row([
            run.strategy.to_string(),
            sci_ms(run.total),
            format!("{:.4}ms", run.mean_query_ms()),
            format!("{:.4}ms", percentile_ms(&run.query_latencies, 99.0)),
            format!("{:.4}ms", run.mean_update_ms()),
            format!("{:.0}%", 100.0 * run.hit_rate()),
            run.cache.retained.to_string(),
        ]);
    }
    table.print();

    let snapshot = &runs[0];
    let overlay = &runs[1];
    let cached = &runs[2];
    println!(
        "\noverlay speedup over per-update snapshot: {:.2}x total \
         ({:.2}x on updates); cached overlay: {:.2}x total, \
         hit rate {:.0}% under {} mutations ({} hits retained across deltas)",
        snapshot.total.as_secs_f64() / overlay.total.as_secs_f64().max(1e-9),
        snapshot
            .update_latencies
            .iter()
            .map(std::time::Duration::as_secs_f64)
            .sum::<f64>()
            / overlay
                .update_latencies
                .iter()
                .map(std::time::Duration::as_secs_f64)
                .sum::<f64>()
                .max(1e-9),
        snapshot.total.as_secs_f64() / cached.total.as_secs_f64().max(1e-9),
        100.0 * cached.hit_rate(),
        updates,
        cached.cache.retained,
    );
    assert!(
        overlay.total < snapshot.total,
        "overlay execution ({:?}) must beat per-update snapshot+query ({:?})",
        overlay.total,
        snapshot.total
    );
    assert!(
        cached.hit_rate() > 0.0,
        "the retained cache must keep hitting under mutation"
    );
}

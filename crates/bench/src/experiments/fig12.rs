//! Figure 12: scalability on the `tm` proxy (the paper's billion-edge
//! Twitter-mpi, scaled) — per-technique execution time and throughput
//! for IDX-DFS and IDX-JOIN, k = 3..6.

use pathenum::estimator::FullEstimate;
use pathenum::{enumerate, optimize_join_order, Counters, Index};
use pathenum_workloads::datasets;
use pathenum_workloads::runner::BoundedSink;

use crate::config::ExperimentConfig;
use crate::experiments::support::default_queries;
use crate::output::{banner, sci, sci_ms, Table};

/// Runs the experiment and prints the series.
pub fn run(config: &ExperimentConfig) {
    banner("Figure 12: scalability on tm (per-technique time and throughput)");
    let graph = datasets::build("tm").expect("tm is registered");
    println!(
        "tm proxy: {} vertices, {} edges (paper: 52M vertices, 1.96B edges)\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    let ks: Vec<u32> = config.k_sweep().into_iter().filter(|&k| k <= 6).collect();
    let Some(&query) = default_queries(&graph, 6, config).first() else {
        println!("no admissible query on tm");
        return;
    };

    let mut table = Table::new([
        "k",
        "BFS",
        "index build",
        "optimize",
        "DFS enum",
        "JOIN enum",
        "tput DFS",
        "tput JOIN",
    ]);
    for &k in &ks {
        let q = pathenum::Query::new(query.s, query.t, k).expect("validated endpoints");
        let build_start = std::time::Instant::now();
        let (index, bfs_time) = Index::build_profiled(&graph, q);
        let build = build_start.elapsed();

        let opt_start = std::time::Instant::now();
        let estimate = FullEstimate::compute(&index);
        let plan = optimize_join_order(&index, &estimate);
        let optimize = opt_start.elapsed();

        let mut dfs_sink = BoundedSink::new(None, Some(config.time_limit));
        let mut counters = Counters::default();
        let dfs_start = std::time::Instant::now();
        enumerate::idx_dfs(&index, &mut dfs_sink, &mut counters);
        let dfs_time = dfs_start.elapsed();

        let cut = plan.map(|p| p.cut.clamp(1, k - 1)).unwrap_or(k / 2);
        let mut join_sink = BoundedSink::new(None, Some(config.time_limit));
        let mut counters = Counters::default();
        let join_start = std::time::Instant::now();
        enumerate::idx_join(&index, cut, &mut join_sink, &mut counters);
        let join_time = join_start.elapsed();

        table.row([
            k.to_string(),
            sci_ms(bfs_time),
            sci_ms(build),
            sci_ms(optimize),
            sci_ms(dfs_time),
            sci_ms(join_time),
            sci(dfs_sink.count as f64 / dfs_time.as_secs_f64().max(1e-9)),
            sci(join_sink.count as f64 / join_time.as_secs_f64().max(1e-9)),
        ]);
    }
    table.print();
    println!("\npaper's qualitative claim: BFS dominates index construction; preprocessing");
    println!("outweighs enumeration for small k; throughput reaches ~1e7/s by k = 5");
}

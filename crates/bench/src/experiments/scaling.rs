//! Intra-query parallel scaling: wall-clock speedup of
//! `QueryRequest::threads(n)` over the sequential engine on one heavy
//! query (not a paper experiment — it characterizes the `parallel`
//! module added on top of the reproduction).
//!
//! Generates a power-law graph with >= 100k edges, picks the heaviest
//! k=6 query of a generated set that still finishes inside a few
//! seconds sequentially, then evaluates it with 1, 2, 4, and 8
//! intra-query workers. Every run must produce the same result count;
//! speedup is sequential wall / threaded wall. On a multi-core machine
//! `threads(4)` should clear 1.5x comfortably; on a single-core
//! container the ratios degrade to ~1.0 (the table makes that visible
//! rather than pretending).

use std::time::{Duration, Instant};

use pathenum::{PathEnumConfig, QueryEngine, QueryRequest, Termination};
use pathenum_graph::generators::{power_law, PowerLawConfig};
use pathenum_workloads::{generate_queries, QueryGenConfig};

use crate::config::ExperimentConfig;
use crate::output::{banner, sci_ms, Table};

/// Thread counts of the sweep (1 is the sequential baseline).
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Sequential probe budget when choosing the subject query.
const PROBE_BUDGET: Duration = Duration::from_secs(2);

/// Runs the experiment and prints the scaling table.
pub fn run(config: &ExperimentConfig) {
    banner("Scaling: intra-query parallel enumeration (threads 1/2/4/8)");
    let quick = config.queries_per_set <= 4;
    let (n, d) = if quick { (6_000, 5) } else { (30_000, 6) };
    let graph = power_law(PowerLawConfig::social(n, d, config.seed));
    println!(
        "power-law graph: {} vertices, {} edges (cores available: {})",
        graph.num_vertices(),
        graph.num_edges(),
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );

    // Subject selection: the candidate with the longest sequential wall
    // among those that finish inside the probe budget — a query the
    // split overhead is negligible against. If everything at the base k
    // is trivial, escalate k (deeper searches, same graph) before giving
    // up.
    let base_k = config.default_k.max(6).min(if quick { 6 } else { 8 });
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let mut subject: Option<(pathenum::Query, u64, Duration)> = None;
    for k in base_k..=if quick { base_k } else { 8 } {
        let candidates =
            generate_queries(&graph, QueryGenConfig::paper_default(12, k, config.seed));
        for &q in &candidates {
            let request = QueryRequest::from_query(q).time_budget(PROBE_BUDGET);
            let start = Instant::now();
            let response = engine
                .execute(&request)
                .expect("generated queries are valid");
            let wall = start.elapsed();
            if response.termination == Termination::Completed
                && subject.is_none_or(|(_, _, best)| wall > best)
            {
                subject = Some((q, response.num_results(), wall));
            }
        }
        if subject.is_some_and(|(_, _, wall)| wall >= Duration::from_millis(200)) {
            break;
        }
    }
    let Some((query, expected, probe_wall)) = subject else {
        println!("no candidate query finished within the probe budget; nothing to scale");
        return;
    };
    println!(
        "subject query: q({}, {}, {}) with {} results (sequential probe: {})\n",
        query.s,
        query.t,
        query.k,
        expected,
        sci_ms(probe_wall)
    );

    let mut table = Table::new(["threads", "wall", "results", "speedup", "method"]);
    let mut sequential_wall = None;
    for &threads in &THREAD_SWEEP {
        let request = QueryRequest::from_query(query).threads(threads);
        let start = Instant::now();
        let response = engine.execute(&request).expect("subject query is valid");
        let wall = start.elapsed();
        assert_eq!(
            response.num_results(),
            expected,
            "threads({threads}) changed the result count"
        );
        let baseline = *sequential_wall.get_or_insert(wall);
        let speedup = baseline.as_secs_f64() / wall.as_secs_f64().max(1e-9);
        table.row([
            threads.to_string(),
            sci_ms(wall),
            response.num_results().to_string(),
            format!("{speedup:.2}x"),
            response.report.method.to_string(),
        ]);
    }
    table.print();
    println!("(speedup is relative to the threads=1 row on this machine)");
}

//! Repeated-query serving: cold vs warm plan cache (not a paper
//! experiment — it characterizes the version-aware `pathenum::plan`
//! cache added on top of the reproduction).
//!
//! Real request streams are heavily skewed: the same `(s, t, k)` queries
//! recur. The paper measures index construction (the bidirectional
//! boundary BFS) as the dominant per-query cost for short-output
//! queries; the plan cache pays it once per distinct query. This harness
//! replays a skewed stream twice — once against an engine with caching
//! disabled, once against a caching engine — and reports per-request
//! latency, hit rate, and the cold/warm speedup. Both passes bound each
//! request with the same result `limit`, so the enumerated output is
//! deterministic and must match request-for-request.
//!
//! A third pass enables the **result cache** on top of the plan cache:
//! repeats replay the stored `PathBuffer` without planning or
//! enumeration, which is the best case of the four-layer hierarchy
//! (plan → index → result → shared-batch). The cold/warm/result-hit
//! latencies, hit rates, and speedups are written to `BENCH_cache.json`
//! for trend tracking across PRs.
//!
//! A final section mutates the graph through `DynamicGraph`, carries the
//! warm cache to an engine over the new snapshot, and shows the
//! version-epoch invalidation: stale entries are discarded, results
//! reflect the mutated graph.

use std::time::{Duration, Instant};

use pathenum::{PathEnumConfig, PlanCache, QueryEngine, QueryRequest, ResultCache};
use pathenum_graph::generators::{power_law, PowerLawConfig};
use pathenum_graph::DynamicGraph;
use pathenum_workloads::{generate_queries, skewed_stream, QueryGenConfig};

use crate::config::ExperimentConfig;
use crate::output::{banner, sci_ms, write_bench_json, Table};

/// How many times each distinct query recurs in the replayed stream.
const REPEATS: usize = 8;

struct Pass {
    label: &'static str,
    total: Duration,
    results: Vec<u64>,
    hits: u64,
    lookups: u64,
}

fn run_pass(
    label: &'static str,
    engine: &mut QueryEngine<'_>,
    stream: &[pathenum::Query],
    limit: u64,
) -> Pass {
    let before = engine.cache_stats();
    let mut results = Vec::with_capacity(stream.len());
    let start = Instant::now();
    for &query in stream {
        let response = engine
            .execute(&QueryRequest::from_query(query).limit(limit))
            .expect("generated queries are valid");
        results.push(response.num_results());
    }
    let total = start.elapsed();
    let after = engine.cache_stats();
    Pass {
        label,
        total,
        results,
        hits: after.hits - before.hits,
        lookups: (after.hits + after.misses) - (before.hits + before.misses),
    }
}

/// Runs the experiment and prints the cold/warm table.
pub fn run(config: &ExperimentConfig) {
    banner("Cache: cold vs warm plan/index reuse on a skewed request stream");
    let quick = config.queries_per_set <= 4;
    let (n, d) = if quick { (6_000, 5) } else { (30_000, 6) };
    let graph = power_law(PowerLawConfig::social(n, d, config.seed));
    let engine_config = PathEnumConfig {
        force: config.force_method,
        ..PathEnumConfig::default()
    };
    println!(
        "power-law graph: {} vertices, {} edges (graph version {}); forced method: {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.version(),
        config
            .force_method
            .map_or("none (optimizer)".to_string(), |m| m.to_string()),
    );

    // A skewed stream: every distinct query recurs REPEATS times,
    // round-robin (worst case for a tiny cache, representative for the
    // default capacity).
    let k = config.default_k.min(5);
    let distinct = generate_queries(
        &graph,
        QueryGenConfig::paper_default(config.queries_per_set.max(4), k, config.seed),
    );
    let stream = skewed_stream(&distinct, REPEATS);
    println!(
        "stream: {} requests over {} distinct queries (k={}, limit={})\n",
        stream.len(),
        distinct.len(),
        k,
        config.response_limit,
    );

    let mut cold_engine = QueryEngine::with_cache(&graph, engine_config, PlanCache::new(0));
    let cold = run_pass(
        "cold (cache off)",
        &mut cold_engine,
        &stream,
        config.response_limit,
    );
    let mut warm_engine = QueryEngine::new(&graph, engine_config);
    let warm = run_pass(
        "warm (plan cache)",
        &mut warm_engine,
        &stream,
        config.response_limit,
    );
    let mut result_engine =
        QueryEngine::new(&graph, engine_config).with_result_cache(ResultCache::default());
    let mut result = run_pass(
        "result (result cache)",
        &mut result_engine,
        &stream,
        config.response_limit,
    );
    // The interesting hit rate of the third pass is the result layer's,
    // not the plan layer's (which only ever sees first occurrences).
    let result_stats = result_engine.result_cache_stats();
    result.hits = result_stats.hits;
    result.lookups = result_stats.lookups;

    assert_eq!(
        cold.results, warm.results,
        "plan caching changed the enumerated output"
    );
    assert_eq!(
        cold.results, result.results,
        "result caching changed the enumerated output"
    );

    let mut table = Table::new(["pass", "total", "mean/query", "hits", "hit rate"]);
    for pass in [&cold, &warm, &result] {
        table.row([
            pass.label.to_string(),
            sci_ms(pass.total),
            sci_ms(pass.total / stream.len() as u32),
            pass.hits.to_string(),
            format!(
                "{:.0}%",
                100.0 * pass.hits as f64 / pass.lookups.max(1) as f64
            ),
        ]);
    }
    table.print();
    let warm_speedup = cold.total.as_secs_f64() / warm.total.as_secs_f64().max(1e-9);
    let result_speedup = cold.total.as_secs_f64() / result.total.as_secs_f64().max(1e-9);
    println!(
        "warm-cache speedup: {warm_speedup:.2}x, result-cache speedup: {result_speedup:.2}x \
         (identical {} results per pass)",
        cold.results.iter().sum::<u64>(),
    );
    assert!(
        warm.total < cold.total,
        "warm pass ({:?}) must beat the cold pass ({:?})",
        warm.total,
        cold.total
    );
    assert!(
        result.total < cold.total,
        "result pass ({:?}) must beat the cold pass ({:?})",
        result.total,
        cold.total
    );
    println!(
        "cache assertions passed: warm {warm_speedup:.2}x and result-hit {result_speedup:.2}x \
         over cold, outputs identical"
    );

    let per_query = |pass: &Pass| pass.total.as_secs_f64() * 1e3 / stream.len() as f64;
    write_bench_json(
        "BENCH_cache.json",
        &[
            ("cold_total_ms", cold.total.as_secs_f64() * 1e3),
            ("warm_total_ms", warm.total.as_secs_f64() * 1e3),
            ("result_total_ms", result.total.as_secs_f64() * 1e3),
            ("cold_mean_ms", per_query(&cold)),
            ("warm_mean_ms", per_query(&warm)),
            ("result_mean_ms", per_query(&result)),
            (
                "plan_hit_rate",
                warm.hits as f64 / warm.lookups.max(1) as f64,
            ),
            (
                "result_hit_rate",
                result.hits as f64 / result.lookups.max(1) as f64,
            ),
            ("warm_speedup", warm_speedup),
            ("result_speedup", result_speedup),
        ],
    );

    // Version-epoch invalidation: mutate, snapshot, carry the cache.
    // Scan for a target the probe edge does not already reach (a fixed
    // target could collide with an existing edge and silently no-op).
    let mut dynamic = DynamicGraph::new(graph.clone());
    let subject = distinct[0];
    let n_vertices = graph.num_vertices() as u32;
    let inserted = (1..n_vertices)
        .map(|offset| (subject.s + offset) % n_vertices)
        .any(|to| dynamic.insert_edge(subject.s, to));
    let snapshot = dynamic.snapshot();
    let mut next_engine =
        QueryEngine::with_cache(&snapshot, engine_config, warm_engine.into_cache());
    let response = next_engine
        .execute(&QueryRequest::from_query(subject).limit(config.response_limit))
        .expect("subject query is valid");
    println!(
        "\nafter one mutation (edge inserted: {inserted}) the carried cache reports \
         {} invalidation(s); replan on graph version {} found {} results ({})",
        next_engine.cache_stats().invalidations,
        snapshot.version(),
        response.num_results(),
        response.report.cache,
    );
}

//! Figure 6: detailed enumeration metrics — edges accessed, invalid
//! partial results, and results — for BC-DFS versus IDX-DFS with k
//! varied on ep and gg.

use pathenum_workloads::runner::run_query_set;
use pathenum_workloads::Algorithm;

use crate::config::ExperimentConfig;
use crate::experiments::support::{default_queries, representative_graphs};
use crate::output::{banner, sci, Table};

/// Runs the experiment and prints the series.
pub fn run(config: &ExperimentConfig) {
    banner("Figure 6: #edges accessed / #invalid partials / #results (per-query means)");
    for (name, graph) in representative_graphs() {
        let mut table = Table::new([
            "k",
            "edges BC-DFS",
            "edges IDX-DFS",
            "invalid BC-DFS",
            "invalid IDX-DFS",
            "results BC-DFS",
            "results IDX-DFS",
        ]);
        for k in config.k_sweep() {
            let queries = default_queries(&graph, k, config);
            if queries.is_empty() {
                continue;
            }
            let mut per_algo: Vec<[f64; 3]> = Vec::new();
            for algo in [Algorithm::BcDfs, Algorithm::IdxDfs] {
                let summary = run_query_set(algo, &graph, &queries, config.measure());
                let n = summary.measurements.len() as f64;
                let mean = |f: &dyn Fn(&pathenum::Counters) -> u64| {
                    summary
                        .measurements
                        .iter()
                        .map(|m| f(&m.report.counters) as f64)
                        .sum::<f64>()
                        / n
                };
                per_algo.push([
                    mean(&|c| c.edges_accessed),
                    mean(&|c| c.invalid_partial_results),
                    mean(&|c| c.results),
                ]);
            }
            table.row([
                k.to_string(),
                sci(per_algo[0][0]),
                sci(per_algo[1][0]),
                sci(per_algo[0][1]),
                sci(per_algo[1][1]),
                sci(per_algo[0][2]),
                sci(per_algo[1][2]),
            ]);
        }
        println!("--- {name} ---");
        table.print();
        println!();
    }
}

//! Figure 17: execution time of each individual technique with k varied:
//! the boundary BFS, index construction, join-order optimization, and
//! the two enumeration strategies.

use pathenum::estimator::FullEstimate;
use pathenum::{enumerate, optimize_join_order, Counters, Index, Query};
use pathenum_workloads::runner::BoundedSink;

use crate::config::ExperimentConfig;
use crate::experiments::support::{default_queries, representative_graphs};
use crate::output::{banner, sci, Table};

/// Runs the experiment and prints the per-technique means.
pub fn run(config: &ExperimentConfig) {
    banner("Figure 17: per-technique execution time (mean ms per query)");
    for (name, graph) in representative_graphs() {
        let mut table = Table::new(["k", "BFS", "index build", "optimize", "DFS", "JOIN"]);
        for k in config.k_sweep() {
            let queries = default_queries(&graph, k, config);
            if queries.is_empty() {
                continue;
            }
            let n = queries.len() as f64;
            let mut sums = [0f64; 5];
            for &q in &queries {
                let q = Query::new(q.s, q.t, k).expect("validated endpoints");
                let build_start = std::time::Instant::now();
                let (index, bfs) = Index::build_profiled(&graph, q);
                sums[1] += build_start.elapsed().as_secs_f64() * 1e3;
                sums[0] += bfs.as_secs_f64() * 1e3;

                let opt_start = std::time::Instant::now();
                let estimate = FullEstimate::compute(&index);
                let plan = optimize_join_order(&index, &estimate);
                sums[2] += opt_start.elapsed().as_secs_f64() * 1e3;

                let mut sink = BoundedSink::new(None, Some(config.time_limit));
                let mut counters = Counters::default();
                let dfs_start = std::time::Instant::now();
                enumerate::idx_dfs(&index, &mut sink, &mut counters);
                sums[3] += dfs_start.elapsed().as_secs_f64() * 1e3;

                if let Some(plan) = plan {
                    let cut = plan.cut.clamp(1, k - 1);
                    let mut sink = BoundedSink::new(None, Some(config.time_limit));
                    let mut counters = Counters::default();
                    let join_start = std::time::Instant::now();
                    enumerate::idx_join(&index, cut, &mut sink, &mut counters);
                    sums[4] += join_start.elapsed().as_secs_f64() * 1e3;
                }
            }
            table.row([
                k.to_string(),
                sci(sums[0] / n),
                sci(sums[1] / n),
                sci(sums[2] / n),
                sci(sums[3] / n),
                sci(sums[4] / n),
            ]);
        }
        println!("--- {name} ---");
        table.print();
        println!();
    }
    println!("paper's qualitative claims: BFS dominates index construction; optimization");
    println!("can exceed enumeration on short queries but both stay small in absolute terms");
}

//! Figure 18: cardinality-estimation accuracy — the preliminary and
//! full-fledged estimators against the actual number of results, k
//! varied on ep and gg.

use pathenum::estimator::{preliminary_estimate, summarize_q_errors, FullEstimate};
use pathenum::{Index, Query};
use pathenum_workloads::runner::run_query;
use pathenum_workloads::Algorithm;

use crate::config::ExperimentConfig;
use crate::experiments::support::{default_queries, geometric_mean, representative_graphs};
use crate::output::{banner, sci, Table};

/// Runs the experiment and prints the geometric means per k.
pub fn run(config: &ExperimentConfig) {
    banner("Figure 18: cardinality estimation (geometric means over the query set)");
    println!("#results is censored at the time limit, as in the paper's k=8 omission\n");
    for (name, graph) in representative_graphs() {
        let mut table = Table::new([
            "k",
            "#results",
            "full-fledged (walks)",
            "preliminary",
            "q-err full",
            "q-err prelim",
            "censored",
        ]);
        for k in config.k_sweep() {
            let queries = default_queries(&graph, k, config);
            if queries.is_empty() {
                continue;
            }
            let mut actual = Vec::new();
            let mut full = Vec::new();
            let mut preliminary = Vec::new();
            let mut full_pairs = Vec::new();
            let mut prelim_pairs = Vec::new();
            let mut censored = 0usize;
            for &q in &queries {
                let q = Query::new(q.s, q.t, k).expect("validated endpoints");
                let m = run_query(Algorithm::IdxDfs, &graph, q, config.measure());
                if m.timed_out {
                    censored += 1;
                    continue;
                }
                let index = Index::build(&graph, q);
                let full_estimate = FullEstimate::compute(&index).total_walks();
                let prelim_estimate = preliminary_estimate(&index);
                actual.push(m.results as f64);
                full.push(full_estimate as f64);
                preliminary.push(prelim_estimate as f64);
                full_pairs.push((full_estimate, m.results));
                prelim_pairs.push((prelim_estimate, m.results));
            }
            let q_err = |pairs: &[(u64, u64)]| {
                summarize_q_errors(pairs)
                    .map(|s| format!("{:.2}", s.geometric_mean))
                    .unwrap_or_else(|| "-".to_string())
            };
            table.row([
                k.to_string(),
                sci(geometric_mean(&actual, 1.0)),
                sci(geometric_mean(&full, 1.0)),
                sci(geometric_mean(&preliminary, 1.0)),
                q_err(&full_pairs),
                q_err(&prelim_pairs),
                format!("{censored}/{}", queries.len()),
            ]);
        }
        println!("--- {name} ---");
        table.print();
        println!();
    }
    println!("paper's qualitative claim: the full-fledged estimate tracks #results closely");
    println!("(exact when walks == paths) and the gap widens with k; preliminary is coarser");
}

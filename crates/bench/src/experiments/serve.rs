//! Concurrent serving: one shared graph + one shared plan cache across
//! worker threads (not a paper experiment — it characterizes the
//! `pathenum::service` layer, which turns the paper's one-query-at-a-time
//! pipeline into the multi-client serving system the title implies).
//!
//! A skewed request stream (every distinct query recurs, interleaved) is
//! first answered by the sequential `QueryEngine` oracle, then replayed
//! through a `PathEnumService` at several worker-pool sizes. Asserted
//! invariants:
//!
//! * per-request enumerated paths are **identical** to the sequential
//!   oracle at every worker count (input-order, path-for-path);
//! * the shared cache keeps hitting across workers (a query planned by
//!   one worker warms every other worker);
//! * shared-cache accounting is consistent:
//!   `hits + misses + bypasses == lookups`;
//! * warm hits report their time under `cache_lookup` with
//!   `index_build == 0`.
//!
//! On a single-core container the worker sweep shows no speedup (the
//! harness prints the core count); the correctness and cache-sharing
//! assertions are the point.

use std::sync::Arc;
use std::time::Duration;

use pathenum::{
    CacheOutcome, PathEnumConfig, PathEnumService, QueryEngine, QueryRequest, ServiceConfig,
};
use pathenum_graph::generators::{power_law, PowerLawConfig};
use pathenum_workloads::runner::{mean_ms, percentile_ms};
use pathenum_workloads::{generate_queries, QueryGenConfig};

use crate::config::ExperimentConfig;
use crate::output::{banner, sci_ms, write_bench_json, Table};

/// How many times each distinct query recurs in the replayed stream.
const REPEATS: usize = 8;

/// Runs the experiment and prints the worker-sweep table.
pub fn run(config: &ExperimentConfig) {
    banner("Serve: one graph + one plan cache shared across service workers");
    let quick = config.queries_per_set <= 4;
    let (n, d) = if quick { (6_000, 5) } else { (30_000, 6) };
    let graph = Arc::new(power_law(PowerLawConfig::social(n, d, config.seed)));
    let engine_config = PathEnumConfig {
        force: config.force_method,
        ..PathEnumConfig::default()
    };
    println!(
        "power-law graph: {} vertices, {} edges; cores available: {}; forced method: {}",
        graph.num_vertices(),
        graph.num_edges(),
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        config
            .force_method
            .map_or("none (optimizer)".to_string(), |m| m.to_string()),
    );

    // A skewed stream with the repeats *interleaved* (round-robin over
    // the distinct set, rotated each round), so concurrent workers keep
    // landing on each other's warm entries.
    let k = config.default_k.min(5);
    let distinct = generate_queries(
        &graph,
        QueryGenConfig::paper_default(config.queries_per_set.max(4), k, config.seed),
    );
    let mut stream = Vec::with_capacity(distinct.len() * REPEATS);
    for round in 0..REPEATS {
        for i in 0..distinct.len() {
            stream.push(distinct[(i + round) % distinct.len()]);
        }
    }
    let limit = config.response_limit;
    println!(
        "stream: {} requests over {} distinct queries (k={}, limit={limit})\n",
        stream.len(),
        distinct.len(),
        k,
    );
    let request_for =
        |q: pathenum::Query| QueryRequest::from_query(q).limit(limit).collect_paths(true);

    // Sequential oracle: the single-threaded engine on the same stream.
    let mut oracle_engine = QueryEngine::new(&graph, engine_config);
    let oracle_start = std::time::Instant::now();
    let oracle: Vec<Vec<Vec<u32>>> = stream
        .iter()
        .map(|&q| {
            oracle_engine
                .execute(&request_for(q))
                .expect("generated queries are valid")
                .paths
        })
        .collect();
    let oracle_wall = oracle_start.elapsed();

    let mut table = Table::new([
        "workers", "wall", "mean", "p99", "hits", "hit rate", "req/s",
    ]);
    table.row([
        "seq engine".to_string(),
        sci_ms(oracle_wall),
        sci_ms(oracle_wall / stream.len() as u32),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.0}", stream.len() as f64 / oracle_wall.as_secs_f64()),
    ]);

    let mut warm_lookup = Duration::ZERO;
    let mut warm_hits = 0u32;
    // The sweep is [1, 2, 4] by default; `--workers N` pins it to [N]
    // so multi-core machines can probe their actual parallelism.
    let sweep: Vec<usize> = config.workers.map_or_else(|| vec![1, 2, 4], |n| vec![n]);
    let mut trail: Option<(usize, f64, f64, f64, f64, f64)> = None;
    for workers in sweep {
        let service = PathEnumService::with_config(
            Arc::clone(&graph),
            engine_config,
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        );
        let requests: Vec<QueryRequest<'static>> = stream.iter().map(|&q| request_for(q)).collect();
        let report = service.serve(requests);

        for (i, response) in report.responses.iter().enumerate() {
            let response = response.as_ref().expect("generated queries are valid");
            assert_eq!(
                response.paths, oracle[i],
                "workers={workers}: request {i} diverged from the sequential engine"
            );
            if response.report.cache == CacheOutcome::Hit {
                assert_eq!(
                    response.report.timings.index_build,
                    Duration::ZERO,
                    "warm hits must not report build time"
                );
                warm_lookup += response.report.timings.cache_lookup;
                warm_hits += 1;
            }
        }
        let stats = report.cache;
        assert_eq!(
            stats.hits + stats.misses + stats.bypasses,
            stats.lookups,
            "shared-cache accounting must balance"
        );
        assert!(
            stats.hits > 0,
            "workers={workers}: repeated queries must share the cache"
        );

        table.row([
            workers.to_string(),
            sci_ms(report.wall),
            format!("{:.4}ms", mean_ms(&report.latencies)),
            format!("{:.4}ms", percentile_ms(&report.latencies, 99.0)),
            stats.hits.to_string(),
            format!("{:.0}%", 100.0 * stats.hit_rate()),
            format!("{:.0}", report.throughput()),
        ]);
        // The perf trail records the last (largest) swept worker count.
        trail = Some((
            workers,
            report.throughput(),
            percentile_ms(&report.latencies, 50.0),
            percentile_ms(&report.latencies, 99.0),
            stats.hit_rate(),
            report.wall.as_secs_f64() * 1e3,
        ));
    }
    table.print();
    if let Some((workers, throughput, p50_ms, p99_ms, hit_rate, wall_ms)) = trail {
        write_bench_json(
            "BENCH_serve.json",
            &[
                ("workers", workers as f64),
                ("requests", stream.len() as f64),
                ("seed", config.seed as f64),
                ("throughput_rps", throughput),
                ("p50_ms", p50_ms),
                ("p99_ms", p99_ms),
                ("cache_hit_rate", hit_rate),
                ("wall_ms", wall_ms),
            ],
        );
    }
    println!(
        "\nevery worker count reproduced the sequential engine path-for-path \
         ({} requests, {} results); warm hits: {} at mean cache_lookup {:.2}us, \
         index_build 0 on every hit",
        stream.len(),
        oracle.iter().map(Vec::len).sum::<usize>(),
        warm_hits,
        warm_lookup.as_secs_f64() * 1e6 / f64::from(warm_hits.max(1)),
    );
}

//! Figure 16: cumulative distribution of per-query time for all five
//! algorithms on ep and gg (printed at the CDF deciles).

use std::time::Duration;

use pathenum_workloads::runner::run_query_set;
use pathenum_workloads::Algorithm;

use crate::config::ExperimentConfig;
use crate::experiments::support::{default_queries, representative_graphs};
use crate::output::{banner, sci, Table};

/// Runs the experiment and prints decile tables.
pub fn run(config: &ExperimentConfig) {
    banner("Figure 16: cumulative distribution of query time (ms at each decile)");
    let algos = Algorithm::table3();
    for (name, graph) in representative_graphs() {
        let queries = default_queries(&graph, config.default_k, config);
        if queries.is_empty() {
            continue;
        }
        let mut table = Table::new(
            ["percentile".to_string()]
                .into_iter()
                .chain(algos.iter().map(|a| a.name().to_string())),
        );
        let mut per_algo: Vec<Vec<Duration>> = Vec::new();
        for algo in algos {
            let summary = run_query_set(algo, &graph, &queries, config.measure());
            let mut times: Vec<Duration> = summary.measurements.iter().map(|m| m.elapsed).collect();
            times.sort_unstable();
            per_algo.push(times);
        }
        for pct in [10usize, 25, 50, 75, 90, 100] {
            let mut cells = vec![format!("p{pct}")];
            for times in &per_algo {
                let idx = ((pct * times.len()).div_ceil(100)).clamp(1, times.len()) - 1;
                cells.push(sci(times[idx].as_secs_f64() * 1e3));
            }
            table.row(cells);
        }
        println!("--- {name} (k = {}) ---", config.default_k);
        table.print();
        println!();
    }
}

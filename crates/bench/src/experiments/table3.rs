//! Table 3: overall comparison of the five algorithms on every dataset
//! proxy — mean query time (ms), throughput (results/s), and response
//! time (ms, streaming algorithms only).

use pathenum_workloads::runner::{measure_response_time, run_query_set};
use pathenum_workloads::{datasets, Algorithm};

use crate::config::ExperimentConfig;
use crate::experiments::support::default_queries;
use crate::output::{banner, sci, Table};

/// Runs the experiment and prints the table.
pub fn run(config: &ExperimentConfig) {
    banner("Table 3: overall comparison (query time ms | throughput /s | response ms)");
    println!(
        "query sets: {} queries, s,t in V', k = {}, time limit {:?} (paper: 1000 queries, 120 s)",
        config.queries_per_set, config.default_k, config.time_limit
    );
    println!("'*' marks algorithms that ran out of time on > 20% of the set\n");

    let algos = Algorithm::table3();
    let mut table = Table::new(
        ["dataset".to_string()]
            .into_iter()
            .chain(algos.iter().map(|a| format!("time:{}", a.name())))
            .chain(algos.iter().map(|a| format!("tput:{}", a.name())))
            .chain(["resp:BC-DFS".to_string(), "resp:IDX-DFS".to_string()]),
    );

    // tm is the scalability graph (Figure 12); exclude it here as the
    // paper's Table 3 does.
    for spec in datasets::DATASETS.iter().filter(|d| d.name != "tm") {
        let graph = spec.build();
        let queries = default_queries(&graph, config.default_k, config);
        if queries.is_empty() {
            continue;
        }
        let mut cells: Vec<String> = vec![spec.name.to_string()];
        let mut tput_cells: Vec<String> = Vec::new();
        for algo in algos {
            let summary = run_query_set(algo, &graph, &queries, config.measure());
            let star = if summary.timeout_fraction > 0.2 {
                "*"
            } else {
                ""
            };
            cells.push(format!("{}{}", sci(summary.mean_query_time_ms), star));
            tput_cells.push(sci(summary.mean_throughput));
        }
        cells.extend(tput_cells);
        for algo in [Algorithm::BcDfs, Algorithm::IdxDfs] {
            let mean_response: f64 = queries
                .iter()
                .map(|&q| {
                    measure_response_time(algo, &graph, q, config.measure()).as_secs_f64() * 1e3
                })
                .sum::<f64>()
                / queries.len() as f64;
            cells.push(sci(mean_response));
        }
        table.row(cells);
    }
    table.print();
}

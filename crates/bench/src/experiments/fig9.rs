//! Figure 9: spectrum analysis of join plans.
//!
//! For one representative k=6 query per graph, every left-deep plan
//! (all `2^(k-1)` anchored extension orders) and every bushy plan (all
//! interior cut positions) is executed on the index; their enumeration
//! times are the "blue points" of the figure, compared against the plans
//! PathEnum's optimizer picks and the optimization time itself.

use std::time::Instant;

use pathenum::estimator::FullEstimate;
use pathenum::spectrum::{all_left_deep_plans, execute_left_deep};
use pathenum::{enumerate, optimize_join_order, Counters, CountingSink, Index};

use crate::config::ExperimentConfig;
use crate::experiments::support::{default_queries, representative_graphs};
use crate::output::{banner, sci_ms, Table};

/// Runs the experiment and prints the summary per graph.
pub fn run(config: &ExperimentConfig) {
    banner("Figure 9: spectrum analysis of join plans (one k=6 query per graph)");
    let k = config.default_k.max(4);
    for (name, graph) in representative_graphs() {
        // Pick the first admissible query of the default set.
        let Some(&query) = default_queries(&graph, k, config).first() else {
            println!("--- {name}: no admissible query ---");
            continue;
        };
        let index = Index::build(&graph, query);

        // Left-deep spectrum.
        let mut left_deep_times = Vec::new();
        for plan in all_left_deep_plans(k) {
            let mut sink = CountingSink::default();
            let mut counters = Counters::default();
            let start = Instant::now();
            execute_left_deep(&index, &plan, &mut sink, &mut counters);
            left_deep_times.push(start.elapsed());
        }

        // Bushy spectrum: every interior cut.
        let mut bushy_times = Vec::new();
        for cut in 1..k {
            let mut sink = CountingSink::default();
            let mut counters = Counters::default();
            let start = Instant::now();
            enumerate::idx_join(&index, cut, &mut sink, &mut counters);
            bushy_times.push(start.elapsed());
        }

        // The optimizer's pick.
        let opt_start = Instant::now();
        let estimate = FullEstimate::compute(&index);
        let plan = optimize_join_order(&index, &estimate);
        let optimization = opt_start.elapsed();

        let dfs_time = {
            let mut sink = CountingSink::default();
            let mut counters = Counters::default();
            let start = Instant::now();
            enumerate::idx_dfs(&index, &mut sink, &mut counters);
            start.elapsed()
        };

        println!("--- {name}: query q({}, {}, {k}) ---", query.s, query.t);
        let mut table = Table::new(["plan family", "min", "median", "max"]);
        for (family, times) in [
            ("left-deep (2^(k-1))", &mut left_deep_times),
            ("bushy (k-1 cuts)", &mut bushy_times),
        ] {
            times.sort_unstable();
            table.row([
                family.to_string(),
                sci_ms(times[0]),
                sci_ms(times[times.len() / 2]),
                sci_ms(*times.last().expect("non-empty family")),
            ]);
        }
        table.print();
        println!("optimization time: {}", sci_ms(optimization));
        println!("IDX-DFS (the default left-deep plan): {}", sci_ms(dfs_time));
        if let Some(plan) = plan {
            println!(
                "optimizer: cut i* = {}, modeled T_DFS = {}, T_JOIN = {} -> picks {}",
                plan.cut,
                plan.t_dfs,
                plan.t_join,
                plan.preferred()
            );
        }
        println!();
    }
}

//! Table 5: throughput and response time for short-running versus
//! out-of-time queries (ep with the largest k of the sweep).

use pathenum_workloads::runner::{measure_response_time, run_query, QueryMeasurement};
use pathenum_workloads::{datasets, Algorithm};

use crate::config::ExperimentConfig;
use crate::experiments::support::default_queries;
use crate::output::{banner, sci, Table};

/// Runs the experiment and prints the table.
pub fn run(config: &ExperimentConfig) {
    let k = *config.k_sweep().last().expect("sweep is non-empty");
    banner(&format!(
        "Table 5: short vs out-of-time queries (ep, k = {k})"
    ));
    let graph = datasets::ep();
    let queries = default_queries(&graph, k, config);
    let mut table = Table::new([
        "method",
        "tput <limit",
        "tput >limit",
        "resp ms <limit",
        "resp ms >limit",
    ]);
    for algo in [Algorithm::BcDfs, Algorithm::IdxDfs] {
        let measurements: Vec<(QueryMeasurement, f64)> = queries
            .iter()
            .map(|&q| {
                let m = run_query(algo, &graph, q, config.measure());
                let resp =
                    measure_response_time(algo, &graph, q, config.measure()).as_secs_f64() * 1e3;
                (m, resp)
            })
            .collect();
        let (long, short): (Vec<_>, Vec<_>) =
            measurements.into_iter().partition(|(m, _)| m.timed_out);
        let mean = |items: &[(QueryMeasurement, f64)],
                    f: &dyn Fn(&(QueryMeasurement, f64)) -> f64| {
            if items.is_empty() {
                f64::NAN
            } else {
                items.iter().map(f).sum::<f64>() / items.len() as f64
            }
        };
        table.row([
            algo.name().to_string(),
            sci(mean(&short, &|(m, _)| m.throughput())),
            sci(mean(&long, &|(m, _)| m.throughput())),
            sci(mean(&short, &|(_, r)| *r)),
            sci(mean(&long, &|(_, r)| *r)),
        ]);
    }
    println!("(NaN = no query fell into that bucket at this scale)\n");
    table.print();
}

//! Figure 7: query-time breakdown into preprocessing (distance BFS /
//! index construction) and enumeration, BC-DFS vs IDX-DFS, k varied.

use pathenum_workloads::runner::run_query_set;
use pathenum_workloads::Algorithm;

use crate::config::ExperimentConfig;
use crate::experiments::support::{default_queries, representative_graphs};
use crate::output::{banner, sci, Table};

/// Runs the experiment and prints the series.
pub fn run(config: &ExperimentConfig) {
    banner("Figure 7: query-time breakdown (mean ms per query)");
    for (name, graph) in representative_graphs() {
        let mut table = Table::new([
            "k",
            "prep BC-DFS",
            "enum BC-DFS",
            "prep IDX-DFS",
            "enum IDX-DFS",
        ]);
        for k in config.k_sweep() {
            let queries = default_queries(&graph, k, config);
            if queries.is_empty() {
                continue;
            }
            let mut cells = vec![k.to_string()];
            for algo in [Algorithm::BcDfs, Algorithm::IdxDfs] {
                let summary = run_query_set(algo, &graph, &queries, config.measure());
                let n = summary.measurements.len() as f64;
                let prep = summary
                    .measurements
                    .iter()
                    .map(|m| m.report.preprocessing.as_secs_f64() * 1e3)
                    .sum::<f64>()
                    / n;
                let enumeration = summary
                    .measurements
                    .iter()
                    .map(|m| m.report.enumeration.as_secs_f64() * 1e3)
                    .sum::<f64>()
                    / n;
                cells.push(sci(prep));
                cells.push(sci(enumeration));
            }
            table.row(cells);
        }
        println!("--- {name} ---");
        table.print();
        println!();
    }
}

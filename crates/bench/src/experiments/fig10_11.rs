//! Figures 10 and 11: log-log regression of enumeration time against
//! index size (Fig. 10) and against #results (Fig. 11), per query, on
//! the k = 6 default sets.

use pathenum_workloads::runner::{linear_regression, run_query_set};
use pathenum_workloads::Algorithm;

use crate::config::ExperimentConfig;
use crate::experiments::support::{default_queries, representative_graphs};
use crate::output::{banner, Table};

/// Runs the experiment and prints both regressions per graph.
pub fn run(config: &ExperimentConfig) {
    banner("Figures 10/11: enumeration time vs index size / #results (log-log OLS)");
    let k = config.default_k;
    let mut table = Table::new([
        "dataset",
        "x-variable",
        "slope",
        "intercept",
        "r^2",
        "#points",
    ]);
    for (name, graph) in representative_graphs() {
        let queries = default_queries(&graph, k, config);
        if queries.is_empty() {
            continue;
        }
        let summary = run_query_set(Algorithm::IdxDfs, &graph, &queries, config.measure());
        let mut log_time = Vec::new();
        let mut log_index = Vec::new();
        let mut log_results = Vec::new();
        for m in &summary.measurements {
            let enum_secs = m.report.enumeration.as_secs_f64();
            if enum_secs <= 0.0 || m.results == 0 {
                continue;
            }
            let index_edges = m.report.index_edges.unwrap_or(0);
            if index_edges == 0 {
                continue;
            }
            log_time.push((enum_secs * 1e3).ln());
            log_index.push((index_edges as f64).ln());
            log_results.push((m.results as f64).ln());
        }
        for (x_name, xs) in [("index size", &log_index), ("#results", &log_results)] {
            match linear_regression(xs, &log_time) {
                Some(r) => table.row([
                    name.to_string(),
                    x_name.to_string(),
                    format!("{:.3}", r.slope),
                    format!("{:.3}", r.intercept),
                    format!("{:.3}", r.r_squared),
                    xs.len().to_string(),
                ]),
                None => table.row([
                    name.to_string(),
                    x_name.to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    xs.len().to_string(),
                ]),
            }
        }
    }
    table.print();
    println!("\npaper's qualitative claim: both slopes positive, r^2(#results) > r^2(index size)");
}

//! Table 6: average and maximum number of results on ep and gg with k
//! varied (starred when the time limit censored the count).

use pathenum_workloads::runner::run_query_set;
use pathenum_workloads::Algorithm;

use crate::config::ExperimentConfig;
use crate::experiments::support::{default_queries, representative_graphs};
use crate::output::{banner, sci, Table};

/// Runs the experiment and prints the table.
pub fn run(config: &ExperimentConfig) {
    banner("Table 6: average and maximum #results per query set");
    println!("counts come from IDX-DFS; '*' = some queries hit the time limit\n");
    let mut table = Table::new(["dataset", "k", "avg #results", "max #results"]);
    for (name, graph) in representative_graphs() {
        for k in config.k_sweep() {
            let queries = default_queries(&graph, k, config);
            if queries.is_empty() {
                continue;
            }
            let summary = run_query_set(Algorithm::IdxDfs, &graph, &queries, config.measure());
            let avg = summary
                .measurements
                .iter()
                .map(|m| m.results as f64)
                .sum::<f64>()
                / summary.measurements.len() as f64;
            let max = summary
                .measurements
                .iter()
                .map(|m| m.results)
                .max()
                .unwrap_or(0);
            let star = if summary.timeout_fraction > 0.0 {
                "*"
            } else {
                ""
            };
            table.row([
                name.to_string(),
                k.to_string(),
                format!("{}{}", sci(avg), star),
                format!("{}{}", sci(max as f64), star),
            ]);
        }
    }
    table.print();
}

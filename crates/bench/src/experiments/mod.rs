//! One module per paper table/figure. Each exposes
//! `run(&ExperimentConfig)`.

pub mod ablation;
pub mod cache;
pub mod fig10_11;
pub mod fig12;
pub mod fig13_15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod memory;
pub mod overload;
pub mod perf;
pub mod scaling;
pub mod serve;
pub mod shared;
pub mod stream;
pub mod support;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

use crate::config::ExperimentConfig;

/// One registry entry: `(subcommand, description, runner)`.
pub type ExperimentEntry = (&'static str, &'static str, fn(&ExperimentConfig));

/// All experiments with their subcommand names, in paper order.
pub fn registry() -> Vec<ExperimentEntry> {
    vec![
        (
            "table3",
            "Overall comparison: query time / throughput / response time",
            table3::run,
        ),
        (
            "table4",
            "Query-time distribution (BC-DFS vs IDX-DFS, k varied)",
            table4::run,
        ),
        (
            "table5",
            "Performance on short vs out-of-time queries (ep, k=8)",
            table5::run,
        ),
        (
            "table6",
            "Average and maximum number of results (k varied)",
            table6::run,
        ),
        (
            "table7",
            "Memory: index vs IDX-JOIN partial results (k varied)",
            table7::run,
        ),
        (
            "fig6",
            "Detailed metrics: #edges, #invalid, #results (k varied)",
            fig6::run,
        ),
        (
            "fig7",
            "Query-time breakdown: preprocessing vs enumeration",
            fig7::run,
        ),
        (
            "fig8",
            "99.9% response latency on dynamic graphs",
            fig8::run,
        ),
        ("fig9", "Spectrum analysis of join plans", fig9::run),
        (
            "fig10_11",
            "Regression: enumeration time vs index size / #results",
            fig10_11::run,
        ),
        (
            "fig12",
            "Scalability on the tm proxy (k = 3..6)",
            fig12::run,
        ),
        (
            "fig13_15",
            "Query time / throughput / response time vs k",
            fig13_15::run,
        ),
        ("fig16", "Cumulative distribution of query time", fig16::run),
        ("fig17", "Per-technique execution time vs k", fig17::run),
        ("fig18", "Cardinality estimation accuracy vs k", fig18::run),
        (
            "ablation",
            "Extra ablations: pruning power, barriers, T-DFS",
            ablation::run,
        ),
        (
            "scaling",
            "Intra-query parallel scaling (threads 1/2/4/8)",
            scaling::run,
        ),
        (
            "cache",
            "Repeated-query serving: cold vs warm plan cache vs result replay",
            cache::run,
        ),
        (
            "shared",
            "Shared execution: grouped batches + result replay vs warm path",
            shared::run,
        ),
        (
            "stream",
            "Streaming updates: snapshot vs overlay vs retained cache",
            stream::run,
        ),
        (
            "serve",
            "Concurrent serving: shared graph + shared plan cache across workers",
            serve::run,
        ),
        (
            "overload",
            "Overload serving: cost-based admission control vs unbounded FIFO",
            overload::run,
        ),
        (
            "perf",
            "Kernel microbenchmarks: optimized hot loops vs retained naive oracles",
            perf::run,
        ),
        (
            "memory",
            "Storage formats: bytes/edge, cold start, zero-copy serving",
            memory::run,
        ),
    ]
}

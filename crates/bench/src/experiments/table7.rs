//! Table 7: maximum memory consumption — the light-weight index versus
//! IDX-JOIN's materialized partial results — on ep and gg with k varied.

use pathenum_workloads::runner::run_query_set;
use pathenum_workloads::Algorithm;

use crate::config::ExperimentConfig;
use crate::experiments::support::{default_queries, representative_graphs};
use crate::output::{banner, Table};

fn mib(bytes: u64) -> String {
    format!("{:.3}", bytes as f64 / (1024.0 * 1024.0))
}

/// Runs the experiment and prints the table.
pub fn run(config: &ExperimentConfig) {
    banner("Table 7: maximum memory consumption (MiB) of IDX-JOIN");
    println!("index = light-weight index footprint; partials = materialized join tuples\n");
    let mut table = Table::new(["dataset", "k", "index MiB", "partials MiB"]);
    for (name, graph) in representative_graphs() {
        for k in config.k_sweep() {
            let queries = default_queries(&graph, k, config);
            if queries.is_empty() {
                continue;
            }
            let summary = run_query_set(Algorithm::IdxJoin, &graph, &queries, config.measure());
            let max_index = summary
                .measurements
                .iter()
                .filter_map(|m| m.report.index_bytes)
                .max()
                .unwrap_or(0) as u64;
            let max_partials = summary
                .measurements
                .iter()
                .map(|m| m.report.counters.peak_materialized_bytes())
                .max()
                .unwrap_or(0);
            table.row([
                name.to_string(),
                k.to_string(),
                mib(max_index),
                mib(max_partials),
            ]);
        }
    }
    table.print();
}

//! Kernel microbenchmarks with a pinned perf trajectory (`reproduce perf`).
//!
//! Times every optimized hot-path kernel against its retained naive
//! oracle *in the same process, on the same inputs*, asserting
//! byte-identical results before trusting any timing:
//!
//! * **Boundary BFS** — epoch-stamped flat maps
//!   ([`distances_epoch_into`]) vs the `Vec`-reset oracle
//!   ([`distances_into`]), reported as ns per traversed edge (the
//!   oracle's O(|V|) per-query reset is exactly what the epoch trick
//!   amortizes away).
//! * **Index probes** — `I_t(v, b)` lookup latency in ns per probe.
//! * **IDX-DFS** — arena-backed iterative DFS vs the recursive oracle,
//!   paths per second.
//! * **IDX-JOIN** — contiguous-bucket word-parallel join vs the
//!   hash-bucket oracle, paths per second.
//! * **Warm-serve allocation** — allocation events per warmed query
//!   (counted by [`crate::alloc`]); the optimized kernels must report
//!   **zero** and a stable arena size.
//!
//! Exits by `assert!` (non-zero process status) unless results agree
//! everywhere and at least two of {BFS ns/edge, join wall time, warm
//! allocations} improve by ≥ 1.5×. Writes `BENCH_perf.json` for trend
//! tracking across PRs.

use std::collections::VecDeque;
use std::hint::black_box;
use std::time::{Duration, Instant};

use pathenum::enumerate::{
    idx_dfs, idx_dfs_iterative, idx_join, idx_join_reference, thread_scratch_heap_bytes,
};
use pathenum::sink::{CollectingSink, CountingSink};
use pathenum::{ControlledSink, Counters, Index, Query};
use pathenum_graph::bfs::{distances_epoch_into, distances_into, BfsOptions, Direction};
use pathenum_graph::epoch::EpochMap;
use pathenum_graph::generators::{erdos_renyi, power_law, PowerLawConfig};
use pathenum_graph::types::{Distance, INFINITE_DISTANCE};
use pathenum_graph::{CsrGraph, VertexId};

use super::support::{default_queries, geometric_mean};
use crate::alloc::allocation_count;
use crate::config::ExperimentConfig;
use crate::output::{banner, sci, write_bench_json, Table};

/// Per-query result cap for the enumeration micro-benchmarks: bounds
/// memory and wall time on hub-heavy queries while leaving both kernels
/// an identical (deterministic) early-stop point.
const RESULT_CAP: u64 = 50_000;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct BfsMetrics {
    naive_ns_per_edge: f64,
    opt_ns_per_edge: f64,
    speedup: f64,
}

/// Boundary-BFS timing: many small-`k` queries on a large sparse graph,
/// where the oracle's full-vector reset dominates. Agreement is checked
/// on every query before the timed passes.
fn bfs_metrics(config: &ExperimentConfig, quick: bool) -> BfsMetrics {
    let n: usize = if quick { 50_000 } else { 200_000 };
    let graph = erdos_renyi(n, n * 3, config.seed);
    let depth: Distance = 3;
    let num_queries = if quick { 24 } else { 96 };
    let mut state = config.seed | 1;
    let pairs: Vec<(VertexId, VertexId)> = (0..num_queries)
        .map(|_| {
            let s = (splitmix(&mut state) % n as u64) as VertexId;
            let t = (splitmix(&mut state) % n as u64) as VertexId;
            (s, t)
        })
        .filter(|(s, t)| s != t)
        .collect();
    let options = |t: VertexId| BfsOptions {
        direction: Direction::Forward,
        excluded: Some(t),
        max_depth: Some(depth),
    };

    // Agreement pass (untimed) — also fixes the per-query edge counts.
    let mut naive: Vec<Distance> = Vec::new();
    let mut dist = EpochMap::new(INFINITE_DISTANCE);
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    let mut total_edges = 0u64;
    for &(s, t) in &pairs {
        distances_into(&graph, s, options(t), &mut naive, &mut queue);
        distances_epoch_into(&graph, s, options(t), &mut dist, &mut queue);
        let reached = naive.iter().filter(|&&d| d != INFINITE_DISTANCE).count();
        assert_eq!(
            reached,
            dist.touched().len(),
            "BFS oracle disagreement: reached-set size"
        );
        for &v in dist.touched() {
            assert_eq!(
                naive[v as usize],
                dist.get(v as usize),
                "BFS oracle disagreement at vertex {v}"
            );
            total_edges += graph.out_degree(v) as u64;
        }
    }
    let total_edges = total_edges.max(1);

    let reps = if quick { 3 } else { 5 };
    let start = Instant::now();
    for _ in 0..reps {
        for &(s, t) in &pairs {
            distances_into(&graph, s, options(t), &mut naive, &mut queue);
            black_box(naive.len());
        }
    }
    let naive_time = start.elapsed();
    let start = Instant::now();
    for _ in 0..reps {
        for &(s, t) in &pairs {
            distances_epoch_into(&graph, s, options(t), &mut dist, &mut queue);
            black_box(dist.touched().len());
        }
    }
    let opt_time = start.elapsed();

    let denom = (reps as u64 * total_edges) as f64;
    let naive_ns_per_edge = naive_time.as_nanos() as f64 / denom;
    let opt_ns_per_edge = opt_time.as_nanos() as f64 / denom;
    BfsMetrics {
        naive_ns_per_edge,
        opt_ns_per_edge,
        speedup: naive_ns_per_edge / opt_ns_per_edge.max(f64::MIN_POSITIVE),
    }
}

/// `I_t(v, b)` lookup latency over a warm index, ns per probe.
fn probe_metric(index: &Index, seed: u64, quick: bool) -> f64 {
    let n = index.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let probes: u64 = if quick { 200_000 } else { 2_000_000 };
    let k = index.k();
    let mut state = seed | 1;
    let mut acc = 0usize;
    let start = Instant::now();
    for _ in 0..probes {
        let r = splitmix(&mut state);
        let v = (r % n as u64) as u32;
        let budget = ((r >> 32) % (k as u64 + 1)) as u32;
        acc += index.i_t(v, budget).len();
    }
    let elapsed = start.elapsed();
    black_box(acc);
    elapsed.as_nanos() as f64 / probes as f64
}

/// One kernel under the shared result cap: a first run collects paths and
/// counters for the agreement assertions, then `reps` further runs are
/// timed and the minimum kept (min-of-reps suppresses scheduler noise on
/// a shared core).
fn run_capped(
    reps: u32,
    mut f: impl FnMut(&mut ControlledSink<CollectingSink>, &mut Counters),
) -> (Vec<Vec<VertexId>>, Counters, Duration) {
    let mut sink = ControlledSink::new(CollectingSink::default(), Some(RESULT_CAP), None, None);
    let mut counters = Counters::default();
    f(&mut sink, &mut counters);
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let mut timed_sink =
            ControlledSink::new(CollectingSink::default(), Some(RESULT_CAP), None, None);
        let mut timed_counters = Counters::default();
        let start = Instant::now();
        f(&mut timed_sink, &mut timed_counters);
        best = best.min(start.elapsed());
        black_box(timed_sink.emitted());
    }
    (sink.into_inner().paths, counters, best)
}

struct EnumMetrics {
    dfs_ref_paths_per_sec: f64,
    dfs_opt_paths_per_sec: f64,
    dfs_speedup: f64,
    join_ref_paths_per_sec: f64,
    join_opt_paths_per_sec: f64,
    join_speedup: f64,
    /// A warm (index, cut) pair for the allocation measurement.
    warm: Option<(Index, u32)>,
}

/// IDX-DFS and IDX-JOIN against their oracles over a fixed query set,
/// asserting byte-identical paths and counters on every query.
fn enumeration_metrics(config: &ExperimentConfig, quick: bool) -> EnumMetrics {
    let n = if quick { 300 } else { 800 };
    let graph: CsrGraph = power_law(PowerLawConfig::social(n, 4, config.seed));
    let k = if quick { 4 } else { 5 };
    let cut = (k / 2).max(1);
    let reps = if quick { 5 } else { 7 };
    let queries: Vec<Query> = default_queries(&graph, k, config);

    let mut dfs_ref_time = Duration::ZERO;
    let mut dfs_opt_time = Duration::ZERO;
    let mut join_ref_time = Duration::ZERO;
    let mut join_opt_time = Duration::ZERO;
    let mut dfs_paths = 0u64;
    let mut join_paths = 0u64;
    let mut warm: Option<(Index, u32)> = None;
    for query in queries {
        let index = Index::build(&graph, query);
        if index.is_empty() {
            continue;
        }

        let (ref_paths, ref_counters, t) =
            run_capped(reps, |sink, counters| void(idx_dfs(&index, sink, counters)));
        dfs_ref_time += t;
        let (opt_paths, opt_counters, t) = run_capped(reps, |sink, counters| {
            void(idx_dfs_iterative(&index, sink, counters))
        });
        dfs_opt_time += t;
        assert_eq!(ref_paths, opt_paths, "DFS oracle disagreement: paths");
        assert_eq!(
            ref_counters, opt_counters,
            "DFS oracle disagreement: counters"
        );
        dfs_paths += ref_paths.len() as u64;

        let (ref_paths, ref_counters, t) = run_capped(reps, |sink, counters| {
            void(idx_join_reference(&index, cut, sink, counters))
        });
        join_ref_time += t;
        let (opt_paths, opt_counters, t) = run_capped(reps, |sink, counters| {
            void(idx_join(&index, cut, sink, counters))
        });
        join_opt_time += t;
        assert_eq!(ref_paths, opt_paths, "JOIN oracle disagreement: paths");
        assert_eq!(
            ref_counters, opt_counters,
            "JOIN oracle disagreement: counters"
        );
        join_paths += ref_paths.len() as u64;

        if warm.is_none() {
            warm = Some((index, cut));
        }
    }

    let per_sec = |paths: u64, d: Duration| paths as f64 / d.as_secs_f64().max(1e-12);
    EnumMetrics {
        dfs_ref_paths_per_sec: per_sec(dfs_paths, dfs_ref_time),
        dfs_opt_paths_per_sec: per_sec(dfs_paths, dfs_opt_time),
        dfs_speedup: dfs_ref_time.as_secs_f64() / dfs_opt_time.as_secs_f64().max(1e-12),
        join_ref_paths_per_sec: per_sec(join_paths, join_ref_time),
        join_opt_paths_per_sec: per_sec(join_paths, join_opt_time),
        join_speedup: join_ref_time.as_secs_f64() / join_opt_time.as_secs_f64().max(1e-12),
        warm,
    }
}

fn void<T>(_: T) {}

/// Allocation events per query on a warmed thread, optimized vs oracle
/// kernels. The optimized pair must allocate nothing and leave the
/// per-thread arena byte-stable.
fn allocation_metrics(index: &Index, cut: u32) -> (u64, u64) {
    let reps: u64 = 10;
    let run_opt = |index: &Index| {
        let mut sink = CountingSink::default();
        let mut counters = Counters::default();
        idx_join(index, cut, &mut sink, &mut counters);
        let mut sink = CountingSink::default();
        let mut counters = Counters::default();
        idx_dfs_iterative(index, &mut sink, &mut counters);
    };
    // Warm the arena, then measure steady state.
    run_opt(index);
    let arena_before = thread_scratch_heap_bytes();
    let before = allocation_count();
    for _ in 0..reps {
        run_opt(index);
    }
    let opt_events = allocation_count() - before;
    let arena_after = thread_scratch_heap_bytes();
    assert_eq!(
        arena_before, arena_after,
        "warm queries must not grow the enumeration arena"
    );
    assert_eq!(opt_events, 0, "warm optimized kernels must not allocate");

    let before = allocation_count();
    for _ in 0..reps {
        let mut sink = CountingSink::default();
        let mut counters = Counters::default();
        idx_join_reference(index, cut, &mut sink, &mut counters);
        let mut sink = CountingSink::default();
        let mut counters = Counters::default();
        idx_dfs(index, &mut sink, &mut counters);
    }
    let ref_events = allocation_count() - before;
    (ref_events / reps, opt_events / reps)
}

/// Entry point for `reproduce perf`.
pub fn run(config: &ExperimentConfig) {
    banner("perf: kernel pass vs retained naive oracles");
    let quick = config.queries_per_set <= 4;

    let bfs = bfs_metrics(config, quick);
    let enm = enumeration_metrics(config, quick);
    let (probe_ns, ref_allocs, opt_allocs) = match &enm.warm {
        Some((index, cut)) => {
            let probe_ns = probe_metric(index, config.seed, quick);
            let (r, o) = allocation_metrics(index, *cut);
            (probe_ns, r, o)
        }
        None => (0.0, 0, 0),
    };
    println!("perf: kernel oracle agreement OK (BFS, DFS, JOIN byte-identical)");

    let mut table = Table::new(["kernel", "naive", "optimized", "speedup"]);
    table.row([
        "BFS (ns/edge)".to_string(),
        sci(bfs.naive_ns_per_edge),
        sci(bfs.opt_ns_per_edge),
        format!("{:.2}x", bfs.speedup),
    ]);
    table.row([
        "IDX-DFS (paths/s)".to_string(),
        sci(enm.dfs_ref_paths_per_sec),
        sci(enm.dfs_opt_paths_per_sec),
        format!("{:.2}x", enm.dfs_speedup),
    ]);
    table.row([
        "IDX-JOIN (paths/s)".to_string(),
        sci(enm.join_ref_paths_per_sec),
        sci(enm.join_opt_paths_per_sec),
        format!("{:.2}x", enm.join_speedup),
    ]);
    table.row([
        "warm allocs/query".to_string(),
        format!("{ref_allocs}"),
        format!("{opt_allocs}"),
        if opt_allocs == 0 {
            "inf".to_string()
        } else {
            "-".to_string()
        },
    ]);
    table.row([
        "index probe (ns)".to_string(),
        String::new(),
        sci(probe_ns),
        String::new(),
    ]);
    table.print();

    let geomean = geometric_mean(
        &[
            bfs.speedup.min(1e6),
            enm.dfs_speedup.min(1e6),
            enm.join_speedup.min(1e6),
        ],
        1e-9,
    );
    let alloc_win = opt_allocs == 0 && ref_allocs > 0;
    let criteria_met =
        u32::from(bfs.speedup >= 1.5) + u32::from(enm.join_speedup >= 1.5) + u32::from(alloc_win);
    assert!(
        criteria_met >= 2,
        "perf trajectory regressed: only {criteria_met}/3 criteria at >=1.5x \
         (bfs {:.2}x, join {:.2}x, alloc_win {alloc_win})",
        bfs.speedup,
        enm.join_speedup,
    );
    println!(
        "perf assertions passed: {criteria_met}/3 criteria at >=1.5x, \
         geomean kernel speedup {geomean:.2}x"
    );

    write_bench_json(
        "BENCH_perf.json",
        &[
            ("bfs_naive_ns_per_edge", bfs.naive_ns_per_edge),
            ("bfs_opt_ns_per_edge", bfs.opt_ns_per_edge),
            ("bfs_speedup", bfs.speedup),
            ("index_probe_ns", probe_ns),
            ("dfs_reference_paths_per_sec", enm.dfs_ref_paths_per_sec),
            ("dfs_opt_paths_per_sec", enm.dfs_opt_paths_per_sec),
            ("dfs_speedup", enm.dfs_speedup),
            ("join_reference_paths_per_sec", enm.join_ref_paths_per_sec),
            ("join_opt_paths_per_sec", enm.join_opt_paths_per_sec),
            ("join_speedup", enm.join_speedup),
            ("warm_allocs_per_query_reference", ref_allocs as f64),
            ("warm_allocs_per_query_opt", opt_allocs as f64),
            ("geomean_speedup", geomean),
            ("criteria_met", f64::from(criteria_met)),
            ("quick", f64::from(u8::from(quick))),
            ("seed", config.seed as f64),
        ],
    );
}

//! Shared experiment configuration.

use std::path::PathBuf;
use std::time::Duration;

use pathenum::Method;
use pathenum_workloads::MeasureConfig;

/// Knobs shared by every experiment. The defaults are scaled so that the
/// full `reproduce all` run finishes in minutes on a laptop while still
/// exhibiting the paper's phenomena (timeouts on heavy graphs included).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Queries per query set (the paper uses 1000).
    pub queries_per_set: usize,
    /// Per-query wall-clock cap (the paper uses 120 s).
    pub time_limit: Duration,
    /// Result count defining response time (the paper uses 1000).
    pub response_limit: u64,
    /// Default hop constraint (the paper reports k = 6 by default).
    pub default_k: u32,
    /// Base RNG seed for query generation.
    pub seed: u64,
    /// Force one enumeration method (`reproduce --method idx-dfs|idx-join`),
    /// bypassing the cost-based optimizer in the experiments that run the
    /// full PathEnum pipeline (currently `cache`, `stream`, and `serve`).
    /// `None` lets the optimizer decide.
    pub force_method: Option<Method>,
    /// Override the worker-pool size in the serving experiments
    /// (`reproduce --workers N`): `serve` sweeps exactly `[N]` instead
    /// of `[1, 2, 4]`, and `overload` serves with `N` workers. `None`
    /// keeps each experiment's default.
    pub workers: Option<usize>,
    /// Run against a graph loaded from disk instead of the built-in
    /// synthetic datasets (`reproduce --graph-file PATH`). The loader
    /// sniffs the format: `PEG2` images are served zero-copy, `PEG1`
    /// and plain edge lists are parsed into a heap CSR. Currently read
    /// by the `memory` experiment; others ignore it.
    pub graph_file: Option<PathBuf>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            queries_per_set: 15,
            time_limit: Duration::from_millis(300),
            response_limit: 1000,
            default_k: 6,
            seed: 42,
            force_method: None,
            workers: None,
            graph_file: None,
        }
    }
}

impl ExperimentConfig {
    /// A fast smoke-test configuration (used by `reproduce --quick` and
    /// the integration tests).
    pub fn quick() -> Self {
        ExperimentConfig {
            queries_per_set: 4,
            time_limit: Duration::from_millis(60),
            response_limit: 200,
            default_k: 4,
            seed: 42,
            force_method: None,
            workers: None,
            graph_file: None,
        }
    }

    /// The equivalent per-query measurement configuration.
    pub fn measure(&self) -> MeasureConfig {
        MeasureConfig {
            time_limit: self.time_limit,
            response_limit: self.response_limit,
        }
    }

    /// The `k` sweep the paper uses (3..=8), trimmed in quick mode.
    pub fn k_sweep(&self) -> Vec<u32> {
        if self.queries_per_set <= 4 {
            vec![3, 4, 5]
        } else {
            (3..=8).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_scaled_down_from_paper() {
        let c = ExperimentConfig::default();
        assert!(c.time_limit < Duration::from_secs(120));
        assert_eq!(c.default_k, 6);
        assert_eq!(c.k_sweep(), vec![3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn quick_mode_trims_the_sweep() {
        let c = ExperimentConfig::quick();
        assert_eq!(c.k_sweep(), vec![3, 4, 5]);
        assert!(c.time_limit <= Duration::from_millis(100));
    }

    #[test]
    fn measure_config_mirrors_fields() {
        let c = ExperimentConfig::default();
        let m = c.measure();
        assert_eq!(m.time_limit, c.time_limit);
        assert_eq!(m.response_limit, c.response_limit);
    }
}

//! Shared pieces of the baseline algorithms.

use std::time::Duration;

use pathenum::query::Query;
use pathenum::stats::Counters;
use pathenum_graph::bfs::{distances, BfsOptions, Direction};
use pathenum_graph::types::Distance;
use pathenum_graph::CsrGraph;

/// Phase breakdown and counters of one baseline run, mirroring
/// [`pathenum::RunReport`] for fair comparison.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Preprocessing (the initial distance BFS, plus materialization for
    /// the join variant).
    pub preprocessing: Duration,
    /// Enumeration time.
    pub enumeration: Duration,
    /// Counters equivalent to the PathEnum ones.
    pub counters: Counters,
}

impl BaselineReport {
    /// Total query time.
    pub fn total(&self) -> Duration {
        self.preprocessing + self.enumeration
    }
}

/// `S(v, t | G)` for every vertex, bounded by `k` (unreachable-within-`k`
/// vertices read infinite). The unconstrained distance is a lower bound on
/// any residual distance the searches need, so pruning with it is sound.
pub fn base_distances_to_t(graph: &CsrGraph, t: u32, k: u32) -> Vec<Distance> {
    distances(
        graph,
        t,
        BfsOptions {
            direction: Direction::Backward,
            excluded: None,
            max_depth: Some(k),
        },
    )
}

/// Shared admission check used by the DFS baselines: can `next` extend a
/// partial result of `len_edges` edges and still reach `t` within `k`?
#[inline]
pub fn within_budget(dist_to_t: Distance, len_edges: u32, k: u32) -> bool {
    // L(M) + 1 + B(v') <= k  with saturating distance arithmetic.
    dist_to_t != pathenum_graph::INFINITE_DISTANCE && len_edges + 1 + dist_to_t <= k
}

/// Validates query endpoints and short-circuits trivial cases; returns
/// `false` when the caller should return an empty result immediately.
pub fn query_is_runnable(graph: &CsrGraph, query: Query) -> bool {
    query.validate(graph.num_vertices()).is_ok()
}

/// Helper: an empty report with the given counters.
pub fn empty_report() -> BaselineReport {
    BaselineReport {
        preprocessing: Duration::ZERO,
        enumeration: Duration::ZERO,
        counters: Counters::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathenum_graph::GraphBuilder;

    #[test]
    fn base_distances_bounded() {
        let mut b = GraphBuilder::new(5);
        b.add_edges([(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let g = b.finish();
        let d = base_distances_to_t(&g, 4, 2);
        assert_eq!(d[4], 0);
        assert_eq!(d[3], 1);
        assert_eq!(d[2], 2);
        assert_eq!(d[1], pathenum_graph::INFINITE_DISTANCE);
    }

    #[test]
    fn budget_check_matches_formula() {
        assert!(within_budget(1, 2, 4)); // 2 + 1 + 1 = 4 <= 4
        assert!(!within_budget(2, 2, 4)); // 2 + 1 + 2 = 5 > 4
        assert!(!within_budget(pathenum_graph::INFINITE_DISTANCE, 0, 4));
    }

    #[test]
    fn report_total_sums_phases() {
        let mut r = empty_report();
        r.preprocessing = Duration::from_millis(2);
        r.enumeration = Duration::from_millis(3);
        assert_eq!(r.total(), Duration::from_millis(5));
    }
}

//! T-DFS: certificate-based polynomial delay (Rizzi et al., IWOCA 2014).
//!
//! Before extending the partial result `M` with `v'`, T-DFS verifies that
//! a path from `v'` to `t` of length at most `k - L(M) - 1` exists in
//! `G - M` — an exact check performed by a bounded BFS that avoids the
//! on-stack vertices. Every surviving branch is therefore guaranteed to
//! produce at least one result (polynomial delay), but each step costs a
//! BFS: the high per-step pruning overhead the PathEnum paper identifies
//! as the reason these theoretical algorithms lose in practice.

use std::collections::VecDeque;
use std::time::Instant;

use pathenum::query::Query;
use pathenum::sink::{PathSink, SearchControl};
use pathenum::stats::Counters;
use pathenum_graph::{CsrGraph, VertexId};

use crate::common::{empty_report, query_is_runnable, BaselineReport};

/// Runs T-DFS on `query`, streaming results into `sink`.
pub fn t_dfs(graph: &CsrGraph, query: Query, sink: &mut dyn PathSink) -> BaselineReport {
    if !query_is_runnable(graph, query) {
        return empty_report();
    }
    let mut counters = Counters::default();
    let enum_start = Instant::now();
    let mut state = TDfs {
        graph,
        query,
        on_stack: vec![false; graph.num_vertices()],
        visit_epoch: vec![0u32; graph.num_vertices()],
        epoch: 0,
        queue: VecDeque::new(),
        partial: Vec::with_capacity(query.k as usize + 1),
        counters: &mut counters,
    };
    state.partial.push(query.s);
    state.on_stack[query.s as usize] = true;
    let mut emit = |path: &[VertexId]| sink.emit(path);
    if state.reaches_t_avoiding_stack(query.s, query.k) {
        state.search(&mut emit);
    }
    let enumeration = enum_start.elapsed();

    BaselineReport {
        // T-DFS has no preprocessing phase: all work happens per step.
        preprocessing: std::time::Duration::ZERO,
        enumeration,
        counters,
    }
}

struct TDfs<'a> {
    graph: &'a CsrGraph,
    query: Query,
    on_stack: Vec<bool>,
    /// Epoch-stamped visited marks so each certificate BFS starts clean
    /// without an O(|V|) reset.
    visit_epoch: Vec<u32>,
    epoch: u32,
    queue: VecDeque<VertexId>,
    partial: Vec<VertexId>,
    counters: &'a mut Counters,
}

impl TDfs<'_> {
    fn search(&mut self, emit: &mut dyn FnMut(&[VertexId]) -> SearchControl) -> SearchControl {
        let v = *self.partial.last().expect("partial contains s");
        if v == self.query.t {
            self.counters.results += 1;
            return emit(&self.partial);
        }
        let len_edges = self.partial.len() as u32 - 1;
        let budget = self.query.k - len_edges - 1;
        let neighbor_count = self.graph.out_neighbors(v).len();
        self.counters.edges_accessed += neighbor_count as u64;
        for idx in 0..neighbor_count {
            let next = self.graph.out_neighbors(v)[idx];
            if self.on_stack[next as usize] {
                continue;
            }
            // Certificate: a path next -> t of length <= budget in G - M.
            if !self.reaches_t_avoiding_stack(next, budget) {
                continue;
            }
            self.partial.push(next);
            self.on_stack[next as usize] = true;
            self.counters.partial_results += 1;
            let control = self.search(emit);
            self.on_stack[next as usize] = false;
            self.partial.pop();
            if control == SearchControl::Stop {
                return SearchControl::Stop;
            }
        }
        SearchControl::Continue
    }

    /// Bounded BFS from `from` toward `t`, treating on-stack vertices as
    /// deleted. The certificate query of T-DFS.
    fn reaches_t_avoiding_stack(&mut self, from: VertexId, budget: u32) -> bool {
        if from == self.query.t {
            return true;
        }
        if budget == 0 {
            return false;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        self.queue.clear();
        self.queue.push_back(from);
        self.visit_epoch[from as usize] = epoch;
        let mut frontier_left = 1usize;
        let mut depth = 0u32;
        let mut next_frontier = 0usize;
        while let Some(v) = self.queue.pop_front() {
            for &n in self.graph.out_neighbors(v) {
                self.counters.edges_accessed += 1;
                if n == self.query.t {
                    return true;
                }
                if self.on_stack[n as usize] || self.visit_epoch[n as usize] == epoch {
                    continue;
                }
                self.visit_epoch[n as usize] = epoch;
                self.queue.push_back(n);
                next_frontier += 1;
            }
            frontier_left -= 1;
            if frontier_left == 0 {
                depth += 1;
                if depth >= budget {
                    return false;
                }
                frontier_left = next_frontier;
                next_frontier = 0;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathenum::request::ControlledSink;
    use pathenum::sink::{CollectingSink, CountingSink};
    use pathenum_graph::generators::{complete_digraph, erdos_renyi};

    fn check(g: &CsrGraph, q: Query) {
        let mut got = CollectingSink::default();
        t_dfs(g, q, &mut got);
        let mut expected = CollectingSink::default();
        pathenum::reference::brute_force_paths(g, q, &mut expected);
        assert_eq!(got.sorted_paths(), expected.sorted_paths(), "query {q:?}");
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in 0..6u64 {
            let g = erdos_renyi(20, 90, seed);
            for k in 2..=5u32 {
                check(&g, Query::new(0, 1, k).unwrap());
            }
        }
    }

    #[test]
    fn exact_on_dense_graphs() {
        let g = complete_digraph(6);
        for k in 2..=5u32 {
            check(&g, Query::new(0, 5, k).unwrap());
        }
    }

    #[test]
    fn every_partial_leads_to_a_result() {
        // The defining property of T-DFS: zero invalid partial results.
        let g = erdos_renyi(25, 120, 11);
        let q = Query::new(0, 1, 5).unwrap();
        let mut sink = CountingSink::default();
        let report = t_dfs(&g, q, &mut sink);
        assert_eq!(report.counters.invalid_partial_results, 0);
        assert!(report.counters.partial_results >= report.counters.results.saturating_sub(1));
    }

    #[test]
    fn early_stop_works() {
        let g = complete_digraph(8);
        let q = Query::new(0, 7, 4).unwrap();
        let mut sink = ControlledSink::new(CountingSink::default(), Some(2), None, None);
        t_dfs(&g, q, &mut sink);
        assert_eq!(sink.emitted(), 2);
    }
}

//! Baseline hop-constrained s-t path enumeration algorithms.
//!
//! The competitors the paper evaluates PathEnum against (Section 7.1):
//!
//! * [`generic_dfs`](mod@generic_dfs) — the generic backtracking framework of Algorithm 1
//!   with a static distance-to-`t` bound.
//! * [`bc_dfs`](mod@bc_dfs) — the barrier-based polynomial-delay algorithm of Peng et
//!   al. (VLDB 2020): distances to `t` are *maintained* during the search,
//!   raising a barrier whenever a subtree proves fruitless and rolling it
//!   back when the blocking stack prefix unwinds.
//! * [`bc_join`](mod@bc_join) — the join-oriented variant: enumerate path halves
//!   meeting at position `ceil(k/2)` and join on the middle vertex.
//! * [`t_dfs`](mod@t_dfs) — Rizzi et al.'s theoretical algorithm: every extension is
//!   certified by an exact shortest-path query avoiding the current
//!   partial path, guaranteeing each branch leads to a result.
//! * [`yen_ksp`] — the top-K shortest-path adaptation (Yen's loopless
//!   algorithm, the KRE/KPJ family): enumerate simple paths in ascending
//!   length order and stop past `k`.
//! * [`hot_index`] — an HPI-style offline index of paths between
//!   high-degree vertices (Qiu et al., VLDB 2018), demonstrating the
//!   memory blow-up the PathEnum paper criticizes.
//!
//! All of them work directly on the graph (global vertex ids) — none uses
//! the PathEnum index — and report the same phase/counter breakdown so the
//! experiment harness can compare them fairly.

pub mod bc_dfs;
pub mod bc_join;
pub mod common;
pub mod generic_dfs;
pub mod hot_index;
pub mod t_dfs;
pub mod yen;

pub use bc_dfs::bc_dfs;
pub use bc_join::bc_join;
pub use common::BaselineReport;
pub use generic_dfs::generic_dfs;
pub use hot_index::{hot_index_enumerate, HotIndex};
pub use t_dfs::t_dfs;
pub use yen::yen_ksp;

//! Top-K shortest path adaptation (Yen's algorithm) for HcPE.
//!
//! Section 2.3 of the paper: a `q(s, t, k)` query can be answered by a
//! top-K loopless-shortest-path algorithm — keep requesting the next
//! shortest simple path and stop once its length exceeds `k`. The paths
//! arrive in ascending length order, which HcPE does not need; paying for
//! that order (a candidate heap and one constrained shortest-path search
//! per emitted path per deviation point) is exactly the overhead that
//! makes the KSP family (KRE, KPJ) orders of magnitude slower. This
//! implementation exists as that reference point.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Instant;

use pathenum::query::Query;
use pathenum::sink::{PathSink, SearchControl};
use pathenum::stats::Counters;
use pathenum_graph::hashing::FxHashSet;
use pathenum_graph::{CsrGraph, VertexId};

use crate::common::{empty_report, query_is_runnable, BaselineReport};

/// Runs the Yen-based HcPE evaluation, streaming results into `sink`.
///
/// Results are emitted in ascending length order (ties broken by vertex
/// sequence); enumeration stops as soon as the next shortest simple path
/// is longer than `k` or the path space is exhausted.
pub fn yen_ksp(graph: &CsrGraph, query: Query, sink: &mut dyn PathSink) -> BaselineReport {
    if !query_is_runnable(graph, query) {
        return empty_report();
    }
    let mut counters = Counters::default();
    let enum_start = Instant::now();
    run(graph, query, sink, &mut counters);
    BaselineReport {
        preprocessing: std::time::Duration::ZERO,
        enumeration: enum_start.elapsed(),
        counters,
    }
}

/// Candidate path ordered by (length, lexicographic sequence) so the heap
/// pops a deterministic ascending stream.
#[derive(PartialEq, Eq)]
struct Candidate(Vec<VertexId>);

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .len()
            .cmp(&other.0.len())
            .then_with(|| self.0.cmp(&other.0))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn run(graph: &CsrGraph, query: Query, sink: &mut dyn PathSink, counters: &mut Counters) {
    let k = query.k;
    // A_0: the shortest path, by plain BFS.
    let Some(first) = shortest_path_avoiding(graph, query, &[], None, counters) else {
        return;
    };
    if first.len() as u32 - 1 > k {
        return;
    }
    let mut emitted: Vec<Vec<VertexId>> = Vec::new();
    let mut candidates: BinaryHeap<Reverse<Candidate>> = BinaryHeap::new();
    let mut seen: FxHashSet<Vec<VertexId>> = FxHashSet::default();
    seen.insert(first.clone());
    candidates.push(Reverse(Candidate(first)));

    while let Some(Reverse(Candidate(path))) = candidates.pop() {
        if path.len() as u32 - 1 > k {
            return; // ascending order: everything later is longer too
        }
        counters.results += 1;
        if sink.emit(&path) == SearchControl::Stop {
            return;
        }
        emitted.push(path.clone());

        // Yen's deviation step: for each prefix of the just-emitted path,
        // find the shortest deviation that shares the prefix but leaves
        // its last vertex by an unused edge.
        for spur_idx in 0..path.len() - 1 {
            let root = &path[..=spur_idx];
            // Edges to ban: the next edge of every previously accepted
            // path sharing this root.
            let mut banned_edges: Vec<(VertexId, VertexId)> = Vec::new();
            for prev in emitted.iter().chain(std::iter::once(&path)) {
                if prev.len() > spur_idx + 1 && prev[..=spur_idx] == *root {
                    banned_edges.push((prev[spur_idx], prev[spur_idx + 1]));
                }
            }
            let remaining_budget = k - spur_idx as u32;
            let Some(spur) = shortest_path_avoiding_with_budget(
                graph,
                Query {
                    s: path[spur_idx],
                    t: query.t,
                    k: query.k,
                },
                &path[..spur_idx], // root vertices are off limits (loopless)
                Some(&banned_edges),
                remaining_budget,
                counters,
            ) else {
                continue;
            };
            let mut full = root[..spur_idx].to_vec();
            full.extend_from_slice(&spur);
            if full.len() as u32 - 1 <= k && seen.insert(full.clone()) {
                counters.partial_results += 1;
                candidates.push(Reverse(Candidate(full)));
            }
        }
    }
}

/// Shortest s-t path by BFS, avoiding a vertex set and optionally a set
/// of banned directed edges.
fn shortest_path_avoiding(
    graph: &CsrGraph,
    query: Query,
    avoid: &[VertexId],
    banned_edges: Option<&[(VertexId, VertexId)]>,
    counters: &mut Counters,
) -> Option<Vec<VertexId>> {
    shortest_path_avoiding_with_budget(graph, query, avoid, banned_edges, query.k, counters)
}

fn shortest_path_avoiding_with_budget(
    graph: &CsrGraph,
    query: Query,
    avoid: &[VertexId],
    banned_edges: Option<&[(VertexId, VertexId)]>,
    budget: u32,
    counters: &mut Counters,
) -> Option<Vec<VertexId>> {
    let n = graph.num_vertices();
    let mut parent: Vec<VertexId> = vec![VertexId::MAX; n];
    let mut depth: Vec<u32> = vec![u32::MAX; n];
    let mut avoid_set = vec![false; n];
    for &v in avoid {
        avoid_set[v as usize] = true;
    }
    if avoid_set[query.s as usize] {
        return None;
    }
    let mut queue = VecDeque::new();
    depth[query.s as usize] = 0;
    queue.push_back(query.s);
    while let Some(v) = queue.pop_front() {
        if v == query.t {
            break;
        }
        if depth[v as usize] >= budget {
            continue;
        }
        for &next in graph.out_neighbors(v) {
            counters.edges_accessed += 1;
            if avoid_set[next as usize] || depth[next as usize] != u32::MAX {
                continue;
            }
            // Interior vertices may not revisit s (walks from s to t).
            if next == query.s {
                continue;
            }
            if let Some(banned) = banned_edges {
                if banned.contains(&(v, next)) {
                    continue;
                }
            }
            depth[next as usize] = depth[v as usize] + 1;
            parent[next as usize] = v;
            queue.push_back(next);
        }
    }
    if depth[query.t as usize] == u32::MAX {
        return None;
    }
    let mut path = vec![query.t];
    let mut cursor = query.t;
    while cursor != query.s {
        cursor = parent[cursor as usize];
        path.push(cursor);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathenum::request::ControlledSink;
    use pathenum::sink::{CollectingSink, CountingSink};
    use pathenum_graph::generators::{complete_digraph, erdos_renyi};

    fn check(g: &CsrGraph, q: Query) {
        let mut got = CollectingSink::default();
        yen_ksp(g, q, &mut got);
        let mut expected = CollectingSink::default();
        pathenum::reference::brute_force_paths(g, q, &mut expected);
        assert_eq!(got.sorted_paths(), expected.sorted_paths(), "query {q:?}");
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in 0..6u64 {
            let g = erdos_renyi(18, 70, seed);
            for k in 2..=5u32 {
                check(&g, Query::new(0, 1, k).unwrap());
            }
        }
    }

    #[test]
    fn exact_on_dense_graphs() {
        let g = complete_digraph(6);
        for k in 2..=4u32 {
            check(&g, Query::new(0, 5, k).unwrap());
        }
    }

    #[test]
    fn emits_in_ascending_length_order() {
        let g = complete_digraph(7);
        let q = Query::new(0, 6, 4).unwrap();
        let mut sink = CollectingSink::default();
        yen_ksp(&g, q, &mut sink);
        let lengths: Vec<usize> = sink.paths.iter().map(Vec::len).collect();
        assert!(
            lengths.windows(2).all(|w| w[0] <= w[1]),
            "not ascending: {lengths:?}"
        );
    }

    #[test]
    fn early_stop_works() {
        let g = complete_digraph(7);
        let q = Query::new(0, 6, 4).unwrap();
        let mut sink = ControlledSink::new(CountingSink::default(), Some(3), None, None);
        yen_ksp(&g, q, &mut sink);
        assert_eq!(sink.emitted(), 3);
    }

    #[test]
    fn no_path_within_k_is_empty() {
        let mut b = pathenum_graph::GraphBuilder::new(5);
        b.add_edges([(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let g = b.finish();
        let mut sink = CollectingSink::default();
        yen_ksp(&g, Query::new(0, 4, 3).unwrap(), &mut sink);
        assert!(sink.paths.is_empty());
    }
}

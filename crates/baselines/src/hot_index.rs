//! HPI-style hot-vertex path index (Qiu et al., VLDB 2018; Section 2.2
//! of the PathEnum paper).
//!
//! HPI accelerates constrained path/cycle enumeration by *precomputing*
//! an index of paths between high-degree ("hot") vertices so the online
//! search can jump across indexed segments instead of re-walking the
//! dense core. The PathEnum paper's critique — which this implementation
//! exists to demonstrate — is that the number of such segments grows
//! exponentially, so the index "can consume a large amount of memory".
//!
//! Implementation: the hot set `H` is the top fraction of vertices by
//! degree. The offline index stores, per hot vertex, every simple path
//! of at most `k_max` edges to another hot vertex whose interior is
//! entirely cold. A query then enumerates each result path through its
//! unique decomposition at interior hot vertices:
//!
//! * cold mode walks non-hot vertices edge by edge (and may finish at
//!   `t`);
//! * arriving at a hot interior vertex switches to segment mode, which
//!   splices indexed hot-to-hot segments (skipping any ending at `t`, so
//!   final pieces are always enumerated cold — this keeps the
//!   derivation canonical and duplicate-free).

use std::time::Instant;

use pathenum::query::Query;
use pathenum::sink::{PathSink, SearchControl};
use pathenum::stats::Counters;
use pathenum_graph::hashing::FxHashMap;
use pathenum_graph::properties::degree_split;
use pathenum_graph::{CsrGraph, VertexId};

use crate::common::{empty_report, query_is_runnable, BaselineReport};

/// One indexed hot-to-hot segment: the full vertex sequence, endpoints
/// included (`path[0]` and `path.last()` are hot, the interior is cold).
#[derive(Debug, Clone)]
pub struct Segment {
    /// Vertex sequence of the segment.
    pub path: Vec<VertexId>,
}

/// The offline hot-pair path index.
#[derive(Debug, Clone)]
pub struct HotIndex {
    hot: Vec<bool>,
    /// Segments grouped by their start vertex.
    segments: FxHashMap<VertexId, Vec<Segment>>,
    k_max: u32,
}

impl HotIndex {
    /// Builds the index: `hot_fraction` of vertices (by degree) become
    /// hot; all cold-interior simple paths of at most `k_max` edges
    /// between hot pairs are materialized.
    pub fn build(graph: &CsrGraph, hot_fraction: f64, k_max: u32) -> HotIndex {
        let (hot_vertices, _) = degree_split(graph, hot_fraction);
        let mut hot = vec![false; graph.num_vertices()];
        for &h in &hot_vertices {
            hot[h as usize] = true;
        }
        let mut segments: FxHashMap<VertexId, Vec<Segment>> = FxHashMap::default();
        let mut partial: Vec<VertexId> = Vec::with_capacity(k_max as usize + 1);
        for &h in &hot_vertices {
            partial.clear();
            partial.push(h);
            let mut out = Vec::new();
            collect_segments(graph, &hot, k_max, &mut partial, &mut out);
            if !out.is_empty() {
                segments.insert(h, out);
            }
        }
        HotIndex {
            hot,
            segments,
            k_max,
        }
    }

    /// Whether `v` is hot.
    #[inline]
    pub fn is_hot(&self, v: VertexId) -> bool {
        self.hot[v as usize]
    }

    /// Indexed segments starting at `h`.
    pub fn segments_from(&self, h: VertexId) -> &[Segment] {
        self.segments.get(&h).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of indexed segments.
    pub fn num_segments(&self) -> usize {
        self.segments.values().map(Vec::len).sum()
    }

    /// The hop budget the index was built for.
    pub fn k_max(&self) -> u32 {
        self.k_max
    }

    /// Approximate heap footprint in bytes — the quantity the PathEnum
    /// paper criticizes (it grows exponentially with `k_max` on dense
    /// graphs).
    pub fn heap_bytes(&self) -> usize {
        let path_bytes: usize = self
            .segments
            .values()
            .flatten()
            .map(|s| s.path.len() * std::mem::size_of::<VertexId>())
            .sum();
        path_bytes + self.hot.len()
    }
}

/// DFS from a hot root through cold vertices, recording every arrival at
/// a hot vertex as a segment.
fn collect_segments(
    graph: &CsrGraph,
    hot: &[bool],
    k_max: u32,
    partial: &mut Vec<VertexId>,
    out: &mut Vec<Segment>,
) {
    let v = *partial.last().expect("partial contains the root");
    if partial.len() as u32 - 1 == k_max {
        return;
    }
    for &next in graph.out_neighbors(v) {
        if partial.contains(&next) {
            continue;
        }
        if hot[next as usize] {
            let mut path = partial.clone();
            path.push(next);
            out.push(Segment { path });
            continue; // segments end at the first hot vertex
        }
        partial.push(next);
        collect_segments(graph, hot, k_max, partial, out);
        partial.pop();
    }
}

/// Evaluates `query` using the hot index, streaming results into `sink`.
///
/// `index` must have been built with `k_max >= query.k` on the same
/// graph.
pub fn hot_index_enumerate(
    graph: &CsrGraph,
    index: &HotIndex,
    query: Query,
    sink: &mut dyn PathSink,
) -> BaselineReport {
    assert!(index.k_max() >= query.k, "index k_max must cover the query");
    if !query_is_runnable(graph, query) {
        return empty_report();
    }
    let mut counters = Counters::default();
    let enum_start = Instant::now();
    let mut search = HotSearch {
        graph,
        index,
        query,
        partial: vec![query.s],
        sink,
        counters: &mut counters,
    };
    search.cold_step();
    BaselineReport {
        preprocessing: std::time::Duration::ZERO,
        enumeration: enum_start.elapsed(),
        counters,
    }
}

struct HotSearch<'a> {
    graph: &'a CsrGraph,
    index: &'a HotIndex,
    query: Query,
    partial: Vec<VertexId>,
    sink: &'a mut dyn PathSink,
    counters: &'a mut Counters,
}

impl HotSearch<'_> {
    fn budget(&self) -> u32 {
        self.query.k - (self.partial.len() as u32 - 1)
    }

    /// Cold mode: extend through cold vertices; `t` terminates, a hot
    /// vertex switches to segment mode.
    fn cold_step(&mut self) -> SearchControl {
        if self.budget() == 0 {
            return SearchControl::Continue;
        }
        let v = *self.partial.last().expect("partial contains s");
        let neighbors = self.graph.out_neighbors(v);
        self.counters.edges_accessed += neighbors.len() as u64;
        for idx in 0..neighbors.len() {
            let next = self.graph.out_neighbors(v)[idx];
            if next == self.query.t {
                self.partial.push(next);
                self.counters.results += 1;
                let control = self.sink.emit(&self.partial);
                self.partial.pop();
                if control == SearchControl::Stop {
                    return SearchControl::Stop;
                }
                continue;
            }
            if next == self.query.s || self.partial.contains(&next) {
                continue;
            }
            self.partial.push(next);
            self.counters.partial_results += 1;
            let control = if self.index.is_hot(next) {
                self.at_hot()
            } else {
                self.cold_step()
            };
            self.partial.pop();
            if control == SearchControl::Stop {
                return SearchControl::Stop;
            }
        }
        SearchControl::Continue
    }

    /// Segment mode at a hot interior vertex. The next piece is either
    /// the *final* piece — a cold-interior walk to `t`, enumerated
    /// directly — or an indexed hot-to-hot segment (skipping segments
    /// ending at `t`, which the final-piece option owns). The split is
    /// canonical, so no path is derived twice.
    fn at_hot(&mut self) -> SearchControl {
        if self.cold_to_t() == SearchControl::Stop {
            return SearchControl::Stop;
        }
        let h = *self.partial.last().expect("partial ends at a hot vertex");
        // The slice borrows the index (independent of `self`), so the
        // recursive calls below can still borrow `self` mutably.
        let segments = self.index.segments_from(h);
        self.counters.edges_accessed += segments.len() as u64; // probe cost
        for segment in segments {
            let end = *segment.path.last().expect("segments are non-empty");
            if end == self.query.t {
                continue; // final pieces are enumerated cold
            }
            let extra_edges = (segment.path.len() - 1) as u32;
            if extra_edges > self.budget() {
                continue;
            }
            // Disjointness: nothing after the shared start may repeat a
            // partial vertex or pass through t.
            let tail = &segment.path[1..];
            if tail
                .iter()
                .any(|&v| v == self.query.t || self.partial.contains(&v))
            {
                continue;
            }
            let base_len = self.partial.len();
            self.partial.extend_from_slice(tail);
            self.counters.partial_results += 1;
            let control = self.at_hot();
            self.partial.truncate(base_len);
            if control == SearchControl::Stop {
                return SearchControl::Stop;
            }
        }
        SearchControl::Continue
    }

    /// The final piece: a walk through cold vertices only, terminating
    /// at `t`.
    fn cold_to_t(&mut self) -> SearchControl {
        if self.budget() == 0 {
            return SearchControl::Continue;
        }
        let v = *self.partial.last().expect("partial is non-empty");
        let neighbor_count = self.graph.out_neighbors(v).len();
        self.counters.edges_accessed += neighbor_count as u64;
        for idx in 0..neighbor_count {
            let next = self.graph.out_neighbors(v)[idx];
            if next == self.query.t {
                self.partial.push(next);
                self.counters.results += 1;
                let control = self.sink.emit(&self.partial);
                self.partial.pop();
                if control == SearchControl::Stop {
                    return SearchControl::Stop;
                }
                continue;
            }
            if self.index.is_hot(next) || next == self.query.s || self.partial.contains(&next) {
                continue;
            }
            self.partial.push(next);
            self.counters.partial_results += 1;
            let control = self.cold_to_t();
            self.partial.pop();
            if control == SearchControl::Stop {
                return SearchControl::Stop;
            }
        }
        SearchControl::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathenum::sink::CollectingSink;
    use pathenum_graph::generators::erdos_renyi;

    #[test]
    fn segments_have_cold_interiors_and_hot_endpoints() {
        let g = erdos_renyi(40, 200, 3);
        let index = HotIndex::build(&g, 0.2, 4);
        for (&start, segs) in &index.segments {
            assert!(index.is_hot(start));
            for seg in segs {
                assert_eq!(seg.path[0], start);
                assert!(index.is_hot(*seg.path.last().unwrap()));
                for &interior in &seg.path[1..seg.path.len() - 1] {
                    assert!(!index.is_hot(interior), "hot interior in {:?}", seg.path);
                }
                // Segments are simple paths.
                let mut sorted = seg.path.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), seg.path.len());
            }
        }
    }

    #[test]
    fn memory_grows_quickly_with_k() {
        // The paper's critique: segment count explodes with the hop cap.
        let g = erdos_renyi(60, 600, 5);
        let small = HotIndex::build(&g, 0.2, 2).num_segments();
        let large = HotIndex::build(&g, 0.2, 5).num_segments();
        assert!(large > small * 4, "small={small} large={large}");
    }

    fn check(g: &CsrGraph, hot_fraction: f64, q: Query) {
        let index = HotIndex::build(g, hot_fraction, q.k);
        let mut got = CollectingSink::default();
        hot_index_enumerate(g, &index, q, &mut got);
        let mut expected = CollectingSink::default();
        pathenum::reference::brute_force_paths(g, q, &mut expected);
        assert_eq!(
            got.sorted_paths(),
            expected.sorted_paths(),
            "hot_fraction={hot_fraction} query={q:?}"
        );
    }

    #[test]
    fn exact_on_random_graphs_across_hot_fractions() {
        for seed in 0..5u64 {
            let g = erdos_renyi(25, 120, seed);
            for hot_fraction in [0.0, 0.1, 0.3, 1.0] {
                for k in 2..=5u32 {
                    check(&g, hot_fraction, Query::new(0, 1, k).unwrap());
                }
            }
        }
    }

    #[test]
    fn exact_when_endpoints_are_hot() {
        // Force s and t into the hot set by querying the highest-degree
        // vertices.
        let g = erdos_renyi(30, 200, 11);
        let (hot, _) = pathenum_graph::properties::degree_split(&g, 0.2);
        let q = Query::new(hot[0], hot[1], 4).unwrap();
        check(&g, 0.2, q);
    }

    #[test]
    fn index_with_larger_k_still_answers_smaller_queries() {
        let g = erdos_renyi(20, 90, 2);
        let index = HotIndex::build(&g, 0.25, 6);
        let q = Query::new(0, 1, 3).unwrap();
        let mut got = CollectingSink::default();
        hot_index_enumerate(&g, &index, q, &mut got);
        let mut expected = CollectingSink::default();
        pathenum::reference::brute_force_paths(&g, q, &mut expected);
        assert_eq!(got.sorted_paths(), expected.sorted_paths());
    }

    #[test]
    fn early_stop_works() {
        let g = erdos_renyi(25, 160, 4);
        let index = HotIndex::build(&g, 0.2, 4);
        let mut sink = pathenum::request::ControlledSink::new(
            pathenum::sink::CountingSink::default(),
            Some(1),
            None,
            None,
        );
        hot_index_enumerate(&g, &index, Query::new(0, 1, 4).unwrap(), &mut sink);
        assert!(sink.emitted() <= 1);
    }

    #[test]
    #[should_panic(expected = "k_max must cover")]
    fn rejects_underbuilt_index() {
        let g = erdos_renyi(10, 30, 1);
        let index = HotIndex::build(&g, 0.2, 2);
        let mut sink = CollectingSink::default();
        hot_index_enumerate(&g, &index, Query::new(0, 1, 5).unwrap(), &mut sink);
    }
}

//! BC-DFS: the barrier-based polynomial-delay algorithm (Peng et al.,
//! VLDB 2020; Section 2.2 and Appendix D of the PathEnum paper).
//!
//! The generic framework prunes with the static lower bound
//! `B(v) = S(v, t | G)`, which goes stale as the partial path occupies
//! vertices. BC-DFS *raises a barrier* on a vertex whenever the subtree
//! rooted at it produced no result: the barrier records the residual
//! budget that failed, so an equally-or-less-budgeted revisit is pruned
//! immediately. Because the failure may have been caused by vertices that
//! currently sit on the stack (a path to `t` blocked by the partial
//! result), each raised barrier also records the deepest such blocking
//! stack position; when the stack unwinds past it the barrier is rolled
//! back. Barriers raised with *no* stack dependency are permanent — the
//! failure was intrinsic to the budget.
//!
//! This reproduces the pruning-cost profile the paper measures: a
//! noticeably more expensive per-step check than IDX-DFS in exchange for a
//! smaller search tree.

use std::time::Instant;

use pathenum::query::Query;
use pathenum::sink::{PathSink, SearchControl};
use pathenum::stats::Counters;
use pathenum_graph::types::{Distance, INFINITE_DISTANCE};
use pathenum_graph::{CsrGraph, VertexId};

use crate::common::{base_distances_to_t, empty_report, query_is_runnable, BaselineReport};

/// Sentinel for "barrier has no stack dependency".
const NO_DEPENDENCY: i32 = -1;

/// Runs BC-DFS on `query`, streaming results into `sink`.
pub fn bc_dfs(graph: &CsrGraph, query: Query, sink: &mut dyn PathSink) -> BaselineReport {
    if !query_is_runnable(graph, query) {
        return empty_report();
    }
    let prep_start = Instant::now();
    let base = base_distances_to_t(graph, query.t, query.k);
    let preprocessing = prep_start.elapsed();

    let mut counters = Counters::default();
    let enum_start = Instant::now();
    let mut state = BarrierSearch {
        graph,
        query,
        barrier: base,
        dependency: vec![NO_DEPENDENCY; graph.num_vertices()],
        on_stack_depth: vec![NO_DEPENDENCY; graph.num_vertices()],
        resets: vec![Vec::new(); query.k as usize + 2],
        partial: Vec::with_capacity(query.k as usize + 1),
        sink,
        counters: &mut counters,
    };
    if state.barrier[query.s as usize] <= query.k {
        state.partial.push(query.s);
        state.on_stack_depth[query.s as usize] = 0;
        state.search();
        state.on_stack_depth[query.s as usize] = NO_DEPENDENCY;
    }
    let enumeration = enum_start.elapsed();

    BaselineReport {
        preprocessing,
        enumeration,
        counters,
    }
}

struct BarrierSearch<'a> {
    graph: &'a CsrGraph,
    query: Query,
    /// Current barrier per vertex: a valid lower bound on the residual
    /// distance to `t` given the current stack. Initialized to the static
    /// BFS bound; rollbacks restore the exact previous value.
    barrier: Vec<Distance>,
    /// Stack depth the raised barrier depends on, or `NO_DEPENDENCY`.
    dependency: Vec<i32>,
    /// Stack position of each on-stack vertex (`NO_DEPENDENCY` if off).
    on_stack_depth: Vec<i32>,
    /// `resets[d]`: barriers to roll back when the vertex at depth `d`
    /// pops: `(vertex, previous_barrier, previous_dependency)`.
    resets: Vec<Vec<(VertexId, Distance, i32)>>,
    partial: Vec<VertexId>,
    sink: &'a mut dyn PathSink,
    counters: &'a mut Counters,
}

impl BarrierSearch<'_> {
    /// Explores the subtree of the current partial result. Returns
    /// `(found_any_result, deepest_blocking_depth, control)`.
    fn search(&mut self) -> (bool, i32, SearchControl) {
        let v = *self.partial.last().expect("partial contains s");
        let depth = self.partial.len() as i32 - 1;
        if v == self.query.t {
            self.counters.results += 1;
            let control = self.sink.emit(&self.partial);
            return (true, NO_DEPENDENCY, control);
        }
        let len_edges = self.partial.len() as u32 - 1;
        let k = self.query.k;
        let mut found_any = false;
        let mut deepest_block = NO_DEPENDENCY;
        let neighbor_count = self.graph.out_neighbors(v).len();
        self.counters.edges_accessed += neighbor_count as u64;
        for idx in 0..neighbor_count {
            let next = self.graph.out_neighbors(v)[idx];
            let stack_pos = self.on_stack_depth[next as usize];
            if stack_pos != NO_DEPENDENCY {
                // Blocked by an on-stack vertex: remember the deepest one.
                deepest_block = deepest_block.max(stack_pos);
                continue;
            }
            let bar = self.barrier[next as usize];
            if bar == INFINITE_DISTANCE || len_edges + 1 + bar > k {
                // Pruned by a barrier. If that barrier was raised
                // dynamically its validity depends on the stack; inherit
                // the dependency so our own barrier rolls back with it.
                let dep = self.dependency[next as usize];
                if dep != NO_DEPENDENCY {
                    deepest_block = deepest_block.max(dep);
                }
                continue;
            }
            self.partial.push(next);
            self.on_stack_depth[next as usize] = depth + 1;
            self.counters.partial_results += 1;
            let (found, sub_block, control) = self.search();
            // Roll back barriers that depended on `next` being on stack.
            let rollback = std::mem::take(&mut self.resets[(depth + 1) as usize]);
            for (vertex, prev_bar, prev_dep) in rollback.into_iter().rev() {
                self.barrier[vertex as usize] = prev_bar;
                self.dependency[vertex as usize] = prev_dep;
            }
            self.on_stack_depth[next as usize] = NO_DEPENDENCY;
            self.partial.pop();
            if !found {
                self.counters.invalid_partial_results += 1;
                // Raise the barrier on `next`: with the current stack, a
                // residual budget of k - (len_edges + 1) found nothing.
                let failed_budget = k - (len_edges + 1);
                let new_bar = failed_budget + 1;
                if new_bar > self.barrier[next as usize] {
                    let dep = sub_block.min(depth); // ancestors only
                    if dep != NO_DEPENDENCY {
                        self.resets[dep as usize].push((
                            next,
                            self.barrier[next as usize],
                            self.dependency[next as usize],
                        ));
                    }
                    self.barrier[next as usize] = new_bar;
                    self.dependency[next as usize] = dep;
                }
                if sub_block != NO_DEPENDENCY {
                    deepest_block = deepest_block.max(sub_block.min(depth));
                }
            }
            found_any |= found;
            if control == SearchControl::Stop {
                return (found_any, deepest_block, SearchControl::Stop);
            }
        }
        (found_any, deepest_block, SearchControl::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathenum::request::ControlledSink;
    use pathenum::sink::{CollectingSink, CountingSink};
    use pathenum_graph::generators::{complete_digraph, erdos_renyi};
    use pathenum_graph::GraphBuilder;

    fn check_against_bruteforce(g: &CsrGraph, q: Query) {
        let mut got = CollectingSink::default();
        bc_dfs(g, q, &mut got);
        let mut expected = CollectingSink::default();
        pathenum::reference::brute_force_paths(g, q, &mut expected);
        assert_eq!(got.sorted_paths(), expected.sorted_paths(), "query {q:?}");
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in 0..8u64 {
            let g = erdos_renyi(25, 120, seed);
            for k in 2..=6u32 {
                check_against_bruteforce(&g, Query::new(0, 1, k).unwrap());
            }
        }
    }

    #[test]
    fn exact_on_dense_graphs() {
        let g = complete_digraph(7);
        for k in 2..=5u32 {
            check_against_bruteforce(&g, Query::new(0, 6, k).unwrap());
        }
    }

    #[test]
    fn barrier_rollback_preserves_results_on_tricky_topology() {
        // A graph engineered so a vertex is first explored under a stack
        // that blocks its only route, then revisited after the blocker
        // pops: 0 -> 1 -> 2 -> 3 and 0 -> 2, 2 -> 1, 1 -> 3.
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (2, 3), (0, 2), (2, 1), (1, 3)])
            .unwrap();
        let g = b.finish();
        for k in 2..=4u32 {
            check_against_bruteforce(&g, Query::new(0, 3, k).unwrap());
        }
    }

    #[test]
    fn prunes_more_than_generic_dfs_on_trap_graphs() {
        // A "trap" lattice: many branches lead into a cul-de-sac region
        // whose exit is blocked; BC-DFS should generate fewer invalid
        // partials than the static-bound DFS.
        let mut b = GraphBuilder::new(40);
        // Spine 0 -> 1 -> ... -> 9 (t = 9).
        for i in 0..9u32 {
            b.add_edge(i, i + 1).unwrap();
        }
        // Trap: vertices 10..40 form a dense cluster reachable from the
        // spine whose only way back is through spine vertex 1 (on stack).
        for i in 10..40u32 {
            b.add_edge(2, i).ok();
            for j in 10..40u32 {
                if i != j && (i + j) % 3 == 0 {
                    b.add_edge(i, j).ok();
                }
            }
            b.add_edge(i, 1).ok();
        }
        let g = b.finish();
        let q = Query::new(0, 9, 9).unwrap();

        let mut a = CountingSink::default();
        let bc = bc_dfs(&g, q, &mut a);
        let mut c = CountingSink::default();
        let gen = crate::generic_dfs(&g, q, &mut c);
        assert_eq!(a.count, c.count, "same result count");
        assert!(
            bc.counters.partial_results <= gen.counters.partial_results,
            "barriers should not enlarge the search tree: bc={} gen={}",
            bc.counters.partial_results,
            gen.counters.partial_results
        );
    }

    #[test]
    fn early_stop_works() {
        let g = complete_digraph(8);
        let q = Query::new(0, 7, 4).unwrap();
        let mut sink = ControlledSink::new(CountingSink::default(), Some(5), None, None);
        bc_dfs(&g, q, &mut sink);
        assert_eq!(sink.emitted(), 5);
    }

    #[test]
    fn no_result_query_is_clean() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        let g = b.finish();
        let q = Query::new(1, 2, 4).unwrap();
        let mut sink = CountingSink::default();
        let report = bc_dfs(&g, q, &mut sink);
        assert_eq!(sink.count, 0);
        assert_eq!(report.counters.results, 0);
    }
}

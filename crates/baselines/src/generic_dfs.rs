//! The generic DFS framework (Algorithm 1) with a static distance bound.

use std::time::Instant;

use pathenum::query::Query;
use pathenum::sink::{PathSink, SearchControl};
use pathenum::stats::Counters;
use pathenum_graph::{CsrGraph, VertexId};

use crate::common::{
    base_distances_to_t, empty_report, query_is_runnable, within_budget, BaselineReport,
};

/// Algorithm 1: backtracking over the raw graph, pruning with the *static*
/// distances `B(v) = S(v, t | G)` computed by one BFS before enumeration.
///
/// This is the framework all published baselines instantiate; on its own
/// it is the weakest competitor because `B` is never updated as the
/// partial path blocks shortest routes.
pub fn generic_dfs(graph: &CsrGraph, query: Query, sink: &mut dyn PathSink) -> BaselineReport {
    if !query_is_runnable(graph, query) {
        return empty_report();
    }
    let prep_start = Instant::now();
    let dist = base_distances_to_t(graph, query.t, query.k);
    let preprocessing = prep_start.elapsed();

    let mut counters = Counters::default();
    let enum_start = Instant::now();
    let mut partial: Vec<VertexId> = vec![query.s];
    search(graph, query, &dist, &mut partial, sink, &mut counters);
    let enumeration = enum_start.elapsed();

    BaselineReport {
        preprocessing,
        enumeration,
        counters,
    }
}

fn search(
    graph: &CsrGraph,
    query: Query,
    dist: &[u32],
    partial: &mut Vec<VertexId>,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) -> (bool, SearchControl) {
    let v = *partial.last().expect("partial contains s");
    if v == query.t {
        counters.results += 1;
        return (true, sink.emit(partial));
    }
    let len_edges = partial.len() as u32 - 1;
    let neighbors = graph.out_neighbors(v);
    counters.edges_accessed += neighbors.len() as u64;
    let mut found_any = false;
    for &next in neighbors {
        if partial.contains(&next) || !within_budget(dist[next as usize], len_edges, query.k) {
            continue;
        }
        partial.push(next);
        counters.partial_results += 1;
        let (found, control) = search(graph, query, dist, partial, sink, counters);
        partial.pop();
        if !found {
            counters.invalid_partial_results += 1;
        }
        found_any |= found;
        if control == SearchControl::Stop {
            return (found_any, SearchControl::Stop);
        }
    }
    (found_any, SearchControl::Continue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathenum::request::ControlledSink;
    use pathenum::sink::{CollectingSink, CountingSink};
    use pathenum_graph::GraphBuilder;

    fn diamond() -> CsrGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 2)])
            .unwrap();
        b.finish()
    }

    #[test]
    fn finds_all_paths() {
        let g = diamond();
        let q = Query::new(0, 4, 4).unwrap();
        let mut sink = CollectingSink::default();
        generic_dfs(&g, q, &mut sink);
        let mut reference = CollectingSink::default();
        pathenum::reference::brute_force_paths(&g, q, &mut reference);
        assert_eq!(sink.sorted_paths(), reference.sorted_paths());
    }

    #[test]
    fn respects_hop_constraint() {
        let g = diamond();
        let q = Query::new(0, 4, 3).unwrap();
        let mut sink = CollectingSink::default();
        generic_dfs(&g, q, &mut sink);
        // 0-1-3-4 and 0-2-3-4 only; 0-1-2-3-4 has 4 edges.
        assert_eq!(sink.paths.len(), 2);
    }

    #[test]
    fn early_stop_works() {
        let g = diamond();
        let q = Query::new(0, 4, 4).unwrap();
        let mut sink = ControlledSink::new(CountingSink::default(), Some(1), None, None);
        let report = generic_dfs(&g, q, &mut sink);
        assert_eq!(sink.emitted(), 1);
        assert_eq!(report.counters.results, 1);
    }

    #[test]
    fn unreachable_target_yields_nothing() {
        let g = diamond();
        let q = Query::new(4, 0, 4).unwrap();
        let mut sink = CollectingSink::default();
        let report = generic_dfs(&g, q, &mut sink);
        assert!(sink.paths.is_empty());
        assert_eq!(report.counters.results, 0);
    }
}

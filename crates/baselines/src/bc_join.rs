//! BC-JOIN: the join-oriented baseline (Peng et al.; Appendix D).
//!
//! Splits every long result at the middle position `m = ceil(k / 2)`:
//! first enumerate the simple-path prefixes of exactly `m` edges from `s`
//! (pruned by the static distance bound), then the simple-path suffixes of
//! at most `k - m` edges from each observed middle vertex to `t`, and
//! finally join on the middle vertex, keeping vertex-disjoint pairs.
//! Results shorter than `m` edges have no middle vertex and are
//! enumerated directly by a bounded DFS.

use std::time::Instant;

use pathenum::query::Query;
use pathenum::sink::{PathSink, SearchControl};
use pathenum::stats::Counters;
use pathenum_graph::hashing::FxHashMap;
use pathenum_graph::types::Distance;
use pathenum_graph::{CsrGraph, VertexId};

use crate::common::{base_distances_to_t, empty_report, query_is_runnable, BaselineReport};

/// Runs BC-JOIN on `query`, streaming results into `sink`.
pub fn bc_join(graph: &CsrGraph, query: Query, sink: &mut dyn PathSink) -> BaselineReport {
    if !query_is_runnable(graph, query) {
        return empty_report();
    }
    let prep_start = Instant::now();
    let dist_t = base_distances_to_t(graph, query.t, query.k);
    let preprocessing = prep_start.elapsed();

    let mut counters = Counters::default();
    let enum_start = Instant::now();
    let control = run_join(graph, query, &dist_t, sink, &mut counters);
    let enumeration = enum_start.elapsed();
    let _ = control;

    BaselineReport {
        preprocessing,
        enumeration,
        counters,
    }
}

fn run_join(
    graph: &CsrGraph,
    query: Query,
    dist_t: &[Distance],
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) -> SearchControl {
    let k = query.k;
    let m = k.div_ceil(2);

    // Short results: fewer than m edges, enumerated directly.
    let mut short = ShortDfs {
        graph,
        query,
        dist_t,
        limit: m - 1,
        sink,
        counters,
    };
    let mut partial = vec![query.s];
    if short.search(&mut partial) == SearchControl::Stop {
        return SearchControl::Stop;
    }

    // Long results: prefixes of exactly m edges (simple, not touching t
    // before the end) ...
    let mut prefixes: Vec<Vec<VertexId>> = Vec::new();
    collect_prefixes(
        graph,
        query,
        dist_t,
        m,
        &mut vec![query.s],
        &mut prefixes,
        counters,
    );

    // ... suffixes of 1..=(k - m) edges from each observed middle vertex.
    let mut middles: Vec<VertexId> = prefixes.iter().map(|p| *p.last().unwrap()).collect();
    middles.sort_unstable();
    middles.dedup();
    let mut suffixes: FxHashMap<VertexId, Vec<Vec<VertexId>>> = FxHashMap::default();
    for &mid in &middles {
        let mut list = Vec::new();
        collect_suffixes(
            graph,
            query,
            dist_t,
            k - m,
            &mut vec![mid],
            &mut list,
            counters,
        );
        if !list.is_empty() {
            suffixes.insert(mid, list);
        }
    }

    let materialized: u64 = prefixes.iter().map(|p| p.len() as u64).sum::<u64>()
        + suffixes
            .values()
            .flatten()
            .map(|sfx| sfx.len() as u64)
            .sum::<u64>();
    counters.peak_materialized_vertices = counters.peak_materialized_vertices.max(materialized);

    // Join on the middle vertex, keeping vertex-disjoint pairs.
    let mut joined: Vec<VertexId> = Vec::with_capacity(k as usize + 1);
    for prefix in &prefixes {
        let mid = *prefix.last().unwrap();
        let Some(list) = suffixes.get(&mid) else {
            counters.invalid_partial_results += 1;
            continue;
        };
        for suffix in list {
            if suffix[1..].iter().any(|v| prefix.contains(v)) {
                counters.invalid_partial_results += 1;
                continue;
            }
            joined.clear();
            joined.extend_from_slice(prefix);
            joined.extend_from_slice(&suffix[1..]);
            counters.results += 1;
            if sink.emit(&joined) == SearchControl::Stop {
                return SearchControl::Stop;
            }
        }
    }
    SearchControl::Continue
}

/// DFS emitting simple s-t paths with at most `limit` edges.
struct ShortDfs<'a> {
    graph: &'a CsrGraph,
    query: Query,
    dist_t: &'a [Distance],
    limit: u32,
    sink: &'a mut dyn PathSink,
    counters: &'a mut Counters,
}

impl ShortDfs<'_> {
    fn search(&mut self, partial: &mut Vec<VertexId>) -> SearchControl {
        let v = *partial.last().expect("partial contains s");
        if v == self.query.t {
            self.counters.results += 1;
            return self.sink.emit(partial);
        }
        let len_edges = partial.len() as u32 - 1;
        if len_edges == self.limit {
            return SearchControl::Continue;
        }
        let neighbors = self.graph.out_neighbors(v);
        self.counters.edges_accessed += neighbors.len() as u64;
        for &next in neighbors {
            if partial.contains(&next) {
                continue;
            }
            if self.dist_t[next as usize] > self.limit - len_edges - 1 {
                continue;
            }
            partial.push(next);
            self.counters.partial_results += 1;
            let control = self.search(partial);
            partial.pop();
            if control == SearchControl::Stop {
                return SearchControl::Stop;
            }
        }
        SearchControl::Continue
    }
}

/// Collects simple prefixes of exactly `m` edges from `s` that avoid `t`
/// and can still reach `t` within the overall budget.
fn collect_prefixes(
    graph: &CsrGraph,
    query: Query,
    dist_t: &[Distance],
    m: u32,
    partial: &mut Vec<VertexId>,
    out: &mut Vec<Vec<VertexId>>,
    counters: &mut Counters,
) {
    let len_edges = partial.len() as u32 - 1;
    if len_edges == m {
        out.push(partial.clone());
        return;
    }
    let v = *partial.last().expect("partial contains s");
    let neighbors = graph.out_neighbors(v);
    counters.edges_accessed += neighbors.len() as u64;
    for &next in neighbors {
        // t may only appear as the final prefix vertex (a path of exactly
        // m edges, whose "suffix" is the trivial [t]).
        if (next == query.t && len_edges + 1 < m) || partial.contains(&next) {
            continue;
        }
        // next sits at position len_edges + 1; it must reach t within
        // k - (len_edges + 1) hops.
        if dist_t[next as usize] > query.k - len_edges - 1 {
            continue;
        }
        partial.push(next);
        counters.partial_results += 1;
        collect_prefixes(graph, query, dist_t, m, partial, out, counters);
        partial.pop();
    }
}

/// Collects simple suffixes of `1..=budget` edges ending at `t`.
fn collect_suffixes(
    graph: &CsrGraph,
    query: Query,
    dist_t: &[Distance],
    budget: u32,
    partial: &mut Vec<VertexId>,
    out: &mut Vec<Vec<VertexId>>,
    counters: &mut Counters,
) {
    let v = *partial.last().expect("partial contains the middle vertex");
    if v == query.t {
        out.push(partial.clone());
        return;
    }
    let len_edges = partial.len() as u32 - 1;
    if len_edges == budget {
        return;
    }
    let neighbors = graph.out_neighbors(v);
    counters.edges_accessed += neighbors.len() as u64;
    for &next in neighbors {
        if next == query.s || partial.contains(&next) {
            continue;
        }
        if dist_t[next as usize] > budget - len_edges - 1 {
            continue;
        }
        partial.push(next);
        counters.partial_results += 1;
        collect_suffixes(graph, query, dist_t, budget, partial, out, counters);
        partial.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathenum::request::ControlledSink;
    use pathenum::sink::{CollectingSink, CountingSink};
    use pathenum_graph::generators::{complete_digraph, erdos_renyi};

    fn check(g: &CsrGraph, q: Query) {
        let mut got = CollectingSink::default();
        bc_join(g, q, &mut got);
        let mut expected = CollectingSink::default();
        pathenum::reference::brute_force_paths(g, q, &mut expected);
        assert_eq!(got.sorted_paths(), expected.sorted_paths(), "query {q:?}");
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in 0..8u64 {
            let g = erdos_renyi(25, 120, seed);
            for k in 2..=6u32 {
                check(&g, Query::new(0, 1, k).unwrap());
            }
        }
    }

    #[test]
    fn exact_on_dense_graphs() {
        let g = complete_digraph(7);
        for k in 2..=5u32 {
            check(&g, Query::new(0, 6, k).unwrap());
        }
    }

    #[test]
    fn odd_and_even_hop_constraints() {
        let g = erdos_renyi(30, 200, 3);
        check(&g, Query::new(2, 5, 5).unwrap());
        check(&g, Query::new(2, 5, 6).unwrap());
    }

    #[test]
    fn records_materialization() {
        let g = complete_digraph(8);
        let q = Query::new(0, 7, 5).unwrap();
        let mut sink = CollectingSink::default();
        let report = bc_join(&g, q, &mut sink);
        assert!(report.counters.peak_materialized_vertices > 0);
    }

    #[test]
    fn early_stop_works() {
        let g = complete_digraph(8);
        let q = Query::new(0, 7, 5).unwrap();
        let mut sink = ControlledSink::new(CountingSink::default(), Some(3), None, None);
        bc_join(&g, q, &mut sink);
        assert_eq!(sink.emitted(), 3);
    }
}

//! HcPE query descriptor.

use pathenum_graph::VertexId;

/// Maximum supported hop constraint.
///
/// The paper evaluates `k` in `3..=8`; we allow headroom. Bounding `k`
/// keeps per-vertex offset arrays in the index small and lets recursion
/// depth be stack-safe.
pub const MAX_HOPS: u32 = 32;

/// A hop-constrained s-t path enumeration query `q(s, t, k)`:
/// find all simple paths from `s` to `t` with at most `k` edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Query {
    /// Source vertex.
    pub s: VertexId,
    /// Target vertex.
    pub t: VertexId,
    /// Hop constraint (`k >= 2` per the paper's problem statement).
    pub k: u32,
}

/// Errors from query validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// `s == t`; the problem requires distinct endpoints.
    EqualEndpoints,
    /// `k < 2`.
    HopConstraintTooSmall(u32),
    /// `k > MAX_HOPS`.
    HopConstraintTooLarge(u32),
    /// An endpoint is not a vertex of the graph.
    VertexOutOfRange(VertexId),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::EqualEndpoints => write!(f, "source and target must be distinct"),
            QueryError::HopConstraintTooSmall(k) => write!(f, "hop constraint {k} < 2"),
            QueryError::HopConstraintTooLarge(k) => {
                write!(f, "hop constraint {k} exceeds MAX_HOPS = {MAX_HOPS}")
            }
            QueryError::VertexOutOfRange(v) => write!(f, "vertex {v} not in graph"),
        }
    }
}

impl std::error::Error for QueryError {}

impl Query {
    /// Creates a query, validating the endpoint/hop invariants that do not
    /// need a graph.
    pub fn new(s: VertexId, t: VertexId, k: u32) -> Result<Self, QueryError> {
        if s == t {
            return Err(QueryError::EqualEndpoints);
        }
        if k < 2 {
            return Err(QueryError::HopConstraintTooSmall(k));
        }
        if k > MAX_HOPS {
            return Err(QueryError::HopConstraintTooLarge(k));
        }
        Ok(Query { s, t, k })
    }

    /// Validates the endpoints against a graph's vertex range.
    pub fn validate(&self, num_vertices: usize) -> Result<(), QueryError> {
        for v in [self.s, self.t] {
            if (v as usize) >= num_vertices {
                return Err(QueryError::VertexOutOfRange(v));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_queries() {
        let q = Query::new(0, 5, 4).unwrap();
        assert_eq!(q, Query { s: 0, t: 5, k: 4 });
        q.validate(6).unwrap();
    }

    #[test]
    fn rejects_equal_endpoints() {
        assert_eq!(Query::new(3, 3, 4), Err(QueryError::EqualEndpoints));
    }

    #[test]
    fn rejects_bad_hop_constraints() {
        assert_eq!(
            Query::new(0, 1, 1),
            Err(QueryError::HopConstraintTooSmall(1))
        );
        assert_eq!(
            Query::new(0, 1, 0),
            Err(QueryError::HopConstraintTooSmall(0))
        );
        assert_eq!(
            Query::new(0, 1, 99),
            Err(QueryError::HopConstraintTooLarge(99))
        );
    }

    #[test]
    fn rejects_out_of_range_vertices() {
        let q = Query::new(0, 9, 3).unwrap();
        assert_eq!(q.validate(5), Err(QueryError::VertexOutOfRange(9)));
    }
}

//! Cost-based admission control for the serving path.
//!
//! PR 5's service queues every submission forever: under sustained
//! overload the queue grows without bound and every request's sojourn
//! time grows with it — the classic unbounded-FIFO collapse. The
//! planner already prices every query (the preliminary estimate and the
//! modeled `t_dfs`/`t_join` costs that drive the IDX-DFS / IDX-JOIN
//! choice), so the serving layer can *charge* each request its modeled
//! cost before queueing it:
//!
//! * a configurable **in-flight cost budget** bounds the total modeled
//!   cost admitted but not yet completed — over-budget requests are
//!   rejected *fast* with [`PathEnumError::Overloaded`] and a coarse
//!   retry hint, instead of queueing forever;
//! * a bounded **per-tenant queue** keeps one chatty tenant from
//!   starving the rest;
//! * a **two-lane dispatch** ([`Lane`]) classifies requests by modeled
//!   cost: cheap (interactive) queries are popped ahead of expensive
//!   (batch) ones, so point lookups keep flowing while analytical scans
//!   drain behind them.
//!
//! [`AdmissionConfig::disabled`] turns all of this off — every request
//! is admitted onto a single FIFO lane, which is exactly the PR 5
//! behavior and the baseline the `reproduce overload` experiment
//! measures against.
//!
//! [`PathEnumError::Overloaded`]: crate::PathEnumError::Overloaded

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::request::PathEnumError;

/// Which dispatch queue an admitted request is placed on.
///
/// Workers pop the interactive lane first; the batch lane only drains
/// when no interactive work is pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Cheap queries (modeled cost at or below the configured
    /// threshold): popped first so they keep flowing under load.
    Interactive,
    /// Expensive queries: drain behind interactive traffic.
    Batch,
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lane::Interactive => write!(f, "interactive"),
            Lane::Batch => write!(f, "batch"),
        }
    }
}

/// Knobs of the admission layer.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Total modeled cost admitted but not yet completed. `None`
    /// disables admission control entirely (every request admitted,
    /// single FIFO lane — the PR 5 baseline).
    pub cost_budget: Option<u64>,
    /// Maximum requests one tenant may have admitted-but-incomplete at
    /// once (queued *or* running). `0` means unlimited.
    pub max_queue_per_tenant: usize,
    /// Modeled cost at or below which a request rides the interactive
    /// lane; above it, the batch lane.
    pub interactive_cost_threshold: u64,
}

impl AdmissionConfig {
    /// Admission control off: everything admitted, one FIFO lane.
    pub fn disabled() -> Self {
        AdmissionConfig {
            cost_budget: None,
            max_queue_per_tenant: 0,
            interactive_cost_threshold: u64::MAX,
        }
    }

    /// Whether this configuration enforces anything.
    pub fn is_enabled(&self) -> bool {
        self.cost_budget.is_some() || self.max_queue_per_tenant > 0
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::disabled()
    }
}

/// The verdict the admission layer reached for one request — an
/// EXPLAIN-style record of *why* a request was admitted or shed.
///
/// Its `Display` renders the decision the way
/// [`PhysicalPlan`](crate::PhysicalPlan) renders an EXPLAIN block:
///
/// ```text
/// AdmissionDecision
///   tenant:            analytics
///   estimated cost:    1820
///   in-flight cost:    3400 / 4096 budget
///   tenant queue:      2 / 8 slots
///   lane:              batch (threshold 256)
///   verdict:           shed (budget exceeded; retry in ~1ms)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionDecision {
    /// Tenant the request was charged to.
    pub tenant: String,
    /// The request's modeled cost (its admission price).
    pub estimated_cost: u64,
    /// In-flight modeled cost at decision time (before this request).
    pub in_flight_cost: u64,
    /// The configured budget, if admission is enabled.
    pub cost_budget: Option<u64>,
    /// The tenant's admitted-but-incomplete requests at decision time.
    pub tenant_queue_depth: usize,
    /// The per-tenant queue bound (`0` = unlimited).
    pub max_queue_per_tenant: usize,
    /// The lane the request was (or would have been) dispatched on.
    pub lane: Lane,
    /// The interactive/batch cost threshold.
    pub interactive_cost_threshold: u64,
    /// `None` if admitted; the rejection if shed.
    pub rejected: Option<PathEnumError>,
}

impl AdmissionDecision {
    /// Whether the request was admitted.
    pub fn admitted(&self) -> bool {
        self.rejected.is_none()
    }
}

impl std::fmt::Display for AdmissionDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "AdmissionDecision")?;
        writeln!(f, "  tenant:            {}", self.tenant)?;
        writeln!(f, "  estimated cost:    {}", self.estimated_cost)?;
        match self.cost_budget {
            Some(budget) => writeln!(
                f,
                "  in-flight cost:    {} / {} budget",
                self.in_flight_cost, budget
            )?,
            None => writeln!(
                f,
                "  in-flight cost:    {} (no budget)",
                self.in_flight_cost
            )?,
        }
        if self.max_queue_per_tenant > 0 {
            writeln!(
                f,
                "  tenant queue:      {} / {} slots",
                self.tenant_queue_depth, self.max_queue_per_tenant
            )?;
        } else {
            writeln!(
                f,
                "  tenant queue:      {} (unbounded)",
                self.tenant_queue_depth
            )?;
        }
        writeln!(
            f,
            "  lane:              {} (threshold {})",
            self.lane, self.interactive_cost_threshold
        )?;
        match &self.rejected {
            None => write!(f, "  verdict:           admitted"),
            Some(PathEnumError::Overloaded { retry_hint }) => write!(
                f,
                "  verdict:           shed (overloaded; retry in ~{retry_hint:?})"
            ),
            Some(err) => write!(f, "  verdict:           rejected ({err})"),
        }
    }
}

/// Lifetime counters of one [`AdmissionController`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted (charged against the budget).
    pub admitted: u64,
    /// Requests shed with [`Overloaded`](PathEnumError::Overloaded).
    pub shed: u64,
}

/// Charges modeled plan costs against an in-flight budget and bounds
/// per-tenant queues. See the [module docs](self).
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    in_flight_cost: AtomicU64,
    /// Admitted-but-incomplete request counts per tenant (queued *or*
    /// running; decremented on release).
    pending: Mutex<HashMap<String, u64>>,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl AdmissionController {
    /// A controller enforcing `config`.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            in_flight_cost: AtomicU64::new(0),
            pending: Mutex::new(HashMap::new()),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// The configuration this controller enforces.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Modeled cost currently admitted but not yet released.
    pub fn in_flight_cost(&self) -> u64 {
        // ordering: advisory read; admission decisions re-read the charge
        // under the `pending` mutex, which provides the ordering.
        self.in_flight_cost.load(Ordering::Relaxed)
    }

    /// Lifetime admitted/shed counters.
    pub fn stats(&self) -> AdmissionStats {
        // ordering: advisory stats reads; a lagging value is acceptable.
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }

    /// The lane a request of `cost` rides when admitted. With admission
    /// disabled everything shares one FIFO (interactive) lane so the
    /// baseline stays strictly PR 5-shaped.
    pub fn lane_for(&self, cost: u64) -> Lane {
        if !self.config.is_enabled() || cost <= self.config.interactive_cost_threshold {
            Lane::Interactive
        } else {
            Lane::Batch
        }
    }

    /// Tries to admit a request of modeled `cost` for `tenant`,
    /// recording the full decision. On success the cost is charged and
    /// the tenant slot taken — the caller **must** pair this with
    /// exactly one [`release`](Self::release).
    pub fn try_admit(&self, tenant: &str, cost: u64) -> AdmissionDecision {
        let lane = self.lane_for(cost);
        // ordering: pre-lock peek for the decision record only; the
        // authoritative budget check re-reads under the `pending` mutex.
        let in_flight = self.in_flight_cost.load(Ordering::Relaxed);
        let mut decision = AdmissionDecision {
            tenant: tenant.to_string(),
            estimated_cost: cost,
            in_flight_cost: in_flight,
            cost_budget: self.config.cost_budget,
            tenant_queue_depth: 0,
            max_queue_per_tenant: self.config.max_queue_per_tenant,
            lane,
            interactive_cost_threshold: self.config.interactive_cost_threshold,
            rejected: None,
        };

        let mut pending = crate::sync::lock_recovering(&self.pending);
        let depth = pending.get(tenant).copied().unwrap_or(0);
        decision.tenant_queue_depth = depth as usize;

        if self.config.max_queue_per_tenant > 0
            && depth as usize >= self.config.max_queue_per_tenant
        {
            decision.rejected = Some(self.shed_with_hint(depth));
            return decision;
        }
        if let Some(budget) = self.config.cost_budget {
            // First-come-first-admitted: a request is shed only when the
            // budget is already occupied. A single over-budget giant on
            // an idle controller still runs (cost saturates, it just
            // blocks everything until released).
            // ordering: read under the `pending` mutex, which serializes
            // every check-then-charge sequence; the mutex, not the atomic,
            // carries the ordering.
            let in_flight = self.in_flight_cost.load(Ordering::Relaxed);
            decision.in_flight_cost = in_flight;
            if in_flight > 0 && in_flight.saturating_add(cost) > budget {
                decision.rejected = Some(self.shed_with_hint(depth));
                return decision;
            }
        }

        *pending.entry(tenant.to_string()).or_insert(0) += 1;
        // The charge must land before the `pending` mutex is released:
        // charging after the drop opened a window where a concurrent
        // `try_admit` could pass the budget check against the stale
        // `in_flight_cost` and over-admit past the budget.
        // ordering: performed under the `pending` mutex (see above).
        self.in_flight_cost.fetch_add(cost, Ordering::Relaxed);
        drop(pending);
        // ordering: advisory monotone counter; publishes no other memory.
        self.admitted.fetch_add(1, Ordering::Relaxed);
        decision
    }

    /// Releases an admitted request's budget charge and tenant slot.
    pub fn release(&self, tenant: &str, cost: u64) {
        // ordering: single-location RMW; the release may race an admit's
        // budget check, but an uncharge seen late only delays admission
        // (never over-admits), so no cross-location ordering is needed.
        self.in_flight_cost.fetch_sub(cost, Ordering::Relaxed);
        let mut pending = crate::sync::lock_recovering(&self.pending);
        if let Some(depth) = pending.get_mut(tenant) {
            *depth = depth.saturating_sub(1);
            if *depth == 0 {
                pending.remove(tenant);
            }
        }
    }

    /// A coarse, advisory retry hint scaled by how deep the shedding
    /// tenant's backlog already is — deeper backlog, longer back-off.
    fn shed_with_hint(&self, tenant_depth: u64) -> PathEnumError {
        // ordering: advisory monotone counter; publishes no other memory.
        self.shed.fetch_add(1, Ordering::Relaxed);
        let base = Duration::from_micros(500);
        let hint = base.saturating_mul(tenant_depth.clamp(1, 200) as u32);
        PathEnumError::Overloaded {
            retry_hint: hint.min(Duration::from_millis(100)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_admits_everything_on_one_lane() {
        let ctl = AdmissionController::new(AdmissionConfig::disabled());
        for cost in [1u64, 1 << 40, u64::MAX / 2] {
            let decision = ctl.try_admit("anyone", cost);
            assert!(decision.admitted());
            assert_eq!(decision.lane, Lane::Interactive);
        }
        assert_eq!(ctl.stats().shed, 0);
    }

    #[test]
    fn budget_sheds_when_occupied_but_admits_a_lone_giant() {
        let config = AdmissionConfig {
            cost_budget: Some(100),
            max_queue_per_tenant: 0,
            interactive_cost_threshold: 10,
        };
        let ctl = AdmissionController::new(config);
        // A lone over-budget request still runs.
        assert!(ctl.try_admit("a", 500).admitted());
        // But the budget is now saturated: everything else sheds.
        let shed = ctl.try_admit("a", 1);
        assert!(!shed.admitted());
        assert!(matches!(
            shed.rejected,
            Some(PathEnumError::Overloaded { .. })
        ));
        ctl.release("a", 500);
        assert_eq!(ctl.in_flight_cost(), 0);
        assert!(ctl.try_admit("a", 1).admitted());
        assert_eq!(
            ctl.stats(),
            AdmissionStats {
                admitted: 2,
                shed: 1
            }
        );
    }

    #[test]
    fn tenant_queue_bound_is_per_tenant() {
        let config = AdmissionConfig {
            cost_budget: None,
            max_queue_per_tenant: 2,
            interactive_cost_threshold: 10,
        };
        let ctl = AdmissionController::new(config);
        assert!(ctl.try_admit("a", 1).admitted());
        assert!(ctl.try_admit("a", 1).admitted());
        assert!(!ctl.try_admit("a", 1).admitted(), "a's slots are full");
        assert!(ctl.try_admit("b", 1).admitted(), "b is unaffected");
        ctl.release("a", 1);
        assert!(ctl.try_admit("a", 1).admitted(), "release frees a slot");
    }

    #[test]
    fn lanes_split_on_the_cost_threshold() {
        let config = AdmissionConfig {
            cost_budget: Some(1_000_000),
            max_queue_per_tenant: 8,
            interactive_cost_threshold: 50,
        };
        let ctl = AdmissionController::new(config);
        assert_eq!(ctl.lane_for(50), Lane::Interactive);
        assert_eq!(ctl.lane_for(51), Lane::Batch);
    }

    /// Regression for a check-then-charge race: `try_admit` used to
    /// charge `in_flight_cost` *after* releasing the `pending` mutex, so
    /// two threads could both pass the budget check against the stale
    /// charge and jointly over-admit. With the charge under the lock, the
    /// admitted cost can exceed the budget by at most one request (the
    /// documented over-budget-giant allowance), never by a race.
    #[test]
    fn concurrent_admits_never_overshoot_the_budget() {
        let budget = 100u64;
        let cost = 7u64;
        let config = AdmissionConfig {
            cost_budget: Some(budget),
            max_queue_per_tenant: 0,
            interactive_cost_threshold: 256,
        };
        let ctl = AdmissionController::new(config);
        let worst_case = budget + cost - 1;
        std::thread::scope(|scope| {
            for worker in 0..8 {
                let ctl = &ctl;
                scope.spawn(move || {
                    let tenant = format!("tenant-{worker}");
                    for _ in 0..64 {
                        let decision = ctl.try_admit(&tenant, cost);
                        assert!(ctl.in_flight_cost() <= worst_case);
                        if decision.rejected.is_none() {
                            std::thread::yield_now();
                            ctl.release(&tenant, cost);
                        }
                    }
                });
            }
        });
        assert_eq!(ctl.in_flight_cost(), 0);
    }

    #[test]
    fn decision_display_reads_like_an_explain() {
        let config = AdmissionConfig {
            cost_budget: Some(4096),
            max_queue_per_tenant: 8,
            interactive_cost_threshold: 256,
        };
        let ctl = AdmissionController::new(config);
        let decision = ctl.try_admit("analytics", 1820);
        let rendered = decision.to_string();
        assert!(rendered.contains("AdmissionDecision"));
        assert!(rendered.contains("estimated cost:    1820"));
        assert!(rendered.contains("4096 budget"));
        assert!(rendered.contains("lane:              batch"));
        assert!(rendered.contains("verdict:           admitted"));
    }
}

//! The result cache: the fourth caching layer, and the first one that
//! skips *enumeration* itself.
//!
//! The layers below it — plan cache ([`crate::plan::PlanCache`]), cached
//! index, footprint retention — make *planning* nearly free for a
//! repeated request, but every warm hit still pays the full enumeration:
//! on the skewed, repetitive read streams the serving experiments model,
//! that is the dominant remaining cost. A [`ResultCache`] closes the
//! loop: it is content-addressed on the full request identity
//! ([`ResultKey`]: `s`, `t`, `k`, constraint namespace + fingerprint,
//! effective forced method and `tau`) and guarded by the serving graph's
//! [`GraphVersion`] epoch, storing the completed path set (a flat
//! [`PathBuffer`]) together with its [`Termination`] and the bounds it
//! ran under. A hit replays the stored paths into the caller's sink —
//! no BFS, no index build, no search — and reports
//! [`CacheOutcome::ResultHit`](crate::plan::CacheOutcome::ResultHit).
//!
//! Three rules keep replays byte-identical to fresh execution:
//!
//! * **Bounds are served, not keyed.** The enumeration order is
//!   deterministic (pinned across methods and thread counts), so a
//!   `limit(n)` request is exactly the first `n` stored paths. A
//!   [`Termination::Completed`] entry therefore serves *any* limit; an
//!   entry truncated by [`Termination::LimitReached`] or
//!   [`Termination::DeadlineExceeded`] is reusable only for requests
//!   with **equal-or-tighter** bounds (a looser request might be owed
//!   paths the entry never captured, so it misses and re-runs).
//! * **Mutation streams retain surgically.** Entries recorded by
//!   [`DynamicEngine`](crate::DynamicEngine) carry the same
//!   `IndexFootprint` plan entries do; a version-stale entry survives
//!   a delta that provably cannot touch any result path (a removed edge
//!   invalidates only when it leaves the `s`-reach *and* enters the
//!   `t`-reach; insertions use the sticky two-sided rule).
//! * **Admission is byte-budgeted.** Entries are charged their real
//!   heap footprint (paths + footprint bitsets); the LRU evicts until
//!   the budget holds, and an entry larger than the whole budget is
//!   never admitted.
//!
//! The cache is **off by default** everywhere — enable it per engine
//! ([`QueryEngine::with_result_cache`](crate::QueryEngine::with_result_cache),
//! [`DynamicEngine::with_result_cache`](crate::DynamicEngine::with_result_cache))
//! or per service
//! ([`ServiceConfig::result_cache_bytes`](crate::service::ServiceConfig::result_cache_bytes),
//! [`CatalogConfig::result_cache_bytes`](crate::catalog::CatalogConfig::result_cache_bytes)).
//! Individual requests opt out of this layer alone with
//! [`QueryRequest::bypass_result_cache`]; [`QueryRequest::bypass_cache`]
//! opts out of both layers.
//!
//! Statistics ([`ResultCacheStats`]) satisfy the same accounting
//! identity the shared plan cache pins:
//! `hits + misses + bypasses == lookups`.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pathenum_graph::{DynamicGraph, EdgeMutation, GraphVersion, VertexId};

use crate::optimizer::PathEnumConfig;
use crate::plan::{IndexFootprint, PhysicalPlan};
use crate::request::{ConstraintSpec, QueryRequest, Termination};
use crate::sink::{PathBuffer, PathSink, SearchControl};
use crate::stats::Method;

/// A pass-through sink that records a copy of every path the caller's
/// sink accepted, so a cold run doubles as the recording for the result
/// cache. Sits *inside* the request's
/// [`ControlledSink`](crate::request::ControlledSink), so it sees exactly
/// the admitted result sequence.
///
/// If the **caller's** sink stops the run, the recorded prefix is not a
/// faithful answer for the request (the response still reads
/// [`Termination::Completed`] — the caller issued that stop and the rest
/// of the result set was abandoned), so [`finish`](Self::finish) yields
/// nothing and no entry is admitted.
pub(crate) struct TeeSink<'a> {
    inner: &'a mut dyn PathSink,
    buffer: PathBuffer,
    inner_stopped: bool,
}

impl<'a> TeeSink<'a> {
    pub(crate) fn new(inner: &'a mut dyn PathSink) -> Self {
        TeeSink {
            inner,
            buffer: PathBuffer::new(),
            inner_stopped: false,
        }
    }

    /// The recorded answer, or `None` when the inner sink truncated the
    /// run (the recording is not admissible).
    pub(crate) fn finish(self) -> Option<PathBuffer> {
        if self.inner_stopped {
            None
        } else {
            Some(self.buffer)
        }
    }
}

impl PathSink for TeeSink<'_> {
    #[inline]
    fn emit(&mut self, path: &[VertexId]) -> SearchControl {
        match self.inner.emit(path) {
            SearchControl::Continue => {
                self.buffer.push(path);
                SearchControl::Continue
            }
            SearchControl::Stop => {
                self.inner_stopped = true;
                SearchControl::Stop
            }
        }
    }

    #[inline]
    fn probe(&mut self) -> SearchControl {
        self.inner.probe()
    }
}

/// Cache key: the full identity of one answered request, *excluding*
/// its bounds (`limit` / `time_budget`) — those are stored on the entry
/// and checked at serve time, so one completed entry serves every
/// compatible bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Source vertex.
    pub s: VertexId,
    /// Target vertex.
    pub t: VertexId,
    /// Hop constraint.
    pub k: u32,
    /// Constraint namespace: 0 for unconstrained requests, 1 for
    /// fingerprinted predicates (mirrors [`PlanKey`](crate::plan::PlanKey),
    /// except accumulative/automaton requests are *not* folded into
    /// namespace 0 — they share the unconstrained plan but produce a
    /// different result set, so they are never result-cached).
    pub namespace: u8,
    /// Constraint fingerprint within the namespace.
    pub fingerprint: u64,
    /// Effective forced method — the method changes the deterministic
    /// emission order, so plans forced differently never alias.
    pub method: Option<Method>,
    /// Effective preliminary-estimate threshold (it decides the method).
    pub tau: u64,
}

impl ResultKey {
    /// The result-cache key for a request under `effective`
    /// configuration, or `None` when the request's results are not
    /// cacheable: accumulative/automaton constraints (their closures
    /// shape the result set but cannot be compared) and unfingerprinted
    /// predicates. Bypass flags, explain, and cache capacity are the
    /// caller's concern. `threads` is deliberately absent: the parallel
    /// merge is pinned to emit the sequential order, so every thread
    /// count shares one entry.
    pub(crate) fn for_request(
        request: &QueryRequest<'_>,
        effective: PathEnumConfig,
    ) -> Option<ResultKey> {
        let (namespace, fingerprint) = match &request.constraint {
            ConstraintSpec::None => (0u8, 0u64),
            ConstraintSpec::Predicate(_) => (1u8, request.fingerprint?),
            ConstraintSpec::Accumulative(_) | ConstraintSpec::Automaton { .. } => return None,
        };
        Some(ResultKey {
            s: request.s,
            t: request.t,
            k: request.k,
            namespace,
            fingerprint,
            method: effective.force,
            tau: effective.tau,
        })
    }
}

/// Aggregate statistics of a [`ResultCache`] / [`SharedResultCache`].
///
/// `lookups` is maintained independently of the outcome counters, so
/// `hits + misses + bypasses == lookups` is a real consistency
/// invariant (the same contract as
/// [`SharedCacheStats`](crate::plan::SharedCacheStats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Cache consultations plus bypasses (one per evaluated request
    /// while the layer is enabled).
    pub lookups: u64,
    /// Requests answered entirely from stored paths.
    pub hits: u64,
    /// Lookups that found nothing servable (absent, stale, or
    /// bound-incompatible).
    pub misses: u64,
    /// Requests that never consulted the cache (uncacheable constraint,
    /// a bypass flag, or an explain request).
    pub bypasses: u64,
    /// Entries discarded because the graph version moved on (and the
    /// footprint, if any, could not prove the delta irrelevant).
    pub invalidations: u64,
    /// Entries discarded to make room under the byte budget (LRU).
    pub evictions: u64,
    /// Hits served across a graph mutation because the entry's recorded
    /// footprint was provably untouched by the delta (a subset of
    /// `hits`).
    pub retained: u64,
}

impl ResultCacheStats {
    /// Hit fraction over all lookups (bypasses included; 0 when nothing
    /// was looked up).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// The stats accumulated since an earlier snapshot of the same cache.
    pub fn since(&self, earlier: &ResultCacheStats) -> ResultCacheStats {
        ResultCacheStats {
            lookups: self.lookups - earlier.lookups,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            bypasses: self.bypasses - earlier.bypasses,
            invalidations: self.invalidations - earlier.invalidations,
            evictions: self.evictions - earlier.evictions,
            retained: self.retained - earlier.retained,
        }
    }
}

/// What a result-cache hit hands back: everything needed to replay the
/// answer without touching the graph.
#[derive(Debug, Clone)]
pub(crate) struct CachedResult {
    /// The plan that produced the stored paths (for the response's
    /// report; `Copy`, so handing it out is free).
    pub plan: PhysicalPlan,
    /// The stored path sequence (shared — replay happens outside any
    /// cache lock).
    pub paths: Arc<PathBuffer>,
    /// How many of the stored paths this request is served (a prefix;
    /// `<= paths.len()`).
    pub served: usize,
    /// The termination the equivalent fresh execution would report.
    pub termination: Termination,
}

/// Fixed per-entry overhead charged against the byte budget on top of
/// the measured path/footprint bytes (map slot, entry struct, `Arc`).
const ENTRY_OVERHEAD_BYTES: usize = 192;

#[derive(Debug)]
struct ResultEntry {
    version: GraphVersion,
    plan: PhysicalPlan,
    paths: Arc<PathBuffer>,
    termination: Termination,
    /// The limit the recording run executed under (`None` = unbounded).
    limit: Option<u64>,
    /// The time budget the recording run executed under.
    time_budget: Option<Duration>,
    /// Reach footprint enabling surgical retention; `None` for entries
    /// stored by engines that do not track deltas.
    footprint: Option<IndexFootprint>,
    /// Sticky: some delta insertion since recording starts in `reach_s`.
    src_touched: bool,
    /// Sticky: some delta insertion since recording ends in `reach_t`.
    dst_touched: bool,
    last_used: u64,
    /// Charged against the cache's byte budget.
    bytes: usize,
}

impl ResultEntry {
    /// How many stored paths a request with the given bounds may be
    /// served, and the termination it should report — or `None` when the
    /// entry cannot answer the request (bounds looser than what the
    /// recording run was cut off at).
    fn serve(&self, limit: Option<u64>, budget: Option<Duration>) -> Option<(usize, Termination)> {
        let stored = self.paths.len();
        match self.termination {
            // A completed entry is the full result set: any limit is a
            // deterministic prefix of it. A limit <= stored reproduces
            // the cut exactly where a fresh run would stop.
            Termination::Completed => match limit {
                Some(l) if (l as usize) <= stored => Some((l as usize, Termination::LimitReached)),
                _ => Some((stored, Termination::Completed)),
            },
            // A limit-truncated entry holds exactly the first `l0`
            // paths; only an equal-or-tighter limit is a prefix of it.
            Termination::LimitReached => {
                let l0 = self.limit.unwrap_or(stored as u64);
                match limit {
                    Some(l) if l <= l0 => {
                        Some(((l as usize).min(stored), Termination::LimitReached))
                    }
                    _ => None,
                }
            }
            // A deadline-truncated entry is reusable only under an
            // equal-or-tighter time budget: the stored prefix is a
            // valid answer for any run allowed *at most* as much time.
            Termination::DeadlineExceeded => {
                let b0 = self.time_budget?;
                if budget.is_none_or(|b| b > b0) {
                    return None;
                }
                match limit {
                    Some(l) if (l as usize) <= stored => {
                        Some((l as usize, Termination::LimitReached))
                    }
                    _ => Some((stored, Termination::DeadlineExceeded)),
                }
            }
            // Cancelled runs are never inserted; an entry cannot carry
            // this termination.
            Termination::Cancelled => None,
        }
    }

    /// Whether the new recording of the same key supersedes this entry
    /// (at the same graph version). A completed answer always wins; two
    /// truncated answers are ranked by how much they captured.
    fn superseded_by(&self, termination: Termination, new_paths: usize) -> bool {
        match (self.termination, termination) {
            (Termination::Completed, _) => false,
            (_, Termination::Completed) => true,
            _ => new_paths > self.paths.len(),
        }
    }

    /// Whether this entry's results are provably unchanged by the
    /// mutations applied after `self.version`, updating the sticky
    /// insertion flags along the way. The removal rule differs from the
    /// plan cache's: an edge can sit on a *result path* only if it
    /// leaves the `s`-reach and enters the `t`-reach, so only such
    /// removals invalidate.
    fn survives_delta(&mut self, graph: &DynamicGraph) -> bool {
        let Some(footprint) = &self.footprint else {
            return false;
        };
        if footprint.lineage() != graph.lineage() {
            return false;
        }
        let Some(mutations) = graph.mutations_since(self.version) else {
            return false; // delta log window slid past this entry
        };
        for (kind, (u, w)) in mutations {
            match kind {
                EdgeMutation::Removed => {
                    if footprint.removal_touches_results(u, w) {
                        return false;
                    }
                }
                EdgeMutation::Inserted => {
                    let (src, dst) = footprint.insertion_touches(u, w);
                    self.src_touched |= src;
                    self.dst_touched |= dst;
                    if self.src_touched && self.dst_touched {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Default byte budget of a [`ResultCache`]: enough for tens of
/// thousands of limit-1000 answers on typical path lengths while
/// staying far below the serving graph itself.
pub const DEFAULT_RESULT_CACHE_BYTES: usize = 16 * 1024 * 1024;

/// A byte-budgeted LRU cache of completed enumeration answers, keyed by
/// [`ResultKey`] and guarded by a [`GraphVersion`] epoch.
///
/// See the [module docs](self) for the serve rules and retention
/// semantics. The cache is an independent value (like
/// [`PlanCache`](crate::plan::PlanCache)) so it can move between engines
/// over successive snapshots.
#[derive(Debug)]
pub struct ResultCache {
    byte_budget: usize,
    entries: HashMap<ResultKey, ResultEntry>,
    bytes: usize,
    clock: u64,
    stats: ResultCacheStats,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new(DEFAULT_RESULT_CACHE_BYTES)
    }
}

impl ResultCache {
    /// A cache holding at most `byte_budget` bytes of stored answers
    /// (measured heap footprint plus a fixed per-entry overhead). A
    /// budget of 0 disables the cache: every lookup misses, nothing is
    /// stored.
    pub fn new(byte_budget: usize) -> Self {
        ResultCache {
            byte_budget,
            entries: HashMap::new(),
            bytes: 0,
            clock: 0,
            stats: ResultCacheStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Bytes currently charged by stored entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ResultCacheStats {
        self.stats
    }

    /// Drops every entry (statistics are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Records a request evaluated without consulting this cache.
    pub(crate) fn note_bypass(&mut self) {
        self.stats.lookups += 1;
        self.stats.bypasses += 1;
    }

    /// Looks up a servable answer for `key` at graph `version` under the
    /// request's bounds. A stale entry (older version, no retention path
    /// here) is removed and counted as an invalidation; a
    /// bound-incompatible entry stays (a tighter future request can
    /// still use it) but the lookup counts as a miss.
    pub(crate) fn lookup(
        &mut self,
        key: &ResultKey,
        limit: Option<u64>,
        budget: Option<Duration>,
        version: GraphVersion,
    ) -> Option<CachedResult> {
        self.stats.lookups += 1;
        let stale = match self.entries.get(key) {
            None => {
                self.stats.misses += 1;
                return None;
            }
            Some(entry) => entry.version != version,
        };
        if stale {
            self.remove(key);
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            return None;
        }
        let clock = self.clock + 1;
        // One mutable borrow serves both the probe and the LRU touch; an
        // entry that vanished is a graceful miss rather than a panic.
        let Some(entry) = self.entries.get_mut(key) else {
            self.stats.misses += 1;
            return None;
        };
        match entry.serve(limit, budget) {
            Some((served, termination)) => {
                entry.last_used = clock;
                let result = CachedResult {
                    plan: entry.plan,
                    paths: Arc::clone(&entry.paths),
                    served,
                    termination,
                };
                self.clock = clock;
                self.stats.hits += 1;
                Some(result)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up a servable answer against a live [`DynamicGraph`]:
    /// beyond [`lookup`](Self::lookup), a version-stale entry is
    /// re-validated against the overlay's mutation log and re-stamped
    /// when the delta is provably irrelevant to its footprint (counted
    /// in [`ResultCacheStats::retained`]).
    pub(crate) fn lookup_on_overlay(
        &mut self,
        key: &ResultKey,
        limit: Option<u64>,
        budget: Option<Duration>,
        graph: &DynamicGraph,
    ) -> Option<CachedResult> {
        self.stats.lookups += 1;
        let version = graph.version();
        let mut retained = false;
        match self.entries.get_mut(key) {
            None => {
                self.stats.misses += 1;
                return None;
            }
            Some(entry) if entry.version != version => {
                if entry.survives_delta(graph) {
                    entry.version = version;
                    retained = true;
                } else {
                    self.remove(key);
                    self.stats.invalidations += 1;
                    self.stats.misses += 1;
                    return None;
                }
            }
            Some(_) => {}
        }
        let clock = self.clock + 1;
        // Re-borrow after the re-validation above; a vanished entry is a
        // graceful miss rather than a panic.
        let Some(entry) = self.entries.get_mut(key) else {
            self.stats.misses += 1;
            return None;
        };
        match entry.serve(limit, budget) {
            Some((served, termination)) => {
                entry.last_used = clock;
                let result = CachedResult {
                    plan: entry.plan,
                    paths: Arc::clone(&entry.paths),
                    served,
                    termination,
                };
                self.clock = clock;
                self.stats.hits += 1;
                if retained {
                    self.stats.retained += 1;
                }
                Some(result)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores one recorded answer, evicting least-recently-used entries
    /// until the byte budget holds. An answer larger than the whole
    /// budget is not admitted; a worse answer never displaces a better
    /// one for the same key at the same version (a `Completed` entry is
    /// never overwritten by a truncated re-run under a tighter bound).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert(
        &mut self,
        key: ResultKey,
        version: GraphVersion,
        plan: PhysicalPlan,
        paths: PathBuffer,
        termination: Termination,
        limit: Option<u64>,
        time_budget: Option<Duration>,
        footprint: Option<IndexFootprint>,
    ) {
        if self.byte_budget == 0 || termination == Termination::Cancelled {
            return;
        }
        if let Some(existing) = self.entries.get(&key) {
            if existing.version == version && !existing.superseded_by(termination, paths.len()) {
                return;
            }
        }
        let bytes = paths.heap_bytes()
            + footprint.as_ref().map_or(0, IndexFootprint::heap_bytes)
            + ENTRY_OVERHEAD_BYTES;
        if bytes > self.byte_budget {
            return;
        }
        self.remove(&key);
        while self.bytes + bytes > self.byte_budget {
            let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                break;
            };
            self.remove(&lru);
            self.stats.evictions += 1;
        }
        self.clock += 1;
        self.bytes += bytes;
        self.entries.insert(
            key,
            ResultEntry {
                version,
                plan,
                paths: Arc::new(paths),
                termination,
                limit,
                time_budget,
                footprint,
                src_touched: false,
                dst_touched: false,
                last_used: self.clock,
                bytes,
            },
        );
    }

    fn remove(&mut self, key: &ResultKey) {
        if let Some(entry) = self.entries.remove(key) {
            self.bytes -= entry.bytes;
        }
    }
}

/// Default shard count of a [`SharedResultCache`].
pub const DEFAULT_RESULT_CACHE_SHARDS: usize = 8;

/// A concurrently readable result cache: per-shard locking over
/// [`ResultCache`] with aggregate statistics in atomics — the result
/// layer of [`PathEnumService`](crate::service::PathEnumService) and the
/// per-tenant result layer of the
/// [`catalog`](crate::catalog::CatalogService).
///
/// A hit hands out an `Arc` of the stored [`PathBuffer`]; the replay
/// into the caller's sink happens entirely outside the shard lock.
#[derive(Debug)]
pub struct SharedResultCache {
    shards: Box<[Mutex<ResultCache>]>,
    byte_budget: usize,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    retained: AtomicU64,
}

impl SharedResultCache {
    /// A cache of `byte_budget` total bytes spread over `shards` shards
    /// (budget 0 disables the cache). Like
    /// [`SharedPlanCache`](crate::plan::SharedPlanCache), the budget is
    /// rounded up to a multiple of the shard count.
    pub fn new(byte_budget: usize, shards: usize) -> Self {
        let shards = shards.max(1).min(byte_budget.max(1));
        let per_shard = byte_budget.div_ceil(shards);
        SharedResultCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ResultCache::new(if byte_budget == 0 {
                        0
                    } else {
                        per_shard
                    }))
                })
                .collect(),
            byte_budget: per_shard * shards,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            retained: AtomicU64::new(0),
        }
    }

    /// Total byte budget across all shards (rounded up as enforced).
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Current number of entries (sums the shards; takes each lock
    /// briefly).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| crate::sync::lock_recovering(s).len())
            .sum()
    }

    /// Whether no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent-enough snapshot of the aggregate statistics (each
    /// counter is read atomically; quiescent reads are exact).
    pub fn stats(&self) -> ResultCacheStats {
        // ordering: advisory stats reads. Outcome counters trail their
        // lookup counter (accumulate adds outcomes after lookups), so
        // concurrent snapshots may see hits+misses+bypasses < lookups;
        // quiescent reads balance exactly — nothing orders across fields.
        ResultCacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            retained: self.retained.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry in every shard (statistics are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            crate::sync::lock_recovering(shard).clear();
        }
    }

    fn shard_for(&self, key: &ResultKey) -> &Mutex<ResultCache> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Records a request that was evaluated without consulting the cache.
    pub(crate) fn note_bypass(&self) {
        // ordering: advisory monotone counters; see stats() for the
        // accounting invariant they feed.
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks up a servable answer; the shard lock is released before the
    /// caller replays the returned paths.
    pub(crate) fn lookup(
        &self,
        key: &ResultKey,
        limit: Option<u64>,
        budget: Option<Duration>,
        version: GraphVersion,
    ) -> Option<CachedResult> {
        let out;
        let delta;
        {
            let mut shard = crate::sync::lock_recovering(self.shard_for(key));
            let before = shard.stats();
            out = shard.lookup(key, limit, budget, version);
            delta = diff(shard.stats(), before);
        }
        self.accumulate(delta);
        out
    }

    /// Stores one recorded answer in its shard.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert(
        &self,
        key: ResultKey,
        version: GraphVersion,
        plan: PhysicalPlan,
        paths: PathBuffer,
        termination: Termination,
        limit: Option<u64>,
        time_budget: Option<Duration>,
        footprint: Option<IndexFootprint>,
    ) {
        let delta;
        {
            let mut shard = crate::sync::lock_recovering(self.shard_for(&key));
            let before = shard.stats();
            shard.insert(
                key,
                version,
                plan,
                paths,
                termination,
                limit,
                time_budget,
                footprint,
            );
            delta = diff(shard.stats(), before);
        }
        self.accumulate(delta);
    }

    fn accumulate(&self, delta: ResultCacheStats) {
        // ordering: advisory monotone counters folded in outside the shard
        // lock; each is a single-location RMW (never lost), and no reader
        // derives cross-counter decisions from a mid-flight snapshot.
        if delta.lookups > 0 {
            self.lookups.fetch_add(delta.lookups, Ordering::Relaxed);
        }
        if delta.hits > 0 {
            self.hits.fetch_add(delta.hits, Ordering::Relaxed);
        }
        if delta.misses > 0 {
            self.misses.fetch_add(delta.misses, Ordering::Relaxed);
        }
        if delta.bypasses > 0 {
            self.bypasses.fetch_add(delta.bypasses, Ordering::Relaxed);
        }
        if delta.invalidations > 0 {
            self.invalidations
                .fetch_add(delta.invalidations, Ordering::Relaxed);
        }
        if delta.evictions > 0 {
            self.evictions.fetch_add(delta.evictions, Ordering::Relaxed);
        }
        if delta.retained > 0 {
            self.retained.fetch_add(delta.retained, Ordering::Relaxed);
        }
        #[cfg(feature = "paranoid")]
        assert_result_accounting_balance(&delta);
    }
}

fn diff(after: ResultCacheStats, before: ResultCacheStats) -> ResultCacheStats {
    after.since(&before)
}

/// Paranoid-only: every stats delta folded into the shared counters must
/// balance exactly — each shard operation records one outcome (hit, miss,
/// or bypass) per lookup. The delta is thread-local, so this check is
/// race-free even though the shared counters are relaxed atomics.
#[cfg(feature = "paranoid")]
fn assert_result_accounting_balance(delta: &ResultCacheStats) {
    assert_eq!(
        delta.hits + delta.misses + delta.bypasses,
        delta.lookups,
        "result-cache accounting delta out of balance: {delta:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_on_index;
    use crate::query::Query;
    use crate::stats::PhaseTimings;

    fn sample_plan() -> PhysicalPlan {
        let g = crate::index::test_support::figure1_graph();
        let query = Query::new(
            crate::index::test_support::S,
            crate::index::test_support::T,
            4,
        )
        .unwrap();
        let index = crate::index::Index::build(&g, query);
        let mut timings = PhaseTimings::default();
        plan_on_index(&index, PathEnumConfig::default(), &mut timings)
    }

    fn buffer(paths: &[&[u32]]) -> PathBuffer {
        let mut buf = PathBuffer::new();
        for p in paths {
            buf.push(p);
        }
        buf
    }

    fn key(k: u32) -> ResultKey {
        ResultKey {
            s: 0,
            t: 1,
            k,
            namespace: 0,
            fingerprint: 0,
            method: None,
            tau: 100_000,
        }
    }

    #[test]
    fn completed_entries_serve_any_limit_as_a_prefix() {
        let mut cache = ResultCache::new(1 << 20);
        let v = GraphVersion::next();
        let paths = buffer(&[&[0, 2, 1], &[0, 3, 1], &[0, 4, 1]]);
        cache.insert(
            key(4),
            v,
            sample_plan(),
            paths,
            Termination::Completed,
            None,
            None,
            None,
        );

        let full = cache.lookup(&key(4), None, None, v).unwrap();
        assert_eq!(full.served, 3);
        assert_eq!(full.termination, Termination::Completed);

        let loose = cache.lookup(&key(4), Some(10), None, v).unwrap();
        assert_eq!(loose.served, 3);
        assert_eq!(loose.termination, Termination::Completed);

        let tight = cache.lookup(&key(4), Some(2), None, v).unwrap();
        assert_eq!(tight.served, 2);
        assert_eq!(tight.termination, Termination::LimitReached);

        // limit == stored count: a fresh run delivers the last path and
        // *then* observes the limit — LimitReached, exactly at the edge.
        let exact = cache.lookup(&key(4), Some(3), None, v).unwrap();
        assert_eq!(exact.served, 3);
        assert_eq!(exact.termination, Termination::LimitReached);
    }

    #[test]
    fn truncated_entries_serve_only_equal_or_tighter_bounds() {
        let mut cache = ResultCache::new(1 << 20);
        let v = GraphVersion::next();
        cache.insert(
            key(4),
            v,
            sample_plan(),
            buffer(&[&[0, 2, 1], &[0, 3, 1]]),
            Termination::LimitReached,
            Some(2),
            None,
            None,
        );

        assert!(cache.lookup(&key(4), None, None, v).is_none(), "unbounded");
        assert!(cache.lookup(&key(4), Some(5), None, v).is_none(), "looser");
        let equal = cache.lookup(&key(4), Some(2), None, v).unwrap();
        assert_eq!(equal.served, 2);
        assert_eq!(equal.termination, Termination::LimitReached);
        let tighter = cache.lookup(&key(4), Some(1), None, v).unwrap();
        assert_eq!(tighter.served, 1);
        assert_eq!(tighter.termination, Termination::LimitReached);

        // The incompatible lookups kept the entry alive.
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits + stats.misses + stats.bypasses, stats.lookups);
    }

    #[test]
    fn deadline_truncated_entries_require_a_tighter_budget() {
        let mut cache = ResultCache::new(1 << 20);
        let v = GraphVersion::next();
        cache.insert(
            key(4),
            v,
            sample_plan(),
            buffer(&[&[0, 2, 1]]),
            Termination::DeadlineExceeded,
            None,
            Some(Duration::from_millis(10)),
            None,
        );

        assert!(
            cache.lookup(&key(4), None, None, v).is_none(),
            "no budget at all means unbounded — the entry is truncated"
        );
        assert!(
            cache
                .lookup(&key(4), None, Some(Duration::from_millis(20)), v)
                .is_none(),
            "looser budget"
        );
        let hit = cache
            .lookup(&key(4), None, Some(Duration::from_millis(10)), v)
            .unwrap();
        assert_eq!(hit.served, 1);
        assert_eq!(hit.termination, Termination::DeadlineExceeded);
        let limited = cache
            .lookup(&key(4), Some(1), Some(Duration::from_millis(5)), v)
            .unwrap();
        assert_eq!(limited.termination, Termination::LimitReached);
    }

    #[test]
    fn version_mismatch_invalidates() {
        let mut cache = ResultCache::new(1 << 20);
        let v1 = GraphVersion::next();
        cache.insert(
            key(4),
            v1,
            sample_plan(),
            buffer(&[&[0, 2, 1]]),
            Termination::Completed,
            None,
            None,
            None,
        );
        let v2 = GraphVersion::next();
        assert!(cache.lookup(&key(4), None, None, v2).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn byte_budget_evicts_lru_and_rejects_oversized() {
        let long: Vec<u32> = (0..200).collect();
        let one_entry = buffer(&[&long]).heap_bytes() + ENTRY_OVERHEAD_BYTES;
        // Room for two long-path entries, not three.
        let mut cache = ResultCache::new(one_entry * 2 + ENTRY_OVERHEAD_BYTES / 2);
        let v = GraphVersion::next();
        for k in [2u32, 3, 4] {
            cache.insert(
                key(k),
                v,
                sample_plan(),
                buffer(&[&long]),
                Termination::Completed,
                None,
                None,
                None,
            );
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&key(2), None, None, v).is_none(), "LRU gone");
        assert!(cache.lookup(&key(4), None, None, v).is_some());
        assert!(cache.bytes() <= cache.byte_budget());

        // An answer larger than the whole budget is never admitted.
        let huge: Vec<u32> = (0..100_000).collect();
        cache.insert(
            key(9),
            v,
            sample_plan(),
            buffer(&[&huge]),
            Termination::Completed,
            None,
            None,
            None,
        );
        assert!(cache.lookup(&key(9), None, None, v).is_none());
    }

    #[test]
    fn a_truncated_rerun_never_displaces_a_completed_answer() {
        let mut cache = ResultCache::new(1 << 20);
        let v = GraphVersion::next();
        cache.insert(
            key(4),
            v,
            sample_plan(),
            buffer(&[&[0, 2, 1], &[0, 3, 1]]),
            Termination::Completed,
            None,
            None,
            None,
        );
        cache.insert(
            key(4),
            v,
            sample_plan(),
            buffer(&[&[0, 2, 1]]),
            Termination::LimitReached,
            Some(1),
            None,
            None,
        );
        let hit = cache.lookup(&key(4), None, None, v).unwrap();
        assert_eq!(hit.served, 2, "the completed answer survived");
        assert_eq!(hit.termination, Termination::Completed);
    }

    #[test]
    fn zero_budget_disables_the_cache() {
        let mut cache = ResultCache::new(0);
        let v = GraphVersion::next();
        cache.insert(
            key(4),
            v,
            sample_plan(),
            buffer(&[&[0, 2, 1]]),
            Termination::Completed,
            None,
            None,
            None,
        );
        assert!(cache.is_empty());
        assert!(cache.lookup(&key(4), None, None, v).is_none());
    }

    #[test]
    fn cancelled_runs_are_never_stored() {
        let mut cache = ResultCache::new(1 << 20);
        let v = GraphVersion::next();
        cache.insert(
            key(4),
            v,
            sample_plan(),
            buffer(&[&[0, 2, 1]]),
            Termination::Cancelled,
            None,
            None,
            None,
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_cache_counts_consistently_under_threads() {
        let cache = SharedResultCache::new(1 << 20, 4);
        let v = GraphVersion::next();
        cache.insert(
            key(4),
            v,
            sample_plan(),
            buffer(&[&[0, 2, 1]]),
            Termination::Completed,
            None,
            None,
            None,
        );
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for round in 0..50u32 {
                        if round % 5 == 4 {
                            cache.note_bypass();
                        } else {
                            let hit = cache.lookup(&key(4), None, None, v).expect("warm");
                            assert_eq!(hit.paths.get(0), &[0, 2, 1]);
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.lookups, 200);
        assert_eq!(stats.bypasses, 40);
        assert_eq!(stats.hits, 160);
        assert_eq!(stats.hits + stats.misses + stats.bypasses, stats.lookups);
        assert!((stats.hit_rate() - 0.8).abs() < 1e-12);
    }
}

//! Snapshot-free querying of dynamic graphs.
//!
//! [`DynamicEngine`] is the [`QueryEngine`](crate::QueryEngine)
//! counterpart for graphs that change between queries: it is bound to a
//! [`DynamicGraph`] and evaluates every request directly on the graph's
//! borrowed [`OverlayView`](pathenum_graph::OverlayView) — the boundary
//! BFS and the per-query index build walk base CSR + delta adjacency in
//! one merged pass, so the update→query loop of the paper's streaming
//! scenario (Figure 8: fraud/cycle detection on transaction streams)
//! never pays the `O(n + m)` `snapshot()` the old pipeline required.
//!
//! The engine's [`PlanCache`] is *surgically* retained under mutation.
//! Where a snapshot-bound engine must discard every entry when the
//! [`GraphVersion`](pathenum_graph::GraphVersion) epoch advances, this
//! engine re-validates stale entries against the overlay's mutation log:
//! an entry whose recorded reach footprint is provably disjoint from the
//! delta keeps serving (re-stamped, counted in
//! [`PlanCacheStats::retained`](crate::PlanCacheStats::retained)) —
//! mutations to one region of the graph no longer evict the whole
//! working set.
//!
//! ```
//! use pathenum::{DynamicEngine, PathEnumConfig, QueryRequest};
//! use pathenum_graph::{DynamicGraph, GraphBuilder};
//!
//! let mut b = GraphBuilder::new(5);
//! b.add_edges([(0, 1), (1, 2), (2, 3)]).unwrap();
//! let mut graph = DynamicGraph::new(b.finish());
//!
//! // Query, mutate, query again — no snapshot anywhere.
//! let request = QueryRequest::paths(0, 3).max_hops(4).collect_paths(true);
//! {
//!     let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default());
//!     assert_eq!(engine.execute(&request).unwrap().paths, vec![vec![0, 1, 2, 3]]);
//! }
//! graph.insert_edge(0, 2);
//! let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default());
//! assert_eq!(engine.execute(&request).unwrap().paths.len(), 2);
//! ```
//!
//! The engine holds a shared borrow of the graph, so mutations require
//! the engine to be dropped (or not yet created) — Rust's borrow rules
//! guarantee an engine never observes a half-applied update. For
//! update→query loops, carry the cache across engines with
//! [`into_cache`](DynamicEngine::into_cache) /
//! [`with_cache`](DynamicEngine::with_cache); retained entries survive
//! the trip.

use std::time::Instant;

use pathenum_graph::DynamicGraph;

use crate::engine::{
    execute_collecting, execute_on_plan, preflight_stop, replay_result_hit, result_key,
};
use crate::index::BuildScratch;
use crate::optimizer::PathEnumConfig;
use crate::plan::{
    effective_config, CacheOutcome, IndexFootprint, PhysicalPlan, PlanCache, PlanKey, Planner,
};
use crate::request::{PathEnumError, QueryRequest, QueryResponse, Termination};
use crate::results::{ResultCache, ResultCacheStats, TeeSink};
use crate::sink::PathSink;
use crate::stats::PhaseTimings;

/// A PathEnum engine bound to a [`DynamicGraph`], evaluating requests on
/// the borrowed overlay with zero per-query materialization and a
/// surgically retained plan cache. See the [module docs](self).
#[derive(Debug)]
pub struct DynamicEngine<'g> {
    graph: &'g DynamicGraph,
    config: PathEnumConfig,
    scratch: BuildScratch,
    cache: PlanCache,
    /// The result layer ([`ResultCache`]) — `None` (the default) keeps
    /// it off; attach one with
    /// [`with_result_cache`](Self::with_result_cache). Entries recorded
    /// here carry the same [`IndexFootprint`] plan entries do, so they
    /// are surgically retained across irrelevant mutations.
    results: Option<ResultCache>,
    queries_served: u64,
    queries_rejected: u64,
}

impl<'g> DynamicEngine<'g> {
    /// Creates an engine over `graph` with a default-capacity
    /// [`PlanCache`].
    pub fn new(graph: &'g DynamicGraph, config: PathEnumConfig) -> Self {
        DynamicEngine::with_cache(graph, config, PlanCache::default())
    }

    /// Creates an engine with an explicit plan cache — `PlanCache::new(0)`
    /// disables caching; a cache carried from an engine over an earlier
    /// state of the same graph keeps its surgically retainable entries.
    pub fn with_cache(graph: &'g DynamicGraph, config: PathEnumConfig, cache: PlanCache) -> Self {
        DynamicEngine {
            graph,
            config,
            scratch: BuildScratch::default(),
            cache,
            results: None,
            queries_served: 0,
            queries_rejected: 0,
        }
    }

    /// Attaches a [`ResultCache`] (see [`crate::results`]); off unless
    /// attached. Entries recorded on this engine carry a mutation
    /// footprint, so a cache carried to an engine over a *mutated* state
    /// of the same graph keeps every answer the delta provably did not
    /// touch.
    pub fn with_result_cache(mut self, results: ResultCache) -> Self {
        self.results = Some(results);
        self
    }

    /// The dynamic graph this engine serves.
    pub fn graph(&self) -> &'g DynamicGraph {
        self.graph
    }

    /// Number of queries evaluated so far. Requests stopped by a
    /// pre-flight rule (see [`queries_rejected`](Self::queries_rejected))
    /// are not counted.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Number of requests a pre-flight stopping rule short-circuited
    /// before planning; they produce a response (with
    /// [`CacheOutcome::Skipped`]) but never touch the overlay or the
    /// cache.
    pub fn queries_rejected(&self) -> u64 {
        self.queries_rejected
    }

    /// The engine's plan cache (entry count, statistics).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Convenience for `plan_cache().stats()`.
    pub fn cache_stats(&self) -> crate::plan::PlanCacheStats {
        self.cache.stats()
    }

    /// Drops every cached plan (statistics are kept).
    pub fn clear_plan_cache(&mut self) {
        self.cache.clear();
    }

    /// Consumes the engine, handing the plan cache to its successor
    /// (typically an engine created after the next batch of mutations).
    pub fn into_cache(self) -> PlanCache {
        self.cache
    }

    /// The engine's result cache, if one is attached.
    pub fn result_cache(&self) -> Option<&ResultCache> {
        self.results.as_ref()
    }

    /// Result-layer statistics (all-zero when no cache is attached).
    pub fn result_cache_stats(&self) -> ResultCacheStats {
        self.results
            .as_ref()
            .map(ResultCache::stats)
            .unwrap_or_default()
    }

    /// Consumes the engine, handing back the attached result cache (if
    /// any); footprint-carrying entries survive the trip across
    /// mutations exactly like retained plan entries.
    pub fn into_result_cache(self) -> Option<ResultCache> {
        self.results
    }

    /// Evaluates a [`QueryRequest`] on the live overlay, collecting
    /// result paths when the request asked for
    /// [`collect_paths`](QueryRequest::collect_paths).
    pub fn execute(&mut self, request: &QueryRequest<'_>) -> Result<QueryResponse, PathEnumError> {
        execute_collecting(request.collect, |sink| self.execute_into(request, sink))
    }

    /// Plans a request on the overlay without executing it (and warms
    /// the cache) — the `EXPLAIN` of the dynamic engine.
    pub fn explain(&mut self, request: &QueryRequest<'_>) -> Result<PhysicalPlan, PathEnumError> {
        let query = request.validate(self.graph.num_vertices())?;
        let key = self.plan_key(request);
        if let Some(key) = key {
            if let Some((plan, _)) = self.cache.lookup_on_overlay(&key, self.graph) {
                let mut plan = *plan;
                plan.constraint = request.constraint.kind();
                plan.threads = request.effective_threads();
                return Ok(plan);
            }
        }
        let view = self.graph.view();
        let planner = Planner::new(&view, self.config);
        let (planned, _) = planner.plan_query(query, request, &mut self.scratch);
        let plan = planned.plan;
        if let Some(key) = key {
            let footprint = self.capture_footprint(query.k);
            self.cache.insert_with_footprint(
                key,
                self.graph.version(),
                planned.plan,
                planned.index,
                footprint,
            );
        }
        Ok(plan)
    }

    /// Evaluates a [`QueryRequest`] on the live overlay, streaming
    /// result paths into `sink`. Semantics (stopping rules, explain
    /// flag, termination reporting) match
    /// [`QueryEngine::execute_into`](crate::QueryEngine::execute_into);
    /// only the serving graph differs.
    pub fn execute_into(
        &mut self,
        request: &QueryRequest<'_>,
        sink: &mut dyn PathSink,
    ) -> Result<QueryResponse, PathEnumError> {
        let query = request.validate(self.graph.num_vertices())?;

        let deadline = request.time_budget.map(|b| Instant::now() + b);
        if let Some(stopped) = preflight_stop(request, deadline) {
            self.queries_rejected += 1;
            return Ok(stopped);
        }
        self.queries_served += 1;

        // Result layer (off unless a cache is attached): a stored
        // answer — fresh *or* surgically retained across the mutation
        // log — skips planning and enumeration; on a miss the run is
        // recorded and admitted with the footprint of the build that
        // produced it.
        if self.results.is_some() {
            match result_key(self.config, request) {
                Some(rkey) => {
                    let lookup_start = Instant::now();
                    let cached = self
                        .results
                        .as_mut()
                        .expect("checked above")
                        .lookup_on_overlay(&rkey, request.limit, request.time_budget, self.graph);
                    if let Some(cached) = cached {
                        return Ok(replay_result_hit(
                            &cached,
                            request,
                            sink,
                            lookup_start.elapsed(),
                            request.effective_threads(),
                        ));
                    }
                    let mut tee = TeeSink::new(sink);
                    let response = self.execute_planned(query, request, deadline, &mut tee);
                    if let Some(paths) = tee.finish() {
                        if response.termination != Termination::Cancelled {
                            // The footprint is only capturable when this
                            // run actually built (the dist maps in
                            // scratch are that build's); a plan-cache hit
                            // stores a footprint-less entry, which is
                            // version-invalidated rather than retained.
                            let footprint = if response.report.cache == CacheOutcome::Hit {
                                None
                            } else {
                                self.capture_footprint(query.k)
                            };
                            let plan = response.plan.expect("executed responses carry the plan");
                            self.results.as_mut().expect("checked above").insert(
                                rkey,
                                self.graph.version(),
                                plan,
                                paths,
                                response.termination,
                                request.limit,
                                request.time_budget,
                                footprint,
                            );
                        }
                    }
                    return Ok(response);
                }
                None => self.results.as_mut().expect("checked above").note_bypass(),
            }
        }

        Ok(self.execute_planned(query, request, deadline, sink))
    }

    /// The plan-acquisition + execution core of
    /// [`execute_into`](Self::execute_into) (mirrors the
    /// [`QueryEngine`](crate::QueryEngine) split).
    fn execute_planned(
        &mut self,
        query: crate::query::Query,
        request: &QueryRequest<'_>,
        deadline: Option<Instant>,
        sink: &mut dyn PathSink,
    ) -> QueryResponse {
        let key = self.plan_key(request);

        // Warm path: fresh or surgically retained entries skip BFS and
        // index build entirely; the lookup (including the retention
        // check against the mutation log) is reported as `cache_lookup`,
        // leaving `index_build` zero — no build ran.
        let lookup_start = Instant::now();
        if let Some(key) = key {
            if let Some((plan, index)) = self.cache.lookup_on_overlay(&key, self.graph) {
                let mut plan = *plan;
                plan.constraint = request.constraint.kind();
                plan.threads = request.effective_threads();
                let timings = PhaseTimings {
                    cache_lookup: lookup_start.elapsed(),
                    ..PhaseTimings::default()
                };
                return execute_on_plan(
                    index,
                    plan,
                    request,
                    deadline,
                    sink,
                    timings,
                    CacheOutcome::Hit,
                );
            }
        }

        // Cold path: plan directly on the overlay view.
        let view = self.graph.view();
        let planner = Planner::new(&view, self.config);
        let (planned, timings) = planner.plan_query(query, request, &mut self.scratch);
        let outcome = if key.is_some() {
            CacheOutcome::Miss
        } else {
            CacheOutcome::Bypass
        };
        let response = execute_on_plan(
            &planned.index,
            planned.plan,
            request,
            deadline,
            sink,
            timings,
            outcome,
        );
        if let Some(key) = key {
            let footprint = self.capture_footprint(query.k);
            self.cache.insert_with_footprint(
                key,
                self.graph.version(),
                planned.plan,
                planned.index,
                footprint,
            );
        }
        response
    }

    /// The reach footprint of the build that just ran (its boundary
    /// distance maps are still in the scratch buffers), bound to the
    /// serving graph's mutation lineage. Delegates to the shared
    /// [`IndexFootprint::capture`] — the planner-side capture and this
    /// one used to duplicate the dist-map walk.
    fn capture_footprint(&self, k: u32) -> Option<IndexFootprint> {
        Some(IndexFootprint::capture(
            self.graph.lineage(),
            &self.scratch,
            k,
        ))
    }

    fn plan_key(&self, request: &QueryRequest<'_>) -> Option<PlanKey> {
        if request.bypass_cache || self.cache.capacity() == 0 {
            return None;
        }
        PlanKey::for_request(request, effective_config(self.config, request))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use crate::request::Termination;
    use crate::sink::CollectingSink;
    use pathenum_graph::{GraphBuilder, NeighborAccess};

    fn diamond_dynamic() -> DynamicGraph {
        let mut b = GraphBuilder::new(6);
        b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3), (3, 4)])
            .unwrap();
        DynamicGraph::new(b.finish())
    }

    #[test]
    fn overlay_execution_matches_snapshot_execution() {
        let mut graph = diamond_dynamic();
        graph.insert_edge(4, 5);
        graph.insert_edge(0, 3);
        graph.remove_edge(1, 3);
        let request = QueryRequest::paths(0, 3).max_hops(3).collect_paths(true);

        let mut dynamic = DynamicEngine::new(&graph, PathEnumConfig::default());
        let from_overlay = dynamic.execute(&request).unwrap();

        let snapshot = graph.snapshot();
        let mut classic = QueryEngine::new(&snapshot, PathEnumConfig::default());
        let from_snapshot = classic.execute(&request).unwrap();

        assert_eq!(from_overlay.paths, from_snapshot.paths);
        assert_eq!(from_overlay.report.method, from_snapshot.report.method);
    }

    #[test]
    fn warm_hits_without_mutation() {
        let graph = diamond_dynamic();
        let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default());
        let request = QueryRequest::paths(0, 3).max_hops(3);
        assert_eq!(
            engine.execute(&request).unwrap().report.cache,
            CacheOutcome::Miss
        );
        assert_eq!(
            engine.execute(&request).unwrap().report.cache,
            CacheOutcome::Hit
        );
        assert_eq!(engine.cache_stats().retained, 0);
        assert_eq!(engine.queries_served(), 2);
    }

    #[test]
    fn far_away_mutations_retain_cached_entries() {
        // 0 -> 1 -> 2 and an unrelated far component 4 <-> 5.
        let mut b = GraphBuilder::new(6);
        b.add_edges([(0, 1), (1, 2), (4, 5)]).unwrap();
        let mut graph = DynamicGraph::new(b.finish());
        let request = QueryRequest::paths(0, 2).max_hops(2).collect_paths(true);

        let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default());
        let cold = engine.execute(&request).unwrap();
        assert_eq!(cold.report.cache, CacheOutcome::Miss);
        let cache = engine.into_cache();

        // Mutations touching only the far component.
        assert!(graph.insert_edge(5, 4));
        assert!(graph.remove_edge(4, 5));
        let mut engine = DynamicEngine::with_cache(&graph, PathEnumConfig::default(), cache);
        let warm = engine.execute(&request).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::Hit, "entry retained");
        assert_eq!(engine.cache_stats().retained, 1);
        assert_eq!(warm.paths, cold.paths);
    }

    #[test]
    fn relevant_mutations_invalidate_cached_entries() {
        let graph_edges = [(0u32, 1u32), (1, 2)];
        let mut b = GraphBuilder::new(4);
        b.add_edges(graph_edges).unwrap();
        let mut graph = DynamicGraph::new(b.finish());
        let request = QueryRequest::paths(0, 2).max_hops(3).collect_paths(true);

        let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default());
        let before = engine.execute(&request).unwrap();
        assert_eq!(before.paths, vec![vec![0, 1, 2]]);
        let cache = engine.into_cache();

        // A new path 0 -> 3 -> 2 appears; the stale index must not be
        // served.
        assert!(graph.insert_edge(0, 3));
        assert!(graph.insert_edge(3, 2));
        let mut engine = DynamicEngine::with_cache(&graph, PathEnumConfig::default(), cache);
        let after = engine.execute(&request).unwrap();
        assert_eq!(after.report.cache, CacheOutcome::Miss);
        assert!(engine.cache_stats().invalidations >= 1);
        assert_eq!(after.paths.len(), 2);
        assert!(after.paths.contains(&vec![0, 3, 2]));
    }

    #[test]
    fn caches_never_retain_across_diverged_graph_clones() {
        // A and B share a prefix of history, then diverge. An entry
        // stamped against A must not be re-validated against B's
        // mutation log — B's log knows nothing of A's divergence, and
        // the "irrelevant delta" reasoning would silently serve A's
        // (stale, for B) results.
        let mut b = GraphBuilder::new(10);
        b.add_edges([(0, 1), (1, 2), (8, 9)]).unwrap();
        let mut a_graph = DynamicGraph::new(b.finish());
        let mut b_graph = a_graph.clone();
        assert_ne!(a_graph.lineage(), b_graph.lineage());

        // Diverge A inside the query region and stamp an entry there.
        assert!(a_graph.insert_edge(0, 2));
        let request = || QueryRequest::paths(0, 2).max_hops(3).collect_paths(true);
        let mut engine = DynamicEngine::new(&a_graph, PathEnumConfig::default());
        let on_a = engine.execute(&request()).unwrap();
        assert_eq!(on_a.paths.len(), 2, "A sees the direct edge");
        let cache = engine.into_cache();

        // Mutate B only far from the query; carry A's cache over.
        assert!(b_graph.insert_edge(9, 8));
        let mut engine = DynamicEngine::with_cache(&b_graph, PathEnumConfig::default(), cache);
        let on_b = engine.execute(&request()).unwrap();
        assert_eq!(
            on_b.report.cache,
            CacheOutcome::Miss,
            "foreign-lineage entry must not be retained"
        );
        assert_eq!(on_b.paths, vec![vec![0, 1, 2]], "B never had 0 -> 2");
    }

    #[test]
    fn result_entries_are_retained_across_irrelevant_mutations() {
        // 0 -> 1 -> 2 and an unrelated far component 4 <-> 5.
        let mut b = GraphBuilder::new(6);
        b.add_edges([(0, 1), (1, 2), (4, 5)]).unwrap();
        let mut graph = DynamicGraph::new(b.finish());
        let request = QueryRequest::paths(0, 2).max_hops(2).collect_paths(true);

        let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default())
            .with_result_cache(ResultCache::default());
        let cold = engine.execute(&request).unwrap();
        assert_eq!(cold.report.cache, CacheOutcome::Miss);
        let results = engine.into_result_cache().unwrap();

        // Mutations touching only the far component.
        assert!(graph.insert_edge(5, 4));
        assert!(graph.remove_edge(4, 5));
        let mut engine =
            DynamicEngine::new(&graph, PathEnumConfig::default()).with_result_cache(results);
        let warm = engine.execute(&request).unwrap();
        assert_eq!(
            warm.report.cache,
            CacheOutcome::ResultHit,
            "answer retained across the irrelevant delta"
        );
        assert_eq!(warm.paths, cold.paths);
        let stats = engine.result_cache_stats();
        assert_eq!(stats.retained, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn result_entries_die_when_a_result_path_edge_is_removed() {
        let mut b = GraphBuilder::new(5);
        b.add_edges([(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut graph = DynamicGraph::new(b.finish());
        let request = QueryRequest::paths(0, 3).max_hops(3).collect_paths(true);

        let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default())
            .with_result_cache(ResultCache::default());
        let before = engine.execute(&request).unwrap();
        assert_eq!(before.paths, vec![vec![0, 1, 2, 3]]);
        let results = engine.into_result_cache().unwrap();

        // (1, 2) sits on the only result path: the entry must die.
        assert!(graph.remove_edge(1, 2));
        let mut engine =
            DynamicEngine::new(&graph, PathEnumConfig::default()).with_result_cache(results);
        let after = engine.execute(&request).unwrap();
        assert_ne!(after.report.cache, CacheOutcome::ResultHit);
        assert!(after.paths.is_empty());
        assert_eq!(engine.result_cache_stats().invalidations, 1);
    }

    #[test]
    fn result_entries_die_only_when_insertions_touch_both_sides() {
        // 0 -> 1 -> 2 -> 3, spare vertices 4 and 5.
        let mut b = GraphBuilder::new(6);
        b.add_edges([(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut graph = DynamicGraph::new(b.finish());
        let request = QueryRequest::paths(0, 3).max_hops(4).collect_paths(true);

        let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default())
            .with_result_cache(ResultCache::default());
        engine.execute(&request).unwrap();
        let results = engine.into_result_cache().unwrap();

        // Source-side-only insertion: no new s-t path can exist yet.
        assert!(graph.insert_edge(1, 4));
        let mut engine =
            DynamicEngine::new(&graph, PathEnumConfig::default()).with_result_cache(results);
        let warm = engine.execute(&request).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::ResultHit);
        assert_eq!(engine.result_cache_stats().retained, 1);
        let results = engine.into_result_cache().unwrap();

        // Now a target-side insertion completes the detour 1->4->2:
        // the sticky flags meet and the entry must die. The fresh run
        // finds the new path.
        assert!(graph.insert_edge(4, 2));
        let mut engine =
            DynamicEngine::new(&graph, PathEnumConfig::default()).with_result_cache(results);
        let after = engine.execute(&request).unwrap();
        assert_ne!(after.report.cache, CacheOutcome::ResultHit);
        assert_eq!(after.paths.len(), 2);
        assert!(after.paths.contains(&vec![0, 1, 4, 2, 3]));
    }

    #[test]
    fn explain_on_overlay_warms_the_cache() {
        let graph = diamond_dynamic();
        let mut engine = QueryEngine::on_dynamic(&graph, PathEnumConfig::default());
        let request = QueryRequest::paths(0, 3).max_hops(3);
        let plan = engine.explain(&request).unwrap();
        assert!(plan.index_vertices > 0);
        let response = engine.execute(&request).unwrap();
        assert_eq!(response.report.cache, CacheOutcome::Hit);
        assert_eq!(response.report.method, plan.method);
    }

    #[test]
    fn execute_into_streams_into_custom_sinks() {
        let graph = diamond_dynamic();
        let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default());
        let mut sink = CollectingSink::default();
        let response = engine
            .execute_into(&QueryRequest::paths(0, 3).max_hops(3), &mut sink)
            .unwrap();
        assert_eq!(response.num_results(), 2);
        assert_eq!(sink.paths.len(), 2);
    }

    #[test]
    fn preflight_rules_apply_before_planning() {
        let graph = diamond_dynamic();
        let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default());
        let response = engine
            .execute(&QueryRequest::paths(0, 3).max_hops(3).limit(0))
            .unwrap();
        assert_eq!(response.termination, Termination::LimitReached);
        let err = engine
            .execute(&QueryRequest::paths(0, 99).max_hops(3))
            .unwrap_err();
        assert_eq!(err, PathEnumError::VertexOutOfRange(99));
    }

    #[test]
    fn predicate_requests_run_on_the_filtered_overlay() {
        let mut graph = diamond_dynamic();
        graph.insert_edge(0, 3);
        let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default());
        let response = engine
            .execute(
                &QueryRequest::paths(0, 3)
                    .max_hops(3)
                    .collect_paths(true)
                    .predicate(|_, to| to != 1),
            )
            .unwrap();
        let mut paths = response.paths;
        paths.sort_unstable();
        assert_eq!(paths, vec![vec![0, 2, 3], vec![0, 3]]);
    }

    #[test]
    fn view_is_consistent_while_engine_is_alive() {
        let graph = diamond_dynamic();
        let view = graph.view();
        let n = NeighborAccess::num_edges(&view);
        let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default());
        engine
            .execute(&QueryRequest::paths(0, 3).max_hops(3))
            .unwrap();
        assert_eq!(NeighborAccess::num_edges(&view), n);
    }
}

//! Word-parallel set kernels for the join's candidate intersection.
//!
//! The IDX-JOIN validity check is, at heart, a disjointness test between
//! the prefix tuple's vertex set and each suffix tuple's interior
//! vertices. Three interchangeable kernels cover the density spectrum:
//!
//! * [`intersect_sorted`] — the textbook sorted-merge; the *reference*
//!   implementation every other kernel is pinned against.
//! * [`intersect_gallop`] — galloping (exponential-probe) merge for
//!   skewed sizes: `O(small · log large)` instead of `O(small + large)`.
//! * [`BlockBits`] — a `u64`-block bitset over a small local-id universe;
//!   intersection tests 64 candidates per AND. The join switches to this
//!   form when the index partition is dense ([`DENSE_UNIVERSE`]), where
//!   a handful of word ops replace per-element probing.
//!
//! All three agree element-for-element (proptest-pinned in
//! `tests/kernel_agreement.rs`); correctness relies on the strictly
//! ascending neighbor order guaranteed by
//! [`NeighborAccess`](pathenum_graph::NeighborAccess) and preserved by
//! the index's local-id assignment.

/// Largest index partition (`|X|`, local-id universe) for which the join
/// uses per-tuple [`BlockBits`] rows instead of epoch-stamp probing: at
/// 256 vertices a row is four `u64` words — one cache line — and the
/// whole disjointness test is four ANDs.
pub const DENSE_UNIVERSE: usize = 256;

/// Reference sorted-set intersection: linear merge of two ascending
/// slices into `out` (cleared first).
pub fn intersect_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping intersection for skewed sizes: walks the smaller slice and
/// exponentially probes the larger. Output is identical to
/// [`intersect_sorted`].
pub fn intersect_gallop(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    out.clear();
    let mut lo = 0usize;
    for &x in small {
        if lo >= large.len() {
            break;
        }
        // Gallop: establish a bracket `[lo, hi]` whose upper end holds a
        // value >= x (or runs off the slice).
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            lo = hi + 1;
            hi += step;
            step <<= 1;
        }
        let end = (hi + 1).min(large.len());
        match large[lo..end].binary_search(&x) {
            Ok(pos) => {
                out.push(x);
                lo += pos + 1;
            }
            Err(pos) => lo += pos,
        }
    }
}

/// A `u64`-block bitset over a dense `0..universe` id space, with
/// word-parallel intersection against raw word slices.
#[derive(Debug, Clone, Default)]
pub struct BlockBits {
    words: Vec<u64>,
}

impl BlockBits {
    /// Words needed for a `universe`-sized bitset row.
    pub fn words_for(universe: usize) -> usize {
        universe.div_ceil(64)
    }

    /// Clears the set and (re)sizes it for ids `0..universe`.
    pub fn reset(&mut self, universe: usize) {
        self.words.clear();
        self.words.resize(Self::words_for(universe), 0);
    }

    /// Inserts `id`.
    #[inline]
    pub fn insert(&mut self, id: u32) {
        self.words[id as usize / 64] |= 1u64 << (id % 64);
    }

    /// Removes `id`.
    #[inline]
    pub fn remove(&mut self, id: u32) {
        self.words[id as usize / 64] &= !(1u64 << (id % 64));
    }

    /// Whether `id` is present.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.words
            .get(id as usize / 64)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// The raw word block (for materializing per-tuple rows).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word-parallel disjointness test against a raw word row (any
    /// missing tail words are treated as zero).
    #[inline]
    pub fn intersects(&self, row: &[u64]) -> bool {
        self.words.iter().zip(row.iter()).any(|(&a, &b)| a & b != 0)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// Bitset-based intersection over a dense universe, materializing the
/// result ascending. Output is identical to [`intersect_sorted`] for
/// ascending duplicate-free inputs within `0..universe`.
pub fn intersect_bitset(
    a: &[u32],
    b: &[u32],
    universe: usize,
    scratch: &mut BlockBits,
    out: &mut Vec<u32>,
) {
    scratch.reset(universe);
    for &x in a {
        scratch.insert(x);
    }
    out.clear();
    for &y in b {
        if scratch.contains(y) {
            out.push(y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_three(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let universe = 1 + a.iter().chain(b).copied().max().unwrap_or(0) as usize;
        let (mut m, mut g, mut bs) = (Vec::new(), Vec::new(), Vec::new());
        intersect_sorted(a, b, &mut m);
        intersect_gallop(a, b, &mut g);
        intersect_bitset(a, b, universe, &mut BlockBits::default(), &mut bs);
        (m, g, bs)
    }

    #[test]
    fn kernels_agree_on_samples() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[]),
            (&[1, 2, 3], &[]),
            (&[1, 3, 5, 7], &[2, 3, 4, 7, 9]),
            (&[0, 64, 128, 200], &[64, 65, 200]),
            (&[5], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
            (&[0, 1, 2, 3], &[0, 1, 2, 3]),
        ];
        for (a, b) in cases {
            let (m, g, bs) = all_three(a, b);
            assert_eq!(m, g, "gallop vs merge on {a:?} {b:?}");
            assert_eq!(m, bs, "bitset vs merge on {a:?} {b:?}");
        }
    }

    #[test]
    fn block_bits_word_parallel_disjointness() {
        let mut p = BlockBits::default();
        p.reset(300);
        p.insert(3);
        p.insert(290);
        let mut row = BlockBits::default();
        row.reset(300);
        row.insert(290);
        assert!(p.intersects(row.words()));
        row.remove(290);
        assert!(!p.intersects(row.words()));
        row.insert(4);
        assert!(!p.intersects(row.words()));
        // Shorter rows are padded with zeros conceptually.
        assert!(!p.intersects(&[0u64]));
        assert!(p.intersects(&[1u64 << 3]));
    }

    #[test]
    fn gallop_handles_long_runs() {
        let a: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..50).map(|i| i * 61).collect();
        let (m, g, bs) = all_three(&a, &b);
        assert_eq!(m, g);
        assert_eq!(m, bs);
        assert!(!m.is_empty());
    }
}

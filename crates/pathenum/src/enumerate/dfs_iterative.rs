//! Iterative IDX-DFS: Algorithm 4 with an explicit frame stack.
//!
//! Functionally identical to [`super::dfs::idx_dfs`] (asserted by tests
//! and the plan-agreement property suite) but without native recursion:
//! each frame holds the cursor into its `I_t` slice. Production services
//! favor this form for stack safety under adversarial `k` and because the
//! enumeration state can be suspended between emissions — the shape an
//! incremental/paginated API needs. It also serves as the ablation
//! partner for the recursion-overhead question in DESIGN.md.

use pathenum_graph::epoch::EpochStamps;
use pathenum_graph::VertexId;

use crate::index::{Index, LocalId};
use crate::sink::{PathSink, SearchControl};
use crate::stats::Counters;

/// One suspended search frame: the vertex at this depth and how far its
/// admissible-neighbor slice has been consumed.
#[derive(Debug, Clone, Copy)]
struct Frame {
    vertex: LocalId,
    cursor: u32,
    /// The frame's `I_t` row, resolved once at push time so re-activating
    /// the frame after a child pops costs zero index lookups (the
    /// recursive form gets this for free by keeping the slice live across
    /// the child call). Indexes into `Index::fwd_raw_neighbors`.
    nbr_start: u32,
    nbr_len: u32,
    /// Whether any result was found below this frame (for the
    /// invalid-partial counter).
    found: bool,
}

/// Reusable buffers of [`idx_dfs_seeded`], so a worker that runs many
/// seeded searches back-to-back (the intra-query parallel tasks of
/// [`crate::parallel`]) allocates its stack and path scratch once.
#[derive(Debug, Default)]
pub(crate) struct SeededScratch {
    stack: Vec<Frame>,
    path: Vec<VertexId>,
    /// O(1) "is this vertex on the current path" membership, replacing a
    /// linear stack scan per candidate neighbor. Epoch-reset at the start
    /// of every seeded call, so an early `Stop` cannot leave stale marks.
    on_path: EpochStamps,
}

impl SeededScratch {
    /// Approximate heap footprint of the scratch in bytes.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.stack.capacity() * std::mem::size_of::<Frame>()
            + self.path.capacity() * std::mem::size_of::<VertexId>()
            + self.on_path.heap_bytes()
    }
}

/// Enumerates all hop-constrained s-t paths by an explicit-stack DFS on
/// the index. Emission and counter semantics match
/// [`super::dfs::idx_dfs`] exactly.
pub fn idx_dfs_iterative(
    index: &Index,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) -> SearchControl {
    let (Some(s_local), Some(t_local)) = (index.s_local(), index.t_local()) else {
        return SearchControl::Continue;
    };
    // Count the root's neighbor scan once, mirroring the recursive entry.
    if s_local != t_local {
        counters.edges_accessed += index.i_t(s_local, index.k() - 1).len() as u64;
    }
    super::scratch::with_enum_scratch(|scratch| {
        idx_dfs_seeded(index, &[s_local], &mut scratch.dfs, sink, counters)
    })
}

/// The DFS continuation below a fixed prefix: enumerates every
/// hop-constrained s-t path that starts with `prefix` (local ids,
/// `prefix[0] == s`), never backtracking past the prefix boundary.
///
/// `idx_dfs_iterative` is the `prefix == [s]` special case; the
/// intra-query parallel executor runs one seeded search per frontier
/// partition and concatenates the outputs, which reproduces the full
/// sequential DFS emission order. A prefix that already ends at `t`
/// emits exactly that path. The prefix's own neighbor scan is *not*
/// charged to `counters` (the caller decides whether the split phase or
/// the task accounts for it).
pub(crate) fn idx_dfs_seeded(
    index: &Index,
    prefix: &[LocalId],
    scratch: &mut SeededScratch,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) -> SearchControl {
    let Some(t_local) = index.t_local() else {
        return SearchControl::Continue;
    };
    debug_assert!(!prefix.is_empty(), "seeded DFS needs a non-empty prefix");
    debug_assert_eq!(Some(prefix[0]), index.s_local(), "prefix starts at s");
    let k = index.k();
    let floor = prefix.len();
    let SeededScratch {
        stack,
        path,
        on_path,
    } = scratch;
    stack.clear();
    on_path.reset(index.num_vertices());
    // Frames below the top of the seed are frozen: their cursors (and
    // neighbor rows) are never consulted because the search stops before
    // popping past the prefix boundary.
    stack.extend(prefix.iter().map(|&vertex| Frame {
        vertex,
        cursor: u32::MAX,
        nbr_start: 0,
        nbr_len: 0,
        found: false,
    }));
    {
        let top = stack.last_mut().expect("prefix is non-empty");
        top.cursor = 0;
        let budget = k.saturating_sub(floor as u32);
        (top.nbr_start, top.nbr_len) = index.i_t_row_range(top.vertex, budget);
    }
    for &vertex in prefix {
        on_path.mark(vertex as usize);
    }
    let base = index.fwd_raw_neighbors();

    let mut probe_tick = 0u32;
    while let Some(top) = stack.last().copied() {
        if probe_tick & (super::PROBE_STRIDE - 1) == 0 && sink.probe() == SearchControl::Stop {
            return SearchControl::Stop;
        }
        probe_tick = probe_tick.wrapping_add(1);
        let depth = stack.len() as u32 - 1; // edges used so far
        if top.vertex == t_local && depth > 0 {
            // Emit and force-backtrack: t's only neighbor is the padding
            // loop, which the plain DFS never follows.
            counters.results += 1;
            path.clear();
            path.extend(stack.iter().map(|f| index.global(f.vertex)));
            if sink.emit(path) == SearchControl::Stop {
                return SearchControl::Stop;
            }
            if stack.len() == floor {
                // The seed itself was a complete path; nothing below it
                // belongs to this task.
                break;
            }
            let popped = stack.pop().expect("stack is non-empty");
            on_path.unmark(popped.vertex as usize);
            if let Some(parent) = stack.last_mut() {
                parent.found = true;
            }
            continue;
        }
        let neighbors = &base[top.nbr_start as usize..(top.nbr_start + top.nbr_len) as usize];
        let mut advanced = false;
        let start_cursor = top.cursor as usize;
        for (offset, &next) in neighbors[start_cursor..].iter().enumerate() {
            if on_path.is_marked(next as usize) {
                continue;
            }
            if next == t_local {
                // Emit without frame churn: a t-child terminates its path,
                // so pushing/re-activating a frame for it would be pure
                // overhead (the recursive form likewise emits and returns
                // straight into the parent's scan). t leads every row it
                // appears in (key distance 0), so emission order is
                // unchanged.
                counters.partial_results += 1;
                counters.results += 1;
                probe_tick = probe_tick.wrapping_add(1);
                path.clear();
                path.extend(stack.iter().map(|f| index.global(f.vertex)));
                path.push(index.global(t_local));
                if sink.emit(path) == SearchControl::Stop {
                    return SearchControl::Stop;
                }
                stack.last_mut().expect("stack is non-empty").found = true;
                continue;
            }
            // Hint the child's neighbor row into cache: the `starts`
            // indirection defeats the hardware prefetcher, and the row is
            // scanned on the very next loop iteration.
            index.prefetch_i_t(next);
            // Suspend this frame and descend.
            let top_mut = stack.last_mut().expect("stack is non-empty");
            top_mut.cursor = (start_cursor + offset + 1) as u32;
            counters.partial_results += 1;
            on_path.mark(next as usize);
            // Resolve the child's row now; it also feeds the edge counter.
            let child_budget = k - stack.len() as u32 - 1;
            let (nbr_start, nbr_len) = index.i_t_row_range(next, child_budget);
            counters.edges_accessed += u64::from(nbr_len);
            stack.push(Frame {
                vertex: next,
                cursor: 0,
                nbr_start,
                nbr_len,
                found: false,
            });
            advanced = true;
            break;
        }
        if !advanced {
            if stack.len() == floor {
                // Never backtrack past the seed prefix.
                break;
            }
            // Exhausted: pop and account. The root (s) is not a generated
            // partial result, so it is never counted as invalid.
            let frame = stack.pop().expect("stack is non-empty");
            on_path.unmark(frame.vertex as usize);
            if let Some(parent) = stack.last_mut() {
                if !frame.found {
                    counters.invalid_partial_results += 1;
                }
                parent.found |= frame.found;
            }
        }
    }
    SearchControl::Continue
}

#[cfg(test)]
mod tests {
    use super::super::dfs::idx_dfs;
    use super::*;
    use crate::index::test_support::*;
    use crate::query::Query;
    use crate::request::ControlledSink;
    use crate::sink::{CollectingSink, CountingSink};
    use pathenum_graph::generators::{complete_digraph, erdos_renyi};

    fn both(index: &Index) -> (Vec<Vec<VertexId>>, Counters, Vec<Vec<VertexId>>, Counters) {
        let mut recursive_sink = CollectingSink::default();
        let mut recursive_counters = Counters::default();
        idx_dfs(index, &mut recursive_sink, &mut recursive_counters);
        let mut iterative_sink = CollectingSink::default();
        let mut iterative_counters = Counters::default();
        idx_dfs_iterative(index, &mut iterative_sink, &mut iterative_counters);
        (
            recursive_sink.sorted_paths(),
            recursive_counters,
            iterative_sink.sorted_paths(),
            iterative_counters,
        )
    }

    #[test]
    fn matches_recursive_on_figure1() {
        for k in 2..=6u32 {
            let g = figure1_graph();
            let index = Index::build(&g, Query::new(S, T, k).unwrap());
            let (r_paths, r_counters, i_paths, i_counters) = both(&index);
            assert_eq!(r_paths, i_paths, "k={k}");
            assert_eq!(r_counters, i_counters, "k={k}");
        }
    }

    #[test]
    fn matches_recursive_on_random_graphs() {
        for seed in 0..6u64 {
            let g = erdos_renyi(30, 160, seed);
            let index = Index::build(&g, Query::new(0, 1, 5).unwrap());
            let (r_paths, r_counters, i_paths, i_counters) = both(&index);
            assert_eq!(r_paths, i_paths, "seed={seed}");
            assert_eq!(r_counters, i_counters, "seed={seed}");
        }
    }

    #[test]
    fn matches_recursive_on_dense_graphs() {
        let g = complete_digraph(8);
        let index = Index::build(&g, Query::new(0, 7, 4).unwrap());
        let (r_paths, _, i_paths, _) = both(&index);
        assert_eq!(r_paths, i_paths);
    }

    #[test]
    fn early_stop_works() {
        let g = complete_digraph(8);
        let index = Index::build(&g, Query::new(0, 7, 4).unwrap());
        let mut sink = ControlledSink::new(CountingSink::default(), Some(3), None, None);
        let mut counters = Counters::default();
        let control = idx_dfs_iterative(&index, &mut sink, &mut counters);
        assert_eq!(control, SearchControl::Stop);
        assert_eq!(sink.emitted(), 3);
    }

    #[test]
    fn seeded_first_hop_partitions_concatenate_to_the_full_emission_order() {
        // The defining property behind intra-query parallel DFS: running
        // one seeded search per admissible first hop of s and
        // concatenating the outputs in neighbor order reproduces the
        // sequential emission order exactly.
        for (g, k) in [
            (figure1_graph(), 4),
            (figure1_graph(), 6),
            (erdos_renyi(30, 160, 3), 5),
            (complete_digraph(7), 4),
        ] {
            let index = Index::build(&g, Query::new(0, 1, k).unwrap());
            let mut full_sink = CollectingSink::default();
            let mut counters = Counters::default();
            idx_dfs_iterative(&index, &mut full_sink, &mut counters);

            let mut merged = CollectingSink::default();
            let mut scratch = SeededScratch::default();
            if let Some(s) = index.s_local() {
                for &first in index.i_t(s, k - 1) {
                    let mut task_counters = Counters::default();
                    idx_dfs_seeded(
                        &index,
                        &[s, first],
                        &mut scratch,
                        &mut merged,
                        &mut task_counters,
                    );
                }
            }
            assert_eq!(full_sink.paths, merged.paths, "k={k}");
        }
    }

    #[test]
    fn seeded_complete_prefix_emits_exactly_itself() {
        let g = figure1_graph();
        let index = Index::build(&g, Query::new(S, T, 4).unwrap());
        let s = index.s_local().unwrap();
        let t = index.t_local().unwrap();
        // Find the local id of v0, the direct predecessor of t.
        let v0 = (0..index.num_vertices() as LocalId)
            .find(|&l| index.global(l) == V[0])
            .unwrap();
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        let mut scratch = SeededScratch::default();
        idx_dfs_seeded(&index, &[s, v0, t], &mut scratch, &mut sink, &mut counters);
        assert_eq!(sink.paths, vec![vec![S, V[0], T]]);
        assert_eq!(counters.results, 1);
    }

    #[test]
    fn empty_index_is_a_no_op() {
        let g = figure1_graph();
        let index = Index::build(&g, Query::new(T, S, 4).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        idx_dfs_iterative(&index, &mut sink, &mut counters);
        assert!(sink.paths.is_empty());
    }
}

//! Index-based enumeration strategies.
//!
//! * [`dfs`] — Algorithm 4: depth-first search on the index, extending a
//!   single partial result one vertex at a time (equivalent to the
//!   left-deep join order `R_1, ..., R_k`).
//! * [`join`] — Algorithm 6: cut the chain query at position `i*`, evaluate
//!   both sides by DFS on the index, and hash-join the intermediate
//!   relations.
//!
//! Both kernels have intra-query parallel counterparts in
//! [`crate::parallel`], which split the search space into independent
//! partitions (prefix subtrees for DFS, join-key ranges for the join)
//! and merge deterministically.
//!
//! The production kernels ([`idx_dfs_iterative`], [`idx_join`]) draw
//! working memory from a per-thread arena (`scratch`) and are pinned
//! byte-identical to retained naive oracles ([`dfs::idx_dfs`],
//! [`join::idx_join_reference`]) by the `kernel_agreement` differential
//! suite and `reproduce perf`. The low-level set kernels behind the join
//! live in [`kernels`].

pub mod dfs;
pub mod dfs_iterative;
pub mod join;
pub mod kernels;
pub(crate) mod scratch;

/// How many search-tree nodes pass between [`crate::sink::PathSink::probe`]
/// calls in the enumeration kernels (power of two; the first node always
/// probes). Keeps the virtual probe call off the per-node hot path while
/// bounding how long a deadline/cancellation rule can go unobserved.
pub(crate) const PROBE_STRIDE: u32 = 64;

pub use dfs::idx_dfs;
pub use dfs_iterative::idx_dfs_iterative;
pub use join::{idx_join, idx_join_reference};
pub use scratch::thread_scratch_heap_bytes;

//! Per-thread enumeration arena.
//!
//! Every public enumeration kernel ([`idx_dfs_iterative`] and
//! [`idx_join`]) draws its working memory — DFS stacks, tuple relations,
//! bucket directories, epoch maps, bitset rows, path buffers — from one
//! thread-local [`EnumScratch`]. The buffers are epoch-reset or cleared
//! at kernel entry but never shrunk, so after a warm-up query a serving
//! thread runs the enumeration core with **zero steady-state heap
//! allocation**; [`thread_scratch_heap_bytes`] exposes the arena size so
//! tests (and `reproduce perf`) can assert exactly that.
//!
//! The intra-query parallel executor ([`crate::parallel`]) deliberately
//! does *not* use this arena: its workers own explicit per-worker scratch
//! so a pool thread's arena growth stays attributable.
//!
//! [`idx_dfs_iterative`]: crate::enumerate::idx_dfs_iterative
//! [`idx_join`]: crate::enumerate::idx_join

use std::cell::RefCell;

use super::dfs_iterative::SeededScratch;
use super::join::JoinScratch;

/// The union of every kernel's reusable buffers.
#[derive(Debug, Default)]
pub(crate) struct EnumScratch {
    pub(crate) dfs: SeededScratch,
    pub(crate) join: JoinScratch,
}

impl EnumScratch {
    fn heap_bytes(&self) -> usize {
        self.dfs.heap_bytes() + self.join.heap_bytes()
    }
}

thread_local! {
    static ENUM_SCRATCH: RefCell<EnumScratch> = RefCell::new(EnumScratch::default());
}

/// Runs `f` with the calling thread's enumeration arena.
///
/// Re-entrancy (a sink that calls back into an enumeration kernel while
/// one is already borrowing the arena) falls back to a fresh, short-lived
/// scratch rather than panicking — correctness never depends on reuse.
pub(crate) fn with_enum_scratch<R>(f: impl FnOnce(&mut EnumScratch) -> R) -> R {
    ENUM_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut EnumScratch::default()),
    })
}

/// Approximate heap footprint, in bytes, of the calling thread's
/// enumeration arena. A warmed thread re-running the same query must
/// report the same value before and after — the regression test for
/// "warm serving allocates nothing in the enumeration core".
pub fn thread_scratch_heap_bytes() -> usize {
    ENUM_SCRATCH.with(|cell| {
        cell.try_borrow()
            .map(|scratch| scratch.heap_bytes())
            .unwrap_or(0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_scratch_on_reentrancy() {
        let outer = with_enum_scratch(|_outer| {
            // Simulate a sink calling back into a kernel: the nested
            // borrow must not panic and must still run the closure.
            with_enum_scratch(|_inner| 7)
        });
        assert_eq!(outer, 7);
    }

    #[test]
    fn heap_bytes_is_observable_outside_a_borrow() {
        let before = thread_scratch_heap_bytes();
        // Not borrowed here, so the probe must succeed (not return the
        // 0 fallback) and be stable.
        assert_eq!(before, thread_scratch_heap_bytes());
    }
}

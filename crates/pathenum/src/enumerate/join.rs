//! IDX-JOIN: two-sided evaluation with a hash join (Algorithm 6).
//!
//! Two implementations live here, pinned byte-identical to each other
//! (same emission order, same [`Counters`]) by this module's tests and
//! the `kernel_agreement` differential suite:
//!
//! * [`idx_join_reference`] — the retained naive oracle: per-call
//!   `FxHashMap` buckets, a materialized `combined` tuple per joined
//!   pair, and the `O(len^2)` `valid_path_len` scan on every one.
//! * [`idx_join`] — the production kernel. Suffix tuples are grouped
//!   into *contiguous row ranges* of `R_b` (they are enumerated
//!   key-by-key, so no hash map is needed — an epoch-stamped key→range
//!   map suffices), validity is decomposed into per-prefix and
//!   per-suffix metadata computed once, and the remaining cross
//!   (prefix ∩ suffix-interior) disjointness check runs word-parallel
//!   over [`BlockBits`] rows when the index partition is dense
//!   ([`DENSE_UNIVERSE`]) or against epoch-stamp marks when sparse. All
//!   working memory comes from a reusable `JoinScratch` arena, so a
//!   warm query allocates nothing.

use pathenum_graph::epoch::{EpochMap, EpochStamps};
use pathenum_graph::hashing::FxHashMap;
use pathenum_graph::VertexId;

use super::kernels::{BlockBits, DENSE_UNIVERSE};
use crate::index::{Index, LocalId};
use crate::sink::{PathSink, SearchControl};
use crate::stats::Counters;

/// Evaluates the query by cutting the chain join at position `cut` (`i*`):
///
/// 1. enumerate `R_a`, the tuples of `Q[0 : i*]` (walk prefixes of `i*+1`
///    vertices starting at `s`), by DFS on the index;
/// 2. enumerate `R_b`, the tuples of `Q[i* : k]` (walk suffixes of
///    `k-i*+1` vertices ending at `t`), by DFS from each join-key vertex;
/// 3. join on the shared position and emit every joined tuple that is a
///    valid simple path once its `t`-padding is stripped.
///
/// Walks that reach `t` early are padded with the `(t, t)` self-loop the
/// index provides, exactly as in the join model of Section 3.1.
///
/// Uses the calling thread's enumeration arena (see
/// [`crate::enumerate::thread_scratch_heap_bytes`]); emission order and
/// counters are identical to [`idx_join_reference`].
///
/// `cut` must satisfy `0 < cut < k`.
pub fn idx_join(
    index: &Index,
    cut: u32,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) -> SearchControl {
    super::scratch::with_enum_scratch(|scratch| {
        idx_join_with_scratch(index, cut, sink, counters, &mut scratch.join)
    })
}

/// Reusable working memory for [`idx_join`]: both tuple relations, the
/// key/bucket directory, per-suffix validity metadata, and the
/// disjointness structures for both density regimes. Held per thread (see
/// [`crate::enumerate::scratch`]) so warm serving does zero steady-state
/// allocation in the join.
#[derive(Debug)]
pub(crate) struct JoinScratch {
    r_a: TupleBuffer,
    r_b: TupleBuffer,
    /// DFS stack buffer for [`enumerate_side`].
    side_stack: Vec<LocalId>,
    /// Distinct join keys in first-appearance order.
    keys: Vec<LocalId>,
    key_seen: EpochStamps,
    /// Join key -> position in `buckets`.
    slot_of: EpochMap,
    /// Per key: the contiguous `[start, end)` row range of `R_b`.
    buckets: Vec<(u32, u32)>,
    /// Per `R_b` row: position of the first `t` (`u32::MAX` if none).
    suffix_first_t: Vec<u32>,
    /// Per `R_b` row: whether the interior vertices repeat among
    /// themselves (such a row can never join validly).
    suffix_selfdup: Vec<bool>,
    /// Dense mode: per-row interior bitsets, `words_per_row` words each.
    suffix_words: Vec<u64>,
    /// Dense mode: the current prefix's vertex set as a bitset.
    prefix_bits: BlockBits,
    /// Sparse mode: the current prefix's vertex set as epoch marks.
    on_prefix: EpochStamps,
    /// Global-id emission buffer.
    path: Vec<VertexId>,
}

impl Default for JoinScratch {
    fn default() -> Self {
        // alloc: scratch — empty arenas built once per worker; every hot
        // loop reuses them via clear()/reset() without reallocating.
        JoinScratch {
            r_a: TupleBuffer::new(0),
            r_b: TupleBuffer::new(0),
            side_stack: Vec::new(),
            keys: Vec::new(),
            key_seen: EpochStamps::default(),
            slot_of: EpochMap::new(u32::MAX),
            buckets: Vec::new(),
            suffix_first_t: Vec::new(),
            suffix_selfdup: Vec::new(),
            suffix_words: Vec::new(),
            prefix_bits: BlockBits::default(),
            on_prefix: EpochStamps::default(),
            path: Vec::new(),
        }
    }
}

impl JoinScratch {
    /// Approximate heap footprint of the arena in bytes.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.r_a.heap_bytes()
            + self.r_b.heap_bytes()
            + (self.side_stack.capacity() + self.keys.capacity()) * std::mem::size_of::<LocalId>()
            + self.key_seen.heap_bytes()
            + self.slot_of.heap_bytes()
            + self.buckets.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.suffix_first_t.capacity() * std::mem::size_of::<u32>()
            + self.suffix_selfdup.capacity()
            + self.suffix_words.capacity() * std::mem::size_of::<u64>()
            + self.prefix_bits.heap_bytes()
            + self.on_prefix.heap_bytes()
            + self.path.capacity() * std::mem::size_of::<VertexId>()
    }
}

/// Whether `tuple` repeats a vertex (quadratic scan; tuples are at most
/// `k+1` long).
fn has_internal_dup(tuple: &[LocalId]) -> bool {
    for i in 0..tuple.len() {
        for j in (i + 1)..tuple.len() {
            if tuple[i] == tuple[j] {
                return true;
            }
        }
    }
    false
}

/// [`idx_join`] against caller-owned scratch. See the
/// [module docs](self) for the decomposition.
pub(crate) fn idx_join_with_scratch(
    index: &Index,
    cut: u32,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
    scratch: &mut JoinScratch,
) -> SearchControl {
    let k = index.k();
    assert!(cut > 0 && cut < k, "cut position must satisfy 0 < cut < k");
    let (Some(s_local), Some(t_local)) = (index.s_local(), index.t_local()) else {
        return SearchControl::Continue;
    };
    let n_local = index.num_vertices();
    let prefix_width = cut as usize + 1;
    let suffix_width = (k - cut) as usize + 1;
    let JoinScratch {
        r_a,
        r_b,
        side_stack,
        keys,
        key_seen,
        slot_of,
        buckets,
        suffix_first_t,
        suffix_selfdup,
        suffix_words,
        prefix_bits,
        on_prefix,
        path,
    } = scratch;

    // Step 1: R_a = Q[0 : cut], walks from s with `cut` edges.
    let mut side_tick = 0u32;
    r_a.reset(prefix_width);
    if enumerate_side(
        index,
        s_local,
        0,
        cut,
        side_stack,
        r_a,
        sink,
        &mut side_tick,
        counters,
    ) == SearchControl::Stop
    {
        return SearchControl::Stop;
    }

    // Step 2: distinct join keys (first-appearance order), then
    // R_b = Q[cut : k] enumerated key by key — which makes every key's
    // rows a *contiguous range* of R_b, so the "hash join" directory is
    // just (start, end) pairs behind an epoch-stamped key→slot map.
    key_seen.reset(n_local);
    keys.clear();
    for tuple in r_a.iter() {
        let key = *tuple.last().expect("tuples are non-empty");
        if key_seen.mark(key as usize) {
            keys.push(key);
        }
    }
    let dense = n_local <= DENSE_UNIVERSE;
    let words_per_row = if dense {
        BlockBits::words_for(n_local)
    } else {
        0
    };
    r_b.reset(suffix_width);
    slot_of.reset(n_local);
    buckets.clear();
    suffix_first_t.clear();
    suffix_selfdup.clear();
    suffix_words.clear();
    for &key in keys.iter() {
        let start = r_b.len() as u32;
        if enumerate_side(
            index,
            key,
            cut,
            k,
            side_stack,
            r_b,
            sink,
            &mut side_tick,
            counters,
        ) == SearchControl::Stop
        {
            return SearchControl::Stop;
        }
        let end = r_b.len() as u32;
        slot_of.set(key as usize, buckets.len() as u32);
        buckets.push((start, end));
        // Per-suffix validity metadata, computed once per row instead of
        // once per joined combination.
        for row in start..end {
            let suffix = r_b.get(row as usize);
            match suffix.iter().position(|&v| v == t_local) {
                None => {
                    suffix_first_t.push(u32::MAX);
                    suffix_selfdup.push(false);
                }
                Some(ft) => {
                    suffix_first_t.push(ft as u32);
                    suffix_selfdup.push(has_internal_dup(&suffix[1..=ft]));
                }
            }
            if dense {
                let base = suffix_words.len();
                suffix_words.resize(base + words_per_row, 0);
                let ft = *suffix_first_t.last().expect("just pushed");
                // Interior vertices only: S[0] is the key (already in the
                // prefix) and S[ft] is t (absent from any prefix this row
                // can validly join). ft == 0 (an all-t row) has none.
                if ft != u32::MAX && ft > 0 {
                    for &v in &suffix[1..ft as usize] {
                        suffix_words[base + v as usize / 64] |= 1u64 << (v % 64);
                    }
                }
            }
        }
    }

    counters.peak_materialized_vertices = counters
        .peak_materialized_vertices
        .max((r_a.flat_len() + r_b.flat_len()) as u64);

    // Step 3: probe. Emission order is (prefix order) × (row order
    // within the key's range) — identical to the reference's hash-bucket
    // row lists, which were filled in R_b row order.
    let mut probe_tick = 0u32;
    for prefix in r_a.iter() {
        let key = *prefix.last().expect("tuples are non-empty");
        let slot = slot_of.get(key as usize);
        debug_assert_ne!(slot, u32::MAX, "every prefix key was enumerated");
        let (start, end) = buckets[slot as usize];
        if start == end {
            // No suffix ever materialized for this key: the reference's
            // "missing bucket" case.
            counters.invalid_partial_results += 1;
            continue;
        }
        // Per-prefix validity metadata. A prefix that reached t early is
        // all t-padding after the first t (index construction), so its
        // key is t and its single all-t suffix contributes nothing.
        let p_first_t = prefix.iter().position(|&v| v == t_local);
        let p_dup = match p_first_t {
            Some(ft) => has_internal_dup(&prefix[..=ft]),
            None => has_internal_dup(prefix),
        };
        if p_first_t.is_none() && !p_dup {
            if dense {
                prefix_bits.reset(n_local);
                for &v in prefix {
                    prefix_bits.insert(v);
                }
            } else {
                on_prefix.reset(n_local);
                for &v in prefix {
                    on_prefix.mark(v as usize);
                }
            }
        }
        for row in start..end {
            // Probe per joined combination: a filter sink can reject
            // every tuple, in which case `emit` never runs and this is
            // the only point where stopping rules are observed.
            if probe_tick & (super::PROBE_STRIDE - 1) == 0 && sink.probe() == SearchControl::Stop {
                return SearchControl::Stop;
            }
            probe_tick = probe_tick.wrapping_add(1);
            // (prefix length, suffix interior length) of the valid path,
            // or None.
            let valid = match p_first_t {
                Some(pft) => {
                    debug_assert_eq!(key, t_local, "t-padding forces the key to t");
                    if p_dup {
                        None
                    } else {
                        Some((pft + 1, 0usize))
                    }
                }
                None => {
                    let ft = suffix_first_t[row as usize];
                    if ft == u32::MAX || p_dup || suffix_selfdup[row as usize] {
                        None
                    } else {
                        let clash = if dense {
                            let base = row as usize * words_per_row;
                            prefix_bits.intersects(&suffix_words[base..base + words_per_row])
                        } else {
                            let suffix = r_b.get(row as usize);
                            suffix[1..ft as usize]
                                .iter()
                                .any(|&v| on_prefix.is_marked(v as usize))
                        };
                        if clash {
                            None
                        } else {
                            Some((prefix_width, ft as usize))
                        }
                    }
                }
            };
            if let Some((plen, ft)) = valid {
                counters.results += 1;
                path.clear();
                path.extend(prefix[..plen].iter().map(|&l| index.global(l)));
                if p_first_t.is_none() {
                    let suffix = r_b.get(row as usize);
                    path.extend(suffix[1..=ft].iter().map(|&l| index.global(l)));
                }
                if sink.emit(path) == SearchControl::Stop {
                    return SearchControl::Stop;
                }
            } else {
                counters.invalid_partial_results += 1;
            }
        }
    }
    SearchControl::Continue
}

/// The retained naive IDX-JOIN oracle: hash-map buckets, per-combination
/// tuple materialization, and the quadratic `valid_path_len` check.
/// Allocates on every call. Kept (and exercised by `reproduce perf` and
/// the differential suite) as the semantic pin for [`idx_join`].
pub fn idx_join_reference(
    index: &Index,
    cut: u32,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) -> SearchControl {
    let k = index.k();
    assert!(cut > 0 && cut < k, "cut position must satisfy 0 < cut < k");
    let (Some(s_local), Some(t_local)) = (index.s_local(), index.t_local()) else {
        return SearchControl::Continue;
    };

    let prefix_width = cut as usize + 1;
    let suffix_width = (k - cut) as usize + 1;

    // Step 1: R_a = Q[0 : cut], walks from s with `cut` edges.
    // alloc: setup — per-query scratch built before the enumeration loop
    // (this reference join is the oracle; the planned path uses
    // JoinScratch arenas).
    let mut side_tick = 0u32;
    let mut side_stack: Vec<LocalId> = Vec::new();
    let mut r_a = TupleBuffer::new(prefix_width);
    if enumerate_side(
        index,
        s_local,
        0,
        cut,
        &mut side_stack,
        &mut r_a,
        sink,
        &mut side_tick,
        counters,
    ) == SearchControl::Stop
    {
        return SearchControl::Stop;
    }

    // Step 2: distinct join keys, then R_b = Q[cut : k] from each key.
    // alloc: setup — per-query dedup table and key list, sized once
    // before the join loop runs.
    let mut seen = vec![false; index.num_vertices()];
    let mut keys: Vec<LocalId> = Vec::new();
    for tuple in r_a.iter() {
        let key = *tuple.last().expect("tuples are non-empty");
        if !seen[key as usize] {
            seen[key as usize] = true;
            keys.push(key);
        }
    }
    let mut r_b = TupleBuffer::new(suffix_width);
    for &key in &keys {
        if enumerate_side(
            index,
            key,
            cut,
            k,
            &mut side_stack,
            &mut r_b,
            sink,
            &mut side_tick,
            counters,
        ) == SearchControl::Stop
        {
            return SearchControl::Stop;
        }
    }

    counters.peak_materialized_vertices = counters
        .peak_materialized_vertices
        .max((r_a.flat_len() + r_b.flat_len()) as u64);

    // Step 3: hash join on the first suffix vertex.
    let mut buckets: FxHashMap<LocalId, Vec<u32>> = FxHashMap::default();
    for (i, tuple) in r_b.iter().enumerate() {
        buckets.entry(tuple[0]).or_default().push(i as u32);
    }

    let mut combined: Vec<LocalId> = Vec::with_capacity(k as usize + 1);
    let mut scratch: Vec<VertexId> = Vec::with_capacity(k as usize + 1);
    let mut probe_tick = 0u32;
    for prefix in r_a.iter() {
        let key = *prefix.last().expect("tuples are non-empty");
        let Some(bucket) = buckets.get(&key) else {
            counters.invalid_partial_results += 1;
            continue;
        };
        for &suffix_idx in bucket {
            // Probe per joined combination: a filter sink can reject
            // every tuple, in which case `emit` never runs and this is
            // the only point where stopping rules are observed.
            if probe_tick & (super::PROBE_STRIDE - 1) == 0 && sink.probe() == SearchControl::Stop {
                return SearchControl::Stop;
            }
            probe_tick = probe_tick.wrapping_add(1);
            let suffix = r_b.get(suffix_idx as usize);
            combined.clear();
            combined.extend_from_slice(prefix);
            combined.extend_from_slice(&suffix[1..]);
            if let Some(len) = valid_path_len(&combined, t_local) {
                counters.results += 1;
                scratch.clear();
                scratch.extend(combined[..len].iter().map(|&l| index.global(l)));
                if sink.emit(&scratch) == SearchControl::Stop {
                    return SearchControl::Stop;
                }
            } else {
                counters.invalid_partial_results += 1;
            }
        }
    }
    SearchControl::Continue
}

/// Flat storage for fixed-width tuples of local ids.
///
/// Crate-visible so the intra-query parallel join ([`crate::parallel`])
/// can materialize its per-partition suffix relations with the same
/// representation (and reuse one buffer per worker across join keys).
#[derive(Debug)]
pub(crate) struct TupleBuffer {
    width: usize,
    storage: Vec<LocalId>,
}

impl TupleBuffer {
    pub(crate) fn new(width: usize) -> Self {
        // alloc: scratch — an empty arena; `reset` keeps the allocation
        // across join keys, so growth amortizes to zero in steady state.
        TupleBuffer {
            width,
            storage: Vec::new(),
        }
    }

    /// Drops every tuple and adopts a (possibly different) tuple width,
    /// keeping the allocation: the arena form of `new`.
    pub(crate) fn reset(&mut self, width: usize) {
        self.width = width;
        self.storage.clear();
    }

    pub(crate) fn push(&mut self, tuple: &[LocalId]) {
        debug_assert_eq!(tuple.len(), self.width);
        self.storage.extend_from_slice(tuple);
    }

    pub(crate) fn len(&self) -> usize {
        self.storage.len() / self.width
    }

    /// Total vertices stored (the materialized-memory statistic).
    pub(crate) fn flat_len(&self) -> usize {
        self.storage.len()
    }

    /// Drops every tuple, keeping the allocation.
    pub(crate) fn clear(&mut self) {
        self.storage.clear();
    }

    pub(crate) fn get(&self, i: usize) -> &[LocalId] {
        &self.storage[i * self.width..(i + 1) * self.width]
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &[LocalId]> {
        self.storage.chunks_exact(self.width)
    }

    /// Approximate heap footprint in bytes.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.storage.capacity() * std::mem::size_of::<LocalId>()
    }
}

/// DFS enumerating the tuples of `Q[from : to]` that start at `root`
/// (the `Search` procedure of Algorithm 6). The sink is consulted only
/// through [`PathSink::probe`] — materialization emits nothing, but
/// deadline/cancellation rules must still be able to interrupt it.
/// `partial` is the caller-owned stack buffer (cleared on entry).
#[allow(clippy::too_many_arguments)]
pub(crate) fn enumerate_side(
    index: &Index,
    root: LocalId,
    from: u32,
    to: u32,
    partial: &mut Vec<LocalId>,
    out: &mut TupleBuffer,
    sink: &mut dyn PathSink,
    probe_tick: &mut u32,
    counters: &mut Counters,
) -> SearchControl {
    let k = index.k();
    let target_len = (to - from) as usize + 1;
    partial.clear();
    partial.push(root);
    side_search(
        index, k, from, target_len, partial, out, sink, probe_tick, counters,
    )
}

#[allow(clippy::too_many_arguments)]
fn side_search(
    index: &Index,
    k: u32,
    from: u32,
    target_len: usize,
    partial: &mut Vec<LocalId>,
    out: &mut TupleBuffer,
    sink: &mut dyn PathSink,
    probe_tick: &mut u32,
    counters: &mut Counters,
) -> SearchControl {
    if *probe_tick & (super::PROBE_STRIDE - 1) == 0 && sink.probe() == SearchControl::Stop {
        return SearchControl::Stop;
    }
    *probe_tick = probe_tick.wrapping_add(1);
    if partial.len() == target_len {
        out.push(partial);
        return SearchControl::Continue;
    }
    let v = *partial.last().expect("partial is non-empty");
    // Remaining distance budget: the tuple occupies absolute positions
    // `from ..`, so a vertex placed at absolute position p must satisfy
    // v'.t <= k - p. Next position p = from + partial.len().
    let budget = k - from - partial.len() as u32;
    let neighbors = index.i_t(v, budget);
    counters.edges_accessed += neighbors.len() as u64;
    for &next in neighbors {
        partial.push(next);
        counters.partial_results += 1;
        let control = side_search(
            index, k, from, target_len, partial, out, sink, probe_tick, counters,
        );
        partial.pop();
        if control == SearchControl::Stop {
            return SearchControl::Stop;
        }
    }
    SearchControl::Continue
}

/// If `tuple` (a full-width joined walk) is a valid simple s-t path after
/// stripping `t`-padding, returns the path length in vertices; else `None`.
pub(crate) fn valid_path_len(tuple: &[LocalId], t_local: LocalId) -> Option<usize> {
    let first_t = tuple.iter().position(|&v| v == t_local)?;
    let len = first_t + 1;
    // By index construction everything after the first t is t; the real
    // walk is tuple[..len]. It is a path iff all vertices are distinct.
    debug_assert!(tuple[len..].iter().all(|&v| v == t_local));
    for i in 0..len {
        for j in (i + 1)..len {
            if tuple[i] == tuple[j] {
                return None;
            }
        }
    }
    Some(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::dfs::idx_dfs;
    use crate::index::test_support::*;
    use crate::query::Query;
    use crate::request::ControlledSink;
    use crate::sink::{CollectingSink, CountingSink};
    use pathenum_graph::generators::{complete_digraph, erdos_renyi, power_law, PowerLawConfig};

    fn join_paths(k: u32, cut: u32) -> Vec<Vec<VertexId>> {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, k).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        idx_join(&idx, cut, &mut sink, &mut counters);
        sink.sorted_paths()
    }

    fn dfs_paths(k: u32) -> Vec<Vec<VertexId>> {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, k).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        idx_dfs(&idx, &mut sink, &mut counters);
        sink.sorted_paths()
    }

    #[test]
    fn join_matches_dfs_for_every_cut() {
        for k in 2..=6u32 {
            let expected = dfs_paths(k);
            for cut in 1..k {
                assert_eq!(join_paths(k, cut), expected, "k={k} cut={cut}");
            }
        }
    }

    /// The production kernel against the retained oracle: same paths in
    /// the same order, same counters — across graphs dense enough to hit
    /// the bitset regime and sparse/large enough to hit the stamp regime,
    /// with one warm arena shared across every run.
    #[test]
    fn optimized_join_is_byte_identical_to_reference() {
        let graphs: Vec<(pathenum_graph::CsrGraph, u32, u32)> = vec![
            (figure1_graph(), 0, 1),
            (complete_digraph(8), 0, 7),
            (erdos_renyi(40, 240, 7), 0, 1),
            (erdos_renyi(400, 2400, 11), 0, 1),
            (power_law(PowerLawConfig::social(600, 6, 5)), 1, 9),
        ];
        let mut scratch = JoinScratch::default();
        for (g, s, t) in &graphs {
            for k in 3..=6u32 {
                for cut in 1..k {
                    let idx = Index::build(g, Query::new(*s, *t, k).unwrap());
                    let mut ref_sink = CollectingSink::default();
                    let mut ref_counters = Counters::default();
                    idx_join_reference(&idx, cut, &mut ref_sink, &mut ref_counters);
                    let mut opt_sink = CollectingSink::default();
                    let mut opt_counters = Counters::default();
                    idx_join_with_scratch(
                        &idx,
                        cut,
                        &mut opt_sink,
                        &mut opt_counters,
                        &mut scratch,
                    );
                    assert_eq!(ref_sink.paths, opt_sink.paths, "k={k} cut={cut}");
                    assert_eq!(ref_counters, opt_counters, "k={k} cut={cut}");
                }
            }
        }
    }

    #[test]
    fn padding_recovers_short_paths() {
        // k=4, cut=2: the 2-edge path (s, v0, t) must surface as the padded
        // tuple (s, v0, t, t, t).
        let paths = join_paths(4, 2);
        assert!(paths.contains(&vec![S, V[0], T]));
    }

    #[test]
    fn counters_record_materialization() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        idx_join(&idx, 2, &mut sink, &mut counters);
        assert!(counters.peak_materialized_vertices > 0);
        assert_eq!(counters.results, 5);
    }

    #[test]
    fn early_stop_propagates() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        let mut sink = ControlledSink::new(CountingSink::default(), Some(1), None, None);
        let mut counters = Counters::default();
        let control = idx_join(&idx, 2, &mut sink, &mut counters);
        assert_eq!(control, SearchControl::Stop);
        assert_eq!(sink.emitted(), 1);
    }

    #[test]
    #[should_panic(expected = "cut position")]
    fn rejects_degenerate_cut() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        idx_join(&idx, 0, &mut sink, &mut counters);
    }

    #[test]
    fn empty_index_is_a_no_op() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(T, S, 4).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        assert_eq!(
            idx_join(&idx, 2, &mut sink, &mut counters),
            SearchControl::Continue
        );
        assert!(sink.paths.is_empty());
    }

    #[test]
    fn tuple_buffer_roundtrip() {
        let mut buf = TupleBuffer::new(3);
        buf.push(&[1, 2, 3]);
        buf.push(&[4, 5, 6]);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.get(1), &[4, 5, 6]);
        assert_eq!(buf.iter().count(), 2);
        buf.reset(2);
        assert_eq!(buf.len(), 0);
        buf.push(&[7, 8]);
        assert_eq!(buf.get(0), &[7, 8]);
    }

    #[test]
    fn valid_path_len_rules() {
        // t = 9. Straight path.
        assert_eq!(valid_path_len(&[0, 1, 9], 9), Some(3));
        // Padded path.
        assert_eq!(valid_path_len(&[0, 1, 9, 9, 9], 9), Some(3));
        // Duplicate vertex before padding.
        assert_eq!(valid_path_len(&[0, 1, 0, 9], 9), None);
        // Never reaches t (cannot happen by construction, but be safe).
        assert_eq!(valid_path_len(&[0, 1, 2], 9), None);
    }
}

//! IDX-JOIN: two-sided evaluation with a hash join (Algorithm 6).

use pathenum_graph::hashing::FxHashMap;
use pathenum_graph::VertexId;

use crate::index::{Index, LocalId};
use crate::sink::{PathSink, SearchControl};
use crate::stats::Counters;

/// Evaluates the query by cutting the chain join at position `cut` (`i*`):
///
/// 1. enumerate `R_a`, the tuples of `Q[0 : i*]` (walk prefixes of `i*+1`
///    vertices starting at `s`), by DFS on the index;
/// 2. enumerate `R_b`, the tuples of `Q[i* : k]` (walk suffixes of
///    `k-i*+1` vertices ending at `t`), by DFS from each join-key vertex;
/// 3. hash-join on the shared position and emit every joined tuple that is
///    a valid simple path once its `t`-padding is stripped.
///
/// Walks that reach `t` early are padded with the `(t, t)` self-loop the
/// index provides, exactly as in the join model of Section 3.1.
///
/// `cut` must satisfy `0 < cut < k`.
pub fn idx_join(
    index: &Index,
    cut: u32,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) -> SearchControl {
    let k = index.k();
    assert!(cut > 0 && cut < k, "cut position must satisfy 0 < cut < k");
    let (Some(s_local), Some(t_local)) = (index.s_local(), index.t_local()) else {
        return SearchControl::Continue;
    };

    let prefix_width = cut as usize + 1;
    let suffix_width = (k - cut) as usize + 1;

    // Step 1: R_a = Q[0 : cut], walks from s with `cut` edges.
    let mut side_tick = 0u32;
    let mut r_a = TupleBuffer::new(prefix_width);
    if enumerate_side(
        index,
        s_local,
        0,
        cut,
        &mut r_a,
        sink,
        &mut side_tick,
        counters,
    ) == SearchControl::Stop
    {
        return SearchControl::Stop;
    }

    // Step 2: distinct join keys, then R_b = Q[cut : k] from each key.
    let mut seen = vec![false; index.num_vertices()];
    let mut keys: Vec<LocalId> = Vec::new();
    for tuple in r_a.iter() {
        let key = *tuple.last().expect("tuples are non-empty");
        if !seen[key as usize] {
            seen[key as usize] = true;
            keys.push(key);
        }
    }
    let mut r_b = TupleBuffer::new(suffix_width);
    for &key in &keys {
        if enumerate_side(index, key, cut, k, &mut r_b, sink, &mut side_tick, counters)
            == SearchControl::Stop
        {
            return SearchControl::Stop;
        }
    }

    counters.peak_materialized_vertices = counters
        .peak_materialized_vertices
        .max((r_a.storage.len() + r_b.storage.len()) as u64);

    // Step 3: hash join on the first suffix vertex.
    let mut buckets: FxHashMap<LocalId, Vec<u32>> = FxHashMap::default();
    for (i, tuple) in r_b.iter().enumerate() {
        buckets.entry(tuple[0]).or_default().push(i as u32);
    }

    let mut combined: Vec<LocalId> = Vec::with_capacity(k as usize + 1);
    let mut scratch: Vec<VertexId> = Vec::with_capacity(k as usize + 1);
    let mut probe_tick = 0u32;
    for prefix in r_a.iter() {
        let key = *prefix.last().expect("tuples are non-empty");
        let Some(bucket) = buckets.get(&key) else {
            counters.invalid_partial_results += 1;
            continue;
        };
        for &suffix_idx in bucket {
            // Probe per joined combination: a filter sink can reject
            // every tuple, in which case `emit` never runs and this is
            // the only point where stopping rules are observed.
            if probe_tick & (super::PROBE_STRIDE - 1) == 0 && sink.probe() == SearchControl::Stop {
                return SearchControl::Stop;
            }
            probe_tick = probe_tick.wrapping_add(1);
            let suffix = r_b.get(suffix_idx as usize);
            combined.clear();
            combined.extend_from_slice(prefix);
            combined.extend_from_slice(&suffix[1..]);
            if let Some(len) = valid_path_len(&combined, t_local) {
                counters.results += 1;
                scratch.clear();
                scratch.extend(combined[..len].iter().map(|&l| index.global(l)));
                if sink.emit(&scratch) == SearchControl::Stop {
                    return SearchControl::Stop;
                }
            } else {
                counters.invalid_partial_results += 1;
            }
        }
    }
    SearchControl::Continue
}

/// Flat storage for fixed-width tuples of local ids.
///
/// Crate-visible so the intra-query parallel join ([`crate::parallel`])
/// can materialize its per-partition suffix relations with the same
/// representation (and reuse one buffer per worker across join keys).
pub(crate) struct TupleBuffer {
    width: usize,
    storage: Vec<LocalId>,
}

impl TupleBuffer {
    pub(crate) fn new(width: usize) -> Self {
        TupleBuffer {
            width,
            storage: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, tuple: &[LocalId]) {
        debug_assert_eq!(tuple.len(), self.width);
        self.storage.extend_from_slice(tuple);
    }

    pub(crate) fn len(&self) -> usize {
        self.storage.len() / self.width
    }

    /// Total vertices stored (the materialized-memory statistic).
    pub(crate) fn flat_len(&self) -> usize {
        self.storage.len()
    }

    /// Drops every tuple, keeping the allocation.
    pub(crate) fn clear(&mut self) {
        self.storage.clear();
    }

    pub(crate) fn get(&self, i: usize) -> &[LocalId] {
        &self.storage[i * self.width..(i + 1) * self.width]
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &[LocalId]> {
        self.storage.chunks_exact(self.width)
    }
}

/// DFS enumerating the tuples of `Q[from : to]` that start at `root`
/// (the `Search` procedure of Algorithm 6). The sink is consulted only
/// through [`PathSink::probe`] — materialization emits nothing, but
/// deadline/cancellation rules must still be able to interrupt it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn enumerate_side(
    index: &Index,
    root: LocalId,
    from: u32,
    to: u32,
    out: &mut TupleBuffer,
    sink: &mut dyn PathSink,
    probe_tick: &mut u32,
    counters: &mut Counters,
) -> SearchControl {
    let k = index.k();
    let target_len = (to - from) as usize + 1;
    let mut partial: Vec<LocalId> = Vec::with_capacity(target_len);
    partial.push(root);
    side_search(
        index,
        k,
        from,
        target_len,
        &mut partial,
        out,
        sink,
        probe_tick,
        counters,
    )
}

#[allow(clippy::too_many_arguments)]
fn side_search(
    index: &Index,
    k: u32,
    from: u32,
    target_len: usize,
    partial: &mut Vec<LocalId>,
    out: &mut TupleBuffer,
    sink: &mut dyn PathSink,
    probe_tick: &mut u32,
    counters: &mut Counters,
) -> SearchControl {
    if *probe_tick & (super::PROBE_STRIDE - 1) == 0 && sink.probe() == SearchControl::Stop {
        return SearchControl::Stop;
    }
    *probe_tick = probe_tick.wrapping_add(1);
    if partial.len() == target_len {
        out.push(partial);
        return SearchControl::Continue;
    }
    let v = *partial.last().expect("partial is non-empty");
    // Remaining distance budget: the tuple occupies absolute positions
    // `from ..`, so a vertex placed at absolute position p must satisfy
    // v'.t <= k - p. Next position p = from + partial.len().
    let budget = k - from - partial.len() as u32;
    let neighbors = index.i_t(v, budget);
    counters.edges_accessed += neighbors.len() as u64;
    for &next in neighbors {
        partial.push(next);
        counters.partial_results += 1;
        let control = side_search(
            index, k, from, target_len, partial, out, sink, probe_tick, counters,
        );
        partial.pop();
        if control == SearchControl::Stop {
            return SearchControl::Stop;
        }
    }
    SearchControl::Continue
}

/// If `tuple` (a full-width joined walk) is a valid simple s-t path after
/// stripping `t`-padding, returns the path length in vertices; else `None`.
pub(crate) fn valid_path_len(tuple: &[LocalId], t_local: LocalId) -> Option<usize> {
    let first_t = tuple.iter().position(|&v| v == t_local)?;
    let len = first_t + 1;
    // By index construction everything after the first t is t; the real
    // walk is tuple[..len]. It is a path iff all vertices are distinct.
    debug_assert!(tuple[len..].iter().all(|&v| v == t_local));
    for i in 0..len {
        for j in (i + 1)..len {
            if tuple[i] == tuple[j] {
                return None;
            }
        }
    }
    Some(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::dfs::idx_dfs;
    use crate::index::test_support::*;
    use crate::query::Query;
    use crate::request::ControlledSink;
    use crate::sink::{CollectingSink, CountingSink};

    fn join_paths(k: u32, cut: u32) -> Vec<Vec<VertexId>> {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, k).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        idx_join(&idx, cut, &mut sink, &mut counters);
        sink.sorted_paths()
    }

    fn dfs_paths(k: u32) -> Vec<Vec<VertexId>> {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, k).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        idx_dfs(&idx, &mut sink, &mut counters);
        sink.sorted_paths()
    }

    #[test]
    fn join_matches_dfs_for_every_cut() {
        for k in 2..=6u32 {
            let expected = dfs_paths(k);
            for cut in 1..k {
                assert_eq!(join_paths(k, cut), expected, "k={k} cut={cut}");
            }
        }
    }

    #[test]
    fn padding_recovers_short_paths() {
        // k=4, cut=2: the 2-edge path (s, v0, t) must surface as the padded
        // tuple (s, v0, t, t, t).
        let paths = join_paths(4, 2);
        assert!(paths.contains(&vec![S, V[0], T]));
    }

    #[test]
    fn counters_record_materialization() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        idx_join(&idx, 2, &mut sink, &mut counters);
        assert!(counters.peak_materialized_vertices > 0);
        assert_eq!(counters.results, 5);
    }

    #[test]
    fn early_stop_propagates() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        let mut sink = ControlledSink::new(CountingSink::default(), Some(1), None, None);
        let mut counters = Counters::default();
        let control = idx_join(&idx, 2, &mut sink, &mut counters);
        assert_eq!(control, SearchControl::Stop);
        assert_eq!(sink.emitted(), 1);
    }

    #[test]
    #[should_panic(expected = "cut position")]
    fn rejects_degenerate_cut() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        idx_join(&idx, 0, &mut sink, &mut counters);
    }

    #[test]
    fn empty_index_is_a_no_op() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(T, S, 4).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        assert_eq!(
            idx_join(&idx, 2, &mut sink, &mut counters),
            SearchControl::Continue
        );
        assert!(sink.paths.is_empty());
    }

    #[test]
    fn tuple_buffer_roundtrip() {
        let mut buf = TupleBuffer::new(3);
        buf.push(&[1, 2, 3]);
        buf.push(&[4, 5, 6]);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.get(1), &[4, 5, 6]);
        assert_eq!(buf.iter().count(), 2);
    }

    #[test]
    fn valid_path_len_rules() {
        // t = 9. Straight path.
        assert_eq!(valid_path_len(&[0, 1, 9], 9), Some(3));
        // Padded path.
        assert_eq!(valid_path_len(&[0, 1, 9, 9, 9], 9), Some(3));
        // Duplicate vertex before padding.
        assert_eq!(valid_path_len(&[0, 1, 0, 9], 9), None);
        // Never reaches t (cannot happen by construction, but be safe).
        assert_eq!(valid_path_len(&[0, 1, 2], 9), None);
    }
}

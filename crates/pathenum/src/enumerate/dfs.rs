//! IDX-DFS: depth-first search on the index (Algorithm 4).
//!
//! This recursive form is the reference implementation;
//! [`super::dfs_iterative`] is the explicit-stack equivalent whose
//! seeded variant powers the intra-query parallel executor
//! ([`crate::parallel::parallel_dfs`]) — the emission order produced
//! here is exactly the order the parallel merge reproduces.

use pathenum_graph::VertexId;

use crate::index::{Index, LocalId};
use crate::sink::{PathSink, SearchControl};
use crate::stats::Counters;

/// Enumerates all hop-constrained s-t paths by DFS on the index.
///
/// Each step loops over `I_t(v, k - L(M) - 1)` — the neighbors of the last
/// partial-result vertex that are close enough to `t` to still satisfy the
/// hop constraint — so no distance check happens during the search; the
/// index already did it. Emission stops early if the sink returns
/// [`SearchControl::Stop`].
///
/// Returns the control state at exit ([`SearchControl::Stop`] iff the sink
/// aborted the enumeration).
///
/// ```
/// use pathenum::enumerate::idx_dfs;
/// use pathenum::sink::CollectingSink;
/// use pathenum::{Counters, Index, Query};
/// use pathenum_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3), (1, 2)]).unwrap();
/// let graph = b.finish();
/// let index = Index::build(&graph, Query::new(0, 3, 3).unwrap());
///
/// let mut sink = CollectingSink::default();
/// let mut counters = Counters::default();
/// idx_dfs(&index, &mut sink, &mut counters);
/// assert_eq!(
///     sink.sorted_paths(),
///     vec![vec![0, 1, 2, 3], vec![0, 1, 3], vec![0, 2, 3]],
/// );
/// ```
pub fn idx_dfs(index: &Index, sink: &mut dyn PathSink, counters: &mut Counters) -> SearchControl {
    let (Some(s_local), Some(t_local)) = (index.s_local(), index.t_local()) else {
        return SearchControl::Continue;
    };
    let mut dfs = DfsState {
        index,
        t_local,
        partial: Vec::with_capacity(index.k() as usize + 1),
        scratch: Vec::with_capacity(index.k() as usize + 1),
        sink,
        counters,
        probe_tick: 0,
    };
    dfs.partial.push(s_local);
    let (_, control) = dfs.search();
    control
}

struct DfsState<'a> {
    index: &'a Index,
    t_local: LocalId,
    /// Current partial result `M` in local ids.
    partial: Vec<LocalId>,
    /// Reusable buffer for the emitted global-id path.
    scratch: Vec<VertexId>,
    sink: &'a mut dyn PathSink,
    counters: &'a mut Counters,
    probe_tick: u32,
}

impl DfsState<'_> {
    /// Recursive `Search` procedure. Returns `(found_any_result, control)`.
    fn search(&mut self) -> (bool, SearchControl) {
        // A strided probe lets deadline/cancellation sinks interrupt
        // barren regions that never emit, without taxing every node.
        if self.probe_tick & (super::PROBE_STRIDE - 1) == 0
            && self.sink.probe() == SearchControl::Stop
        {
            return (false, SearchControl::Stop);
        }
        self.probe_tick = self.probe_tick.wrapping_add(1);
        let v = *self
            .partial
            .last()
            .expect("partial result always contains s");
        if v == self.t_local {
            self.counters.results += 1;
            self.scratch.clear();
            self.scratch
                .extend(self.partial.iter().map(|&l| self.index.global(l)));
            return (true, self.sink.emit(&self.scratch));
        }
        let budget = self.index.k() - (self.partial.len() as u32 - 1) - 1;
        // The slice borrows the index (lifetime independent of `self`), so
        // the recursive calls below can still borrow `self` mutably.
        let neighbors = self.index.i_t(v, budget);
        self.counters.edges_accessed += neighbors.len() as u64;
        let mut found_any = false;
        for &next in neighbors {
            if self.partial.contains(&next) {
                continue;
            }
            self.partial.push(next);
            self.counters.partial_results += 1;
            let (found, control) = self.search();
            self.partial.pop();
            if !found {
                self.counters.invalid_partial_results += 1;
            }
            found_any |= found;
            if control == SearchControl::Stop {
                return (found_any, SearchControl::Stop);
            }
        }
        (found_any, SearchControl::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::query::Query;
    use crate::request::ControlledSink;
    use crate::sink::{CollectingSink, CountingSink};

    fn run_collect(k: u32) -> Vec<Vec<VertexId>> {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, k).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        idx_dfs(&idx, &mut sink, &mut counters);
        sink.sorted_paths()
    }

    #[test]
    fn figure1_k4_paths_are_exactly_the_expected_set() {
        let [v0, v1, v2, v3, v4, v5, _v6, _v7] = V;
        let got = run_collect(4);
        let mut expected = vec![
            vec![S, v0, T],
            vec![S, v1, v2, T],
            vec![S, v1, v2, v0, T],
            vec![S, v3, v4, v5, T],
            vec![S, v0, v1, v2, T],
        ];
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn k2_only_direct_two_hop_paths() {
        let got = run_collect(2);
        assert_eq!(got, vec![vec![S, V[0], T]]);
    }

    #[test]
    fn counters_track_results_and_edges() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        let mut sink = CountingSink::default();
        let mut counters = Counters::default();
        idx_dfs(&idx, &mut sink, &mut counters);
        assert_eq!(counters.results, 5);
        assert_eq!(sink.count, 5);
        assert!(counters.edges_accessed > 0);
        assert!(counters.partial_results >= counters.results);
    }

    #[test]
    fn limit_sink_stops_enumeration() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        let mut sink = ControlledSink::new(CountingSink::default(), Some(2), None, None);
        let mut counters = Counters::default();
        let control = idx_dfs(&idx, &mut sink, &mut counters);
        assert_eq!(control, SearchControl::Stop);
        assert_eq!(sink.emitted(), 2);
    }

    #[test]
    fn empty_index_emits_nothing() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(T, S, 4).unwrap());
        let mut sink = CountingSink::default();
        let mut counters = Counters::default();
        let control = idx_dfs(&idx, &mut sink, &mut counters);
        assert_eq!(control, SearchControl::Continue);
        assert_eq!(sink.count, 0);
    }

    #[test]
    fn paths_never_repeat_vertices() {
        let got = run_collect(8);
        for path in &got {
            let mut sorted = path.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), path.len(), "path {path:?} repeats a vertex");
            assert_eq!(path[0], S);
            assert_eq!(*path.last().unwrap(), T);
        }
    }
}

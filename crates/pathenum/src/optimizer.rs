//! Join-order optimization and the PathEnum orchestrator (Sections 6.3,
//! 3.2 / Figure 2).

use std::time::Instant;

use pathenum_graph::CsrGraph;

use crate::estimator::FullEstimate;
use crate::index::Index;
use crate::plan::{plan_on_index, CacheOutcome, Executor};
use crate::query::Query;
use crate::request::PathEnumError;
use crate::sink::PathSink;
use crate::stats::{Method, PhaseTimings, RunReport};

/// Output of Algorithm 5: the chosen cut and the modeled costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinPlan {
    /// Cut position `i*` minimizing `|Q[0:i]| + |Q[i:k]|` over `0 < i < k`.
    pub cut: u32,
    /// Modeled cost of the left-deep DFS order
    /// (`T_DFS = sum_{1<=i<=k} |Q[0:i]|`).
    pub t_dfs: u64,
    /// Modeled cost of the bushy order
    /// (`T_JOIN = |Q| + sum_{1<=i<=i*} |Q[0:i]| + sum_{i*<=i<=k} |Q[i:k]|`).
    pub t_join: u64,
    /// Estimated `|Q|` (exact walk count).
    pub estimated_walks: u64,
}

impl JoinPlan {
    /// The method the cost model prefers.
    pub fn preferred(&self) -> Method {
        if self.t_dfs <= self.t_join {
            Method::IdxDfs
        } else {
            Method::IdxJoin
        }
    }
}

/// Algorithm 5: runs the full-fledged estimator and picks the cut
/// position. Returns `None` when `k < 2` leaves no interior cut (cannot
/// happen for valid queries) or the index is empty.
pub fn optimize_join_order(index: &Index, estimate: &FullEstimate) -> Option<JoinPlan> {
    let k = index.k();
    if index.is_empty() || k < 2 {
        return None;
    }
    let mut best_cut = 1u32;
    let mut best_cost = u64::MAX;
    for i in 1..k {
        let cost = estimate
            .prefix_sum(i)
            .saturating_add(estimate.suffix_sum(i));
        if cost < best_cost {
            best_cost = cost;
            best_cut = i;
        }
    }
    let t_dfs = (1..=k).fold(0u64, |acc, i| acc.saturating_add(estimate.prefix_sum(i)));
    let mut t_join = estimate.total_walks();
    for i in 1..=best_cut {
        t_join = t_join.saturating_add(estimate.prefix_sum(i));
    }
    for i in best_cut..=k {
        t_join = t_join.saturating_add(estimate.suffix_sum(i));
    }
    Some(JoinPlan {
        cut: best_cut,
        t_dfs,
        t_join,
        estimated_walks: estimate.total_walks(),
    })
}

/// Configuration of the PathEnum orchestrator.
#[derive(Debug, Clone, Copy)]
pub struct PathEnumConfig {
    /// Threshold `tau` on the preliminary estimate below which IDX-DFS runs
    /// directly, skipping join-order optimization (Section 6.2; the paper
    /// uses `1e5`).
    pub tau: u64,
    /// Force a specific method, bypassing the optimizer (used by the
    /// IDX-DFS / IDX-JOIN table rows and by ablations).
    pub force: Option<Method>,
}

impl Default for PathEnumConfig {
    fn default() -> Self {
        PathEnumConfig {
            tau: 100_000,
            force: None,
        }
    }
}

/// Runs the full PathEnum pipeline of Figure 2 on one query:
/// build index → preliminary estimate → (maybe) optimize join order →
/// enumerate with the cheaper method. Results stream into `sink`.
///
/// The query is validated against the graph first; an endpoint outside
/// `0..graph.num_vertices()` returns
/// [`PathEnumError::VertexOutOfRange`] instead of panicking deep inside
/// the index build. Prefer [`crate::QueryEngine::execute`] for
/// back-to-back queries — this one-shot survives as its migration
/// oracle.
pub fn path_enum(
    graph: &CsrGraph,
    query: Query,
    config: PathEnumConfig,
    sink: &mut dyn PathSink,
) -> Result<RunReport, PathEnumError> {
    query.validate(graph.num_vertices())?;
    let mut timings = PhaseTimings::default();

    let build_start = Instant::now();
    let (index, bfs_time) = Index::build_profiled(graph, query);
    timings.index_build = build_start.elapsed();
    timings.bfs = bfs_time;

    Ok(run_on_index(&index, config, sink, timings))
}

/// As [`path_enum`] but on a prebuilt index (used when benchmarking phases
/// separately).
pub fn path_enum_on_index(
    index: &Index,
    config: PathEnumConfig,
    sink: &mut dyn PathSink,
) -> RunReport {
    run_on_index(index, config, sink, PhaseTimings::default())
}

/// As [`path_enum_on_index`], but attributing externally measured build
/// phases to the report (used by [`crate::engine::QueryEngine`], which
/// builds the index itself with reused scratch).
pub fn path_enum_on_index_with_build(
    index: &Index,
    config: PathEnumConfig,
    sink: &mut dyn PathSink,
    index_build: std::time::Duration,
    bfs: std::time::Duration,
) -> RunReport {
    let timings = PhaseTimings {
        bfs,
        index_build,
        ..PhaseTimings::default()
    };
    run_on_index(index, config, sink, timings)
}

/// The classic pipeline on a prebuilt index: plan (estimate + optimize)
/// then execute — now a thin driver over the planner/executor split of
/// [`crate::plan`].
fn run_on_index(
    index: &Index,
    config: PathEnumConfig,
    sink: &mut dyn PathSink,
    mut timings: PhaseTimings,
) -> RunReport {
    let plan = plan_on_index(index, config, &mut timings);
    let enum_start = Instant::now();
    let counters = Executor::execute(index, &plan, sink);
    timings.enumeration = enum_start.elapsed();
    plan.report(timings, counters, CacheOutcome::Bypass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::sink::{CollectingSink, CountingSink};

    #[test]
    fn default_config_answers_small_queries_with_dfs() {
        let g = figure1_graph();
        let q = Query::new(S, T, 4).unwrap();
        let mut sink = CollectingSink::default();
        let report = path_enum(&g, q, PathEnumConfig::default(), &mut sink).unwrap();
        assert_eq!(report.method, Method::IdxDfs);
        assert_eq!(report.counters.results, 5);
        assert_eq!(sink.paths.len(), 5);
        assert!(report.preliminary_estimate <= 100_000);
    }

    #[test]
    fn tau_zero_routes_through_optimizer() {
        let g = figure1_graph();
        let q = Query::new(S, T, 4).unwrap();
        let mut sink = CountingSink::default();
        let config = PathEnumConfig {
            tau: 0,
            force: None,
        };
        let report = path_enum(&g, q, config, &mut sink).unwrap();
        assert_eq!(sink.count, 5);
        assert!(report.full_estimate.is_some());
        // The exact walk count on Figure 1, k=4 is 6 (5 paths + 1 walk
        // (s, v0, v6, v0, t)).
        assert_eq!(report.full_estimate.unwrap(), 6);
    }

    #[test]
    fn forced_methods_agree() {
        let g = pathenum_graph::generators::erdos_renyi(60, 400, 5);
        let q = Query::new(0, 1, 4).unwrap();
        let mut dfs_sink = CollectingSink::default();
        let mut join_sink = CollectingSink::default();
        let dfs_cfg = PathEnumConfig {
            force: Some(Method::IdxDfs),
            ..Default::default()
        };
        let join_cfg = PathEnumConfig {
            force: Some(Method::IdxJoin),
            ..Default::default()
        };
        let r1 = path_enum(&g, q, dfs_cfg, &mut dfs_sink).unwrap();
        let r2 = path_enum(&g, q, join_cfg, &mut join_sink).unwrap();
        assert_eq!(r1.method, Method::IdxDfs);
        assert_eq!(r2.method, Method::IdxJoin);
        assert_eq!(dfs_sink.sorted_paths(), join_sink.sorted_paths());
    }

    #[test]
    fn plan_costs_are_consistent() {
        let g = pathenum_graph::generators::complete_digraph(10);
        let q = Query::new(0, 9, 5).unwrap();
        let index = Index::build(&g, q);
        let estimate = FullEstimate::compute(&index);
        let plan = optimize_join_order(&index, &estimate).unwrap();
        assert!(plan.cut >= 1 && plan.cut < 5);
        assert!(plan.t_join >= plan.estimated_walks);
        assert!(
            plan.t_dfs >= plan.estimated_walks,
            "DFS cost includes the final level"
        );
    }

    #[test]
    fn empty_query_reports_zero() {
        let g = figure1_graph();
        let q = Query::new(T, S, 4).unwrap();
        let mut sink = CountingSink::default();
        let report = path_enum(&g, q, PathEnumConfig::default(), &mut sink).unwrap();
        assert_eq!(report.counters.results, 0);
        assert_eq!(report.preliminary_estimate, 0);
        assert_eq!(report.index_edges, 0);
    }

    #[test]
    fn optimizer_picks_join_when_modeled_cheaper() {
        // On a dense graph with a long hop constraint the bushy plan's
        // modeled cost (meeting in the middle) undercuts the left-deep
        // plan, which materializes the full prefix growth at every level.
        let g = pathenum_graph::generators::complete_digraph(12);
        let q = Query::new(0, 11, 6).unwrap();
        let index = Index::build(&g, q);
        let estimate = FullEstimate::compute(&index);
        let plan = optimize_join_order(&index, &estimate).unwrap();
        // Sanity: both costs are large; record which wins rather than
        // assert a direction — but the cut must be near the middle.
        assert!((2..=4).contains(&plan.cut), "cut {}", plan.cut);
    }
}

//! Compressed vertex-id sets for cache footprints.
//!
//! The plan- and result-cache retention machinery records, per cached
//! entry, two *reach sets* — the vertices within `k − 1` hops of the
//! query endpoints (see [`IndexFootprint`](crate::plan)). These sets
//! are consulted on every mutation delta but are tiny relative to the
//! vertex space: a bounded BFS on a sparse graph touches thousands of
//! vertices of a multi-million-vertex graph. A dense bitset charges
//! `|V| / 8` bytes per set regardless, which made footprints the
//! dominant per-entry heap cost on large graphs.
//!
//! [`CompactBits`] replaces the dense representation with a
//! Roaring-style two-level hybrid: vertex ids are split into a high
//! 16-bit *key* and a low 16-bit position, and each populated key owns
//! one container — a sorted `u16` array or a packed bitmap sized to
//! the chunk's populated span, whichever is smaller (arrays are also
//! capped at `ARRAY_MAX` (4096) entries so membership probes stay cheap).
//! Membership is a binary search over the (short) key directory
//! followed by either an array binary search or a direct bit test, so
//! lookups stay O(log) with small constants while sparse footprints
//! shrink from O(|V|) to O(reach) bytes — and dense chunks fall back
//! to bitmap cost, never worse than the dense representation by more
//! than the per-chunk directory overhead.
//!
//! [`DenseBits`] — the previous representation — stays behind as the
//! reference implementation: trivially correct, and the oracle the
//! equivalence property tests compare against.

use pathenum_graph::{EpochMap, VertexId};

/// Hard cap on array-container length: above this a membership probe's
/// binary search stops being worth it regardless of byte cost.
const ARRAY_MAX: usize = 4096;

/// One 65 536-id chunk of a [`CompactBits`] set.
#[derive(Debug, Clone)]
enum Container {
    /// Sorted, deduplicated low-16-bit positions; `len <= ARRAY_MAX`.
    Array(Vec<u16>),
    /// Packed bitmap over the chunk's populated span — sized to cover
    /// the highest present position, not the full 65 536, so a dense
    /// low-id chunk (the whole vertex space of a small graph) costs the
    /// same as a dense bitset would.
    Bitmap(Box<[u64]>),
}

impl Container {
    /// Builds the cheaper representation for one chunk's sorted,
    /// deduplicated, non-empty positions: whichever of the 2-byte-per-
    /// entry array and the span-sized bitmap costs fewer bytes, with
    /// the array additionally capped at [`ARRAY_MAX`] entries.
    fn from_sorted_positions(positions: &[u16]) -> Container {
        let span_words = *positions.last().expect("non-empty chunk") as usize / 64 + 1;
        let array_bytes = std::mem::size_of_val(positions);
        if positions.len() <= ARRAY_MAX && array_bytes <= span_words * 8 {
            Container::Array(positions.to_vec())
        } else {
            let mut words = vec![0u64; span_words].into_boxed_slice();
            for &p in positions {
                words[p as usize / 64] |= 1u64 << (p % 64);
            }
            Container::Bitmap(words)
        }
    }

    #[inline]
    fn contains(&self, position: u16) -> bool {
        match self {
            Container::Array(positions) => positions.binary_search(&position).is_ok(),
            Container::Bitmap(words) => words
                .get(position as usize / 64)
                .is_some_and(|w| w & (1u64 << (position % 64)) != 0),
        }
    }

    fn cardinality(&self) -> usize {
        match self {
            Container::Array(positions) => positions.len(),
            Container::Bitmap(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Container::Array(positions) => positions.capacity() * std::mem::size_of::<u16>(),
            Container::Bitmap(words) => words.len() * std::mem::size_of::<u64>(),
        }
    }
}

/// A compressed set of vertex ids — the hybrid array/bitmap
/// representation described in the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct CompactBits {
    /// Populated high-16-bit keys, sorted ascending; parallel to
    /// `containers`.
    keys: Vec<u16>,
    containers: Vec<Container>,
}

impl CompactBits {
    /// Builds from vertex ids that are sorted ascending and
    /// deduplicated.
    pub fn from_sorted_ids(ids: &[VertexId]) -> CompactBits {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must ascend");
        let mut keys = Vec::new();
        let mut containers = Vec::new();
        let mut positions: Vec<u16> = Vec::new();
        let mut chunk = ids.chunk_by(|a, b| a >> 16 == b >> 16);
        // chunk_by on a sorted slice yields one run per populated key.
        for run in &mut chunk {
            keys.push((run[0] >> 16) as u16);
            positions.clear();
            positions.extend(run.iter().map(|&v| v as u16));
            containers.push(Container::from_sorted_positions(&positions));
        }
        // These live for a cache entry's lifetime; charge exact bytes.
        keys.shrink_to_fit();
        containers.shrink_to_fit();
        CompactBits { keys, containers }
    }

    /// Builds from vertex ids in any order (duplicates tolerated).
    pub fn from_ids(ids: &mut Vec<VertexId>) -> CompactBits {
        ids.sort_unstable();
        ids.dedup();
        CompactBits::from_sorted_ids(ids)
    }

    /// The set `{v touched in `map` : map[v] <= bound}`. Iterates only
    /// the touched list, so deriving a footprint costs O(reach log
    /// reach), not O(|V|).
    pub fn from_reach(map: &EpochMap, bound: u32) -> CompactBits {
        let mut ids: Vec<VertexId> = map
            .touched()
            .iter()
            .copied()
            .filter(|&v| map.get(v as usize) <= bound)
            .collect();
        CompactBits::from_ids(&mut ids)
    }

    /// Whether `v` is in the set.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        let key = (v >> 16) as u16;
        match self.keys.binary_search(&key) {
            Ok(slot) => self.containers[slot].contains(v as u16),
            Err(_) => false,
        }
    }

    /// Number of ids in the set.
    pub fn cardinality(&self) -> usize {
        self.containers.iter().map(Container::cardinality).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Approximate heap footprint in bytes — what byte-budgeted caches
    /// charge an entry for carrying this set.
    pub fn heap_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u16>()
            + self.containers.capacity() * std::mem::size_of::<Container>()
            + self
                .containers
                .iter()
                .map(Container::heap_bytes)
                .sum::<usize>()
    }
}

/// A dense bitset over vertex ids (one `u64` word per 64 vertices).
///
/// The reference set representation: kept as the oracle the
/// [`CompactBits`] property tests compare against, and for callers
/// whose sets genuinely cover most of the vertex space.
#[derive(Debug, Clone, Default)]
pub struct DenseBits {
    words: Vec<u64>,
}

impl DenseBits {
    /// The set `{v touched in `map` : map[v] <= bound}`, sized to the
    /// map's key space.
    pub fn from_reach(map: &EpochMap, bound: u32) -> DenseBits {
        let mut bits = DenseBits {
            words: vec![0u64; map.capacity().div_ceil(64)],
        };
        for &v in map.touched() {
            if map.get(v as usize) <= bound {
                bits.insert(v);
            }
        }
        bits
    }

    /// Inserts `v`, growing the word array as needed.
    pub fn insert(&mut self, v: VertexId) {
        let word = v as usize / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (v % 64);
    }

    /// Whether `v` is in the set.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        let v = v as usize;
        self.words
            .get(v / 64)
            .is_some_and(|w| w & (1u64 << (v % 64)) != 0)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bits per chunk (the id space one container covers).
    const CHUNK: usize = 1 << 16;

    fn compact_and_dense(ids: &[VertexId]) -> (CompactBits, DenseBits) {
        let mut sorted = ids.to_vec();
        let compact = CompactBits::from_ids(&mut sorted);
        let mut dense = DenseBits::default();
        for &v in ids {
            dense.insert(v);
        }
        (compact, dense)
    }

    #[test]
    fn empty_set_contains_nothing() {
        let set = CompactBits::from_sorted_ids(&[]);
        assert!(set.is_empty());
        assert_eq!(set.cardinality(), 0);
        assert!(!set.contains(0));
        assert!(!set.contains(u32::MAX));
    }

    #[test]
    fn sparse_set_uses_array_containers_and_agrees_with_dense() {
        let ids = [0, 1, 5, 63, 64, 65_535, 65_536, 1_000_000, u32::MAX];
        let (compact, dense) = compact_and_dense(&ids);
        assert_eq!(compact.cardinality(), ids.len());
        assert!(compact
            .containers
            .iter()
            .all(|c| matches!(c, Container::Array(_))));
        for probe in ids.iter().copied().chain([2, 66, 65_537, 999_999]) {
            assert_eq!(compact.contains(probe), dense.contains(probe), "v={probe}");
        }
        // Far below the 8 KiB-per-chunk dense equivalent.
        assert!(compact.heap_bytes() < 1024);
    }

    #[test]
    fn chunk_above_threshold_promotes_to_bitmap() {
        // Every third id of one chunk: cardinality 21 846 > ARRAY_MAX.
        let ids: Vec<VertexId> = (0..CHUNK as u32).step_by(3).collect();
        let set = CompactBits::from_sorted_ids(&ids);
        assert!(matches!(set.containers.as_slice(), [Container::Bitmap(_)]));
        assert_eq!(set.cardinality(), ids.len());
        for v in 0..CHUNK as u32 {
            assert_eq!(set.contains(v), v % 3 == 0, "v={v}");
        }
        // Last id is 65 533, so the bitmap spans the full chunk.
        assert_eq!(
            set.heap_bytes(),
            CHUNK / 8
                + set.keys.capacity() * 2
                + set.containers.capacity() * std::mem::size_of::<Container>()
        );
    }

    #[test]
    fn dense_low_chunk_costs_no_more_than_a_dense_bitset() {
        // The inversion case: a small graph whose reach covers most of
        // the vertex space. The span-sized bitmap must keep CompactBits
        // within the dense bitset's cost plus directory overhead.
        let ids: Vec<VertexId> = (0..2500).filter(|v| v % 5 != 0).collect();
        let set = CompactBits::from_sorted_ids(&ids);
        assert!(matches!(set.containers.as_slice(), [Container::Bitmap(_)]));
        let dense_words = 2500usize.div_ceil(64);
        assert!(set.heap_bytes() <= dense_words * 8 + 64);
        for v in 0..3000 {
            assert_eq!(set.contains(v), v < 2500 && v % 5 != 0, "v={v}");
        }
    }

    #[test]
    fn mixed_chunks_pick_representation_independently() {
        // Chunk 0 dense (bitmap), chunk 7 sparse (array).
        let mut ids: Vec<VertexId> = (0..8192).collect();
        ids.extend([7 * CHUNK as u32 + 9, 7 * CHUNK as u32 + 4000]);
        let set = CompactBits::from_sorted_ids(&ids);
        assert_eq!(set.keys, vec![0, 7]);
        assert!(matches!(set.containers[0], Container::Bitmap(_)));
        assert!(matches!(set.containers[1], Container::Array(_)));
        assert!(set.contains(8191) && !set.contains(8192));
        assert!(set.contains(7 * CHUNK as u32 + 4000));
        assert!(!set.contains(6 * CHUNK as u32 + 9));
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let mut ids = vec![9, 3, 3, 70_000, 9, 1];
        let set = CompactBits::from_ids(&mut ids);
        assert_eq!(set.cardinality(), 4);
        for v in [1, 3, 9, 70_000] {
            assert!(set.contains(v));
        }
        assert!(!set.contains(0) && !set.contains(70_001));
    }

    #[test]
    fn pseudo_random_agreement_with_dense_oracle() {
        // Deterministic LCG: no RNG dependency needed for a smoke sweep.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut ids = Vec::new();
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            ids.push((state >> 40) as VertexId); // ids in 0..2^24
        }
        let (compact, dense) = compact_and_dense(&ids);
        for probe in 0..(1u32 << 16) {
            let v = probe * 251; // stride through the id space
            assert_eq!(compact.contains(v), dense.contains(v), "v={v}");
        }
        assert!(compact.heap_bytes() <= dense.heap_bytes());
    }
}

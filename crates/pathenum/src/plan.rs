//! The planner/executor split: explicit physical plans, `EXPLAIN`, and a
//! version-aware plan/index cache.
//!
//! The paper's central claim is that a per-query light-weight index plus
//! a cost-based choice between IDX-DFS and IDX-JOIN beats either method
//! alone. Historically that decision logic was inlined across the engine
//! and the orchestrator; this module makes the decision a *value*:
//!
//! * [`PhysicalPlan`] — everything the optimizer decided about one query
//!   (index spec and footprint, preliminary/full estimates, the modeled
//!   costs `T_DFS`/`T_JOIN`, the chosen [`Method`] and join cut, the
//!   constraint strategy, the parallelism degree). Plans are plain `Copy`
//!   data: they can be logged, compared, cached, and replayed.
//! * [`Planner`] — produces a plan (and the index backing it) from a
//!   request: build index → preliminary estimate → (maybe) full estimate
//!   + join-order optimization (Figure 2's front half).
//! * [`Executor`] — interprets any plan against any
//!   [`PathSink`] (Figure 2's back half),
//!   sequentially or through the intra-query pool when the plan carries
//!   `threads > 1`.
//! * [`PlanCache`] — an LRU over `(s, t, k, constraint fingerprint,
//!   forced method, tau)` holding the plan *and* its built index,
//!   invalidated by the serving graph's
//!   [`GraphVersion`] epoch. Real request
//!   streams are heavily skewed; for a repeated query the dominant cost
//!   the paper measures — the bidirectional boundary BFS of the index
//!   build — is paid once and amortized across every warm hit.
//!
//! [`QueryEngine`](crate::QueryEngine) wires the three together:
//! `execute`/`execute_into`/`stream` are thin drivers over
//! plan-acquisition (cache lookup or [`Planner`]) followed by
//! [`Executor`] dispatch, and
//! [`QueryEngine::explain`](crate::QueryEngine::explain) returns the plan
//! without enumerating at all.
//!
//! ```
//! use pathenum::{PathEnumConfig, QueryEngine, QueryRequest};
//! use pathenum_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
//! let graph = b.finish();
//! let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
//!
//! let request = QueryRequest::paths(0, 3).max_hops(3);
//! let plan = engine.explain(&request).unwrap(); // no enumeration
//! let response = engine.execute(&request).unwrap(); // warm: index reused
//! assert_eq!(response.report.method, plan.method);
//! assert_eq!(response.report.cache, pathenum::plan::CacheOutcome::Hit);
//! ```

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pathenum_graph::epoch::EpochMap;
use pathenum_graph::hashing::{FxBuildHasher, FxHashMap};
use pathenum_graph::{
    CsrGraph, DynamicGraph, EdgeMutation, GraphVersion, NeighborAccess, VertexId,
};

use crate::bits::CompactBits;
use crate::constraints::{automaton_join, filtered_graph};
use crate::enumerate::{idx_dfs_iterative, idx_join};
use crate::estimator::{preliminary_estimate, FullEstimate};
use crate::index::{BuildScratch, Index};
use crate::optimizer::{optimize_join_order, PathEnumConfig};
use crate::query::Query;
use crate::request::{
    CancelToken, ConstraintSpec, ControlledSink, PathEnumError, QueryRequest, Termination,
};
use crate::sink::PathSink;
use crate::stats::{Counters, Method, PhaseTimings};

/// The constraint *strategy* a plan executes under (the request carries
/// the actual closures; the plan only needs to know the shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConstraintKind {
    /// Plain HcPE.
    #[default]
    None,
    /// Edge-predicate filtering (Appendix E): the index is built on the
    /// filtered subgraph.
    Predicate,
    /// Accumulated edge values with a final check (Algorithm 7).
    Accumulative,
    /// Edge-label sequences accepted by a DFA (Algorithm 8).
    Automaton,
}

impl std::fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstraintKind::None => write!(f, "none"),
            ConstraintKind::Predicate => write!(f, "predicate"),
            ConstraintKind::Accumulative => write!(f, "accumulative"),
            ConstraintKind::Automaton => write!(f, "automaton"),
        }
    }
}

/// How a request's plan was obtained, reported in
/// [`RunReport::cache`](crate::stats::RunReport::cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheOutcome {
    /// The request was not eligible for caching (constraint without a
    /// fingerprint, [`bypass_cache`](QueryRequest::bypass_cache), cache
    /// capacity 0, or an entry point that never caches).
    #[default]
    Bypass,
    /// Planned from scratch; plan and index were stored for reuse.
    Miss,
    /// Served from a cached plan and index — no BFS, no index build.
    Hit,
    /// Served straight from the [result
    /// cache](crate::results::ResultCache): no BFS, no index build, *no
    /// enumeration* — the stored paths were replayed into the sink.
    ResultHit,
    /// The evaluation stopped before the cache was even consulted: a
    /// pre-flight stopping rule (pre-cancelled token, zero time budget,
    /// zero result limit) fired first. The request counts as *rejected*,
    /// not served, and performs no cache lookup.
    Skipped,
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheOutcome::Bypass => write!(f, "bypass"),
            CacheOutcome::Miss => write!(f, "miss"),
            CacheOutcome::Hit => write!(f, "hit"),
            CacheOutcome::ResultHit => write!(f, "result-hit"),
            CacheOutcome::Skipped => write!(f, "skipped"),
        }
    }
}

/// The physical plan for one hop-constrained path query: every decision
/// of Figure 2's front half, as a first-class `Copy` value.
///
/// Produced by [`Planner`] (or [`QueryEngine::explain`](crate::QueryEngine::explain)),
/// interpreted by [`Executor`], cached by [`PlanCache`]. The `Display`
/// form is an `EXPLAIN`-style rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicalPlan {
    /// The core query `q(s, t, k)`.
    pub query: Query,
    /// The enumeration strategy the optimizer (or a forced override)
    /// selected.
    pub method: Method,
    /// Join cut position `i*`; `Some` exactly when `method` is
    /// [`Method::IdxJoin`].
    pub cut: Option<u32>,
    /// Whether `method` was forced rather than cost-chosen.
    pub forced: bool,
    /// Preliminary search-space estimate (Equation 5).
    pub preliminary_estimate: u64,
    /// Full-fledged estimate of `|Q|` (exact walk count), when the
    /// optimizer ran.
    pub full_estimate: Option<u64>,
    /// Modeled left-deep DFS cost `T_DFS` (Algorithm 5), when the
    /// optimizer ran.
    pub t_dfs: Option<u64>,
    /// Modeled bushy join cost `T_JOIN` at the chosen cut, when the
    /// optimizer ran.
    pub t_join: Option<u64>,
    /// The preliminary-estimate threshold the decision used (Section 6.2).
    pub tau: u64,
    /// The constraint strategy the execution will apply.
    pub constraint: ConstraintKind,
    /// Resolved intra-query parallelism degree (1 = sequential).
    pub threads: usize,
    /// `|X|`: vertices kept by the light-weight index.
    pub index_vertices: usize,
    /// Edges in the index's forward table (the paper's index-size metric).
    pub index_edges: usize,
    /// Index heap footprint in bytes.
    pub index_bytes: usize,
}

impl PhysicalPlan {
    /// Whether the index proves the query has no results (the executor
    /// will terminate immediately).
    pub fn is_provably_empty(&self) -> bool {
        self.index_vertices == 0
    }

    /// The modeled execution cost of this plan, in the optimizer's cost
    /// units (search-tree nodes / tuple touches): the cost model value
    /// for the *chosen* method when the optimizer ran (`t_dfs` for
    /// IDX-DFS, `t_join` for IDX-JOIN), and the preliminary
    /// search-space estimate otherwise. Never 0 — even a provably empty
    /// plan charges one unit, so admission accounting stays conservative.
    ///
    /// This is the number the [`admission`](crate::admission) layer
    /// charges against its in-flight budget: the planner's estimate *is*
    /// the admission ticket.
    pub fn modeled_cost(&self) -> u64 {
        let modeled = match self.method {
            Method::IdxDfs => self.t_dfs,
            Method::IdxJoin => self.t_join,
        };
        modeled.unwrap_or(self.preliminary_estimate).max(1)
    }

    /// Assembles a [`RunReport`](crate::stats::RunReport) for one
    /// interpretation of this plan.
    pub(crate) fn report(
        &self,
        timings: PhaseTimings,
        counters: Counters,
        cache: CacheOutcome,
    ) -> crate::stats::RunReport {
        crate::stats::RunReport {
            method: self.method,
            timings,
            counters,
            preliminary_estimate: self.preliminary_estimate,
            full_estimate: self.full_estimate,
            t_dfs: self.t_dfs,
            t_join: self.t_join,
            cut_position: self.cut,
            index_bytes: self.index_bytes,
            index_edges: self.index_edges,
            cache,
        }
    }
}

impl std::fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "PhysicalPlan q(s={}, t={}, k={})",
            self.query.s, self.query.t, self.query.k
        )?;
        write!(f, "  method: {}", self.method)?;
        match (self.forced, self.cut) {
            (true, Some(cut)) => writeln!(f, " (forced; cut at {cut})")?,
            (true, None) => writeln!(f, " (forced)")?,
            (false, Some(cut)) => writeln!(f, " (cost-based; cut at {cut})")?,
            (false, None) => writeln!(f, " (cost-based)")?,
        }
        write!(
            f,
            "  estimates: preliminary={} (tau={})",
            self.preliminary_estimate, self.tau
        )?;
        match self.full_estimate {
            Some(walks) => writeln!(f, ", walks={walks}")?,
            None => writeln!(f)?,
        }
        match (self.t_dfs, self.t_join) {
            (Some(t_dfs), Some(t_join)) => {
                writeln!(f, "  modeled costs: t_dfs={t_dfs}, t_join={t_join}")?
            }
            _ => {
                let reason = if self.forced {
                    "method forced"
                } else if self.full_estimate.is_some() {
                    "no interior cut"
                } else {
                    "preliminary <= tau"
                };
                writeln!(f, "  modeled costs: not computed ({reason})")?
            }
        }
        writeln!(
            f,
            "  index: {} vertices, {} edges, {} bytes{}",
            self.index_vertices,
            self.index_edges,
            self.index_bytes,
            if self.is_provably_empty() {
                " (provably empty)"
            } else {
                ""
            }
        )?;
        write!(
            f,
            "  constraint: {}, threads: {}",
            self.constraint, self.threads
        )
    }
}

/// Produces [`PhysicalPlan`]s: Figure 2's front half (index build →
/// preliminary estimate → optional full estimate + Algorithm 5) as a
/// standalone component.
///
/// The engine drives a `Planner` internally (with scratch reuse and the
/// plan cache on top); it is public so tools can plan without executing:
///
/// ```
/// use pathenum::plan::Planner;
/// use pathenum::{PathEnumConfig, QueryRequest};
/// use pathenum_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
/// let graph = b.finish();
///
/// let planner = Planner::new(&graph, PathEnumConfig::default());
/// let plan = planner.plan(&QueryRequest::paths(0, 3).max_hops(3)).unwrap();
/// println!("{plan}");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Planner<'g, G: NeighborAccess = CsrGraph> {
    graph: &'g G,
    config: PathEnumConfig,
}

/// A plan together with the index it was computed from.
pub(crate) struct Planned {
    pub plan: PhysicalPlan,
    pub index: Index,
}

/// The configuration one request effectively plans under: request-level
/// overrides win over the engine configuration.
pub(crate) fn effective_config(base: PathEnumConfig, request: &QueryRequest<'_>) -> PathEnumConfig {
    PathEnumConfig {
        tau: request.tau.unwrap_or(base.tau),
        force: request.method.or(base.force),
    }
}

impl<'g, G: NeighborAccess> Planner<'g, G> {
    /// A planner over `graph` with the orchestrator configuration
    /// (request-level `tau`/`method` overrides are applied per request).
    ///
    /// `graph` may be any [`NeighborAccess`] implementation — a
    /// `CsrGraph` or a [`DynamicGraph`]'s
    /// [`OverlayView`](pathenum_graph::OverlayView).
    pub fn new(graph: &'g G, config: PathEnumConfig) -> Self {
        Planner { graph, config }
    }

    /// Plans a request without executing it (fresh build scratch; the
    /// engine's cached entry points reuse scratch instead).
    pub fn plan(&self, request: &QueryRequest<'_>) -> Result<PhysicalPlan, PathEnumError> {
        let query = request.validate(self.graph.num_vertices())?;
        let mut scratch = BuildScratch::default();
        let (planned, _) = self.plan_query(query, request, &mut scratch);
        Ok(planned.plan)
    }

    /// Effective configuration for one request (request overrides win).
    pub(crate) fn effective_config(&self, request: &QueryRequest<'_>) -> PathEnumConfig {
        effective_config(self.config, request)
    }

    /// Plans a validated query: builds the index (on the
    /// predicate-filtered subgraph when the request carries a predicate),
    /// runs the estimators, and decides method + cut. Returns the plan,
    /// the index, and the front-half phase timings.
    pub(crate) fn plan_query(
        &self,
        query: Query,
        request: &QueryRequest<'_>,
        scratch: &mut BuildScratch,
    ) -> (Planned, PhaseTimings) {
        let config = self.effective_config(request);
        let build_start = Instant::now();
        let (index, bfs_time) = match &request.constraint {
            ConstraintSpec::Predicate(predicate) => {
                // Appendix E: the filter pass is attributed to build time.
                let filtered = filtered_graph(self.graph, predicate);
                Index::build_reusing(&filtered, query, scratch)
            }
            _ => Index::build_reusing(self.graph, query, scratch),
        };
        let mut timings = PhaseTimings {
            bfs: bfs_time,
            index_build: build_start.elapsed(),
            ..PhaseTimings::default()
        };
        let threads = request.effective_threads();
        let plan = plan_on_index_inner(
            &index,
            config,
            request.constraint.kind(),
            threads,
            &mut timings,
        );
        (Planned { plan, index }, timings)
    }
}

/// Plans on a prebuilt index: the estimate-then-optimize half of Figure 2
/// shared by every pipeline entry point, recording the estimation and
/// optimization phases into `timings`.
///
/// This is [`Planner`] without graph access — used by
/// [`path_enum_on_index`](crate::optimizer::path_enum_on_index) style
/// callers that benchmark phases separately.
pub fn plan_on_index(
    index: &Index,
    config: PathEnumConfig,
    timings: &mut PhaseTimings,
) -> PhysicalPlan {
    plan_on_index_inner(index, config, ConstraintKind::None, 1, timings)
}

fn plan_on_index_inner(
    index: &Index,
    config: PathEnumConfig,
    constraint: ConstraintKind,
    threads: usize,
    timings: &mut PhaseTimings,
) -> PhysicalPlan {
    let prelim_start = Instant::now();
    let preliminary = preliminary_estimate(index);
    timings.preliminary_estimation = prelim_start.elapsed();

    let mut full_estimate = None;
    let mut t_dfs = None;
    let mut t_join = None;
    let mut cut = None;

    let forced = config.force.is_some();
    let mut optimize = |timings: &mut PhaseTimings| {
        let opt_start = Instant::now();
        let estimate = FullEstimate::compute(index);
        let join_plan = optimize_join_order(index, &estimate);
        timings.optimization = opt_start.elapsed();
        full_estimate = Some(estimate.total_walks());
        if let Some(p) = join_plan {
            t_dfs = Some(p.t_dfs);
            t_join = Some(p.t_join);
            cut = Some(p.cut);
        }
        join_plan
    };

    let method = match config.force {
        Some(m) => {
            // Forced IDX-JOIN still needs the optimizer to pick a cut.
            if m == Method::IdxJoin {
                optimize(timings);
            }
            m
        }
        None if preliminary <= config.tau => Method::IdxDfs,
        None => match optimize(timings) {
            Some(join_plan) => join_plan.preferred(),
            None => Method::IdxDfs,
        },
    };

    if method == Method::IdxJoin {
        cut = Some(
            cut.unwrap_or(index.k() / 2)
                .clamp(1, index.k().saturating_sub(1).max(1)),
        );
    } else {
        cut = None;
    }

    PhysicalPlan {
        query: index.query(),
        method,
        cut,
        forced,
        preliminary_estimate: preliminary,
        full_estimate,
        t_dfs,
        t_join,
        tau: config.tau,
        constraint,
        threads,
        index_vertices: index.num_vertices(),
        index_edges: index.num_edges(),
        index_bytes: index.heap_bytes(),
    }
}

/// The request-level stopping rules the executor enforces around the
/// caller's sink.
#[derive(Debug, Clone, Default)]
pub(crate) struct StoppingRules {
    pub limit: Option<u64>,
    pub deadline: Option<Instant>,
    pub cancel: Option<CancelToken>,
}

/// Outcome of interpreting one plan.
pub(crate) struct Execution {
    pub counters: Counters,
    pub termination: Termination,
    pub enumeration: Duration,
}

/// Interprets [`PhysicalPlan`]s against sinks: Figure 2's back half.
///
/// The executor is stateless — any plan can run against any sink, any
/// number of times, as long as the index it is paired with was built for
/// the plan's query (the engine's cache guarantees this via graph-version
/// checks).
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor;

impl Executor {
    /// Runs an unconstrained plan sequentially, streaming into `sink`
    /// with no stopping rules. The public, minimal interpreter; the
    /// engine uses the crate-internal `Executor::run`, which adds constraints, stopping
    /// rules, and the parallel pool.
    pub fn execute(index: &Index, plan: &PhysicalPlan, sink: &mut dyn PathSink) -> Counters {
        let mut counters = Counters::default();
        match plan.method {
            Method::IdxDfs => {
                idx_dfs_iterative(index, sink, &mut counters);
            }
            Method::IdxJoin => {
                let cut = plan.cut.expect("plans carry a cut for IDX-JOIN");
                idx_join(index, cut, sink, &mut counters);
            }
        }
        counters
    }

    /// Full interpretation: applies the request's constraint closures,
    /// enforces the stopping rules, and fans out over the intra-query
    /// pool when the plan carries `threads > 1` (unconstrained plans
    /// only — the constrained executors stay sequential).
    pub(crate) fn run(
        index: &Index,
        plan: &PhysicalPlan,
        constraint: &ConstraintSpec<'_>,
        rules: StoppingRules,
        sink: &mut dyn PathSink,
    ) -> Execution {
        let mut counters = Counters::default();
        let enum_start = Instant::now();

        if plan.threads > 1 && matches!(constraint, ConstraintSpec::None) {
            let control =
                crate::parallel::SharedControl::new(rules.limit, rules.deadline, rules.cancel);
            match plan.method {
                Method::IdxDfs => {
                    crate::parallel::parallel_dfs(
                        index,
                        plan.threads,
                        &control,
                        sink,
                        &mut counters,
                    );
                }
                Method::IdxJoin => {
                    let cut = plan.cut.expect("plans carry a cut for IDX-JOIN");
                    crate::parallel::parallel_join(
                        index,
                        cut,
                        plan.threads,
                        &control,
                        sink,
                        &mut counters,
                    );
                }
            }
            let termination = control.termination();
            if termination.is_early() {
                // Workers count a result before the shared budget can
                // refuse it; the admitted count is authoritative.
                counters.results = control.delivered();
            }
            return Execution {
                counters,
                termination,
                enumeration: enum_start.elapsed(),
            };
        }

        let mut control = ControlledSink::new(sink, rules.limit, rules.deadline, rules.cancel);
        match (constraint, plan.method) {
            // Predicate requests already enumerated the filtered graph's
            // index — plain dispatch.
            (ConstraintSpec::None | ConstraintSpec::Predicate(_), Method::IdxDfs) => {
                idx_dfs_iterative(index, &mut control, &mut counters);
            }
            (ConstraintSpec::None | ConstraintSpec::Predicate(_), Method::IdxJoin) => {
                let cut = plan.cut.expect("plans carry a cut for IDX-JOIN");
                idx_join(index, cut, &mut control, &mut counters);
            }
            (ConstraintSpec::Accumulative(acc), Method::IdxDfs) => {
                acc.dfs(index, &mut control, &mut counters);
            }
            (ConstraintSpec::Accumulative(acc), Method::IdxJoin) => {
                let cut = plan.cut.expect("plans carry a cut for IDX-JOIN");
                acc.join(index, cut, &mut control, &mut counters);
            }
            (
                ConstraintSpec::Automaton {
                    automaton,
                    label_of,
                },
                Method::IdxDfs,
            ) => {
                crate::constraints::automaton_dfs(
                    index,
                    automaton,
                    label_of,
                    &mut control,
                    &mut counters,
                );
            }
            (
                ConstraintSpec::Automaton {
                    automaton,
                    label_of,
                },
                Method::IdxJoin,
            ) => {
                let cut = plan.cut.expect("plans carry a cut for IDX-JOIN");
                automaton_join(
                    index,
                    cut,
                    automaton,
                    label_of.as_ref(),
                    &mut control,
                    &mut counters,
                );
            }
        }
        let termination = control.termination();
        if termination.is_early() {
            // Enumerators count a result *before* offering it to the
            // sink; when a stopping rule refuses that emission the
            // delivered count is authoritative.
            counters.results = control.emitted();
        }
        Execution {
            counters,
            termination,
            enumeration: enum_start.elapsed(),
        }
    }
}

/// Cache key: one logical query shape. Includes the *effective* method
/// force and `tau` so plan decisions made under different configurations
/// never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Source vertex.
    pub s: VertexId,
    /// Target vertex.
    pub t: VertexId,
    /// Hop constraint.
    pub k: u32,
    /// Constraint namespace: 0 for the shared unfiltered-index entry
    /// (plain/accumulative/automaton requests), 1 for predicate-filtered
    /// entries. A separate field — not a stolen fingerprint bit — so the
    /// full 64-bit user tag space stays collision-free.
    pub namespace: u8,
    /// Constraint fingerprint within the namespace; see
    /// [`QueryRequest::constraint_fingerprint`].
    pub fingerprint: u64,
    /// Effective forced method (request override or engine config).
    pub method: Option<Method>,
    /// Effective preliminary-estimate threshold.
    pub tau: u64,
}

impl PlanKey {
    /// The cache key for a request planned under `effective`
    /// configuration, or `None` when the constraint is uncacheable (an
    /// unfingerprinted predicate). Bypass flags and cache capacity are
    /// the caller's concern.
    pub(crate) fn for_request(
        request: &QueryRequest<'_>,
        effective: PathEnumConfig,
    ) -> Option<PlanKey> {
        request
            .constraint
            .fingerprint(request.fingerprint)
            .map(|(namespace, fingerprint)| PlanKey {
                s: request.s,
                t: request.t,
                k: request.k,
                namespace,
                fingerprint,
                method: effective.force,
                tau: effective.tau,
            })
    }
}

/// Aggregate statistics of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing usable (including invalidations).
    pub misses: u64,
    /// Entries discarded because the graph version moved on.
    pub invalidations: u64,
    /// Entries discarded to make room (LRU).
    pub evictions: u64,
    /// Hits served across a graph mutation because the entry's recorded
    /// footprint was provably untouched by the delta (surgical
    /// retention; a subset of `hits`).
    pub retained: u64,
}

impl PlanCacheStats {
    /// Hit fraction over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The reach footprint of a cached index, recorded at build time: the
/// vertex sets within `k - 1` hops of `s` (forward, `G − {t}`) and of
/// `t` (backward, `G − {s}`).
///
/// Surgical retention keeps a cache entry across a mutation delta when
/// the delta provably cannot change the query's result set:
///
/// * a **deleted** edge is harmless unless both endpoints are in the
///   entry's index partition `X` (only such edges can appear in the
///   index's neighbor tables, hence on a result path);
/// * an **inserted** edge can only contribute to a *new* result path if
///   the path's first inserted edge leaves the `s`-reach set and its
///   last inserted edge enters the `t`-reach set — so the entry stays
///   valid as long as *no* inserted edge has ever started inside the
///   `s`-reach, or *no* inserted edge has ever ended inside the
///   `t`-reach. The two conditions are tracked as sticky flags on the
///   entry, which keeps the check sound across chains of inserted edges
///   spanning many deltas.
#[derive(Debug, Clone)]
pub(crate) struct IndexFootprint {
    /// The mutation lineage (see [`DynamicGraph::lineage`]) the entry's
    /// version stamp belongs to. Retention consults the serving graph's
    /// mutation log, which describes *that graph's* history only — an
    /// entry stamped against a diverged sibling (caches move across
    /// engines; `DynamicGraph` is cloneable) must never be re-validated
    /// against it.
    lineage: GraphVersion,
    /// `{v : S(s, v | G − {t}) <= k - 1}` at build time, compressed
    /// (see [`CompactBits`]) — footprints cover the bounded reach, not
    /// the vertex space, so they are charged O(reach) bytes.
    reach_s: CompactBits,
    /// `{v : S(v, t | G − {s}) <= k - 1}` at build time.
    reach_t: CompactBits,
}

impl IndexFootprint {
    /// Derives the footprint from the boundary distance maps a build
    /// left in its scratch buffers, bound to one graph lineage.
    pub(crate) fn from_dist_maps(
        lineage: GraphVersion,
        dist_s: &EpochMap,
        dist_t: &EpochMap,
        k: u32,
    ) -> Self {
        let bound = k.saturating_sub(1);
        IndexFootprint {
            lineage,
            reach_s: CompactBits::from_reach(dist_s, bound),
            reach_t: CompactBits::from_reach(dist_t, bound),
        }
    }

    /// Captures the footprint a build just left in `scratch`, for query
    /// hop bound `k`, stamped against one graph lineage. The single
    /// capture point shared by the planner-side and the
    /// [`DynamicEngine`](crate::DynamicEngine)-side callers — both used
    /// to duplicate this dist-map walk.
    pub(crate) fn capture(lineage: GraphVersion, scratch: &BuildScratch, k: u32) -> Self {
        let (dist_s, dist_t) = scratch.dist_maps();
        IndexFootprint::from_dist_maps(lineage, dist_s, dist_t, k)
    }

    /// The mutation lineage this footprint was stamped against.
    pub(crate) fn lineage(&self) -> GraphVersion {
        self.lineage
    }

    /// Whether a **removed** edge `(u, w)` could have carried a cached
    /// *result* path: only if `u` is within `k - 1` hops of `s` and `w`
    /// within `k - 1` hops of `t` — every edge of every result path
    /// satisfies both. (Plan entries use the tighter index-partition
    /// check instead, because they also cache the index tables.)
    pub(crate) fn removal_touches_results(&self, u: VertexId, w: VertexId) -> bool {
        self.reach_s.contains(u) && self.reach_t.contains(w)
    }

    /// For an **inserted** edge `(u, w)`: whether it starts inside the
    /// `s`-reach and whether it ends inside the `t`-reach. Callers
    /// accumulate these as sticky flags; an entry dies once both have
    /// ever been set (the same rule `CacheEntry::survives_delta` uses).
    pub(crate) fn insertion_touches(&self, u: VertexId, w: VertexId) -> (bool, bool) {
        (self.reach_s.contains(u), self.reach_t.contains(w))
    }

    /// Approximate heap footprint of the two reach sets, in bytes —
    /// byte-budgeted caches charge footprint-carrying entries for them.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.reach_s.heap_bytes() + self.reach_t.heap_bytes()
    }
}

#[derive(Debug)]
struct CacheEntry {
    version: GraphVersion,
    plan: PhysicalPlan,
    /// Shared so a concurrent cache ([`SharedPlanCache`]) can hand the
    /// index to an executing worker without cloning the tables and
    /// without holding its shard lock for the duration of the query.
    index: Arc<Index>,
    last_used: u64,
    /// Reach footprint enabling surgical retention; `None` for entries
    /// stored by engines that do not track deltas (plain snapshots).
    footprint: Option<IndexFootprint>,
    /// Sticky: some delta insertion since build starts inside `reach_s`.
    src_touched: bool,
    /// Sticky: some delta insertion since build ends inside `reach_t`.
    dst_touched: bool,
}

impl CacheEntry {
    /// Whether this entry's results are provably unchanged by the
    /// mutations applied after `self.version`, updating the sticky
    /// insertion flags along the way.
    fn survives_delta(&mut self, graph: &DynamicGraph) -> bool {
        let Some(footprint) = &self.footprint else {
            return false;
        };
        if footprint.lineage != graph.lineage() {
            // The entry was stamped against a different graph value's
            // history; this graph's log cannot re-validate it.
            return false;
        }
        let Some(mutations) = graph.mutations_since(self.version) else {
            return false; // delta log window slid past this entry
        };
        for (kind, (u, w)) in mutations {
            match kind {
                EdgeMutation::Removed => {
                    // Only edges with both endpoints in X can sit in the
                    // index's neighbor tables or on a result path.
                    if self.index.vertices.binary_search(&u).is_ok()
                        && self.index.vertices.binary_search(&w).is_ok()
                    {
                        return false;
                    }
                }
                EdgeMutation::Inserted => {
                    if footprint.reach_s.contains(u) {
                        self.src_touched = true;
                    }
                    if footprint.reach_t.contains(w) {
                        self.dst_touched = true;
                    }
                    if self.src_touched && self.dst_touched {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Default number of cached plans per engine. An entry holds a
/// light-weight index (typically a few KB; bounded by the per-query
/// admissible subgraph), so the default keeps worst-case cache memory in
/// the low megabytes.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

/// An LRU cache of `(PhysicalPlan, Index)` pairs keyed by [`PlanKey`]
/// and guarded by a [`GraphVersion`] epoch.
///
/// A lookup whose stored version differs from the serving graph's
/// current version discards the entry (counted as an invalidation): a
/// [`DynamicGraph`] mutation advances the
/// epoch, so snapshots taken after a mutation can never be served stale
/// plans, while snapshots of an unmutated overlay keep hitting.
///
/// The cache is an independent value so it can outlive any single
/// engine: move it between engines over successive snapshots with
/// [`QueryEngine::with_cache`](crate::QueryEngine::with_cache) /
/// [`QueryEngine::into_cache`](crate::QueryEngine::into_cache).
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    // Fx keying on PlanKey: the deliberate PR 7 hashing choice — SipHash
    // stays out of the plan-lookup hot path.
    entries: FxHashMap<PlanKey, CacheEntry>,
    clock: u64,
    stats: PlanCacheStats,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` entries. Capacity 0 disables
    /// caching entirely (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            entries: FxHashMap::with_capacity_and_hasher(
                capacity.min(1024),
                FxBuildHasher::default(),
            ),
            clock: 0,
            stats: PlanCacheStats::default(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Aggregate hit/miss/invalidation/eviction counts.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Drops every entry (statistics are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Looks up a fresh entry for `key` at graph `version`. A stale
    /// entry (older version) is removed and counted as an invalidation;
    /// both stale and absent count as misses.
    pub(crate) fn lookup(
        &mut self,
        key: &PlanKey,
        version: GraphVersion,
    ) -> Option<(&PhysicalPlan, &Arc<Index>)> {
        // Entry API: one hash probe whether the lookup hits, invalidates,
        // or misses.
        match self.entries.entry(*key) {
            std::collections::hash_map::Entry::Occupied(occupied) => {
                if occupied.get().version == version {
                    self.clock += 1;
                    self.stats.hits += 1;
                    let entry = occupied.into_mut();
                    entry.last_used = self.clock;
                    Some((&entry.plan, &entry.index))
                } else {
                    occupied.remove();
                    self.stats.invalidations += 1;
                    self.stats.misses += 1;
                    None
                }
            }
            std::collections::hash_map::Entry::Vacant(_) => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a plan + index for `key` at `version`, evicting the least
    /// recently used entry when at capacity.
    pub(crate) fn insert(
        &mut self,
        key: PlanKey,
        version: GraphVersion,
        plan: PhysicalPlan,
        index: Index,
    ) {
        self.insert_arc(key, version, plan, Arc::new(index));
    }

    /// As [`insert`](Self::insert), storing an already-shared index so a
    /// caller that keeps executing on the same index (the catalog's
    /// plan-at-submit path) never clones the tables.
    pub(crate) fn insert_arc(
        &mut self,
        key: PlanKey,
        version: GraphVersion,
        plan: PhysicalPlan,
        index: Arc<Index>,
    ) {
        self.insert_entry(key, version, plan, index, None);
    }

    /// As [`insert`](Self::insert), additionally recording the reach
    /// footprint that makes the entry eligible for surgical retention
    /// under [`lookup_on_overlay`](Self::lookup_on_overlay).
    pub(crate) fn insert_with_footprint(
        &mut self,
        key: PlanKey,
        version: GraphVersion,
        plan: PhysicalPlan,
        index: Index,
        footprint: Option<IndexFootprint>,
    ) {
        self.insert_entry(key, version, plan, Arc::new(index), footprint);
    }

    fn insert_entry(
        &mut self,
        key: PlanKey,
        version: GraphVersion,
        plan: PhysicalPlan,
        index: Arc<Index>,
        footprint: Option<IndexFootprint>,
    ) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&lru);
                self.stats.evictions += 1;
            }
        }
        self.clock += 1;
        self.entries.insert(
            key,
            CacheEntry {
                version,
                plan,
                index,
                last_used: self.clock,
                footprint,
                src_touched: false,
                dst_touched: false,
            },
        );
    }

    /// Looks up an entry for `key` against a live [`DynamicGraph`].
    ///
    /// Beyond the plain version-equality check of
    /// [`lookup`](Self::lookup), an entry stamped at an *older* version
    /// is re-validated against the overlay's mutation log: if every
    /// mutation since the stamp is provably irrelevant to the entry's
    /// recorded footprint (see [`IndexFootprint`]), the entry is
    /// re-stamped to the current version and served — a hit (counted in
    /// [`PlanCacheStats::retained`]) instead of a rebuild. Otherwise the
    /// entry is discarded as an invalidation.
    pub(crate) fn lookup_on_overlay(
        &mut self,
        key: &PlanKey,
        graph: &DynamicGraph,
    ) -> Option<(&PhysicalPlan, &Arc<Index>)> {
        let version = graph.version();
        enum Outcome {
            Absent,
            Stale,
            Fresh,
            Retained,
        }
        let outcome = match self.entries.get_mut(key) {
            None => Outcome::Absent,
            Some(entry) if entry.version == version => Outcome::Fresh,
            Some(entry) => {
                if entry.survives_delta(graph) {
                    entry.version = version;
                    Outcome::Retained
                } else {
                    Outcome::Stale
                }
            }
        };
        match outcome {
            Outcome::Absent => {
                self.stats.misses += 1;
                None
            }
            Outcome::Stale => {
                self.entries.remove(key);
                self.stats.invalidations += 1;
                self.stats.misses += 1;
                None
            }
            Outcome::Fresh | Outcome::Retained => {
                self.clock += 1;
                self.stats.hits += 1;
                if matches!(outcome, Outcome::Retained) {
                    self.stats.retained += 1;
                }
                let entry = self.entries.get_mut(key).expect("entry is present");
                entry.last_used = self.clock;
                Some((&entry.plan, &entry.index))
            }
        }
    }
}

/// Aggregate statistics of a [`SharedPlanCache`], read without locking.
///
/// Unlike [`PlanCacheStats`], lookups that never reached the cache are
/// counted too ([`bypasses`](SharedCacheStats::bypasses)), and
/// [`lookups`](SharedCacheStats::lookups) is maintained as its *own*
/// atomic counter — so `hits + misses + bypasses == lookups` is a real
/// cross-thread consistency invariant, not an identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Cache consultations plus bypasses (one per evaluated request).
    pub lookups: u64,
    /// Lookups served from a shard.
    pub hits: u64,
    /// Lookups that found nothing usable (including invalidations).
    pub misses: u64,
    /// Requests that never consulted the cache (uncacheable constraint,
    /// `bypass_cache`, or capacity 0).
    pub bypasses: u64,
    /// Entries discarded because the graph version moved on.
    pub invalidations: u64,
    /// Entries discarded to make room (per-shard LRU).
    pub evictions: u64,
    /// Hits served across a graph mutation via surgical retention.
    pub retained: u64,
}

impl SharedCacheStats {
    /// Hit fraction over all lookups (bypasses included; 0 when nothing
    /// was looked up).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// The stats accumulated since an earlier snapshot of the same cache.
    pub fn since(&self, earlier: &SharedCacheStats) -> SharedCacheStats {
        SharedCacheStats {
            lookups: self.lookups - earlier.lookups,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            bypasses: self.bypasses - earlier.bypasses,
            invalidations: self.invalidations - earlier.invalidations,
            evictions: self.evictions - earlier.evictions,
            retained: self.retained - earlier.retained,
        }
    }
}

/// Default shard count of a [`SharedPlanCache`]: enough to keep lock
/// contention negligible for realistic worker pools while keeping the
/// per-shard LRU meaningful.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// A concurrently readable plan/index cache: per-shard locking over
/// [`PlanCache`], with aggregate statistics kept in atomics.
///
/// This is the cache behind
/// [`PathEnumService`](crate::service::PathEnumService): many worker
/// threads share one warm working set over one graph. Keys hash to a
/// shard; each shard is an independent LRU [`PlanCache`] behind its own
/// mutex, so two workers looking up different shards never contend, and
/// a worker holding a hit *executes outside the lock* (entries hand out
/// [`Arc<Index>`] clones — the shard lock covers only the map probe).
///
/// Statistics ([`stats`](Self::stats)) are atomics accumulated from the
/// per-shard counters, plus service-level counters the per-engine cache
/// has no use for: `bypasses` and an independently maintained `lookups`
/// total satisfying `hits + misses + bypasses == lookups`.
#[derive(Debug)]
pub struct SharedPlanCache {
    shards: Box<[Mutex<PlanCache>]>,
    capacity: usize,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    retained: AtomicU64,
}

impl Default for SharedPlanCache {
    fn default() -> Self {
        SharedPlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY, DEFAULT_CACHE_SHARDS)
    }
}

impl SharedPlanCache {
    /// A cache of `capacity` total entries spread over `shards` shards
    /// (both clamped to sane minimums; capacity 0 disables caching).
    /// Because every shard gets the same LRU window, the capacity is
    /// rounded **up** to a multiple of the shard count —
    /// [`capacity`](Self::capacity) reports the rounded, enforced value.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).min(capacity.max(1));
        let per_shard = capacity.div_ceil(shards);
        SharedPlanCache {
            shards: (0..shards)
                .map(|_| Mutex::new(PlanCache::new(if capacity == 0 { 0 } else { per_shard })))
                .collect(),
            capacity: per_shard * shards,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            retained: AtomicU64::new(0),
        }
    }

    /// Total entry capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Current number of entries (sums the shards; takes each lock
    /// briefly).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| crate::sync::lock_recovering(s).len())
            .sum()
    }

    /// Whether no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent-enough snapshot of the aggregate statistics. Each
    /// counter is read atomically; the set is not a single atomic
    /// snapshot, but quiescent reads (no in-flight lookups) are exact.
    pub fn stats(&self) -> SharedCacheStats {
        // ordering: advisory stats reads; outcome counters trail the
        // lookup counter, and quiescent reads balance exactly — nothing
        // orders across fields.
        SharedCacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            retained: self.retained.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry in every shard (statistics are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            crate::sync::lock_recovering(shard).clear();
        }
    }

    fn shard_for(&self, key: &PlanKey) -> &Mutex<PlanCache> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Records a request that was evaluated without consulting the cache.
    pub(crate) fn note_bypass(&self) {
        // ordering: advisory monotone counters; see stats() for the
        // accounting invariant they feed.
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks up a fresh entry, returning an owned plan and a shared
    /// handle to its index; the shard lock is released before returning.
    pub(crate) fn lookup(
        &self,
        key: &PlanKey,
        version: GraphVersion,
    ) -> Option<(PhysicalPlan, Arc<Index>)> {
        let out;
        let delta;
        {
            let mut shard = crate::sync::lock_recovering(self.shard_for(key));
            let before = shard.stats();
            out = shard
                .lookup(key, version)
                .map(|(plan, index)| (*plan, Arc::clone(index)));
            delta = diff_stats(shard.stats(), before);
        }
        // Paranoid-only: the delta is thread-local, so this accounting
        // check is race-free — one shard probe records exactly one
        // hit-or-miss outcome.
        #[cfg(feature = "paranoid")]
        assert_eq!(
            delta.hits + delta.misses,
            1,
            "plan-cache accounting delta out of balance: {delta:?}"
        );
        // ordering: advisory monotone counter; publishes no other memory.
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.accumulate(delta);
        out
    }

    /// Stores a plan + index for `key` at `version` in its shard.
    pub(crate) fn insert(
        &self,
        key: PlanKey,
        version: GraphVersion,
        plan: PhysicalPlan,
        index: Index,
    ) {
        self.insert_arc(key, version, plan, Arc::new(index));
    }

    /// As [`insert`](Self::insert), storing an already-shared index (the
    /// catalog plans at submit time and executes on the same `Arc`).
    pub(crate) fn insert_arc(
        &self,
        key: PlanKey,
        version: GraphVersion,
        plan: PhysicalPlan,
        index: Arc<Index>,
    ) {
        let delta;
        {
            let mut shard = crate::sync::lock_recovering(self.shard_for(&key));
            let before = shard.stats();
            shard.insert_arc(key, version, plan, index);
            delta = diff_stats(shard.stats(), before);
        }
        self.accumulate(delta);
    }

    fn accumulate(&self, delta: PlanCacheStats) {
        // Touch only the counters that moved: stats reads stay cheap and
        // the common path (a clean hit) is two atomic adds.
        // ordering: advisory monotone counters folded in after the shard
        // lock drops; each is a single-location RMW (never lost), and no
        // reader derives decisions from a mid-flight cross-counter view.
        if delta.hits > 0 {
            self.hits.fetch_add(delta.hits, Ordering::Relaxed);
        }
        if delta.misses > 0 {
            self.misses.fetch_add(delta.misses, Ordering::Relaxed);
        }
        if delta.invalidations > 0 {
            self.invalidations
                .fetch_add(delta.invalidations, Ordering::Relaxed);
        }
        if delta.evictions > 0 {
            self.evictions.fetch_add(delta.evictions, Ordering::Relaxed);
        }
        if delta.retained > 0 {
            self.retained.fetch_add(delta.retained, Ordering::Relaxed);
        }
    }
}

fn diff_stats(after: PlanCacheStats, before: PlanCacheStats) -> PlanCacheStats {
    PlanCacheStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        invalidations: after.invalidations - before.invalidations,
        evictions: after.evictions - before.evictions,
        retained: after.retained - before.retained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::sink::CollectingSink;

    fn plan_for(graph: &CsrGraph, k: u32) -> (PhysicalPlan, Index) {
        let query = Query::new(S, T, k).unwrap();
        let index = Index::build(graph, query);
        let mut timings = PhaseTimings::default();
        let plan = plan_on_index(&index, PathEnumConfig::default(), &mut timings);
        (plan, index)
    }

    #[test]
    fn plan_records_the_decision_and_index_shape() {
        let g = figure1_graph();
        let (plan, index) = plan_for(&g, 4);
        assert_eq!(plan.method, Method::IdxDfs);
        assert_eq!(plan.cut, None);
        assert!(!plan.forced);
        assert_eq!(plan.constraint, ConstraintKind::None);
        assert_eq!(plan.threads, 1);
        assert_eq!(plan.index_edges, index.num_edges());
        assert_eq!(plan.index_vertices, index.num_vertices());
        assert!(!plan.is_provably_empty());
    }

    #[test]
    fn forced_join_plans_carry_cut_and_costs() {
        let g = figure1_graph();
        let query = Query::new(S, T, 4).unwrap();
        let index = Index::build(&g, query);
        let config = PathEnumConfig {
            force: Some(Method::IdxJoin),
            ..PathEnumConfig::default()
        };
        let mut timings = PhaseTimings::default();
        let plan = plan_on_index(&index, config, &mut timings);
        assert_eq!(plan.method, Method::IdxJoin);
        assert!(plan.forced);
        let cut = plan.cut.unwrap();
        assert!((1..4).contains(&cut));
        assert!(plan.t_dfs.is_some() && plan.t_join.is_some());
        assert!(plan.full_estimate.is_some());
    }

    #[test]
    fn tau_zero_routes_through_the_optimizer() {
        let g = figure1_graph();
        let query = Query::new(S, T, 4).unwrap();
        let index = Index::build(&g, query);
        let config = PathEnumConfig {
            tau: 0,
            force: None,
        };
        let mut timings = PhaseTimings::default();
        let plan = plan_on_index(&index, config, &mut timings);
        assert_eq!(plan.full_estimate, Some(6), "Figure 1, k=4 has 6 walks");
        assert!(plan.t_dfs.is_some() && plan.t_join.is_some());
    }

    #[test]
    fn executor_interprets_a_plan_faithfully() {
        let g = figure1_graph();
        let (plan, index) = plan_for(&g, 4);
        let mut sink = CollectingSink::default();
        let counters = Executor::execute(&index, &plan, &mut sink);
        assert_eq!(counters.results, 5);
        assert_eq!(sink.paths.len(), 5);
    }

    #[test]
    fn display_renders_an_explain_block() {
        let g = figure1_graph();
        let (plan, _) = plan_for(&g, 4);
        let text = plan.to_string();
        assert!(text.contains("PhysicalPlan q(s=0, t=1, k=4)"));
        assert!(text.contains("method: IDX-DFS"));
        assert!(text.contains("constraint: none"));
    }

    #[test]
    fn cache_hits_misses_and_invalidates_by_version() {
        let g = figure1_graph();
        let (plan, index) = plan_for(&g, 4);
        let key = PlanKey {
            s: S,
            t: T,
            k: 4,
            namespace: 0,
            fingerprint: 0,
            method: None,
            tau: 100_000,
        };
        let mut cache = PlanCache::new(4);
        let v1 = g.version();
        assert!(cache.lookup(&key, v1).is_none());
        cache.insert(key, v1, plan, index.clone());
        assert!(cache.lookup(&key, v1).is_some());

        let v2 = GraphVersion::next();
        assert!(cache.lookup(&key, v2).is_none(), "stale entry discarded");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.invalidations, 1);
        assert!(cache.is_empty());
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let g = figure1_graph();
        let (plan, index) = plan_for(&g, 4);
        let v = g.version();
        let key = |k: u32| PlanKey {
            s: S,
            t: T,
            k,
            namespace: 0,
            fingerprint: 0,
            method: None,
            tau: 100_000,
        };
        let mut cache = PlanCache::new(2);
        cache.insert(key(2), v, plan, index.clone());
        cache.insert(key(3), v, plan, index.clone());
        assert!(cache.lookup(&key(2), v).is_some(), "refresh key 2");
        cache.insert(key(4), v, plan, index.clone());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&key(2), v).is_some(), "recently used survives");
        assert!(cache.lookup(&key(3), v).is_none(), "LRU entry evicted");
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let g = figure1_graph();
        let (plan, index) = plan_for(&g, 4);
        let v = g.version();
        let key = PlanKey {
            s: S,
            t: T,
            k: 4,
            namespace: 0,
            fingerprint: 0,
            method: None,
            tau: 100_000,
        };
        let mut cache = PlanCache::new(0);
        cache.insert(key, v, plan, index);
        assert!(cache.is_empty());
        assert!(cache.lookup(&key, v).is_none());
    }

    fn shared_key(k: u32) -> PlanKey {
        PlanKey {
            s: S,
            t: T,
            k,
            namespace: 0,
            fingerprint: 0,
            method: None,
            tau: 100_000,
        }
    }

    #[test]
    fn shared_cache_counts_consistently() {
        let g = figure1_graph();
        let (plan, index) = plan_for(&g, 4);
        let v = g.version();
        let cache = SharedPlanCache::new(8, 4);
        assert!(cache.lookup(&shared_key(4), v).is_none());
        cache.insert(shared_key(4), v, plan, index.clone());
        assert!(cache.lookup(&shared_key(4), v).is_some());
        cache.note_bypass();

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.bypasses, 1);
        assert_eq!(stats.lookups, 3);
        assert_eq!(stats.hits + stats.misses + stats.bypasses, stats.lookups);
        assert_eq!(cache.len(), 1);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shared_cache_invalidates_by_version_and_diffs_snapshots() {
        let g = figure1_graph();
        let (plan, index) = plan_for(&g, 4);
        let cache = SharedPlanCache::new(8, 2);
        let v1 = g.version();
        cache.insert(shared_key(4), v1, plan, index);
        let before = cache.stats();
        let v2 = GraphVersion::next();
        assert!(cache.lookup(&shared_key(4), v2).is_none());
        let delta = cache.stats().since(&before);
        assert_eq!(delta.invalidations, 1);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.lookups, 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_cache_is_safe_under_concurrent_lookups() {
        let g = figure1_graph();
        let (plan, index) = plan_for(&g, 4);
        let v = g.version();
        let cache = SharedPlanCache::new(32, 4);
        for k in 2..6u32 {
            cache.insert(shared_key(k), v, plan, index.clone());
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for round in 0..50u32 {
                        let k = 2 + (round % 4);
                        let (plan, idx) = cache.lookup(&shared_key(k), v).expect("entry present");
                        // Every hit hands out the same shared index.
                        assert_eq!(plan.query.k, idx.query().k);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits, 4 * 50);
        assert_eq!(stats.hits + stats.misses + stats.bypasses, stats.lookups);
    }

    #[test]
    fn shared_cache_capacity_reports_the_enforced_rounding() {
        // 10 entries over 8 shards rounds up to 2 per shard; the
        // reported capacity is the enforced 16, not the requested 10.
        let cache = SharedPlanCache::new(10, 8);
        assert_eq!(cache.num_shards(), 8);
        assert_eq!(cache.capacity(), 16);
        // Exact divisions are unchanged.
        assert_eq!(SharedPlanCache::new(8, 4).capacity(), 8);
        assert_eq!(SharedPlanCache::new(0, 4).capacity(), 0);
    }

    #[test]
    fn shared_cache_zero_capacity_disables_storage() {
        let g = figure1_graph();
        let (plan, index) = plan_for(&g, 4);
        let cache = SharedPlanCache::new(0, 4);
        cache.insert(shared_key(4), g.version(), plan, index);
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
    }
}

//! Reference implementations used for validation.
//!
//! These are deliberately simple, index-free algorithms that the test
//! suite trusts as ground truth: a brute-force path enumerator (plain
//! backtracking with only the hop budget as pruning) and an exact dynamic
//! program counting the hop-constrained *walks* `W(s, t, k, G)` of
//! Definition 2.1 — the quantity the full-fledged estimator computes and
//! the denominator of the paper's `delta_P / delta_W` analysis.

use pathenum_graph::{CsrGraph, VertexId};

use crate::query::Query;
use crate::sink::{PathSink, SearchControl};

/// Brute-force enumeration of `P(s, t, k, G)` by backtracking on the raw
/// graph. No index, no distance pruning — only the hop budget and the
/// simple-path check. Used as ground truth in tests; exponential in the
/// worst case.
pub fn brute_force_paths(graph: &CsrGraph, query: Query, sink: &mut dyn PathSink) {
    let mut partial: Vec<VertexId> = vec![query.s];
    brute(graph, query, &mut partial, sink);
}

fn brute(
    graph: &CsrGraph,
    query: Query,
    partial: &mut Vec<VertexId>,
    sink: &mut dyn PathSink,
) -> SearchControl {
    let v = *partial.last().expect("partial contains s");
    if v == query.t {
        return sink.emit(partial);
    }
    if partial.len() as u32 - 1 == query.k {
        return SearchControl::Continue;
    }
    for &n in graph.out_neighbors(v) {
        if n == query.s || partial.contains(&n) {
            continue;
        }
        partial.push(n);
        let control = brute(graph, query, partial, sink);
        partial.pop();
        if control == SearchControl::Stop {
            return SearchControl::Stop;
        }
    }
    SearchControl::Continue
}

/// Exact count of the walks `W(s, t, k, G)` from `s` to `t` with at most
/// `k` edges whose interior vertices avoid `{s, t}` (Definition 2.1).
///
/// Dynamic program over positions: `f[i][v]` = number of such walks of
/// length `i` from `s` ending at `v`. Saturating arithmetic — counts can
/// explode combinatorially.
pub fn count_walks(graph: &CsrGraph, query: Query) -> u64 {
    let n = graph.num_vertices();
    let mut current = vec![0u64; n];
    let mut next = vec![0u64; n];
    current[query.s as usize] = 1;
    let mut total: u64 = 0;
    for _ in 1..=query.k {
        next.iter_mut().for_each(|x| *x = 0);
        for v in graph.vertices() {
            let ways = current[v as usize];
            if ways == 0 || v == query.t {
                continue; // walks stop at t
            }
            for &w in graph.out_neighbors(v) {
                if w == query.s {
                    continue; // interior vertices avoid s
                }
                next[w as usize] = next[w as usize].saturating_add(ways);
            }
        }
        total = total.saturating_add(next[query.t as usize]);
        std::mem::swap(&mut current, &mut next);
    }
    total
}

/// Exact count of `P(s, t, k, G)` via [`brute_force_paths`].
pub fn count_paths(graph: &CsrGraph, query: Query) -> u64 {
    let mut sink = crate::sink::CountingSink::default();
    brute_force_paths(graph, query, &mut sink);
    sink.count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::sink::CollectingSink;
    use pathenum_graph::GraphBuilder;

    #[test]
    fn brute_force_finds_the_figure1_paths() {
        let g = figure1_graph();
        let mut sink = CollectingSink::default();
        brute_force_paths(&g, Query::new(S, T, 4).unwrap(), &mut sink);
        assert_eq!(sink.paths.len(), 5);
    }

    #[test]
    fn example_5_2_walk_counts() {
        // Graph G0 of Figure 5a: two parallel binary-tree-ish lanes where
        // every walk is a path: s -> {v0, v1} -> {v2, v3} -> {v4, v5} -> t
        // with full bipartite steps gives 8 walks = 8 paths.
        let mut b = GraphBuilder::new(8);
        let (s, t) = (0u32, 7u32);
        let (v0, v1, v2, v3, v4, v5) = (1, 2, 3, 4, 5, 6);
        b.add_edges([
            (s, v0),
            (s, v1),
            (v0, v2),
            (v0, v3),
            (v1, v2),
            (v1, v3),
            (v2, v4),
            (v2, v5),
            (v3, v4),
            (v3, v5),
            (v4, t),
            (v5, t),
        ])
        .unwrap();
        let g = b.finish();
        let q = Query::new(s, t, 4).unwrap();
        assert_eq!(count_walks(&g, q), 8);
        assert_eq!(count_paths(&g, q), 8);
    }

    #[test]
    fn walks_exceed_paths_on_cyclic_graphs() {
        // G1-style example: a 2-cycle next to s inflates walks, not paths.
        let mut b = GraphBuilder::new(4);
        let (s, a, bb, t) = (0u32, 1u32, 2u32, 3u32);
        b.add_edges([(s, a), (a, bb), (bb, a), (a, t)]).unwrap();
        let g = b.finish();
        let q = Query::new(s, t, 4).unwrap();
        // Paths: (s,a,t). Walks: (s,a,t), (s,a,b,a,t).
        assert_eq!(count_paths(&g, q), 1);
        assert_eq!(count_walks(&g, q), 2);
    }

    #[test]
    fn walks_do_not_pass_through_t_midway() {
        // s -> t -> x -> t would be a walk only if interior could contain t.
        let mut b = GraphBuilder::new(3);
        let (s, t, x) = (0u32, 1u32, 2u32);
        b.add_edges([(s, t), (t, x), (x, t)]).unwrap();
        let g = b.finish();
        let q = Query::new(s, t, 4).unwrap();
        assert_eq!(count_walks(&g, q), 1);
        assert_eq!(count_paths(&g, q), 1);
    }

    #[test]
    fn walks_do_not_reenter_s() {
        // s -> a -> s -> a -> t style walks are excluded.
        let mut b = GraphBuilder::new(3);
        let (s, a, t) = (0u32, 1u32, 2u32);
        b.add_edges([(s, a), (a, s), (a, t)]).unwrap();
        let g = b.finish();
        let q = Query::new(s, t, 5).unwrap();
        assert_eq!(count_walks(&g, q), 1);
    }

    #[test]
    fn hop_budget_is_respected() {
        let g = figure1_graph();
        let mut sink = CollectingSink::default();
        brute_force_paths(&g, Query::new(S, T, 3).unwrap(), &mut sink);
        for p in &sink.paths {
            assert!(p.len() <= 4);
        }
        // k=3 drops the three 4-edge paths.
        assert_eq!(sink.paths.len(), 2);
    }
}

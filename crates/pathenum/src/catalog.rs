//! The multi-graph catalog: many named graphs, per-tenant plan caches,
//! epoch-swapped publishing, and admission-controlled serving.
//!
//! [`PathEnumService`](crate::PathEnumService) serves exactly one graph.
//! A fleet deployment serves *many* — per product surface, per region,
//! per snapshot — to many tenants at once, and replaces graphs while
//! queries are in flight. [`GraphCatalog`] is that registry:
//!
//! * every **named graph** is a [`GraphHandle`] plus its own family of
//!   [`SharedPlanCache`]s, one per tenant, each bounded by the
//!   per-tenant/per-graph entry quota (eviction accounting included via
//!   [`SharedCacheStats::evictions`]). One tenant's working set cannot
//!   evict another's, and one graph's caches are invisible to another's;
//! * [`publish`](GraphCatalog::publish) performs an **atomic epoch
//!   swap**: the served [`GraphHandle`] is replaced under a lock that
//!   covers only the pointer, while in-flight queries keep executing on
//!   the epoch they snapshotted at submit — no torn reads, ever. Stale
//!   plan-cache entries die lazily on their next lookup because the new
//!   graph carries a new [`GraphVersion`](pathenum_graph::GraphVersion);
//!   caches of *other* graphs are untouched (invalidation is per graph,
//!   not global);
//! * [`CatalogService`] routes a [`CatalogRequest`] (graph name, tenant,
//!   query) through the catalog and an
//!   [`AdmissionController`]:
//!   each request is **planned at submit** on the caller's thread
//!   (warming the tenant's plan cache either way), its
//!   [modeled cost](crate::plan::PhysicalPlan::modeled_cost) charged
//!   against the in-flight budget, and the admitted work dispatched on
//!   the [`Lane`] its cost earned. Over-budget requests are rejected
//!   *fast* — the [`CatalogTicket`] resolves immediately with
//!   [`PathEnumError::Overloaded`] instead of queueing forever.
//!
//! Per-request deadlines start when a worker picks the job up, so queue
//! wait never silently consumes a request's time budget.
//!
//! ```
//! use std::sync::Arc;
//! use pathenum::catalog::{CatalogConfig, CatalogRequest, CatalogService};
//! use pathenum::{PathEnumConfig, QueryRequest};
//! use pathenum_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
//! let graph = Arc::new(b.finish());
//!
//! let service = CatalogService::new(PathEnumConfig::default(), CatalogConfig::default());
//! service.catalog().register("social", Arc::clone(&graph));
//!
//! let request = CatalogRequest::new("social", "alice", QueryRequest::paths(0, 3).max_hops(3));
//! let outcome = service.submit(request).wait_outcome();
//! assert_eq!(outcome.response.unwrap().num_results(), 2);
//! assert_eq!(outcome.epoch, Some(0));
//! assert!(outcome.decision.unwrap().admitted());
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pathenum_graph::{GraphHandle, NeighborAccess};

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionDecision, Lane};
use crate::engine::{
    execute_collecting, execute_on_plan, preflight_stop, replay_result_hit, result_key,
};
use crate::optimizer::PathEnumConfig;
use crate::parallel::resolve_threads;
use crate::plan::{
    effective_config, CacheOutcome, PlanKey, Planner, SharedCacheStats, SharedPlanCache,
};
use crate::request::{PathEnumError, QueryRequest, QueryResponse, Termination};
use crate::results::{ResultCacheStats, ResultKey, SharedResultCache, TeeSink};
use crate::service::{with_build_scratch, PoolTask, TicketOutcome, TicketState, WorkerPool};
use crate::stats::PhaseTimings;

/// Default per-tenant/per-graph plan-cache entry quota.
pub const DEFAULT_TENANT_CACHE_QUOTA: usize = 32;

/// One immutable published generation of a named graph. In-flight
/// queries hold the `Arc` of the epoch they were submitted against, so
/// a concurrent [`publish`](GraphCatalog::publish) never tears a read.
struct ServingEpoch {
    /// Generation counter: 0 at registration, +1 per publish.
    epoch: u64,
    graph: GraphHandle,
}

/// Everything the catalog tracks for one graph name. The tenant caches
/// live here — *outside* the epoch — so a publish keeps them, and stale
/// entries are invalidated lazily (and per graph) by the new graph's
/// version on their next lookup.
struct GraphState {
    current: Mutex<Arc<ServingEpoch>>,
    tenants: Mutex<HashMap<String, Arc<SharedPlanCache>>>,
    results: Mutex<HashMap<String, Arc<SharedResultCache>>>,
}

impl GraphState {
    fn snapshot(&self) -> Arc<ServingEpoch> {
        Arc::clone(&crate::sync::lock_recovering(&self.current))
    }

    fn tenant_cache(&self, tenant: &str, quota: usize, shards: usize) -> Arc<SharedPlanCache> {
        let mut tenants = crate::sync::lock_recovering(&self.tenants);
        match tenants.get(tenant) {
            Some(cache) => Arc::clone(cache),
            None => {
                let cache = Arc::new(SharedPlanCache::new(quota, shards));
                tenants.insert(tenant.to_string(), Arc::clone(&cache));
                cache
            }
        }
    }

    fn tenant_results(&self, tenant: &str, bytes: usize, shards: usize) -> Arc<SharedResultCache> {
        let mut results = crate::sync::lock_recovering(&self.results);
        match results.get(tenant) {
            Some(cache) => Arc::clone(cache),
            None => {
                let cache = Arc::new(SharedResultCache::new(bytes, shards));
                results.insert(tenant.to_string(), Arc::clone(&cache));
                cache
            }
        }
    }
}

/// A registry of named graphs, each served at an explicit epoch with
/// per-tenant bounded plan caches. See the [module docs](self).
pub struct GraphCatalog {
    graphs: Mutex<HashMap<String, Arc<GraphState>>>,
    tenant_cache_quota: usize,
    cache_shards: usize,
    result_cache_bytes: usize,
}

impl std::fmt::Debug for GraphCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphCatalog")
            .field("graphs", &self.names())
            .field("tenant_cache_quota", &self.tenant_cache_quota)
            .finish_non_exhaustive()
    }
}

impl Default for GraphCatalog {
    fn default() -> Self {
        GraphCatalog::new()
    }
}

impl GraphCatalog {
    /// An empty catalog with the default per-tenant cache quota.
    pub fn new() -> Self {
        GraphCatalog::with_quota(DEFAULT_TENANT_CACHE_QUOTA, 4)
    }

    /// An empty catalog with an explicit per-tenant/per-graph plan-cache
    /// entry quota and shard count (both clamped by
    /// [`SharedPlanCache`]'s own rules; quota `0` disables caching).
    /// Result caching stays off; see [`with_limits`](Self::with_limits).
    pub fn with_quota(tenant_cache_quota: usize, cache_shards: usize) -> Self {
        GraphCatalog::with_limits(tenant_cache_quota, cache_shards, 0)
    }

    /// As [`with_quota`](Self::with_quota), additionally giving every
    /// tenant a per-graph [`SharedResultCache`] of `result_cache_bytes`
    /// (`0` — the default everywhere else — keeps the result layer off).
    pub fn with_limits(
        tenant_cache_quota: usize,
        cache_shards: usize,
        result_cache_bytes: usize,
    ) -> Self {
        GraphCatalog {
            graphs: Mutex::new(HashMap::new()),
            tenant_cache_quota,
            cache_shards,
            result_cache_bytes,
        }
    }

    /// Registers (or wholly replaces, caches included) `name` at epoch
    /// 0. Accepts any representation convertible to a [`GraphHandle`]:
    /// heap `Arc<CsrGraph>`, zero-copy frozen `PEG2` graphs, and
    /// overlay-backed dynamic graphs register uniformly.
    pub fn register(&self, name: &str, graph: impl Into<GraphHandle>) {
        let state = Arc::new(GraphState {
            current: Mutex::new(Arc::new(ServingEpoch {
                epoch: 0,
                graph: graph.into(),
            })),
            tenants: Mutex::new(HashMap::new()),
            results: Mutex::new(HashMap::new()),
        });
        crate::sync::lock_recovering(&self.graphs).insert(name.to_string(), state);
    }

    /// Atomically replaces the graph served under `name`, returning the
    /// new epoch. In-flight queries finish on the epoch they snapshotted;
    /// the tenant caches survive, their stale entries invalidated lazily
    /// (per graph — other names' caches are untouched) because the new
    /// graph carries a new version.
    pub fn publish(&self, name: &str, graph: impl Into<GraphHandle>) -> Result<u64, PathEnumError> {
        let state = self.state(name).ok_or(PathEnumError::GraphNotFound)?;
        let mut current = crate::sync::lock_recovering(&state.current);
        let epoch = current.epoch + 1;
        *current = Arc::new(ServingEpoch {
            epoch,
            graph: graph.into(),
        });
        Ok(epoch)
    }

    /// Removes `name` (and its tenant caches) from the catalog. In-flight
    /// queries on a snapshotted epoch still finish.
    pub fn deregister(&self, name: &str) -> bool {
        crate::sync::lock_recovering(&self.graphs)
            .remove(name)
            .is_some()
    }

    /// Registered graph names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = crate::sync::lock_recovering(&self.graphs)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        crate::sync::lock_recovering(&self.graphs).contains_key(name)
    }

    /// The epoch currently served under `name`.
    pub fn epoch(&self, name: &str) -> Option<u64> {
        self.state(name).map(|s| s.snapshot().epoch)
    }

    /// The graph currently served under `name`.
    pub fn graph(&self, name: &str) -> Option<GraphHandle> {
        self.state(name).map(|s| s.snapshot().graph.clone())
    }

    /// The configured per-tenant/per-graph plan-cache entry quota.
    pub fn tenant_cache_quota(&self) -> usize {
        self.tenant_cache_quota
    }

    /// Lifetime statistics of one tenant's plan cache on one graph
    /// (`None` if the graph is unknown or the tenant never queried it).
    /// Quota pressure shows up as [`SharedCacheStats::evictions`].
    pub fn tenant_cache_stats(&self, name: &str, tenant: &str) -> Option<SharedCacheStats> {
        let state = self.state(name)?;
        let tenants = crate::sync::lock_recovering(&state.tenants);
        tenants.get(tenant).map(|cache| cache.stats())
    }

    /// The configured per-tenant/per-graph result-cache byte budget
    /// (`0` = result layer off).
    pub fn result_cache_bytes(&self) -> usize {
        self.result_cache_bytes
    }

    /// Lifetime statistics of one tenant's result cache on one graph
    /// (`None` if the layer is off, the graph is unknown, or the tenant
    /// never queried it).
    pub fn tenant_result_cache_stats(&self, name: &str, tenant: &str) -> Option<ResultCacheStats> {
        let state = self.state(name)?;
        let results = crate::sync::lock_recovering(&state.results);
        results.get(tenant).map(|cache| cache.stats())
    }

    /// Per-tenant cache accounting for one graph: `(tenant, entries,
    /// stats)` rows, sorted by tenant.
    pub fn tenant_accounting(&self, name: &str) -> Vec<(String, usize, SharedCacheStats)> {
        let Some(state) = self.state(name) else {
            return Vec::new();
        };
        let tenants = crate::sync::lock_recovering(&state.tenants);
        let mut rows: Vec<(String, usize, SharedCacheStats)> = tenants
            .iter()
            .map(|(tenant, cache)| (tenant.clone(), cache.len(), cache.stats()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    fn state(&self, name: &str) -> Option<Arc<GraphState>> {
        crate::sync::lock_recovering(&self.graphs)
            .get(name)
            .cloned()
    }
}

/// Sizing and policy knobs of a [`CatalogService`].
#[derive(Debug, Clone, Copy)]
pub struct CatalogConfig {
    /// Worker-pool size; `0` resolves to one worker per available core.
    pub workers: usize,
    /// Per-tenant/per-graph plan-cache entry quota (`0` disables
    /// caching).
    pub tenant_cache_quota: usize,
    /// Shards per tenant cache.
    pub cache_shards: usize,
    /// Per-tenant/per-graph result-cache byte budget; `0` (the default)
    /// keeps the result layer off. Hits resolve their ticket at submit,
    /// *before* admission — a repeated answer is never shed, never
    /// queued, and charges no cost against the in-flight budget.
    pub result_cache_bytes: usize,
    /// Admission policy; [`AdmissionConfig::disabled`] (the default)
    /// reproduces the unbounded single-FIFO behavior of
    /// [`PathEnumService`](crate::PathEnumService).
    pub admission: AdmissionConfig,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            workers: 0,
            tenant_cache_quota: DEFAULT_TENANT_CACHE_QUOTA,
            cache_shards: 4,
            result_cache_bytes: 0,
            admission: AdmissionConfig::disabled(),
        }
    }
}

/// One routed request: which graph, on whose behalf, what query.
#[derive(Debug)]
pub struct CatalogRequest {
    graph: String,
    tenant: String,
    request: QueryRequest<'static>,
}

impl CatalogRequest {
    /// A request for `request` against the graph registered as `graph`,
    /// charged to `tenant`.
    pub fn new(graph: &str, tenant: &str, request: QueryRequest<'static>) -> Self {
        CatalogRequest {
            graph: graph.to_string(),
            tenant: tenant.to_string(),
            request,
        }
    }

    /// The target graph name.
    pub fn graph(&self) -> &str {
        &self.graph
    }

    /// The tenant the request is charged to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }
}

/// Everything known about one completed catalog request: the response
/// and timing envelope, plus which epoch served it and the admission
/// decision that let it through (or shed it).
#[derive(Debug)]
pub struct CatalogOutcome {
    /// The request's result; [`PathEnumError::GraphNotFound`] if the
    /// name was unregistered, [`PathEnumError::Overloaded`] if shed.
    pub response: Result<QueryResponse, PathEnumError>,
    /// When a worker began evaluating (for rejected requests: the
    /// moment of rejection).
    pub started: Instant,
    /// When the evaluation finished (for rejected requests: the moment
    /// of rejection).
    pub finished: Instant,
    /// The epoch of the graph that served the request (`None` when the
    /// graph was not found).
    pub epoch: Option<u64>,
    /// The full admission decision, EXPLAIN-renderable via its
    /// `Display` (`None` when the graph was not found).
    pub decision: Option<AdmissionDecision>,
}

impl CatalogOutcome {
    /// Service time: `finished - started` (zero for rejections).
    pub fn latency(&self) -> std::time::Duration {
        self.finished.duration_since(self.started)
    }

    /// The lane the request was dispatched on, if it got that far.
    pub fn lane(&self) -> Option<Lane> {
        self.decision.as_ref().map(|d| d.lane)
    }
}

/// A handle to one request submitted via [`CatalogService::submit`].
/// Rejected requests (unknown graph, shed by admission) resolve
/// immediately — [`is_done`](Self::is_done) is `true` before `submit`
/// even returns.
#[derive(Debug)]
pub struct CatalogTicket {
    state: Arc<TicketState>,
    epoch: Option<u64>,
    decision: Option<AdmissionDecision>,
}

impl CatalogTicket {
    /// Whether the result is available (`wait_outcome` would not block).
    pub fn is_done(&self) -> bool {
        self.state.is_done()
    }

    /// The epoch snapshotted for this request at submit.
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// The admission decision reached at submit.
    pub fn decision(&self) -> Option<&AdmissionDecision> {
        self.decision.as_ref()
    }

    /// Blocks until the request completes and returns its response.
    pub fn wait(self) -> Result<QueryResponse, PathEnumError> {
        self.state.wait().response
    }

    /// Blocks until the request completes and returns the full outcome.
    pub fn wait_outcome(self) -> CatalogOutcome {
        let outcome = self.state.wait();
        CatalogOutcome {
            response: outcome.response,
            started: outcome.started,
            finished: outcome.finished,
            epoch: self.epoch,
            decision: self.decision,
        }
    }
}

/// The admission-controlled, multi-graph serving front end. See the
/// [module docs](self).
#[derive(Debug)]
pub struct CatalogService {
    catalog: Arc<GraphCatalog>,
    admission: Arc<AdmissionController>,
    config: PathEnumConfig,
    workers: usize,
    pool: WorkerPool,
    submitted: AtomicU64,
}

impl CatalogService {
    /// A service over a fresh empty catalog.
    pub fn new(config: PathEnumConfig, catalog_config: CatalogConfig) -> Self {
        let catalog = Arc::new(GraphCatalog::with_limits(
            catalog_config.tenant_cache_quota,
            catalog_config.cache_shards,
            catalog_config.result_cache_bytes,
        ));
        CatalogService::over(catalog, config, catalog_config)
    }

    /// A service over an existing (possibly shared) catalog. The
    /// catalog's own quota settings win over `catalog_config`'s.
    pub fn over(
        catalog: Arc<GraphCatalog>,
        config: PathEnumConfig,
        catalog_config: CatalogConfig,
    ) -> Self {
        let workers = resolve_threads(catalog_config.workers);
        CatalogService {
            catalog,
            admission: Arc::new(AdmissionController::new(catalog_config.admission)),
            config,
            workers,
            pool: WorkerPool::new(workers, "pathenum-catalog"),
            submitted: AtomicU64::new(0),
        }
    }

    /// The catalog this service routes into (register/publish here).
    pub fn catalog(&self) -> &GraphCatalog {
        &self.catalog
    }

    /// The admission controller (budget occupancy, admitted/shed
    /// counters).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Resolved worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Requests submitted so far (admitted or not).
    pub fn queries_submitted(&self) -> u64 {
        // ordering: advisory stats read; a lagging value is acceptable.
        self.submitted.load(Ordering::Relaxed)
    }

    /// Submits one routed request. The request is *planned here, on the
    /// calling thread* (warming the tenant's plan cache even if the
    /// request is then shed), priced via
    /// [`modeled_cost`](crate::plan::PhysicalPlan::modeled_cost), run
    /// through admission, and — if admitted — dispatched on the lane its
    /// cost earned. The returned ticket resolves immediately on
    /// rejection.
    pub fn submit(&self, routed: CatalogRequest) -> CatalogTicket {
        // ordering: advisory monotone counter; publishes no other memory.
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(TicketState::default());

        let Some(graph_state) = self.catalog.state(&routed.graph) else {
            return reject(state, None, None, PathEnumError::GraphNotFound);
        };
        let epoch = graph_state.snapshot();
        let request = routed.request;

        // Plan at submit: one validation + (cached) plan gives us the
        // admission price and warms the tenant cache either way.
        let query = match request.validate(epoch.graph.num_vertices()) {
            Ok(query) => query,
            Err(err) => return reject(state, Some(epoch.epoch), None, err),
        };
        let version = epoch.graph.version();

        // Result layer (off unless configured): a stored answer resolves
        // the ticket *here*, on the caller's thread, before admission —
        // a repeated answer is never shed, never queued, and charges no
        // cost against the in-flight budget. Such tickets carry no
        // admission decision.
        let store: Option<(Arc<SharedResultCache>, ResultKey)> =
            if self.catalog.result_cache_bytes > 0 {
                let results = graph_state.tenant_results(
                    &routed.tenant,
                    self.catalog.result_cache_bytes,
                    self.catalog.cache_shards,
                );
                match result_key(self.config, &request) {
                    Some(rkey) => {
                        let lookup_start = Instant::now();
                        if let Some(cached) =
                            results.lookup(&rkey, request.limit, request.time_budget, version)
                        {
                            let response = execute_collecting(request.collect, |sink| {
                                Ok(replay_result_hit(
                                    &cached,
                                    &request,
                                    sink,
                                    lookup_start.elapsed(),
                                    1,
                                ))
                            });
                            state.publish(TicketOutcome {
                                response,
                                started: lookup_start,
                                finished: Instant::now(),
                            });
                            return CatalogTicket {
                                state,
                                epoch: Some(epoch.epoch),
                                decision: None,
                            };
                        }
                        Some((results, rkey))
                    }
                    None => {
                        results.note_bypass();
                        None
                    }
                }
            } else {
                None
            };

        let cache = graph_state.tenant_cache(
            &routed.tenant,
            self.catalog.tenant_cache_quota,
            self.catalog.cache_shards,
        );
        let key = if request.bypass_cache || cache.capacity() == 0 {
            None
        } else {
            PlanKey::for_request(&request, effective_config(self.config, &request))
        };

        let lookup_start = Instant::now();
        let (mut plan, index, timings, outcome_tag) = match key {
            Some(ref key) => match cache.lookup(key, version) {
                Some((plan, index)) => {
                    let timings = PhaseTimings {
                        cache_lookup: lookup_start.elapsed(),
                        ..PhaseTimings::default()
                    };
                    (plan, index, timings, CacheOutcome::Hit)
                }
                None => {
                    let planner = Planner::new(&epoch.graph, self.config);
                    let (planned, timings) =
                        with_build_scratch(|scratch| planner.plan_query(query, &request, scratch));
                    let index = Arc::new(planned.index);
                    cache.insert_arc(*key, version, planned.plan, Arc::clone(&index));
                    (planned.plan, index, timings, CacheOutcome::Miss)
                }
            },
            None => {
                cache.note_bypass();
                let planner = Planner::new(&epoch.graph, self.config);
                let (planned, timings) =
                    with_build_scratch(|scratch| planner.plan_query(query, &request, scratch));
                (
                    planned.plan,
                    Arc::new(planned.index),
                    timings,
                    CacheOutcome::Bypass,
                )
            }
        };
        plan.constraint = request.constraint.kind();
        // Pool-dispatched requests run intra-sequentially, like
        // `PathEnumService::submit`.
        plan.threads = 1;

        let cost = plan.modeled_cost();
        let decision = self.admission.try_admit(&routed.tenant, cost);
        if let Some(err) = decision.rejected {
            return reject(state, Some(epoch.epoch), Some(decision), err);
        }
        let lane = decision.lane;
        let epoch_id = epoch.epoch;

        let task: PoolTask = {
            let state = Arc::clone(&state);
            let admission = Arc::clone(&self.admission);
            let tenant = routed.tenant;
            Box::new(move || {
                let started = Instant::now();
                // Deadlines start at pickup: queue wait never consumes
                // the request's own time budget. Panics from hostile
                // constraint closures resolve the ticket, not the pool.
                let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let deadline = request.time_budget.map(|b| started + b);
                    if let Some(stopped) = preflight_stop(&request, deadline) {
                        return Ok(stopped);
                    }
                    execute_collecting(request.collect, |sink| {
                        // With the result layer on, tee the answer into
                        // the tenant's result cache so the next repeat
                        // resolves at submit.
                        let response = match &store {
                            Some((results, rkey)) => {
                                let mut tee = TeeSink::new(sink);
                                let response = execute_on_plan(
                                    &index,
                                    plan,
                                    &request,
                                    deadline,
                                    &mut tee,
                                    timings,
                                    outcome_tag,
                                );
                                if let Some(paths) = tee.finish() {
                                    // A missing plan skips the cache
                                    // insert instead of panicking.
                                    if response.termination != Termination::Cancelled {
                                        if let Some(plan) = response.plan {
                                            results.insert(
                                                *rkey,
                                                version,
                                                plan,
                                                paths,
                                                response.termination,
                                                request.limit,
                                                request.time_budget,
                                                None,
                                            );
                                        }
                                    }
                                }
                                response
                            }
                            None => execute_on_plan(
                                &index,
                                plan,
                                &request,
                                deadline,
                                sink,
                                timings,
                                outcome_tag,
                            ),
                        };
                        Ok(response)
                    })
                }))
                .unwrap_or(Err(PathEnumError::EvaluationPanicked));
                admission.release(&tenant, cost);
                state.publish(TicketOutcome {
                    response,
                    started,
                    finished: Instant::now(),
                });
                // The epoch's graph stays alive exactly as long as work
                // referencing it does.
                drop(epoch);
            })
        };
        self.pool.spawn_task(lane, task);
        CatalogTicket {
            state,
            epoch: Some(epoch_id),
            decision: Some(decision),
        }
    }

    /// Evaluates one routed request, blocking until it completes (or is
    /// rejected).
    pub fn execute(&self, routed: CatalogRequest) -> Result<QueryResponse, PathEnumError> {
        self.submit(routed).wait()
    }
}

fn reject(
    state: Arc<TicketState>,
    epoch: Option<u64>,
    decision: Option<AdmissionDecision>,
    err: PathEnumError,
) -> CatalogTicket {
    let now = Instant::now();
    state.publish(TicketOutcome {
        response: Err(err),
        started: now,
        finished: now,
    });
    CatalogTicket {
        state,
        epoch,
        decision,
    }
}

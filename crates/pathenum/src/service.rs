//! The concurrent serving layer: one graph, one plan cache, many
//! threads.
//!
//! The per-thread [`QueryEngine`](crate::QueryEngine) is `&mut self`
//! with a private [`PlanCache`](crate::plan::PlanCache): two concurrent
//! requests cannot share a graph, an index, or a warm plan.
//! [`PathEnumService`] is the `Send + Sync` front end the paper's
//! serving scenario (heavy skewed traffic against one in-memory graph)
//! actually needs:
//!
//! * the graph is owned as a [`GraphHandle`] — heap CSR, zero-copy
//!   frozen (`PEG2`), or overlay-backed, uniformly — and borrowed by
//!   every worker: no copies, no per-worker state;
//! * the plan/index cache is a [`SharedPlanCache`]: per-shard locking
//!   over the existing LRU [`PlanCache`](crate::plan::PlanCache),
//!   hit/miss/bypass statistics in
//!   atomics, entries handed out as `Arc<Index>` clones so a worker
//!   *executes outside the shard lock*. A query planned by one worker
//!   warms every other worker;
//! * build scratch (the `O(|V|)` BFS buffers) is thread-local — each OS
//!   thread that ever plans keeps its own
//!   [`BuildScratch`], reused across
//!   queries exactly as an engine would;
//! * a **fixed worker pool** provides inter-query parallelism:
//!   [`submit`](PathEnumService::submit) returns a [`Ticket`],
//!   [`execute_batch`](PathEnumService::execute_batch) fans a batch out
//!   and returns results in input order, and
//!   [`serve`](PathEnumService::serve) runs a closed-loop measured
//!   replay. All three honor the existing per-request deadline /
//!   cancellation / limit machinery.
//!
//! # Determinism
//!
//! Per-request output is *identical* to what a sequential
//! `QueryEngine` produces for the same request on the same graph —
//! planning is deterministic, cached plans equal cold plans, and the
//! enumerators emit a canonical order. `execute_batch` returns results
//! in input order, so the whole batch is byte-for-byte reproducible for
//! every worker count (only the [`CacheOutcome`] tag of individual
//! responses may differ run-to-run, since which racing worker plans a
//! shared query first is timing-dependent).
//!
//! # Thread budget
//!
//! `workers` (see [`ServiceConfig`]) is *one* budget shared by
//! inter-query workers and intra-query fan-out, split deterministically
//! by [`intra_budget`]: a batch of `>=
//! workers` requests runs each request sequentially inside; a smaller
//! batch hands the leftover threads to each request's intra-query pool.
//! [`QueryResponse::plan`] reports the clamped, effective thread count.
//!
//! ```
//! use std::sync::Arc;
//! use pathenum::service::{PathEnumService, ServiceConfig};
//! use pathenum::{PathEnumConfig, QueryRequest};
//! use pathenum_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
//! let graph = Arc::new(b.finish());
//!
//! let service = PathEnumService::new(Arc::clone(&graph), PathEnumConfig::default());
//! // Direct execution from any thread (&self, not &mut self):
//! let response = service.execute(&QueryRequest::paths(0, 3).max_hops(3)).unwrap();
//! assert_eq!(response.num_results(), 2);
//! // Batched execution over the worker pool, results in input order:
//! let batch = vec![
//!     QueryRequest::paths(0, 3).max_hops(3),
//!     QueryRequest::paths(0, 3).max_hops(2),
//! ];
//! let responses = service.execute_batch(batch);
//! assert_eq!(responses[0].as_ref().unwrap().num_results(), 2);
//! assert_eq!(responses[1].as_ref().unwrap().num_results(), 2);
//! assert!(service.cache_stats().hits >= 1, "the direct call warmed the pool");
//! ```

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pathenum_graph::{GraphHandle, NeighborAccess};

use crate::admission::Lane;
use crate::engine::{
    execute_collecting, execute_on_plan, preflight_stop, replay_result_hit, result_key,
};
use crate::index::BuildScratch;
use crate::optimizer::PathEnumConfig;
use crate::parallel::{intra_budget, resolve_threads};
use crate::plan::{
    effective_config, CacheOutcome, PlanKey, SharedCacheStats, SharedPlanCache,
    DEFAULT_CACHE_SHARDS, DEFAULT_PLAN_CACHE_CAPACITY,
};
use crate::query::Query;
use crate::request::{PathEnumError, QueryRequest, QueryResponse, Termination};
use crate::results::{ResultCacheStats, SharedResultCache, TeeSink, DEFAULT_RESULT_CACHE_SHARDS};
use crate::sink::PathSink;
use crate::stats::PhaseTimings;

thread_local! {
    /// Per-OS-thread build scratch: any thread that plans through the
    /// service (a pool worker, or a caller of [`PathEnumService::execute`])
    /// reuses its own BFS/id-mapping buffers across queries, exactly as
    /// a dedicated engine would.
    static BUILD_SCRATCH: RefCell<BuildScratch> = RefCell::new(BuildScratch::default());
}

/// Runs `f` with this OS thread's reusable [`BuildScratch`] — the
/// scratch-reuse contract shared by every concurrent evaluator (the
/// service workers and the [`catalog`](crate::catalog)'s plan-at-submit
/// path).
pub(crate) fn with_build_scratch<R>(f: impl FnOnce(&mut BuildScratch) -> R) -> R {
    BUILD_SCRATCH.with(|scratch| f(&mut scratch.borrow_mut()))
}

/// Sizing knobs of a [`PathEnumService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Fixed worker-pool size — the service's total thread budget,
    /// shared between inter-query workers and intra-query fan-out.
    /// `0` (the default) resolves to one worker per available core.
    pub workers: usize,
    /// Total plan/index cache capacity across all shards, rounded up to
    /// a multiple of `cache_shards`; `0` disables caching (every
    /// request plans from scratch).
    pub cache_capacity: usize,
    /// Number of independent cache shards (clamped to at least 1 and at
    /// most the capacity). More shards, less lock contention, smaller
    /// per-shard LRU windows.
    pub cache_shards: usize,
    /// Byte budget of the shared **result** cache
    /// ([`SharedResultCache`], see [`crate::results`]) — the layer that
    /// serves repeated requests from stored paths without planning or
    /// enumerating. `0` (the default) keeps the layer off entirely.
    pub result_cache_bytes: usize,
    /// Shard count of the shared result cache (ignored while the layer
    /// is off).
    pub result_cache_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            cache_shards: DEFAULT_CACHE_SHARDS,
            result_cache_bytes: 0,
            result_cache_shards: DEFAULT_RESULT_CACHE_SHARDS,
        }
    }
}

/// What the service shares with every worker thread.
struct ServiceCore {
    graph: GraphHandle,
    config: PathEnumConfig,
    cache: SharedPlanCache,
    /// The shared result layer; `None` keeps it off (the default).
    results: Option<SharedResultCache>,
    /// Resolved worker-pool size (the thread budget).
    workers: usize,
    queries_served: AtomicU64,
    queries_rejected: AtomicU64,
}

impl ServiceCore {
    /// The cache key for a request, or `None` when it is not cacheable.
    fn plan_key(&self, request: &QueryRequest<'_>) -> Option<PlanKey> {
        if request.bypass_cache || self.cache.capacity() == 0 {
            return None;
        }
        PlanKey::for_request(request, effective_config(self.config, request))
    }

    /// The shared-state equivalent of `QueryEngine::execute_into`:
    /// borrow the graph, consult the sharded cache, plan with
    /// thread-local scratch, execute via [`execute_on_plan`]. `intra_cap`
    /// bounds the request's intra-query threads (budget sharing).
    fn execute_into(
        &self,
        request: &QueryRequest<'_>,
        sink: &mut dyn PathSink,
        intra_cap: usize,
    ) -> Result<QueryResponse, PathEnumError> {
        let query = request.validate(self.graph.num_vertices())?;

        let deadline = request.time_budget.map(|b| Instant::now() + b);
        // ordering: served/rejected are advisory monotone counters read only
        // by stats(); no other memory is published through them.
        if let Some(stopped) = preflight_stop(request, deadline) {
            self.queries_rejected.fetch_add(1, Ordering::Relaxed);
            return Ok(stopped);
        }
        self.queries_served.fetch_add(1, Ordering::Relaxed);

        let threads = request.effective_threads().min(intra_cap.max(1));
        let version = self.graph.version();

        // Result layer (off unless configured): a stored answer is
        // replayed straight into `sink` — no shard planning, no
        // enumeration; any worker's answer warms every other worker. The
        // shard lock covers only the probe (the paths come out as an
        // `Arc`), so replay runs unlocked.
        if let Some(results) = &self.results {
            match result_key(self.config, request) {
                Some(rkey) => {
                    let lookup_start = Instant::now();
                    if let Some(cached) =
                        results.lookup(&rkey, request.limit, request.time_budget, version)
                    {
                        return Ok(replay_result_hit(
                            &cached,
                            request,
                            sink,
                            lookup_start.elapsed(),
                            threads,
                        ));
                    }
                    let mut tee = TeeSink::new(sink);
                    let response =
                        self.execute_planned(query, request, deadline, &mut tee, threads);
                    if let Some(paths) = tee.finish() {
                        // A missing plan (counting-only response) simply
                        // skips the cache insert instead of panicking.
                        if response.termination != Termination::Cancelled {
                            if let Some(plan) = response.plan {
                                results.insert(
                                    rkey,
                                    version,
                                    plan,
                                    paths,
                                    response.termination,
                                    request.limit,
                                    request.time_budget,
                                    None,
                                );
                            }
                        }
                    }
                    return Ok(response);
                }
                None => results.note_bypass(),
            }
        }

        Ok(self.execute_planned(query, request, deadline, sink, threads))
    }

    /// The plan-acquisition + execution core of
    /// [`execute_into`](Self::execute_into) (the shared-state mirror of
    /// the engines' split).
    fn execute_planned(
        &self,
        query: Query,
        request: &QueryRequest<'_>,
        deadline: Option<Instant>,
        sink: &mut dyn PathSink,
        threads: usize,
    ) -> QueryResponse {
        let key = self.plan_key(request);
        let version = self.graph.version();

        // Warm path: the shard lock covers only the probe; the worker
        // executes on an `Arc<Index>` clone after releasing it.
        let lookup_start = Instant::now();
        match key {
            Some(key) => {
                if let Some((mut plan, index)) = self.cache.lookup(&key, version) {
                    plan.constraint = request.constraint.kind();
                    plan.threads = threads;
                    let timings = PhaseTimings {
                        cache_lookup: lookup_start.elapsed(),
                        ..PhaseTimings::default()
                    };
                    return execute_on_plan(
                        &index,
                        plan,
                        request,
                        deadline,
                        sink,
                        timings,
                        CacheOutcome::Hit,
                    );
                }
            }
            None => self.cache.note_bypass(),
        }

        // Cold path: plan with this thread's scratch, execute, publish.
        // Racing workers may plan the same query concurrently; planning
        // is deterministic, so whichever insert lands last is identical.
        let planner = crate::plan::Planner::new(&self.graph, self.config);
        let (mut planned, timings) = BUILD_SCRATCH
            .with(|scratch| planner.plan_query(query, request, &mut scratch.borrow_mut()));
        planned.plan.threads = threads;
        let outcome = if key.is_some() {
            CacheOutcome::Miss
        } else {
            CacheOutcome::Bypass
        };
        let response = execute_on_plan(
            &planned.index,
            planned.plan,
            request,
            deadline,
            sink,
            timings,
            outcome,
        );
        if let Some(key) = key {
            self.cache.insert(key, version, planned.plan, planned.index);
        }
        response
    }

    fn execute(
        &self,
        request: &QueryRequest<'_>,
        intra_cap: usize,
    ) -> Result<QueryResponse, PathEnumError> {
        execute_collecting(request.collect, |sink| {
            self.execute_into(request, sink, intra_cap)
        })
    }
}

/// One unit of pool work: a boxed closure that owns everything it needs
/// (request, ticket slot, shared state) and publishes its own outcome.
pub(crate) type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// The two dispatch queues of a [`WorkerPool`], popped interactive-first
/// so cheap queries keep flowing while batch work drains behind them.
#[derive(Default)]
struct LaneQueues {
    interactive: VecDeque<PoolTask>,
    batch: VecDeque<PoolTask>,
}

impl LaneQueues {
    fn pop(&mut self) -> Option<PoolTask> {
        self.interactive
            .pop_front()
            .or_else(|| self.batch.pop_front())
    }

    fn push(&mut self, lane: Lane, task: PoolTask) {
        match lane {
            Lane::Interactive => self.interactive.push_back(task),
            Lane::Batch => self.batch.push_back(task),
        }
    }
}

struct PoolShared {
    queues: Mutex<LaneQueues>,
    job_ready: Condvar,
    shutdown: AtomicBool,
}

/// A fixed pool of named OS threads draining two lanes of boxed tasks.
///
/// This is the dispatch substrate shared by [`PathEnumService`] (which
/// submits everything on the interactive lane, preserving PR 5's FIFO
/// behavior) and the [`catalog`](crate::catalog) (which routes admitted
/// requests by [`Lane`]). Shutdown on drop is *draining*: queued tasks
/// still run, so every issued [`Ticket`] resolves.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads named `{name_prefix}-{i}`.
    pub(crate) fn new(workers: usize, name_prefix: &str) -> Self {
        let shared = Arc::new(PoolShared {
            queues: Mutex::new(LaneQueues::default()),
            job_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name_prefix}-{i}"))
                    .spawn(move || pool_worker_loop(&shared))
                    // lint: allow(no-panic) — pool construction, not a
                    // serving path; OS thread-spawn failure at startup has
                    // no caller to report to.
                    .expect("worker threads spawn")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Enqueues `task` on `lane` and wakes one worker.
    pub(crate) fn spawn_task(&self, lane: Lane, task: PoolTask) {
        {
            let mut queues = crate::sync::lock_recovering(&self.shared.queues);
            queues.push(lane, task);
        }
        self.shared.job_ready.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            // The store must happen under the queue mutex: a worker that
            // has found the queues empty and read `shutdown == false`
            // still holds the lock until `wait()` parks it, so storing
            // here cannot slip into that window — the classic condvar
            // lost-wakeup race.
            let _queues = crate::sync::lock_recovering(&self.shared.queues);
            // ordering: the queue mutex (held here, held at the load site)
            // orders this store; the flag itself publishes nothing.
            self.shared.shutdown.store(true, Ordering::Relaxed);
        }
        self.shared.job_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish_non_exhaustive()
    }
}

/// A pool worker: drain the queues interactive-first (draining continues
/// after shutdown so every issued [`Ticket`] resolves), park on the
/// condvar when idle. Tasks are responsible for resolving their own
/// tickets on panic; the `catch_unwind` here is only a backstop keeping
/// an unwinding task from costing the pool a worker.
fn pool_worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut queues = crate::sync::lock_recovering(&shared.queues);
            loop {
                if let Some(task) = queues.pop() {
                    break Some(task);
                }
                // ordering: read under the queue mutex that also covers the
                // store in Drop; Relaxed suffices for the flag's value.
                if shared.shutdown.load(Ordering::Relaxed) {
                    break None;
                }
                queues = crate::sync::wait_recovering(&shared.job_ready, queues);
            }
        };
        let Some(task) = task else {
            return;
        };
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
    }
}

#[derive(Default)]
pub(crate) struct TicketState {
    slot: Mutex<Option<TicketOutcome>>,
    ready: Condvar,
}

impl TicketState {
    pub(crate) fn publish(&self, outcome: TicketOutcome) {
        let mut slot = crate::sync::lock_recovering(&self.slot);
        *slot = Some(outcome);
        self.ready.notify_all();
    }

    pub(crate) fn wait(&self) -> TicketOutcome {
        let mut slot = crate::sync::lock_recovering(&self.slot);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = crate::sync::wait_recovering(&self.ready, slot);
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        crate::sync::lock_recovering(&self.slot).is_some()
    }
}

/// Everything known about one completed pool request: the response plus
/// the wall-clock interval the worker spent on it (queueing excluded —
/// `started` is when a worker picked the job up).
#[derive(Debug)]
pub struct TicketOutcome {
    /// The request's result, exactly as `QueryEngine::execute` would
    /// have produced it.
    pub response: Result<QueryResponse, PathEnumError>,
    /// When a pool worker began evaluating the request.
    pub started: Instant,
    /// When the evaluation finished.
    pub finished: Instant,
}

impl TicketOutcome {
    /// Service time: `finished - started`.
    pub fn latency(&self) -> Duration {
        self.finished.duration_since(self.started)
    }
}

/// A handle to one request submitted to the pool via
/// [`PathEnumService::submit`]. Dropping the ticket abandons the result
/// (the request still runs to completion under its own stopping rules —
/// attach a [`CancelToken`](crate::request::CancelToken) to revoke it).
#[derive(Debug)]
pub struct Ticket {
    state: Arc<TicketState>,
}

impl std::fmt::Debug for TicketState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TicketState").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Whether the result is available (`wait` would not block).
    pub fn is_done(&self) -> bool {
        self.state.is_done()
    }

    /// Blocks until the request completes and returns its response.
    pub fn wait(self) -> Result<QueryResponse, PathEnumError> {
        self.state.wait().response
    }

    /// Blocks until the request completes and returns the response with
    /// its timing envelope.
    pub fn wait_outcome(self) -> TicketOutcome {
        self.state.wait()
    }
}

/// Aggregate of one [`serve`](PathEnumService::serve) replay.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-request responses, in input order.
    pub responses: Vec<Result<QueryResponse, PathEnumError>>,
    /// Per-request service latencies (worker pickup to completion), in
    /// input order.
    pub latencies: Vec<Duration>,
    /// Wall-clock time of the whole replay.
    pub wall: Duration,
    /// Shared-cache statistics accumulated *by this replay* (a delta,
    /// not the service's lifetime counters).
    pub cache: SharedCacheStats,
}

impl ServeReport {
    /// Total results across every successful response.
    pub fn total_results(&self) -> u64 {
        self.responses
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(QueryResponse::num_results)
            .sum()
    }

    /// Requests completed per wall-clock second.
    pub fn throughput(&self) -> f64 {
        self.responses.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// A `Send + Sync` HcPE serving layer: one shared graph, one shared
/// sharded plan cache, a fixed worker pool. See the [module docs](self).
#[derive(Debug)]
pub struct PathEnumService {
    core: Arc<ServiceCore>,
    pool: WorkerPool,
}

impl std::fmt::Debug for ServiceCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceCore")
            .field("workers", &self.workers)
            .field("cache_capacity", &self.cache.capacity())
            .finish_non_exhaustive()
    }
}

impl PathEnumService {
    /// A service over `graph` with the default [`ServiceConfig`]
    /// (per-core worker pool, default-capacity sharded cache). Accepts
    /// anything convertible to a [`GraphHandle`]: an `Arc<CsrGraph>`
    /// (the historical signature), a frozen `PEG2` graph, or a handle.
    pub fn new(graph: impl Into<GraphHandle>, config: PathEnumConfig) -> Self {
        PathEnumService::with_config(graph, config, ServiceConfig::default())
    }

    /// A service with explicit pool and cache sizing.
    pub fn with_config(
        graph: impl Into<GraphHandle>,
        config: PathEnumConfig,
        service: ServiceConfig,
    ) -> Self {
        let workers = resolve_threads(service.workers);
        let results = (service.result_cache_bytes > 0).then(|| {
            SharedResultCache::new(service.result_cache_bytes, service.result_cache_shards)
        });
        let core = Arc::new(ServiceCore {
            graph: graph.into(),
            config,
            cache: SharedPlanCache::new(service.cache_capacity, service.cache_shards),
            results,
            workers,
            queries_served: AtomicU64::new(0),
            queries_rejected: AtomicU64::new(0),
        });
        let pool = WorkerPool::new(workers, "pathenum-worker");
        PathEnumService { core, pool }
    }

    /// The graph this service serves.
    pub fn graph(&self) -> &GraphHandle {
        &self.core.graph
    }

    /// Resolved worker-pool size (the service's thread budget).
    pub fn workers(&self) -> usize {
        self.core.workers
    }

    /// Requests evaluated so far, across all threads. Pre-flight-stopped
    /// requests are counted in [`queries_rejected`](Self::queries_rejected)
    /// instead.
    pub fn queries_served(&self) -> u64 {
        // ordering: advisory stats read; a lagging value is acceptable.
        self.core.queries_served.load(Ordering::Relaxed)
    }

    /// Requests short-circuited by a pre-flight stopping rule before any
    /// evaluation (they perform no cache lookup and their responses read
    /// [`CacheOutcome::Skipped`]).
    pub fn queries_rejected(&self) -> u64 {
        // ordering: advisory stats read; a lagging value is acceptable.
        self.core.queries_rejected.load(Ordering::Relaxed)
    }

    /// Lifetime statistics of the shared plan cache.
    pub fn cache_stats(&self) -> SharedCacheStats {
        self.core.cache.stats()
    }

    /// Entries currently cached across all shards.
    pub fn cache_len(&self) -> usize {
        self.core.cache.len()
    }

    /// Drops every cached plan (statistics are kept).
    pub fn clear_cache(&self) {
        self.core.cache.clear();
    }

    /// Lifetime statistics of the shared result cache. All-zero when the
    /// layer is off ([`ServiceConfig::result_cache_bytes`] == 0).
    pub fn result_cache_stats(&self) -> ResultCacheStats {
        self.core
            .results
            .as_ref()
            .map(SharedResultCache::stats)
            .unwrap_or_default()
    }

    /// Completed answers currently cached across all result shards.
    pub fn result_cache_len(&self) -> usize {
        self.core
            .results
            .as_ref()
            .map(SharedResultCache::len)
            .unwrap_or(0)
    }

    /// Drops every cached result (statistics are kept).
    pub fn clear_result_cache(&self) {
        if let Some(results) = &self.core.results {
            results.clear();
        }
    }

    /// Evaluates one request on the *calling* thread, sharing the cache
    /// with the pool. Takes `&self`: any number of threads may call this
    /// concurrently. The request may use up to the whole thread budget
    /// for intra-query parallelism.
    pub fn execute(&self, request: &QueryRequest<'_>) -> Result<QueryResponse, PathEnumError> {
        self.core.execute(request, self.core.workers)
    }

    /// As [`execute`](Self::execute), streaming result paths into `sink`.
    pub fn execute_into(
        &self,
        request: &QueryRequest<'_>,
        sink: &mut dyn PathSink,
    ) -> Result<QueryResponse, PathEnumError> {
        self.core.execute_into(request, sink, self.core.workers)
    }

    /// Submits one request to the worker pool, returning immediately
    /// with a [`Ticket`] for the result. Submitted requests run with
    /// intra-query parallelism 1 (the pool is presumed busy with other
    /// queries); use [`execute`](Self::execute) or a small
    /// [`execute_batch`](Self::execute_batch) when one heavy query
    /// should fan out instead.
    pub fn submit(&self, request: QueryRequest<'static>) -> Ticket {
        self.submit_with_cap(request, 1)
    }

    fn submit_with_cap(&self, request: QueryRequest<'static>, intra_cap: usize) -> Ticket {
        let state = Arc::new(TicketState::default());
        let core = Arc::clone(&self.core);
        let ticket = Arc::clone(&state);
        self.pool.spawn_task(
            Lane::Interactive,
            Box::new(move || {
                let started = Instant::now();
                // Isolate panics from user-supplied constraint closures
                // (or our own bugs): an unwinding evaluation must not
                // strand the caller parked on its ticket.
                let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    core.execute(&request, intra_cap)
                }))
                .unwrap_or(Err(PathEnumError::EvaluationPanicked));
                ticket.publish(TicketOutcome {
                    response,
                    started,
                    finished: Instant::now(),
                });
            }),
        );
        Ticket { state }
    }

    /// Evaluates a batch over the worker pool, returning responses **in
    /// input order** regardless of completion order. The thread budget
    /// is split deterministically: with `B = min(batch, workers)`
    /// requests in flight, each request may use `workers / B` intra-query
    /// threads.
    pub fn execute_batch(
        &self,
        requests: Vec<QueryRequest<'static>>,
    ) -> Vec<Result<QueryResponse, PathEnumError>> {
        self.dispatch_batch(requests)
            .into_iter()
            .map(Ticket::wait)
            .collect()
    }

    /// Closed-loop measured replay: the whole batch is queued at once,
    /// the pool keeps exactly `workers` requests in flight (each next
    /// request dispatched the moment a worker frees up), and the report
    /// carries input-order responses, per-request service latencies, the
    /// batch wall-clock, and the cache-statistics delta the replay
    /// generated.
    pub fn serve(&self, requests: Vec<QueryRequest<'static>>) -> ServeReport {
        let stats_before = self.core.cache.stats();
        let wall_start = Instant::now();
        let outcomes: Vec<TicketOutcome> = self
            .dispatch_batch(requests)
            .into_iter()
            .map(Ticket::wait_outcome)
            .collect();
        let wall = wall_start.elapsed();
        let mut responses = Vec::with_capacity(outcomes.len());
        let mut latencies = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            latencies.push(outcome.latency());
            responses.push(outcome.response);
        }
        ServeReport {
            responses,
            latencies,
            wall,
            cache: self.core.cache.stats().since(&stats_before),
        }
    }

    /// Queues a batch on the pool, returning input-order tickets.
    ///
    /// Requests sharing a [`PlanKey`](crate::plan::PlanKey) — same
    /// `(s, t, k)` shape, same constraint fingerprint — are grouped into
    /// one *unit* that a single worker evaluates sequentially: the first
    /// member pays the one boundary BFS + index build (and, when result
    /// caching is on, the one enumeration) and publishes it through the
    /// shared caches; the rest of the group replays warm. Grouping is a
    /// scheduling decision only — every member still executes through
    /// the normal path, so outputs are byte-identical to solo execution
    /// (the PR-2 deterministic merge keeps even intra-parallel runs
    /// thread-count-invariant). Uncacheable requests stay singleton
    /// units. The thread budget is split across *units*, not requests.
    fn dispatch_batch(&self, requests: Vec<QueryRequest<'static>>) -> Vec<Ticket> {
        // Unit = the (input position, request, ticket) list one worker
        // runs in order. Grouped members keep their own tickets and
        // timing envelopes.
        let mut units: Vec<Vec<(QueryRequest<'static>, Arc<TicketState>)>> = Vec::new();
        let mut by_key: HashMap<crate::plan::PlanKey, usize> = HashMap::new();
        let mut tickets = Vec::with_capacity(requests.len());
        for request in requests {
            let state = Arc::new(TicketState::default());
            tickets.push(Ticket {
                state: Arc::clone(&state),
            });
            match self.core.plan_key(&request) {
                Some(key) => match by_key.get(&key) {
                    Some(&unit) => units[unit].push((request, state)),
                    None => {
                        by_key.insert(key, units.len());
                        units.push(vec![(request, state)]);
                    }
                },
                None => units.push(vec![(request, state)]),
            }
        }

        let in_flight = units.len().min(self.core.workers).max(1);
        let cap = intra_budget(self.core.workers, in_flight);
        for unit in units {
            let core = Arc::clone(&self.core);
            self.pool.spawn_task(
                Lane::Interactive,
                Box::new(move || {
                    for (request, ticket) in unit {
                        let started = Instant::now();
                        // Isolate panics from user-supplied constraint
                        // closures (or our own bugs): an unwinding
                        // evaluation must not strand the caller parked
                        // on its ticket — nor starve its groupmates.
                        let response =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                core.execute(&request, cap)
                            }))
                            .unwrap_or(Err(PathEnumError::EvaluationPanicked));
                        ticket.publish(TicketOutcome {
                            response,
                            started,
                            finished: Instant::now(),
                        });
                    }
                }),
            );
        }
        tickets
    }
}

/// Compile-time proof that the serving layer (and everything it ships
/// across threads) is `Send + Sync` without a line of `unsafe`.
#[allow(dead_code)]
fn assert_thread_safe() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PathEnumService>();
    assert_send_sync::<QueryRequest<'static>>();
    assert_send_sync::<SharedPlanCache>();
    assert_send_sync::<Ticket>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use crate::request::{CancelToken, Termination};
    use pathenum_graph::generators::{complete_digraph, erdos_renyi};
    use pathenum_graph::CsrGraph;

    fn service_over(graph: &Arc<CsrGraph>, workers: usize) -> PathEnumService {
        PathEnumService::with_config(
            Arc::clone(graph),
            PathEnumConfig::default(),
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn direct_execute_matches_engine() {
        let graph = Arc::new(erdos_renyi(50, 300, 3));
        let service = service_over(&graph, 2);
        let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
        for t in 1..10u32 {
            let request = || QueryRequest::paths(0, t).max_hops(4).collect_paths(true);
            let from_service = service.execute(&request()).unwrap();
            let from_engine = engine.execute(&request()).unwrap();
            assert_eq!(from_service.paths, from_engine.paths, "t={t}");
            assert_eq!(from_service.termination, from_engine.termination);
        }
        assert_eq!(service.queries_served(), 9);
    }

    #[test]
    fn batch_returns_input_order_and_shares_the_cache() {
        let graph = Arc::new(erdos_renyi(60, 380, 17));
        let service = service_over(&graph, 4);
        // A skewed batch: the same three targets, many times over.
        let targets: Vec<u32> = (0..24).map(|i| 1 + (i % 3)).collect();
        let requests: Vec<QueryRequest<'static>> = targets
            .iter()
            .map(|&t| QueryRequest::paths(0, t).max_hops(4).collect_paths(true))
            .collect();
        let responses = service.execute_batch(requests);
        assert_eq!(responses.len(), targets.len());

        let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
        for (&t, response) in targets.iter().zip(&responses) {
            let response = response.as_ref().unwrap();
            let expected = engine
                .execute(&QueryRequest::paths(0, t).max_hops(4).collect_paths(true))
                .unwrap();
            assert_eq!(response.paths, expected.paths, "t={t}");
        }
        let stats = service.cache_stats();
        assert!(stats.hits > 0, "24 requests over 3 shapes must share");
        assert_eq!(stats.hits + stats.misses + stats.bypasses, stats.lookups);
        assert_eq!(stats.lookups, 24);
    }

    #[test]
    fn submit_tickets_resolve_and_report_latency() {
        let graph = Arc::new(erdos_renyi(40, 220, 5));
        let service = service_over(&graph, 2);
        let ticket = service.submit(QueryRequest::paths(0, 1).max_hops(4).collect_paths(true));
        let outcome = ticket.wait_outcome();
        let response = outcome.response.unwrap();
        assert_eq!(response.termination, Termination::Completed);
        assert!(outcome.finished >= outcome.started);
        // Submitted requests run intra-sequentially.
        assert_eq!(response.plan.unwrap().threads, 1);
    }

    #[test]
    fn small_batches_hand_leftover_budget_to_intra_query_pools() {
        let graph = Arc::new(complete_digraph(7));
        let service = service_over(&graph, 4);
        let responses = service.execute_batch(vec![QueryRequest::paths(0, 6)
            .max_hops(3)
            .threads(8)
            .collect_paths(true)]);
        // One request in flight out of a budget of 4: threads(8) clamps
        // to 4, deterministically.
        assert_eq!(responses[0].as_ref().unwrap().plan.unwrap().threads, 4);

        let full: Vec<QueryRequest<'static>> = (1..=6)
            .map(|t| QueryRequest::paths(0, t).max_hops(3).threads(8))
            .collect();
        for response in service.execute_batch(full) {
            assert_eq!(response.unwrap().plan.unwrap().threads, 1);
        }
    }

    #[test]
    fn serve_reports_latencies_wall_and_cache_delta() {
        let graph = Arc::new(erdos_renyi(50, 300, 11));
        let service = service_over(&graph, 2);
        let requests: Vec<QueryRequest<'static>> = (0..12)
            .map(|i| QueryRequest::paths(0, 1 + (i % 2)).max_hops(4).limit(100))
            .collect();
        let report = service.serve(requests);
        assert_eq!(report.responses.len(), 12);
        assert_eq!(report.latencies.len(), 12);
        assert!(report.wall >= *report.latencies.iter().max().unwrap());
        assert_eq!(report.cache.lookups, 12);
        assert!(report.cache.hits >= 10 - report.cache.misses);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn preflight_stops_are_rejected_with_skipped_outcome() {
        let graph = Arc::new(erdos_renyi(30, 150, 2));
        let service = service_over(&graph, 2);
        let token = CancelToken::new();
        token.cancel();
        let response = service
            .execute(&QueryRequest::paths(0, 1).max_hops(4).cancel_token(token))
            .unwrap();
        assert_eq!(response.termination, Termination::Cancelled);
        assert_eq!(response.report.cache, CacheOutcome::Skipped);
        assert_eq!(service.queries_served(), 0);
        assert_eq!(service.queries_rejected(), 1);
        assert_eq!(service.cache_stats().lookups, 0, "no lookup happened");
    }

    #[test]
    fn bypass_requests_are_counted_but_never_stored() {
        let graph = Arc::new(erdos_renyi(30, 150, 8));
        let service = service_over(&graph, 2);
        for _ in 0..3 {
            let response = service
                .execute(&QueryRequest::paths(0, 1).max_hops(4).bypass_cache())
                .unwrap();
            assert_eq!(response.report.cache, CacheOutcome::Bypass);
        }
        let stats = service.cache_stats();
        assert_eq!(stats.bypasses, 3);
        assert_eq!(stats.lookups, 3);
        assert_eq!(service.cache_len(), 0);
    }

    #[test]
    fn concurrent_direct_callers_share_one_warm_working_set() {
        let graph = Arc::new(erdos_renyi(60, 380, 23));
        let service = service_over(&graph, 4);
        // Warm the cache, then hammer it from many caller threads.
        let warm = service
            .execute(&QueryRequest::paths(0, 1).max_hops(4).collect_paths(true))
            .unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        let response = service
                            .execute(&QueryRequest::paths(0, 1).max_hops(4).collect_paths(true))
                            .unwrap();
                        assert_eq!(response.paths, warm.paths);
                        assert_eq!(response.report.cache, CacheOutcome::Hit);
                        assert_eq!(response.report.timings.index_build, Duration::ZERO);
                    }
                });
            }
        });
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 32);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.misses + stats.bypasses, stats.lookups);
    }

    #[test]
    fn worker_panics_resolve_the_ticket_and_spare_the_pool() {
        let graph = Arc::new(erdos_renyi(30, 150, 1));
        let service = service_over(&graph, 1);
        let panicking: QueryRequest<'static> = QueryRequest::paths(0, 1)
            .max_hops(4)
            .predicate(|_, _| panic!("hostile constraint closure"));
        let err = service
            .execute_batch(vec![panicking])
            .remove(0)
            .unwrap_err();
        assert_eq!(err, PathEnumError::EvaluationPanicked);
        // The (only) worker survived the panic and keeps serving.
        let response = service
            .execute_batch(vec![QueryRequest::paths(0, 1).max_hops(4)])
            .remove(0)
            .unwrap();
        assert_eq!(response.termination, Termination::Completed);
    }

    fn caching_service_over(graph: &Arc<CsrGraph>, workers: usize) -> PathEnumService {
        PathEnumService::with_config(
            Arc::clone(graph),
            PathEnumConfig::default(),
            ServiceConfig {
                workers,
                result_cache_bytes: 4 * 1024 * 1024,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn result_layer_serves_repeats_without_reenumeration() {
        let graph = Arc::new(erdos_renyi(60, 380, 29));
        let service = caching_service_over(&graph, 4);
        let request = QueryRequest::paths(0, 1).max_hops(4).collect_paths(true);
        let cold = service.execute(&request).unwrap();
        assert_eq!(cold.report.cache, CacheOutcome::Miss);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        let warm = service.execute(&request).unwrap();
                        assert_eq!(warm.report.cache, CacheOutcome::ResultHit);
                        assert_eq!(warm.paths, cold.paths);
                        assert_eq!(warm.report.timings.index_build, Duration::ZERO);
                    }
                });
            }
        });
        let stats = service.result_cache_stats();
        assert_eq!(stats.hits, 32);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.misses + stats.bypasses, stats.lookups);
        assert_eq!(service.result_cache_len(), 1);
        // A result hit never consults the plan cache.
        assert_eq!(service.cache_stats().lookups, 1);
    }

    #[test]
    fn result_layer_stays_off_by_default() {
        let graph = Arc::new(erdos_renyi(40, 220, 29));
        let service = service_over(&graph, 2);
        let request = QueryRequest::paths(0, 1).max_hops(4).collect_paths(true);
        service.execute(&request).unwrap();
        let warm = service.execute(&request).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::Hit);
        let stats = service.result_cache_stats();
        assert_eq!(stats.lookups, 0);
        assert_eq!(service.result_cache_len(), 0);
    }

    #[test]
    fn grouped_batches_match_solo_execution_byte_for_byte() {
        let graph = Arc::new(erdos_renyi(60, 380, 31));
        // A skewed batch: three shapes, 24 requests, plus one uncacheable
        // (predicate without a fingerprint) straggler per shape.
        let targets: Vec<u32> = (0..24).map(|i| 1 + (i % 3)).collect();
        let build_batch = || -> Vec<QueryRequest<'static>> {
            let mut batch: Vec<QueryRequest<'static>> = targets
                .iter()
                .map(|&t| QueryRequest::paths(0, t).max_hops(4).collect_paths(true))
                .collect();
            for t in 1..=3 {
                batch.push(
                    QueryRequest::paths(0, t)
                        .max_hops(4)
                        .collect_paths(true)
                        .predicate(|_, _| true),
                );
            }
            batch
        };
        let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
        let solo: Vec<_> = build_batch()
            .iter()
            .map(|request| engine.execute(request).unwrap())
            .collect();
        for workers in [1, 2, 4, 8] {
            let service = caching_service_over(&graph, workers);
            let responses = service.execute_batch(build_batch());
            assert_eq!(responses.len(), solo.len());
            for (i, (response, expected)) in responses.iter().zip(&solo).enumerate() {
                let response = response.as_ref().unwrap();
                assert_eq!(response.paths, expected.paths, "workers={workers} i={i}");
                assert_eq!(response.termination, expected.termination);
            }
            let stats = service.result_cache_stats();
            // 24 cacheable requests over 3 shapes: 3 misses, 21 hits; the
            // 3 predicate stragglers bypass the result layer.
            assert_eq!(stats.lookups, 27);
            assert_eq!(stats.misses, 3, "workers={workers}");
            assert_eq!(stats.hits, 21, "workers={workers}");
            assert_eq!(stats.bypasses, 3, "workers={workers}");
            assert_eq!(stats.hits + stats.misses + stats.bypasses, stats.lookups);
        }
    }

    #[test]
    fn grouped_batches_build_each_shared_index_once() {
        let graph = Arc::new(erdos_renyi(60, 380, 37));
        let service = caching_service_over(&graph, 4);
        let requests: Vec<QueryRequest<'static>> = (0..24)
            .map(|i| {
                QueryRequest::paths(0, 1 + (i % 3))
                    .max_hops(4)
                    .collect_paths(true)
            })
            .collect();
        let responses = service.execute_batch(requests);
        // One boundary BFS + one index build per shape: each group's
        // first member misses, every other member replays the result.
        let cold = responses
            .iter()
            .filter(|r| r.as_ref().unwrap().report.cache == CacheOutcome::Miss)
            .count();
        let replayed = responses
            .iter()
            .filter(|r| r.as_ref().unwrap().report.cache == CacheOutcome::ResultHit)
            .count();
        assert_eq!(cold, 3);
        assert_eq!(replayed, 21);
        assert_eq!(service.cache_stats().misses, 3, "three index builds");
    }

    #[test]
    fn dropping_the_service_resolves_outstanding_tickets() {
        let graph = Arc::new(complete_digraph(8));
        let service = service_over(&graph, 1);
        let tickets: Vec<Ticket> = (0..6)
            .map(|_| service.submit(QueryRequest::paths(0, 7).max_hops(4).limit(50)))
            .collect();
        drop(service);
        for ticket in tickets {
            let response = ticket.wait().unwrap();
            assert_eq!(response.num_results(), 50);
        }
    }
}

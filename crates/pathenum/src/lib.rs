//! # PathEnum — real-time hop-constrained s-t path enumeration
//!
//! Reproduction of *"PathEnum: Towards Real-Time Hop-Constrained s-t Path
//! Enumeration"* (SIGMOD 2021). Given a directed graph `G`, distinct
//! vertices `s, t` and a hop constraint `k`, PathEnum enumerates every
//! simple path from `s` to `t` with at most `k` edges:
//!
//! 1. a query-dependent **light-weight index** ([`index::Index`],
//!    Algorithm 3) is built in `O(|E| + |V|)` from the boundary distances
//!    `S(s, v | G−{t})` and `S(v, t | G−{s})`;
//! 2. a **preliminary estimator** ([`estimator::preliminary_estimate`],
//!    Equation 5) sizes the search space in `O(k^2)`;
//! 3. small queries run **IDX-DFS** ([`enumerate::idx_dfs`], Algorithm 4)
//!    directly; large ones invoke the **full-fledged estimator**
//!    ([`estimator::FullEstimate`], Equations 6–7) and the join-order
//!    optimizer ([`optimizer::optimize_join_order`], Algorithm 5), which
//!    may select **IDX-JOIN** ([`enumerate::idx_join`], Algorithm 6).
//!
//! The paper's Appendix E constraint extensions (edge predicates,
//! accumulative values, action-sequence automata) live in [`constraints`]
//! and attach to requests as first-class options.
//!
//! A single heavy query can also fan its search out over an intra-query
//! worker pool ([`parallel`], surfaced as
//! [`QueryRequest::threads`](request::QueryRequest::threads)) with a
//! deterministic merged output, and many queries can be served
//! concurrently from many threads over one shared graph and one shared
//! plan cache through the [`service`] layer ([`PathEnumService`]).
//! Fleet-shaped deployments — many named graphs, many tenants, graphs
//! republished mid-traffic, overload shed by modeled cost — go through
//! the [`catalog`] layer ([`CatalogService`]) and its [`admission`]
//! policies.
//!
//! # Serving queries
//!
//! Services talk to the engine through the [`request`] layer: build a
//! [`QueryRequest`], execute it (or [`stream`](QueryEngine::stream) it),
//! and inspect the [`Termination`] reason — "at most 1000 paths within
//! 50 ms" is one chained expression, and malformed requests come back as
//! a [`PathEnumError`] instead of a panic:
//!
//! ```
//! use std::time::Duration;
//! use pathenum::{PathEnumConfig, QueryEngine, QueryRequest};
//! use pathenum_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3), (1, 2)]).unwrap();
//! let graph = b.finish();
//!
//! let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
//! let request = QueryRequest::paths(0, 3)
//!     .max_hops(3)
//!     .limit(1000)
//!     .time_budget(Duration::from_millis(50));
//! let response = engine.execute(&request).unwrap();
//! assert_eq!(response.num_results(), 3); // 0-1-3, 0-2-3, 0-1-2-3
//! assert!(!response.termination.is_early());
//! ```
//!
//! The one-shot [`path_enum`] survives as a thin validated wrapper for
//! single queries and as the migration oracle for the request API:
//!
//! ```
//! use pathenum::{path_enum, PathEnumConfig, Query};
//! use pathenum::sink::CollectingSink;
//! use pathenum_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3), (1, 2)]).unwrap();
//! let graph = b.finish();
//!
//! let query = Query::new(0, 3, 3).unwrap();
//! let mut sink = CollectingSink::default();
//! let report = path_enum(&graph, query, PathEnumConfig::default(), &mut sink).unwrap();
//! assert_eq!(report.counters.results, 3);
//! ```

pub mod admission;
pub mod bits;
pub mod catalog;
pub mod constraints;
pub mod dynamic;
pub mod engine;
pub mod enumerate;
pub mod estimator;
pub mod global;
pub mod index;
pub mod optimizer;
pub mod parallel;
pub mod plan;
pub mod query;
pub mod reference;
pub mod relations;
pub mod request;
pub mod results;
pub mod service;
pub mod sink;
pub mod spectrum;
pub mod stats;
pub(crate) mod sync;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionStats, Lane,
};
pub use bits::{CompactBits, DenseBits};
pub use catalog::{
    CatalogConfig, CatalogOutcome, CatalogRequest, CatalogService, CatalogTicket, GraphCatalog,
};
pub use dynamic::DynamicEngine;
pub use engine::QueryEngine;
pub use index::Index;
pub use optimizer::{optimize_join_order, path_enum, path_enum_on_index, JoinPlan, PathEnumConfig};
pub use parallel::SharedControl;
pub use plan::{
    CacheOutcome, ConstraintKind, Executor, PhysicalPlan, PlanCache, PlanCacheStats, PlanKey,
    Planner, SharedCacheStats, SharedPlanCache,
};
pub use query::Query;
pub use request::{
    CancelToken, ControlledSink, PathEnumError, PathStream, QueryRequest, QueryResponse,
    Termination,
};
pub use results::{
    ResultCache, ResultCacheStats, ResultKey, SharedResultCache, DEFAULT_RESULT_CACHE_BYTES,
    DEFAULT_RESULT_CACHE_SHARDS,
};
pub use service::{PathEnumService, ServeReport, ServiceConfig, Ticket, TicketOutcome};
#[allow(deprecated)]
pub use sink::LimitSink;
pub use sink::{CollectingSink, CountingSink, PathBuffer, PathSink, SearchControl};
pub use stats::{Counters, Method, PhaseTimings, RunReport};

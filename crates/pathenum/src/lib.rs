//! # PathEnum — real-time hop-constrained s-t path enumeration
//!
//! Reproduction of *"PathEnum: Towards Real-Time Hop-Constrained s-t Path
//! Enumeration"* (SIGMOD 2021). Given a directed graph `G`, distinct
//! vertices `s, t` and a hop constraint `k`, PathEnum enumerates every
//! simple path from `s` to `t` with at most `k` edges:
//!
//! 1. a query-dependent **light-weight index** ([`index::Index`],
//!    Algorithm 3) is built in `O(|E| + |V|)` from the boundary distances
//!    `S(s, v | G−{t})` and `S(v, t | G−{s})`;
//! 2. a **preliminary estimator** ([`estimator::preliminary_estimate`],
//!    Equation 5) sizes the search space in `O(k^2)`;
//! 3. small queries run **IDX-DFS** ([`enumerate::idx_dfs`], Algorithm 4)
//!    directly; large ones invoke the **full-fledged estimator**
//!    ([`estimator::FullEstimate`], Equations 6–7) and the join-order
//!    optimizer ([`optimizer::optimize_join_order`], Algorithm 5), which
//!    may select **IDX-JOIN** ([`enumerate::idx_join`], Algorithm 6).
//!
//! The paper's Appendix E constraint extensions (edge predicates,
//! accumulative values, action-sequence automata) live in [`constraints`].
//!
//! ```
//! use pathenum::{path_enum, PathEnumConfig, Query};
//! use pathenum::sink::CollectingSink;
//! use pathenum_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3), (1, 2)]).unwrap();
//! let graph = b.finish();
//!
//! let query = Query::new(0, 3, 3).unwrap();
//! let mut sink = CollectingSink::default();
//! let report = path_enum(&graph, query, PathEnumConfig::default(), &mut sink);
//! assert_eq!(report.counters.results, 3); // 0-1-3, 0-2-3, 0-1-2-3
//! ```

pub mod constraints;
pub mod engine;
pub mod enumerate;
pub mod estimator;
pub mod global;
pub mod index;
pub mod optimizer;
pub mod query;
pub mod reference;
pub mod relations;
pub mod sink;
pub mod spectrum;
pub mod stats;

pub use engine::QueryEngine;
pub use index::Index;
pub use optimizer::{optimize_join_order, path_enum, path_enum_on_index, JoinPlan, PathEnumConfig};
pub use query::Query;
pub use sink::{CollectingSink, CountingSink, LimitSink, PathSink, SearchControl};
pub use stats::{Counters, Method, PhaseTimings, RunReport};

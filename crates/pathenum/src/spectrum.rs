//! The join-plan spectrum (Section 7.3, Figure 9).
//!
//! A left-deep plan evaluates the chain join by starting from one relation
//! `R_j` and repeatedly joining an adjacent relation to the left or right
//! — generalizing IDX-DFS, which is the all-right plan anchored at `R_1`.
//! A bushy plan cuts the chain at a position and joins the two halves
//! (Algorithm 6). The spectrum analysis executes *every* plan in both
//! families on the index and compares the optimizer's pick against the
//! field.
//!
//! The left-deep executor below extends an interval of known positions
//! `[lo, hi]` one vertex at a time: rightward through `I_t` (budget
//! `k - p` for a vertex placed at position `p`) and leftward through
//! `I_s` (budget `p`), so every generated partial is admissible by index
//! construction and the final tuples are exactly the walks of `Q`.

use pathenum_graph::VertexId;

use crate::index::{Index, LocalId};
use crate::sink::{PathSink, SearchControl};
use crate::stats::Counters;

/// Direction of one extension step of a left-deep plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extend {
    /// Join the next relation on the left (prepend a vertex).
    Left,
    /// Join the next relation on the right (append a vertex).
    Right,
}

/// A left-deep join order over the chain `R_1 ... R_k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeftDeepPlan {
    /// The anchor relation `R_first` (1-based); its tuples seed the search
    /// covering positions `first-1 ..= first`.
    pub first: u32,
    /// The `k - 1` subsequent adjacent-relation joins.
    pub moves: Vec<Extend>,
}

impl LeftDeepPlan {
    /// The plan equivalent to IDX-DFS: anchor at `R_1`, extend right.
    pub fn forward(k: u32) -> LeftDeepPlan {
        LeftDeepPlan {
            first: 1,
            moves: vec![Extend::Right; k as usize - 1],
        }
    }

    /// The mirror plan: anchor at `R_k`, extend left.
    pub fn backward(k: u32) -> LeftDeepPlan {
        LeftDeepPlan {
            first: k,
            moves: vec![Extend::Left; k as usize - 1],
        }
    }
}

/// Enumerates all `2^(k-1)` left-deep plans without Cartesian products.
pub fn all_left_deep_plans(k: u32) -> Vec<LeftDeepPlan> {
    let mut plans = Vec::new();
    for first in 1..=k {
        let mut moves = Vec::with_capacity(k as usize - 1);
        gather(first - 1, k - first, &mut moves, first, &mut plans);
    }
    plans
}

fn gather(
    lefts: u32,
    rights: u32,
    moves: &mut Vec<Extend>,
    first: u32,
    plans: &mut Vec<LeftDeepPlan>,
) {
    if lefts == 0 && rights == 0 {
        plans.push(LeftDeepPlan {
            first,
            moves: moves.clone(),
        });
        return;
    }
    if lefts > 0 {
        moves.push(Extend::Left);
        gather(lefts - 1, rights, moves, first, plans);
        moves.pop();
    }
    if rights > 0 {
        moves.push(Extend::Right);
        gather(lefts, rights - 1, moves, first, plans);
        moves.pop();
    }
}

/// Executes a left-deep plan on the index, emitting the valid simple
/// paths among the produced walk tuples.
pub fn execute_left_deep(
    index: &Index,
    plan: &LeftDeepPlan,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) -> SearchControl {
    let k = index.k();
    assert!(
        plan.first >= 1 && plan.first <= k,
        "anchor relation out of range"
    );
    assert_eq!(
        plan.moves.len() as u32,
        k - 1,
        "plan must cover all relations"
    );
    let (Some(_), Some(t_local)) = (index.s_local(), index.t_local()) else {
        return SearchControl::Continue;
    };
    let mut exec = Executor {
        index,
        t_local,
        plan,
        slots: vec![0; k as usize + 1],
        scratch: Vec::with_capacity(k as usize + 1),
        sink,
        counters,
    };
    // Seed with the tuples of R_first: v in C_{first-1}, v' in I_t(v, k-first).
    let anchor = plan.first - 1;
    let seeds: Vec<LocalId> = index.level(anchor).collect();
    for v in seeds {
        exec.slots[anchor as usize] = v;
        let neighbors = index.i_t(v, k - plan.first);
        exec.counters.edges_accessed += neighbors.len() as u64;
        for &v2 in neighbors {
            exec.slots[anchor as usize + 1] = v2;
            exec.counters.partial_results += 1;
            if exec.extend(anchor, anchor + 1, 0) == SearchControl::Stop {
                return SearchControl::Stop;
            }
        }
    }
    SearchControl::Continue
}

struct Executor<'a> {
    index: &'a Index,
    t_local: LocalId,
    plan: &'a LeftDeepPlan,
    /// Positions `lo ..= hi` are filled.
    slots: Vec<LocalId>,
    scratch: Vec<VertexId>,
    sink: &'a mut dyn PathSink,
    counters: &'a mut Counters,
}

impl Executor<'_> {
    fn extend(&mut self, lo: u32, hi: u32, step: usize) -> SearchControl {
        let k = self.index.k();
        if lo == 0 && hi == k {
            return self.emit_if_path();
        }
        match self.plan.moves[step] {
            Extend::Right => {
                debug_assert!(hi < k);
                let v = self.slots[hi as usize];
                // A vertex at position hi+1 must reach t in k-(hi+1) hops.
                let neighbors = self.index.i_t(v, k - hi - 1);
                self.counters.edges_accessed += neighbors.len() as u64;
                for &next in neighbors {
                    self.slots[hi as usize + 1] = next;
                    self.counters.partial_results += 1;
                    if self.extend(lo, hi + 1, step + 1) == SearchControl::Stop {
                        return SearchControl::Stop;
                    }
                }
            }
            Extend::Left => {
                debug_assert!(lo > 0);
                let v = self.slots[lo as usize];
                // A vertex at position lo-1 must be reachable from s in
                // lo-1 hops.
                let predecessors = self.index.i_s(v, lo - 1);
                self.counters.edges_accessed += predecessors.len() as u64;
                for &prev in predecessors {
                    self.slots[lo as usize - 1] = prev;
                    self.counters.partial_results += 1;
                    if self.extend(lo - 1, hi, step + 1) == SearchControl::Stop {
                        return SearchControl::Stop;
                    }
                }
            }
        }
        SearchControl::Continue
    }

    fn emit_if_path(&mut self) -> SearchControl {
        let tuple = &self.slots;
        let Some(first_t) = tuple.iter().position(|&v| v == self.t_local) else {
            return SearchControl::Continue;
        };
        let len = first_t + 1;
        if tuple[len..].iter().any(|&v| v != self.t_local) {
            return SearchControl::Continue;
        }
        for i in 0..len {
            for j in (i + 1)..len {
                if tuple[i] == tuple[j] {
                    self.counters.invalid_partial_results += 1;
                    return SearchControl::Continue;
                }
            }
        }
        self.counters.results += 1;
        self.scratch.clear();
        self.scratch
            .extend(tuple[..len].iter().map(|&l| self.index.global(l)));
        self.sink.emit(&self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::idx_dfs;
    use crate::index::test_support::*;
    use crate::query::Query;
    use crate::sink::CollectingSink;

    #[test]
    fn plan_enumeration_counts() {
        // 2^(k-1) plans.
        assert_eq!(all_left_deep_plans(2).len(), 2);
        assert_eq!(all_left_deep_plans(4).len(), 8);
        assert_eq!(all_left_deep_plans(6).len(), 32);
    }

    #[test]
    fn forward_plan_is_all_right() {
        let p = LeftDeepPlan::forward(4);
        assert_eq!(p.first, 1);
        assert!(p.moves.iter().all(|&m| m == Extend::Right));
    }

    fn run_plan(k: u32, plan: &LeftDeepPlan) -> Vec<Vec<VertexId>> {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, k).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        execute_left_deep(&idx, plan, &mut sink, &mut counters);
        sink.sorted_paths()
    }

    #[test]
    fn every_plan_yields_the_same_paths() {
        for k in [3u32, 4] {
            let g = figure1_graph();
            let idx = Index::build(&g, Query::new(S, T, k).unwrap());
            let mut reference = CollectingSink::default();
            let mut counters = Counters::default();
            idx_dfs(&idx, &mut reference, &mut counters);
            let expected = reference.sorted_paths();
            for plan in all_left_deep_plans(k) {
                assert_eq!(run_plan(k, &plan), expected, "plan {plan:?}");
            }
        }
    }

    #[test]
    fn backward_plan_matches_forward() {
        let fwd = run_plan(4, &LeftDeepPlan::forward(4));
        let bwd = run_plan(4, &LeftDeepPlan::backward(4));
        assert_eq!(fwd, bwd);
        assert_eq!(fwd.len(), 5);
    }

    #[test]
    #[should_panic(expected = "plan must cover")]
    fn rejects_malformed_plans() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        let plan = LeftDeepPlan {
            first: 1,
            moves: vec![Extend::Right],
        };
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        execute_left_deep(&idx, &plan, &mut sink, &mut counters);
    }
}

//! Global-index acceleration (the paper's Section 7.5 discussion).
//!
//! PathEnum builds its light-weight index from scratch per query, which
//! on very large graphs is dominated by the two boundary BFS traversals.
//! The paper's proposed direction is a *global* index built once offline
//! that serves all queries. This module provides that layer on top of
//! the [`pathenum_graph::pll`] pruned-landmark-labeling oracle:
//!
//! * **Existence filtering**: `d(s, t) > k` proves the query empty in
//!   O(label) time — no BFS, no index. Workloads that mix reachable and
//!   unreachable endpoint pairs (e.g. streaming cycle detection, where
//!   most new edges close no cycle) skip the entire per-query build.
//! * **Exact distance without enumeration**: callers that only need the
//!   shortest length (the admission rule of the query generator, risk
//!   triage before a full enumeration) query the oracle directly.
//!
//! The oracle maintains *global* distances, so it can only prove
//! emptiness, never non-emptiness of the constrained problem — the
//! per-query index remains the authority once a query passes the filter.

use pathenum_graph::{CsrGraph, DistanceOracle};

use crate::optimizer::{path_enum, PathEnumConfig};
use crate::query::Query;
use crate::request::PathEnumError;
use crate::sink::PathSink;
use crate::stats::{Counters, Method, PhaseTimings, RunReport};

/// A graph paired with its offline distance oracle.
#[derive(Debug, Clone)]
pub struct GlobalIndexedGraph {
    graph: CsrGraph,
    oracle: DistanceOracle,
}

impl GlobalIndexedGraph {
    /// Builds the oracle for `graph` (offline preprocessing; one pruned
    /// BFS pair per vertex in degree order).
    pub fn new(graph: CsrGraph) -> GlobalIndexedGraph {
        let oracle = DistanceOracle::build(&graph);
        GlobalIndexedGraph { graph, oracle }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The distance oracle.
    pub fn oracle(&self) -> &DistanceOracle {
        &self.oracle
    }

    /// Whether `query` can possibly have results: `d(s, t) <= k`.
    pub fn may_have_results(&self, query: Query) -> bool {
        self.oracle.within(query.s, query.t, query.k)
    }

    /// Runs PathEnum with the oracle as a pre-filter: provably empty
    /// queries return immediately with an all-zero report.
    pub fn path_enum(
        &self,
        query: Query,
        config: PathEnumConfig,
        sink: &mut dyn PathSink,
    ) -> Result<RunReport, PathEnumError> {
        query.validate(self.graph.num_vertices())?;
        if !self.may_have_results(query) {
            return Ok(RunReport {
                method: Method::IdxDfs,
                timings: PhaseTimings::default(),
                counters: Counters::default(),
                preliminary_estimate: 0,
                full_estimate: Some(0),
                t_dfs: None,
                t_join: None,
                cut_position: None,
                index_bytes: 0,
                index_edges: 0,
                cache: crate::plan::CacheOutcome::Bypass,
            });
        }
        path_enum(&self.graph, query, config, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::sink::{CollectingSink, CountingSink};
    use pathenum_graph::generators::erdos_renyi;

    #[test]
    fn oracle_filter_matches_direct_evaluation() {
        let g = erdos_renyi(40, 120, 8);
        let indexed = GlobalIndexedGraph::new(g.clone());
        for t in 1..20u32 {
            let q = Query::new(0, t, 4).unwrap();
            let mut direct = CollectingSink::default();
            path_enum(&g, q, PathEnumConfig::default(), &mut direct).unwrap();
            let mut filtered = CollectingSink::default();
            indexed
                .path_enum(q, PathEnumConfig::default(), &mut filtered)
                .unwrap();
            assert_eq!(direct.sorted_paths(), filtered.sorted_paths(), "t={t}");
        }
    }

    #[test]
    fn provably_empty_queries_short_circuit() {
        let g = figure1_graph();
        let indexed = GlobalIndexedGraph::new(g);
        // v7 (vertex 9) has no in-edges: q(s, v7, k) is empty.
        let q = Query::new(S, V[7], 6).unwrap();
        assert!(!indexed.may_have_results(q));
        let mut sink = CountingSink::default();
        let report = indexed
            .path_enum(q, PathEnumConfig::default(), &mut sink)
            .unwrap();
        assert_eq!(sink.count, 0);
        assert_eq!(report.index_edges, 0);
        assert_eq!(report.timings.total(), std::time::Duration::ZERO);
    }

    #[test]
    fn distance_filter_respects_k() {
        let mut b = pathenum_graph::GraphBuilder::new(5);
        b.add_edges([(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let indexed = GlobalIndexedGraph::new(b.finish());
        assert!(indexed.may_have_results(Query::new(0, 4, 4).unwrap()));
        assert!(!indexed.may_have_results(Query::new(0, 4, 3).unwrap()));
    }
}

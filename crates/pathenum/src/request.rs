//! The service-grade request/response layer.
//!
//! The paper's motivating workloads — streaming fraud detection, online
//! risk scoring — are request/response services with latency budgets, not
//! batch jobs. This module is the front door for that shape of caller:
//!
//! * [`QueryRequest`] — a builder capturing *what* to enumerate (`s`, `t`,
//!   `max_hops`) and *how far to go* (`limit`, `time_budget`,
//!   [`CancelToken`]), plus the Appendix E constraint extensions
//!   (edge [`predicate`](QueryRequest::predicate),
//!   [`accumulative`](QueryRequest::accumulative) values,
//!   action-sequence [`automaton`](QueryRequest::automaton)) as
//!   first-class request options;
//! * [`PathEnumError`] — the single error enum every entry point returns,
//!   absorbing [`QueryError`] plus graph-validation and constraint-config
//!   errors;
//! * [`QueryResponse`] — the existing [`RunReport`] plus an explicit
//!   [`Termination`] reason, so an early cut-off is *reported*, never
//!   silent;
//! * [`PathStream`] — a pull-based iterator over results (built on the
//!   suspended-frame DFS of [`crate::enumerate::dfs_iterative`]) for
//!   callers that want paths lazily without writing a [`PathSink`].
//!
//! Evaluate a request with
//! [`QueryEngine::execute`](crate::QueryEngine::execute),
//! [`QueryEngine::execute_into`](crate::QueryEngine::execute_into), or
//! [`QueryEngine::stream`](crate::QueryEngine::stream)
//! (see [`crate::engine`]).
//!
//! ```
//! use pathenum::{PathEnumConfig, QueryEngine, QueryRequest, Termination};
//! use pathenum_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3), (1, 2)]).unwrap();
//! let graph = b.finish();
//! let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
//!
//! let request = QueryRequest::paths(0, 3).max_hops(3).limit(2).collect_paths(true);
//! let response = engine.execute(&request).unwrap();
//! assert_eq!(response.termination, Termination::LimitReached);
//! assert_eq!(response.paths.len(), 2);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pathenum_graph::VertexId;

use crate::constraints::automaton::{Automaton, LabelId};
use crate::constraints::{accumulative_join, AccumulativeQuery};
use crate::index::Index;
use crate::query::{Query, QueryError};
use crate::sink::{PathSink, SearchControl};
use crate::stats::{Counters, Method, RunReport};

/// Unified error type of the request/response API.
///
/// Absorbs every way a request can be malformed: the graph-independent
/// invariants of [`QueryError`], endpoint validation against the serving
/// graph, and constraint-configuration mistakes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathEnumError {
    /// `s == t`; the problem requires distinct endpoints.
    EqualEndpoints,
    /// `max_hops < 2` (or never set on the builder).
    HopConstraintTooSmall(u32),
    /// `max_hops` exceeds [`crate::query::MAX_HOPS`].
    HopConstraintTooLarge(u32),
    /// An endpoint is not a vertex of the serving graph.
    VertexOutOfRange(VertexId),
    /// More than one constraint was set on the request; predicate,
    /// accumulative, and automaton constraints are mutually exclusive.
    ConflictingConstraints {
        /// The constraint that was already present.
        first: &'static str,
        /// The constraint whose setter detected the conflict.
        second: &'static str,
    },
    /// The evaluation panicked mid-query (a user-supplied constraint
    /// closure, or a bug). Only returned by the
    /// [`service`](crate::service) worker pool, which isolates the
    /// panic so the worker survives and every issued
    /// [`Ticket`](crate::service::Ticket) still resolves; direct
    /// (`execute`) callers observe the panic itself.
    EvaluationPanicked,
    /// The request named a graph the serving
    /// [`GraphCatalog`](crate::catalog::GraphCatalog) does not hold
    /// (never registered, or removed).
    GraphNotFound,
    /// The service shed this request instead of queuing it: admitting
    /// it would have pushed the in-flight modeled cost over the
    /// [`admission`](crate::admission) budget, or the tenant's bounded
    /// queue is full. The request was **not** evaluated; `retry_hint`
    /// is a coarse, advisory backoff before resubmitting.
    Overloaded {
        /// Suggested client backoff (advisory, derived from current
        /// queue pressure — not a reservation).
        retry_hint: Duration,
    },
}

impl std::fmt::Display for PathEnumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathEnumError::EqualEndpoints => write!(f, "source and target must be distinct"),
            PathEnumError::HopConstraintTooSmall(k) => {
                write!(f, "hop constraint {k} < 2 (did you call max_hops?)")
            }
            PathEnumError::HopConstraintTooLarge(k) => {
                write!(
                    f,
                    "hop constraint {k} exceeds MAX_HOPS = {}",
                    crate::query::MAX_HOPS
                )
            }
            PathEnumError::VertexOutOfRange(v) => write!(f, "vertex {v} not in graph"),
            PathEnumError::ConflictingConstraints { first, second } => {
                write!(
                    f,
                    "request already has a {first} constraint; cannot also set {second}"
                )
            }
            PathEnumError::EvaluationPanicked => {
                write!(f, "evaluation panicked mid-query; no result was produced")
            }
            PathEnumError::GraphNotFound => {
                write!(f, "the named graph is not registered in the catalog")
            }
            PathEnumError::Overloaded { retry_hint } => {
                write!(
                    f,
                    "request shed by admission control (overloaded); retry in ~{:?}",
                    retry_hint
                )
            }
        }
    }
}

impl std::error::Error for PathEnumError {}

impl From<QueryError> for PathEnumError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::EqualEndpoints => PathEnumError::EqualEndpoints,
            QueryError::HopConstraintTooSmall(k) => PathEnumError::HopConstraintTooSmall(k),
            QueryError::HopConstraintTooLarge(k) => PathEnumError::HopConstraintTooLarge(k),
            QueryError::VertexOutOfRange(v) => PathEnumError::VertexOutOfRange(v),
        }
    }
}

/// Why an evaluation stopped producing results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The search space was exhausted: every result was produced.
    Completed,
    /// The request's [`limit`](QueryRequest::limit) was reached.
    LimitReached,
    /// The request's [`time_budget`](QueryRequest::time_budget) expired.
    DeadlineExceeded,
    /// The request's [`CancelToken`] was triggered.
    Cancelled,
}

impl Termination {
    /// Whether the result set may be incomplete.
    pub fn is_early(&self) -> bool {
        !matches!(self, Termination::Completed)
    }
}

/// Shared cancellation flag for cooperative early termination.
///
/// Clone the token, hand one copy to the request via
/// [`QueryRequest::cancel_token`], keep the other, and call
/// [`cancel`](CancelToken::cancel) from any thread; the evaluation
/// observes the flag at every emission (and periodically inside
/// [`PathStream`]) and stops with [`Termination::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-triggered token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Object-safe facade over [`AccumulativeQuery`], letting the request
/// hold the constraint without propagating its three type parameters.
pub trait DynAccumulative {
    /// Algorithm 7 on `index`, streaming accepted paths into `sink`.
    fn dfs(&self, index: &Index, sink: &mut dyn PathSink, counters: &mut Counters)
        -> SearchControl;

    /// The IDX-JOIN variant at `cut`.
    fn join(
        &self,
        index: &Index,
        cut: u32,
        sink: &mut dyn PathSink,
        counters: &mut Counters,
    ) -> SearchControl;

    /// Whether a complete path's accumulated value passes the check
    /// (used by [`PathStream`]'s post-filter).
    fn accepts(&self, path: &[VertexId]) -> bool;
}

impl<V, W, C> DynAccumulative for AccumulativeQuery<V, W, C>
where
    V: Copy,
    W: Fn(VertexId, VertexId) -> V,
    C: Fn(&V) -> bool,
{
    fn dfs(
        &self,
        index: &Index,
        sink: &mut dyn PathSink,
        counters: &mut Counters,
    ) -> SearchControl {
        crate::constraints::accumulative_dfs(index, self, sink, counters)
    }

    fn join(
        &self,
        index: &Index,
        cut: u32,
        sink: &mut dyn PathSink,
        counters: &mut Counters,
    ) -> SearchControl {
        accumulative_join(index, cut, self, sink, counters)
    }

    fn accepts(&self, path: &[VertexId]) -> bool {
        let mut acc = self.identity;
        for w in path.windows(2) {
            acc = (self.combine)(acc, (self.weight)(w[0], w[1]));
        }
        (self.check)(&acc)
    }
}

/// The constraint attached to a request, if any.
///
/// Constraint closures are `Send + Sync` so a whole [`QueryRequest`] can
/// cross (and be shared across) threads — the contract the concurrent
/// [`service`](crate::service) layer is built on.
pub(crate) enum ConstraintSpec<'a> {
    /// Plain HcPE.
    None,
    /// Every edge must satisfy the predicate (Appendix E).
    Predicate(Box<dyn Fn(VertexId, VertexId) -> bool + Send + Sync + 'a>),
    /// An accumulated edge value must pass a final check (Algorithm 7).
    Accumulative(Box<dyn DynAccumulative + Send + Sync + 'a>),
    /// The edge-label sequence must be accepted by a DFA (Algorithm 8).
    Automaton {
        automaton: Automaton,
        label_of: Box<dyn Fn(VertexId, VertexId) -> LabelId + Send + Sync + 'a>,
    },
}

impl ConstraintSpec<'_> {
    fn name(&self) -> &'static str {
        match self {
            ConstraintSpec::None => "none",
            ConstraintSpec::Predicate(_) => "predicate",
            ConstraintSpec::Accumulative(_) => "accumulative",
            ConstraintSpec::Automaton { .. } => "automaton",
        }
    }

    /// The constraint *strategy* (shape without the closures), recorded
    /// in [`PhysicalPlan`](crate::plan::PhysicalPlan).
    pub(crate) fn kind(&self) -> crate::plan::ConstraintKind {
        match self {
            ConstraintSpec::None => crate::plan::ConstraintKind::None,
            ConstraintSpec::Predicate(_) => crate::plan::ConstraintKind::Predicate,
            ConstraintSpec::Accumulative(_) => crate::plan::ConstraintKind::Accumulative,
            ConstraintSpec::Automaton { .. } => crate::plan::ConstraintKind::Automaton,
        }
    }

    /// The cache `(namespace, fingerprint)` of this constraint, or
    /// `None` when the request is not cacheable.
    ///
    /// Plain, accumulative, and automaton requests share one entry
    /// (namespace 0, fingerprint 0): all three plan on (and enumerate)
    /// the *same* unfiltered index — the constraint closures only
    /// filter/prune at execution time, so the cached plan + index are
    /// interchangeable. A predicate changes which index is built, and
    /// closures cannot be compared, so predicate requests are cacheable
    /// only when the caller vouches for predicate identity via
    /// [`QueryRequest::constraint_fingerprint`]; the tag lives in its
    /// own namespace so the full 64-bit tag space never aliases the
    /// shared entry (or other tags).
    pub(crate) fn fingerprint(&self, user_tag: Option<u64>) -> Option<(u8, u64)> {
        match self {
            ConstraintSpec::None
            | ConstraintSpec::Accumulative(_)
            | ConstraintSpec::Automaton { .. } => Some((0, 0)),
            ConstraintSpec::Predicate(_) => user_tag.map(|tag| (1, tag)),
        }
    }
}

/// A hop-constrained s-t path enumeration request.
///
/// Build with [`QueryRequest::paths`] and chain the options; evaluate
/// with [`QueryEngine::execute`](crate::QueryEngine::execute) (counts,
/// optionally collected paths), `execute_into` (stream into your own
/// sink), or [`QueryEngine::stream`](crate::QueryEngine::stream) (pull
/// paths lazily).
///
/// The lifetime `'a` bounds the constraint closures; requests built from
/// plain functions or capture-free closures are `QueryRequest<'static>`.
pub struct QueryRequest<'a> {
    pub(crate) s: VertexId,
    pub(crate) t: VertexId,
    pub(crate) k: u32,
    pub(crate) limit: Option<u64>,
    pub(crate) time_budget: Option<Duration>,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) method: Option<Method>,
    pub(crate) tau: Option<u64>,
    pub(crate) threads: usize,
    pub(crate) collect: bool,
    pub(crate) explain: bool,
    pub(crate) bypass_cache: bool,
    pub(crate) bypass_result_cache: bool,
    pub(crate) fingerprint: Option<u64>,
    pub(crate) constraint: ConstraintSpec<'a>,
    /// Set when a second constraint setter ran; surfaced at validation.
    pub(crate) conflict: Option<(&'static str, &'static str)>,
}

impl std::fmt::Debug for QueryRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryRequest")
            .field("s", &self.s)
            .field("t", &self.t)
            .field("max_hops", &self.k)
            .field("limit", &self.limit)
            .field("time_budget", &self.time_budget)
            .field("cancellable", &self.cancel.is_some())
            .field("method", &self.method)
            .field("threads", &self.threads)
            .field("constraint", &self.constraint.name())
            .finish()
    }
}

impl<'a> QueryRequest<'a> {
    /// Starts a request for simple paths from `s` to `t`.
    ///
    /// Call [`max_hops`](Self::max_hops) before evaluating; a request
    /// without a hop constraint fails validation with
    /// [`PathEnumError::HopConstraintTooSmall`].
    pub fn paths(s: VertexId, t: VertexId) -> Self {
        QueryRequest {
            s,
            t,
            k: 0,
            limit: None,
            time_budget: None,
            cancel: None,
            method: None,
            tau: None,
            threads: 1,
            collect: false,
            explain: false,
            bypass_cache: false,
            bypass_result_cache: false,
            fingerprint: None,
            constraint: ConstraintSpec::None,
            conflict: None,
        }
    }

    /// Promotes an existing [`Query`] into a request.
    pub fn from_query(query: Query) -> Self {
        QueryRequest::paths(query.s, query.t).max_hops(query.k)
    }

    /// Sets the hop constraint `k`: paths may use at most `k` edges.
    pub fn max_hops(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Stops after `n` results with [`Termination::LimitReached`] — the
    /// request-level form of the paper's first-1000 response metric.
    pub fn limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Stops with [`Termination::DeadlineExceeded`] once `budget` of
    /// wall-clock time has elapsed. Checked cooperatively: at every
    /// emission and, via [`PathSink::probe`], periodically while the
    /// search traverses barren regions that emit nothing — so the
    /// overrun is bounded by a few hundred search steps, not by the
    /// gap between results.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Attaches a cancellation token; see [`CancelToken`].
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Forces an enumeration method, bypassing the cost-based optimizer
    /// (ablations and tests; production callers should let the
    /// optimizer decide).
    pub fn method(mut self, method: Method) -> Self {
        self.method = Some(method);
        self
    }

    /// Overrides the preliminary-estimate threshold `tau` (Section 6.2).
    pub fn tau(mut self, tau: u64) -> Self {
        self.tau = Some(tau);
        self
    }

    /// Evaluates the request with `n` intra-query worker threads (see
    /// [`crate::parallel`]).
    ///
    /// * `1` (the default) — sequential evaluation;
    /// * `0` — one worker per available core;
    /// * `n >= 2` — a scoped pool of `n` workers splitting this query's
    ///   search space (first-hop partitions for T-DFS, join-key ranges
    ///   for IDX-JOIN).
    ///
    /// The merged output is deterministic: identical set *and* order for
    /// every `n >= 2` (and for the DFS method, identical to the
    /// sequential order). Determinism costs buffering — an unbounded
    /// parallel run holds all results in memory until the merge, and a
    /// `Stop` from the caller's sink bounds delivery but not the search;
    /// bound heavy queries with [`limit`](Self::limit) /
    /// [`time_budget`](Self::time_budget) instead (see
    /// [`crate::parallel`], "Cost of the deterministic merge").
    ///
    /// Requests with a constraint attached
    /// ([`predicate`](Self::predicate), [`accumulative`](Self::accumulative),
    /// [`automaton`](Self::automaton)) and
    /// [`stream`](crate::QueryEngine::stream) evaluation currently run
    /// sequentially regardless of this setting; the downgrade is *not*
    /// silent — [`effective_threads`](Self::effective_threads) and the
    /// `threads` field of the plan returned by `explain`/`execute`
    /// report the count actually used (`1` in those paths).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Plan only, never enumerate: the evaluation stops after the
    /// planner ran, returning the [`PhysicalPlan`](crate::plan::PhysicalPlan)
    /// (with modeled costs, estimates, and index sizes) in
    /// [`QueryResponse::plan`] with zero results — the `EXPLAIN` of this
    /// engine. The plan is cached, so a following `execute` of the same
    /// request runs warm. [`QueryEngine::explain`](crate::QueryEngine::explain)
    /// is the direct form.
    pub fn explain(mut self) -> Self {
        self.explain = true;
        self
    }

    /// Opts this request out of the engine's
    /// [`PlanCache`](crate::plan::PlanCache): the plan is recomputed and
    /// the built index is not stored. For cold-path measurements and
    /// one-off queries that should not displace hot entries.
    pub fn bypass_cache(mut self) -> Self {
        self.bypass_cache = true;
        self
    }

    /// Opts this request out of the *result* cache only (see
    /// [`ResultCache`](crate::results::ResultCache)): stored result sets
    /// are neither consulted nor populated, while the plan/index cache
    /// keeps working normally. For callers that want warm planning but
    /// always-fresh enumeration — e.g. probing for result-set changes.
    /// [`bypass_cache`](Self::bypass_cache) is stronger: it opts out of
    /// both layers.
    pub fn bypass_result_cache(mut self) -> Self {
        self.bypass_result_cache = true;
        self
    }

    /// Declares a stable identity for this request's
    /// [`predicate`](Self::predicate), making it plan-cacheable.
    ///
    /// Closures cannot be compared, so predicate requests are only
    /// cached when the caller vouches that every request carrying the
    /// same tag uses a semantically identical predicate (e.g. hash the
    /// predicate's parameters). Two *different* predicates under one tag
    /// will reuse each other's filtered index and return wrong results —
    /// the same contract as any user-keyed cache. Accumulative and
    /// automaton requests need no tag (their plans and indices are
    /// constraint-independent), and unconstrained requests ignore it.
    pub fn constraint_fingerprint(mut self, tag: u64) -> Self {
        self.fingerprint = Some(tag);
        self
    }

    /// Also materialize result paths into
    /// [`QueryResponse::paths`]. Off by default: counting workloads
    /// should not pay for path copies. Combine with
    /// [`limit`](Self::limit) to bound the response size, or use
    /// [`QueryEngine::stream`](crate::QueryEngine::stream) to consume
    /// lazily.
    pub fn collect_paths(mut self, collect: bool) -> Self {
        self.collect = collect;
        self
    }

    /// Restricts results to paths whose every edge satisfies
    /// `predicate` (Appendix E). Mutually exclusive with the other
    /// constraints.
    pub fn predicate<F>(mut self, predicate: F) -> Self
    where
        F: Fn(VertexId, VertexId) -> bool + Send + Sync + 'a,
    {
        self.record_constraint("predicate");
        self.constraint = ConstraintSpec::Predicate(Box::new(predicate));
        self
    }

    /// Restricts results to paths whose accumulated edge value passes
    /// the query's check (Algorithm 7). Mutually exclusive with the
    /// other constraints.
    pub fn accumulative<V, W, C>(mut self, query: AccumulativeQuery<V, W, C>) -> Self
    where
        V: Copy + Send + Sync + 'a,
        W: Fn(VertexId, VertexId) -> V + Send + Sync + 'a,
        C: Fn(&V) -> bool + Send + Sync + 'a,
    {
        self.record_constraint("accumulative");
        self.constraint = ConstraintSpec::Accumulative(Box::new(query));
        self
    }

    /// Restricts results to paths whose edge-label sequence the
    /// automaton accepts (Algorithm 8). Mutually exclusive with the
    /// other constraints.
    pub fn automaton<L>(mut self, automaton: Automaton, label_of: L) -> Self
    where
        L: Fn(VertexId, VertexId) -> LabelId + Send + Sync + 'a,
    {
        self.record_constraint("automaton");
        self.constraint = ConstraintSpec::Automaton {
            automaton,
            label_of: Box::new(label_of),
        };
        self
    }

    /// The intra-query parallelism degree this request *actually*
    /// executes with — the requested [`threads`](Self::threads) after
    /// every downgrade is applied:
    ///
    /// * `0` resolves to one worker per available core;
    /// * requests carrying a constraint ([`predicate`](Self::predicate),
    ///   [`accumulative`](Self::accumulative),
    ///   [`automaton`](Self::automaton)) run sequentially (`1`), whatever
    ///   was requested — the constrained executors are single-threaded;
    /// * [`stream`](crate::QueryEngine::stream) evaluation is always
    ///   sequential (a pull-based stream advances only on the consumer's
    ///   thread), independent of this value.
    ///
    /// [`PhysicalPlan::threads`](crate::plan::PhysicalPlan::threads) —
    /// as returned by `explain` and in `QueryResponse::plan` — reports
    /// this effective count, never the raw requested one, so a silent
    /// downgrade is visible in the plan. The
    /// [`service`](crate::service) layer may clamp it further to share
    /// one thread budget between concurrent queries.
    pub fn effective_threads(&self) -> usize {
        if matches!(self.constraint, ConstraintSpec::None) {
            crate::parallel::resolve_threads(self.threads)
        } else {
            1
        }
    }

    fn record_constraint(&mut self, incoming: &'static str) {
        if !matches!(self.constraint, ConstraintSpec::None) && self.conflict.is_none() {
            self.conflict = Some((self.constraint.name(), incoming));
        }
    }

    /// Validates the request against a graph of `num_vertices` vertices,
    /// producing the core [`Query`].
    pub fn validate(&self, num_vertices: usize) -> Result<Query, PathEnumError> {
        if let Some((first, second)) = self.conflict {
            return Err(PathEnumError::ConflictingConstraints { first, second });
        }
        let query = Query::new(self.s, self.t, self.k)?;
        query.validate(num_vertices)?;
        Ok(query)
    }
}

/// The response to an executed [`QueryRequest`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The pipeline report (method, phase timings, counters, estimates).
    pub report: RunReport,
    /// Why result production stopped.
    pub termination: Termination,
    /// Result paths, populated only when the request asked for
    /// [`collect_paths`](QueryRequest::collect_paths).
    pub paths: Vec<Vec<VertexId>>,
    /// The physical plan the engine executed (or, for an
    /// [`explain`](QueryRequest::explain) request, would have executed).
    /// `None` only when a pre-flight stopping rule fired before planning.
    pub plan: Option<crate::plan::PhysicalPlan>,
}

impl QueryResponse {
    /// Number of results produced (whether or not paths were collected).
    pub fn num_results(&self) -> u64 {
        self.report.counters.results
    }

    pub(crate) fn empty(termination: Termination) -> Self {
        QueryResponse {
            report: RunReport {
                // Pre-flight stops never consult the cache; the response
                // says so instead of masquerading as a bypass.
                cache: crate::plan::CacheOutcome::Skipped,
                ..RunReport::default()
            },
            termination,
            paths: Vec::new(),
            plan: None,
        }
    }
}

/// A [`PathSink`] adapter enforcing the request-level stopping rules —
/// result limit, deadline, cancellation — around an inner sink, and
/// recording which rule fired.
///
/// This is the mechanism behind [`QueryRequest::limit`] /
/// [`QueryRequest::time_budget`] / [`CancelToken`]; the deprecated
/// [`LimitSink`](crate::sink::LimitSink) is a thin adapter over it.
#[derive(Debug)]
pub struct ControlledSink<S> {
    inner: S,
    limit: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    emitted: u64,
    probes: u64,
    stopped: Option<Termination>,
}

/// How many emissions pass between deadline checks at `emit`, and how
/// many probes pass between cancellation/deadline checks at `probe`.
const DEADLINE_CHECK_INTERVAL: u64 = 64;

impl<S: PathSink> ControlledSink<S> {
    /// Wraps `inner` with the given stopping rules (each optional).
    pub fn new(
        inner: S,
        limit: Option<u64>,
        deadline: Option<Instant>,
        cancel: Option<CancelToken>,
    ) -> Self {
        ControlledSink {
            inner,
            limit,
            deadline,
            cancel,
            emitted: 0,
            probes: 0,
            stopped: None,
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the adapter, returning the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Results forwarded to the inner sink so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Why this sink stopped the search, or [`Termination::Completed`]
    /// if it never did (including when the *inner* sink stopped it).
    pub fn termination(&self) -> Termination {
        self.stopped.unwrap_or(Termination::Completed)
    }
}

impl<S: PathSink> PathSink for ControlledSink<S> {
    fn emit(&mut self, path: &[VertexId]) -> SearchControl {
        if self.stopped.is_some() {
            return SearchControl::Stop;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.stopped = Some(Termination::Cancelled);
            return SearchControl::Stop;
        }
        if self.emitted.is_multiple_of(DEADLINE_CHECK_INTERVAL)
            && self.deadline.is_some_and(|d| Instant::now() >= d)
        {
            self.stopped = Some(Termination::DeadlineExceeded);
            return SearchControl::Stop;
        }
        let control = self.inner.emit(path);
        self.emitted += 1;
        if self.limit.is_some_and(|l| self.emitted >= l) {
            self.stopped = Some(Termination::LimitReached);
            return SearchControl::Stop;
        }
        control
    }

    /// Enumerators call this periodically (every
    /// [`PROBE_STRIDE`](crate::enumerate) search-tree nodes), so
    /// cancellation and the deadline are observed even while the search
    /// traverses a barren region that emits nothing.
    fn probe(&mut self) -> SearchControl {
        if self.stopped.is_some() {
            return SearchControl::Stop;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.stopped = Some(Termination::Cancelled);
            return SearchControl::Stop;
        }
        if self.probes.is_multiple_of(DEADLINE_CHECK_INTERVAL)
            && self.deadline.is_some_and(|d| Instant::now() >= d)
        {
            self.stopped = Some(Termination::DeadlineExceeded);
            return SearchControl::Stop;
        }
        self.probes += 1;
        self.inner.probe()
    }
}

/// One suspended DFS frame of a [`PathStream`].
#[derive(Debug, Clone, Copy)]
struct StreamFrame {
    vertex: crate::index::LocalId,
    cursor: u32,
}

/// Per-path acceptance check applied by [`PathStream`] before yielding.
///
/// Predicate constraints need no filter here — the stream enumerates the
/// predicate-filtered graph directly, mirroring Appendix E. The
/// accumulative and automaton constraints are checked per complete path,
/// which yields exactly the same path set as Algorithms 7/8 (those
/// thread the state through the search purely to prune earlier).
enum StreamFilter<'q> {
    None,
    Accumulative(&'q dyn DynAccumulative),
    Automaton {
        automaton: &'q Automaton,
        label_of: &'q (dyn Fn(VertexId, VertexId) -> LabelId + 'q),
    },
}

impl StreamFilter<'_> {
    fn accepts(&self, path: &[VertexId]) -> bool {
        match self {
            StreamFilter::None => true,
            StreamFilter::Accumulative(acc) => acc.accepts(path),
            StreamFilter::Automaton {
                automaton,
                label_of,
            } => automaton.accepts_sequence(path.windows(2).map(|w| label_of(w[0], w[1]))),
        }
    }
}

/// How many DFS steps a [`PathStream`] takes between deadline /
/// cancellation checks while no results are being produced.
const STREAM_CHECK_INTERVAL: u32 = 1024;

/// A pull-based iterator over the results of a [`QueryRequest`],
/// produced by [`QueryEngine::stream`](crate::QueryEngine::stream).
///
/// The underlying explicit-stack DFS (the suspended form of
/// [`crate::enumerate::idx_dfs_iterative`]) advances only while the
/// caller pulls, so a service can interleave result delivery with other
/// work and abandon the stream at any point without wasted enumeration.
/// The request's `limit`, `time_budget`, and `CancelToken` are honored;
/// [`termination`](PathStream::termination) reports how the stream
/// ended.
///
/// ```
/// use pathenum::{PathEnumConfig, QueryEngine, QueryRequest, Termination};
/// use pathenum_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3), (1, 2)]).unwrap();
/// let graph = b.finish();
/// let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
///
/// let request = QueryRequest::paths(0, 3).max_hops(3);
/// let mut stream = engine.stream(&request).unwrap();
/// let first = stream.next().unwrap();
/// assert_eq!(first.first(), Some(&0));
/// assert_eq!(first.last(), Some(&3));
/// assert_eq!(stream.by_ref().count(), 2); // two more paths
/// assert_eq!(stream.termination(), Some(Termination::Completed));
/// ```
pub struct PathStream<'q> {
    index: Index,
    stack: Vec<StreamFrame>,
    filter: StreamFilter<'q>,
    limit: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    emitted: u64,
    steps_since_check: u32,
    termination: Option<Termination>,
}

impl<'q> PathStream<'q> {
    pub(crate) fn new(index: Index, request: &'q QueryRequest<'_>) -> Self {
        let filter = match &request.constraint {
            // Predicate requests enumerate the filtered graph's index.
            ConstraintSpec::None | ConstraintSpec::Predicate(_) => StreamFilter::None,
            ConstraintSpec::Accumulative(acc) => StreamFilter::Accumulative(acc.as_ref()),
            ConstraintSpec::Automaton {
                automaton,
                label_of,
            } => StreamFilter::Automaton {
                automaton,
                label_of: label_of.as_ref(),
            },
        };
        let mut stack = Vec::with_capacity(index.k() as usize + 1);
        if let Some(s_local) = index.s_local() {
            stack.push(StreamFrame {
                vertex: s_local,
                cursor: 0,
            });
        }
        PathStream {
            index,
            stack,
            filter,
            limit: request.limit,
            deadline: request.time_budget.map(|b| Instant::now() + b),
            cancel: request.cancel.clone(),
            emitted: 0,
            steps_since_check: 0,
            termination: None,
        }
    }

    /// Results yielded so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// How the stream ended; `None` while results may still come.
    pub fn termination(&self) -> Option<Termination> {
        self.termination
    }

    /// The light-weight index the stream enumerates.
    pub fn index(&self) -> &Index {
        &self.index
    }

    /// Checks cancellation and deadline; on trigger records the
    /// termination and returns `true`.
    fn interrupted(&mut self) -> bool {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.termination = Some(Termination::Cancelled);
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.termination = Some(Termination::DeadlineExceeded);
            return true;
        }
        false
    }

    /// Advances the suspended DFS until the next complete s-t path
    /// (ignoring the filter), or `None` when the search is exhausted.
    fn next_raw(&mut self) -> Option<Vec<VertexId>> {
        let t_local = self.index.t_local()?;
        let k = self.index.k();
        while let Some(top) = self.stack.last().copied() {
            self.steps_since_check += 1;
            if self.steps_since_check >= STREAM_CHECK_INTERVAL {
                self.steps_since_check = 0;
                if self.interrupted() {
                    return None;
                }
            }
            let depth = self.stack.len() as u32 - 1; // edges used so far
            if top.vertex == t_local && depth > 0 {
                // Emit and force-backtrack: t's only forward neighbor is
                // the padding loop, which the DFS never follows.
                let path: Vec<VertexId> = self
                    .stack
                    .iter()
                    .map(|f| self.index.global(f.vertex))
                    .collect();
                self.stack.pop();
                return Some(path);
            }
            let budget = k - depth - 1;
            let neighbors = self.index.i_t(top.vertex, budget);
            let mut advanced = false;
            let mut cursor = top.cursor as usize;
            while cursor < neighbors.len() {
                let next = neighbors[cursor];
                cursor += 1;
                if self.stack.iter().any(|f| f.vertex == next) {
                    continue;
                }
                let top_mut = self.stack.last_mut().expect("stack is non-empty");
                top_mut.cursor = cursor as u32;
                self.stack.push(StreamFrame {
                    vertex: next,
                    cursor: 0,
                });
                advanced = true;
                break;
            }
            if !advanced {
                self.stack.pop();
            }
        }
        None
    }
}

impl Iterator for PathStream<'_> {
    type Item = Vec<VertexId>;

    fn next(&mut self) -> Option<Vec<VertexId>> {
        if self.termination.is_some() {
            return None;
        }
        // A saturated (or zero) limit stops before any further search,
        // matching `execute`'s pre-flight semantics.
        if self.limit.is_some_and(|l| self.emitted >= l) {
            self.termination = Some(Termination::LimitReached);
            return None;
        }
        if self.interrupted() {
            return None;
        }
        loop {
            let Some(path) = self.next_raw() else {
                if self.termination.is_none() {
                    self.termination = Some(Termination::Completed);
                }
                return None;
            };
            if !self.filter.accepts(&path) {
                continue;
            }
            self.emitted += 1;
            if self.limit.is_some_and(|l| self.emitted >= l) {
                self.termination = Some(Termination::LimitReached);
            }
            return Some(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::sink::{CollectingSink, CountingSink};

    #[test]
    fn builder_records_every_option() {
        let token = CancelToken::new();
        let req = QueryRequest::paths(0, 1)
            .max_hops(4)
            .limit(10)
            .time_budget(Duration::from_millis(50))
            .cancel_token(token.clone())
            .method(Method::IdxJoin)
            .tau(7)
            .threads(4)
            .collect_paths(true);
        assert_eq!(req.s, 0);
        assert_eq!(req.t, 1);
        assert_eq!(req.k, 4);
        assert_eq!(req.limit, Some(10));
        assert_eq!(req.time_budget, Some(Duration::from_millis(50)));
        assert_eq!(req.method, Some(Method::IdxJoin));
        assert_eq!(req.tau, Some(7));
        assert_eq!(req.threads, 4);
        assert!(req.collect);
        assert!(req.validate(10).is_ok());
    }

    #[test]
    fn validation_absorbs_query_errors() {
        assert_eq!(
            QueryRequest::paths(3, 3).max_hops(4).validate(10),
            Err(PathEnumError::EqualEndpoints)
        );
        assert_eq!(
            QueryRequest::paths(0, 1).validate(10),
            Err(PathEnumError::HopConstraintTooSmall(0)),
            "max_hops never set"
        );
        assert_eq!(
            QueryRequest::paths(0, 1).max_hops(99).validate(10),
            Err(PathEnumError::HopConstraintTooLarge(99))
        );
        assert_eq!(
            QueryRequest::paths(0, 42).max_hops(4).validate(10),
            Err(PathEnumError::VertexOutOfRange(42))
        );
    }

    #[test]
    fn conflicting_constraints_are_rejected() {
        let req = QueryRequest::paths(0, 1)
            .max_hops(4)
            .predicate(|_, _| true)
            .automaton(Automaton::new(1, 1, 0).unwrap(), |_, _| 0);
        assert_eq!(
            req.validate(10),
            Err(PathEnumError::ConflictingConstraints {
                first: "predicate",
                second: "automaton"
            })
        );
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn controlled_sink_enforces_limit_and_reports_it() {
        let mut sink = ControlledSink::new(CountingSink::default(), Some(3), None, None);
        assert_eq!(sink.emit(&[0, 1]), SearchControl::Continue);
        assert_eq!(sink.emit(&[0, 1]), SearchControl::Continue);
        assert_eq!(sink.emit(&[0, 1]), SearchControl::Stop);
        assert_eq!(sink.emitted(), 3);
        assert_eq!(sink.termination(), Termination::LimitReached);
        // Saturated: further emissions are refused without forwarding.
        assert_eq!(sink.emit(&[0, 1]), SearchControl::Stop);
        assert_eq!(sink.into_inner().count, 3);
    }

    #[test]
    fn controlled_sink_observes_cancellation() {
        let token = CancelToken::new();
        let mut sink =
            ControlledSink::new(CollectingSink::default(), None, None, Some(token.clone()));
        assert_eq!(sink.emit(&[0, 1]), SearchControl::Continue);
        token.cancel();
        assert_eq!(sink.emit(&[0, 1]), SearchControl::Stop);
        assert_eq!(sink.termination(), Termination::Cancelled);
        assert_eq!(
            sink.inner().paths.len(),
            1,
            "cancelled emission is not forwarded"
        );
    }

    #[test]
    fn controlled_sink_observes_deadline() {
        let mut sink = ControlledSink::new(
            CountingSink::default(),
            None,
            Some(Instant::now() - Duration::from_millis(1)),
            None,
        );
        assert_eq!(sink.emit(&[0, 1]), SearchControl::Stop);
        assert_eq!(sink.termination(), Termination::DeadlineExceeded);
        assert_eq!(sink.emitted(), 0);
    }

    #[test]
    fn controlled_sink_without_rules_is_transparent() {
        let mut sink = ControlledSink::new(CountingSink::default(), None, None, None);
        for _ in 0..1000 {
            assert_eq!(sink.emit(&[0, 1]), SearchControl::Continue);
            assert_eq!(sink.probe(), SearchControl::Continue);
        }
        assert_eq!(sink.termination(), Termination::Completed);
        assert_eq!(sink.emitted(), 1000);
    }

    #[test]
    fn probe_interrupts_barren_searches() {
        // A cancelled token stops the DFS at the very first search-tree
        // node — before any result is counted, let alone emitted.
        let g = figure1_graph();
        let index = Index::build(&g, crate::query::Query::new(S, T, 4).unwrap());
        let token = CancelToken::new();
        token.cancel();
        let mut sink = ControlledSink::new(CountingSink::default(), None, None, Some(token));
        let mut counters = Counters::default();
        let control = crate::enumerate::idx_dfs(&index, &mut sink, &mut counters);
        assert_eq!(control, SearchControl::Stop);
        assert_eq!(counters.results, 0, "no result was ever counted");
        assert_eq!(sink.emitted(), 0);
        assert_eq!(sink.termination(), Termination::Cancelled);

        // The same holds during IDX-JOIN's silent materialization phase.
        let mut sink = ControlledSink::new(
            CountingSink::default(),
            None,
            Some(Instant::now() - Duration::from_millis(1)),
            None,
        );
        let mut counters = Counters::default();
        let control = crate::enumerate::idx_join(&index, 2, &mut sink, &mut counters);
        assert_eq!(control, SearchControl::Stop);
        assert_eq!(sink.emitted(), 0);
        assert_eq!(sink.termination(), Termination::DeadlineExceeded);
    }

    #[test]
    fn stream_filter_accepts_by_accumulation() {
        let acc = AccumulativeQuery {
            identity: 0u64,
            combine: |a, b| a + b,
            weight: |_, _| 1u64,
            check: |&v: &u64| v >= 3,
            prune: None,
        };
        assert!(acc.accepts(&[0, 1, 2, 3]));
        assert!(!acc.accepts(&[0, 1]));
    }

    #[test]
    fn path_stream_enumerates_figure1() {
        let g = figure1_graph();
        let req = QueryRequest::paths(S, T).max_hops(4);
        let query = req.validate(g.num_vertices()).unwrap();
        let index = Index::build(&g, query);
        let stream = PathStream::new(index, &req);
        let mut paths: Vec<Vec<VertexId>> = stream.collect();
        paths.sort_unstable();
        assert_eq!(paths.len(), 5);
        for p in &paths {
            assert_eq!(p[0], S);
            assert_eq!(*p.last().unwrap(), T);
        }
    }

    #[test]
    fn path_stream_respects_limit() {
        let g = figure1_graph();
        let req = QueryRequest::paths(S, T).max_hops(4).limit(2);
        let query = req.validate(g.num_vertices()).unwrap();
        let index = Index::build(&g, query);
        let mut stream = PathStream::new(index, &req);
        assert!(stream.next().is_some());
        assert!(stream.next().is_some());
        assert!(stream.next().is_none());
        assert_eq!(stream.termination(), Some(Termination::LimitReached));
        assert_eq!(stream.emitted(), 2);
    }

    #[test]
    fn path_stream_limit_zero_yields_nothing() {
        let g = figure1_graph();
        let req = QueryRequest::paths(S, T).max_hops(4).limit(0);
        let query = req.validate(g.num_vertices()).unwrap();
        let index = Index::build(&g, query);
        let mut stream = PathStream::new(index, &req);
        assert!(stream.next().is_none());
        assert_eq!(stream.termination(), Some(Termination::LimitReached));
        assert_eq!(stream.emitted(), 0);
    }

    #[test]
    fn path_stream_on_empty_index_completes_immediately() {
        let g = figure1_graph();
        let req = QueryRequest::paths(T, S).max_hops(4);
        let query = req.validate(g.num_vertices()).unwrap();
        let index = Index::build(&g, query);
        let mut stream = PathStream::new(index, &req);
        assert!(stream.next().is_none());
        assert_eq!(stream.termination(), Some(Termination::Completed));
    }

    #[test]
    fn errors_display_something_useful() {
        let errors: Vec<PathEnumError> = vec![
            PathEnumError::EqualEndpoints,
            PathEnumError::HopConstraintTooSmall(1),
            PathEnumError::HopConstraintTooLarge(99),
            PathEnumError::VertexOutOfRange(7),
            PathEnumError::ConflictingConstraints {
                first: "predicate",
                second: "automaton",
            },
            PathEnumError::EvaluationPanicked,
            PathEnumError::GraphNotFound,
            PathEnumError::Overloaded {
                retry_hint: Duration::from_millis(2),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! Poison-tolerant lock helpers for serving paths.
//!
//! Every mutex on a serving path guards state that stays structurally
//! valid across an unwind: cache shards (entries are inserted or removed
//! atomically with respect to the guard), ticket slots (a `Option` write),
//! and queue vectors. A worker panic therefore leaves the protected data
//! usable, and the right response to a poisoned lock is to strip the
//! poison marker and keep serving rather than to propagate the panic into
//! every later caller of the same shard.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Lock `mutex`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait` that recovers the guard on poison instead of panicking.
pub(crate) fn wait_recovering<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

//! The join-based model: relation construction and the full reducer
//! (Section 3.1, Algorithm 2).
//!
//! PathEnum itself never materializes these relations — that is the point
//! of the light-weight index — but they are the semantic foundation:
//! Theorem 3.1 says evaluating the chain join `Q = R_1 ⋈ ... ⋈ R_k` and
//! dropping tuples with duplicate vertices yields exactly `P(s, t, k, G)`,
//! and Appendix B shows the index stores the same edges the fully reduced
//! relations do. This module exists for that cross-validation (tests and
//! the pruning-power ablation) and as the reference implementation of
//! Algorithm 2 whose scanning cost motivates the index.

use pathenum_graph::hashing::FxHashSet;
use pathenum_graph::{CsrGraph, VertexId};

use crate::query::Query;
use crate::sink::{PathSink, SearchControl};

/// The relations `R_1 ... R_k` of the chain join `Q`.
#[derive(Debug, Clone)]
pub struct Relations {
    query: Query,
    /// `relations[i]` holds `R_{i+1}` as sorted `(v, v')` pairs.
    relations: Vec<Vec<(VertexId, VertexId)>>,
}

impl Relations {
    /// Builds the relations of Section 3.1 *without* dangling-tuple
    /// elimination (Lines 1–4 of Algorithm 2).
    pub fn build_unreduced(graph: &CsrGraph, query: Query) -> Relations {
        let Query { s, t, k } = query;
        let mut relations: Vec<Vec<(VertexId, VertexId)>> = Vec::with_capacity(k as usize);
        // R_1 = edges leaving s.
        relations.push(graph.out_neighbors(s).iter().map(|&v| (s, v)).collect());
        // R_i (1 < i < k) = edges of G - {s} with source != t, plus (t, t).
        for _ in 2..k {
            let mut r: Vec<(VertexId, VertexId)> = graph
                .edges()
                .filter(|&(v, v2)| v != s && v2 != s && v != t)
                .collect();
            r.push((t, t));
            r.sort_unstable();
            relations.push(r);
        }
        // R_k = edges into t with source != s, plus (t, t).
        let mut r_k: Vec<(VertexId, VertexId)> = graph
            .in_neighbors(t)
            .iter()
            .filter(|&&v| v != s)
            .map(|&v| (v, t))
            .collect();
        r_k.push((t, t));
        r_k.sort_unstable();
        relations.push(r_k);
        Relations { query, relations }
    }

    /// Algorithm 2: builds the relations and runs the full reducer
    /// (forward then backward semi-join passes), eliminating every
    /// dangling tuple.
    pub fn build_reduced(graph: &CsrGraph, query: Query) -> Relations {
        let mut rel = Relations::build_unreduced(graph, query);
        let k = query.k as usize;
        // Forward pass (Lines 5-8): keep tuples of R_{i+1} whose head
        // appears among the tails of R_i.
        for i in 0..k - 1 {
            let heads: FxHashSet<VertexId> = rel.relations[i].iter().map(|&(_, v2)| v2).collect();
            rel.relations[i + 1].retain(|&(v, _)| heads.contains(&v));
        }
        // Backward pass (Lines 9-12): keep tuples of R_i whose tail
        // appears among the heads of R_{i+1}.
        for i in (0..k - 1).rev() {
            let tails: FxHashSet<VertexId> = rel.relations[i + 1].iter().map(|&(v, _)| v).collect();
            rel.relations[i].retain(|&(_, v2)| tails.contains(&v2));
        }
        rel
    }

    /// The query these relations encode.
    pub fn query(&self) -> Query {
        self.query
    }

    /// `R_{position}` (1-based, as in the paper).
    pub fn relation(&self, position: u32) -> &[(VertexId, VertexId)] {
        &self.relations[position as usize - 1]
    }

    /// Total number of tuples across all relations — Algorithm 2's
    /// materialization footprint, the cost the light-weight index avoids.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Vec::len).sum()
    }

    /// Successors of `v` in `R_{position}` (binary search on the sorted
    /// tuple list).
    pub fn successors(&self, position: u32, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let rel = self.relation(position);
        let start = rel.partition_point(|&(a, _)| a < v);
        rel[start..]
            .iter()
            .take_while(move |&&(a, _)| a == v)
            .map(|&(_, b)| b)
    }

    /// Evaluates the chain join by backtracking over the relations and
    /// emits every tuple that is a valid simple path once `t`-padding is
    /// stripped (Theorem 3.1). Reference implementation for tests.
    pub fn evaluate(&self, sink: &mut dyn PathSink) {
        let mut tuple: Vec<VertexId> = vec![self.query.s];
        self.eval_rec(1, &mut tuple, sink);
    }

    fn eval_rec(
        &self,
        position: u32,
        tuple: &mut Vec<VertexId>,
        sink: &mut dyn PathSink,
    ) -> SearchControl {
        if position > self.query.k {
            return self.emit_if_path(tuple, sink);
        }
        let v = *tuple.last().expect("tuple starts with s");
        // Collecting successors avoids borrowing self.relations across the
        // recursive call; lists are tiny relative to the join output.
        let successors: Vec<VertexId> = self.successors(position, v).collect();
        for next in successors {
            tuple.push(next);
            let control = self.eval_rec(position + 1, tuple, sink);
            tuple.pop();
            if control == SearchControl::Stop {
                return SearchControl::Stop;
            }
        }
        SearchControl::Continue
    }

    fn emit_if_path(&self, tuple: &[VertexId], sink: &mut dyn PathSink) -> SearchControl {
        let t = self.query.t;
        let Some(first_t) = tuple.iter().position(|&v| v == t) else {
            return SearchControl::Continue;
        };
        let path = &tuple[..first_t + 1];
        if tuple[first_t + 1..].iter().any(|&v| v != t) {
            return SearchControl::Continue; // walk re-leaves t: not in Q's shape
        }
        for i in 0..path.len() {
            for j in (i + 1)..path.len() {
                if path[i] == path[j] {
                    return SearchControl::Continue;
                }
            }
        }
        sink.emit(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::sink::CollectingSink;

    #[test]
    fn unreduced_relations_match_figure3a_shape() {
        let g = figure1_graph();
        let rel = Relations::build_unreduced(&g, Query::new(S, T, 4).unwrap());
        // R_1: the three edges out of s.
        assert_eq!(rel.relation(1).len(), 3);
        // R_2/R_3: 12 interior edges + (t, t). Figure 3a lists 13 tuples.
        assert_eq!(rel.relation(2).len(), 13);
        assert_eq!(rel.relation(3).len(), 13);
        // R_4: edges into t {v0, v2, v5} plus (t, t).
        assert_eq!(rel.relation(4).len(), 4);
    }

    #[test]
    fn full_reducer_prunes_figure3_examples() {
        let g = figure1_graph();
        let rel = Relations::build_reduced(&g, Query::new(S, T, 4).unwrap());
        let [v0, v1, _v2, v3, v4, v5, _v6, _v7] = V;
        // Example 4.1: (v4, v5) leaves R_2 (v4 unreachable in one hop).
        assert!(!rel.relation(2).contains(&(v4, v5)));
        // Example 4.1: (v1, v3) leaves R_3 (v3 cannot reach t in one hop).
        assert!(!rel.relation(3).contains(&(v1, v3)));
        // Surviving examples from Figure 3c.
        assert!(rel.relation(2).contains(&(v0, v1)));
        assert!(rel.relation(3).contains(&(v6_of(), v0))); // (v6, v0)
        assert!(rel.relation(1).contains(&(S, v3)));
        fn v6_of() -> VertexId {
            V[6]
        }
    }

    #[test]
    fn evaluation_yields_exactly_the_paths() {
        let g = figure1_graph();
        let q = Query::new(S, T, 4).unwrap();
        let rel = Relations::build_reduced(&g, q);
        let mut sink = CollectingSink::default();
        rel.evaluate(&mut sink);
        let mut reference = CollectingSink::default();
        crate::reference::brute_force_paths(&g, q, &mut reference);
        assert_eq!(sink.sorted_paths(), reference.sorted_paths());
    }

    #[test]
    fn unreduced_evaluation_agrees_too() {
        // Theorem 3.1 holds with or without the reducer; the reducer only
        // shrinks the intermediate work.
        let g = figure1_graph();
        let q = Query::new(S, T, 3).unwrap();
        let reduced = Relations::build_reduced(&g, q);
        let unreduced = Relations::build_unreduced(&g, q);
        let mut a = CollectingSink::default();
        let mut b = CollectingSink::default();
        reduced.evaluate(&mut a);
        unreduced.evaluate(&mut b);
        assert_eq!(a.sorted_paths(), b.sorted_paths());
        assert!(reduced.total_tuples() <= unreduced.total_tuples());
    }

    #[test]
    fn successors_walks_sorted_tuples() {
        let g = figure1_graph();
        let rel = Relations::build_reduced(&g, Query::new(S, T, 4).unwrap());
        let from_s: Vec<VertexId> = rel.successors(1, S).collect();
        assert_eq!(from_s, vec![V[0], V[1], V[3]]);
        assert_eq!(rel.successors(1, V[0]).count(), 0);
    }
}

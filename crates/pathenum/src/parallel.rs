//! Intra-query parallel enumeration.
//!
//! The paper's algorithms are single-threaded per query; the request
//! layer until now only exploited parallelism *across* queries
//! (`pathenum-workloads::parallel`). This module parallelizes the search
//! *inside* one query, which is what cuts tail latency when a single
//! heavy query dominates a latency budget:
//!
//! * **T-DFS** — the index-pruned neighborhood of `s` decomposes the
//!   search tree into independent subtrees. [`parallel_dfs`] splits the
//!   frontier into prefix tasks (expanding up to a few hops until there
//!   are enough tasks to balance the pool), runs each task's seeded DFS
//!   on a scoped worker, and concatenates the per-task buffers in prefix
//!   order — which reproduces the *sequential DFS emission order
//!   exactly*, for every worker count.
//! * **IDX-JOIN** — [`parallel_join`] materializes the prefix relation
//!   `R_a` once, groups its tuples by join key, and partitions the key
//!   ranges across workers; each worker enumerates the suffix relation
//!   for its keys and joins locally. Output is merged in key
//!   first-occurrence order (then prefix order, then suffix order) — a
//!   canonical sequence independent of the worker count. As a bonus the
//!   suffix relation is materialized per key instead of whole, so peak
//!   memory *drops* relative to the sequential join.
//!
//! Both executors observe one [`SharedControl`] — a single atomic
//! limit/deadline/cancellation state — through the existing
//! [`PathSink::probe`] stride, so `limit(n)` never over-delivers even
//! when every worker emits concurrently, and a fired
//! [`CancelToken`] or expired deadline
//! stops the whole pool within a bounded number of search steps.
//!
//! Callers normally reach this module through
//! [`QueryRequest::threads`](crate::request::QueryRequest::threads):
//!
//! ```
//! use pathenum::{PathEnumConfig, QueryEngine, QueryRequest};
//! use pathenum_graph::generators::erdos_renyi;
//!
//! let graph = erdos_renyi(60, 400, 7);
//! let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
//! let sequential = engine
//!     .execute(&QueryRequest::paths(0, 1).max_hops(4).collect_paths(true))
//!     .unwrap();
//! let parallel = engine
//!     .execute(&QueryRequest::paths(0, 1).max_hops(4).threads(4).collect_paths(true))
//!     .unwrap();
//! assert_eq!(sequential.paths, parallel.paths); // same paths, same order
//! ```
//!
//! # Determinism guarantee
//!
//! For a fixed graph and request, the merged output (set *and* order) of
//! a `threads(n)` run is identical for every `n >= 2` (and, for the DFS
//! method, identical to the sequential order too). When an early-stopping
//! rule fires, the *number* of delivered paths is exact (`limit` is
//! enforced by atomic slot reservation) but *which* partitions
//! contributed is timing-dependent — the same trade every bounded
//! concurrent search makes.
//!
//! # Cost of the deterministic merge
//!
//! Determinism is bought with buffering: workers hold their partition's
//! admitted paths in memory until the canonical merge replays them into
//! the caller's sink, so an *unbounded* parallel run costs `O(results)`
//! memory even when the sink only counts, and a `SearchControl::Stop`
//! returned by the caller's sink bounds **delivery only** — the search
//! itself has already run (the sequential `threads(1)` path stops the
//! search immediately, as before). Put the cut-off in the request —
//! [`limit`](crate::request::QueryRequest::limit),
//! [`time_budget`](crate::request::QueryRequest::time_budget), or a
//! [`CancelToken`] — and the shared budget
//! bounds both the buffering and the search across all workers.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use pathenum_graph::VertexId;

use crate::enumerate::dfs_iterative::{idx_dfs_seeded, SeededScratch};
use crate::enumerate::join::{enumerate_side, valid_path_len, TupleBuffer};
use crate::enumerate::PROBE_STRIDE;
use crate::index::{Index, LocalId};
use crate::request::{CancelToken, Termination};
use crate::sink::{PathBuffer, PathSink, SearchControl};
use crate::stats::Counters;

/// Aim for this many tasks per worker when splitting a search frontier,
/// so stragglers (heavy subtrees, hot join keys) interleave with cheap
/// tasks instead of serializing the pool.
const TASKS_PER_WORKER: usize = 8;

/// Never split the DFS frontier deeper than this many hops from `s`:
/// each extra level multiplies the task count by the branching factor,
/// and three levels already saturate any realistic pool.
const MAX_SPLIT_DEPTH: u32 = 3;

/// How many [`PathSink::probe`] calls a worker passes between full
/// deadline polls (`Instant::now` is the expensive part; the shared stop
/// and cancel flags are checked on every probe). Combined with the
/// enumerators' own [`PROBE_STRIDE`], a deadline is observed at least
/// every `PROBE_STRIDE * WORKER_POLL_STRIDE` search-tree nodes.
const WORKER_POLL_STRIDE: u32 = 16;

const NOT_TRIPPED: u8 = 0;
const TRIP_LIMIT: u8 = 1;
const TRIP_DEADLINE: u8 = 2;
const TRIP_CANCELLED: u8 = 3;

/// Resolves a [`QueryRequest::threads`](crate::request::QueryRequest::threads)
/// value: `0` means one worker per available core.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Splits one thread budget between inter-query workers and intra-query
/// fan-out: with `in_flight` queries concurrently active out of a total
/// budget of `budget` threads, each query may use `budget / in_flight`
/// (at least 1) intra-query threads.
///
/// This is how the [`service`](crate::service) layer reuses one pool
/// budget for both levels of parallelism: a full batch saturates the
/// budget with concurrent queries (each sequential inside), a batch
/// smaller than the budget hands the leftover threads to each query's
/// intra-query pool. The split is deterministic — it depends only on the
/// two arguments, never on runtime timing — so the effective
/// [`PhysicalPlan::threads`](crate::plan::PhysicalPlan::threads) of a
/// batch request is reproducible.
pub fn intra_budget(budget: usize, in_flight: usize) -> usize {
    (budget.max(1) / in_flight.max(1)).max(1)
}

/// The one stopping-rule state every worker of a parallel run observes:
/// an atomic result budget plus the deadline and cancellation rules of
/// the request.
///
/// * the **limit** is enforced by slot reservation
///   ([`try_admit`](SharedControl::try_admit)): each emission atomically reserves one
///   of the `limit` slots, so the pool as a whole never over-delivers no
///   matter how many workers emit concurrently;
/// * **deadline** and **cancellation** are polled through the
///   [`PathSink::probe`] stride, so even barren partitions that emit
///   nothing observe them;
/// * the first rule to fire wins
///   ([`termination`](SharedControl::termination) reports it) and raises a stop flag
///   every worker sees on its next probe or emission.
///
/// All flags use relaxed atomics: result buffers are published by the
/// scoped-thread join (and the per-task mutexes), not by these flags, so
/// no ordering stronger than the trip monotonicity is needed.
#[derive(Debug)]
pub struct SharedControl {
    limit: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    /// Emission slots handed out so far (may exceed `limit` by refused
    /// reservations; see [`delivered`](SharedControl::delivered)).
    admitted: AtomicU64,
    tripped: AtomicU8,
}

impl SharedControl {
    /// A control state with the given stopping rules (each optional).
    pub fn new(limit: Option<u64>, deadline: Option<Instant>, cancel: Option<CancelToken>) -> Self {
        SharedControl {
            limit,
            deadline,
            cancel,
            admitted: AtomicU64::new(0),
            tripped: AtomicU8::new(NOT_TRIPPED),
        }
    }

    /// A control state with no stopping rules.
    pub fn unbounded() -> Self {
        SharedControl::new(None, None, None)
    }

    /// Whether any stopping rule has fired.
    pub fn is_stopped(&self) -> bool {
        // ordering: a late-observed trip only delays stopping by one probe
        // stride; result buffers are published by the scoped-thread join
        // and the per-task mutexes, never by this flag.
        self.tripped.load(Ordering::Relaxed) != NOT_TRIPPED
    }

    /// Results admitted for delivery so far (never exceeds the limit).
    pub fn delivered(&self) -> u64 {
        // ordering: single-location counter read; callers read it either
        // after the join (exact) or mid-run as an advisory progress value.
        let admitted = self.admitted.load(Ordering::Relaxed);
        match self.limit {
            Some(limit) => admitted.min(limit),
            None => admitted,
        }
    }

    /// Why the run stopped, or [`Termination::Completed`] if no rule
    /// fired.
    pub fn termination(&self) -> Termination {
        // ordering: read after the scoped-thread join (which publishes all
        // worker writes); the flag value itself is a monotone one-shot.
        match self.tripped.load(Ordering::Relaxed) {
            TRIP_LIMIT => Termination::LimitReached,
            TRIP_DEADLINE => Termination::DeadlineExceeded,
            TRIP_CANCELLED => Termination::Cancelled,
            _ => Termination::Completed,
        }
    }

    /// Records the first rule to fire; later trips are ignored.
    fn trip(&self, reason: u8) {
        // ordering: one-shot CAS on a single location — the per-location
        // total RMW order makes exactly one trip win regardless of
        // ordering strength; the flag publishes no other memory.
        let _ = self.tripped.compare_exchange(
            NOT_TRIPPED,
            reason,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Polls cancellation and the deadline. Called by workers through
    /// the probe stride.
    pub fn poll(&self) -> SearchControl {
        if self.is_stopped() {
            return SearchControl::Stop;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.trip(TRIP_CANCELLED);
            return SearchControl::Stop;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.trip(TRIP_DEADLINE);
            return SearchControl::Stop;
        }
        SearchControl::Continue
    }

    /// Reserves one emission slot. Returns `false` (and the emission
    /// must be discarded) once the run is stopped or the limit's slots
    /// are exhausted; reserving the final slot trips the limit.
    pub fn try_admit(&self) -> bool {
        if self.is_stopped() {
            return false;
        }
        match self.limit {
            None => {
                // ordering: pure progress counter when unbounded.
                self.admitted.fetch_add(1, Ordering::Relaxed);
                true
            }
            Some(limit) => {
                // ordering: slot reservation rides the per-location total
                // order of RMWs on `admitted` — each racer gets a distinct
                // `prior`, so exactly `limit` reservations succeed (pinned
                // by the shared_limit_never_over_admits test); the emitted
                // paths are published by slot mutex + join, not by this.
                let prior = self.admitted.fetch_add(1, Ordering::Relaxed);
                if prior >= limit {
                    // Lost the race for the final slot; whoever won it
                    // has already tripped the limit.
                    false
                } else {
                    if prior + 1 == limit {
                        self.trip(TRIP_LIMIT);
                    }
                    true
                }
            }
        }
    }
}

/// The per-worker sink: buffers admitted paths for the task at hand and
/// observes the [`SharedControl`] on every emission and (strided) probe.
struct WorkerSink<'c> {
    control: &'c SharedControl,
    out: PathBuffer,
    probes: u32,
}

impl<'c> WorkerSink<'c> {
    fn new(control: &'c SharedControl) -> Self {
        WorkerSink {
            control,
            out: PathBuffer::new(),
            probes: 0,
        }
    }
}

impl PathSink for WorkerSink<'_> {
    fn emit(&mut self, path: &[VertexId]) -> SearchControl {
        if !self.control.try_admit() {
            return SearchControl::Stop;
        }
        self.out.push(path);
        if self.control.is_stopped() {
            SearchControl::Stop
        } else {
            SearchControl::Continue
        }
    }

    fn probe(&mut self) -> SearchControl {
        strided_poll(self.control, &mut self.probes)
    }
}

/// The shared probe cadence of every worker-side sink: the first probe
/// polls the full rule set (so a task never starts under an
/// already-fired deadline or token), then every
/// `WORKER_POLL_STRIDE`-th probe after that; in between, only the cheap
/// shared stop flag is read.
fn strided_poll(control: &SharedControl, probes: &mut u32) -> SearchControl {
    let outcome = if *probes & (WORKER_POLL_STRIDE - 1) == 0 {
        control.poll()
    } else if control.is_stopped() {
        SearchControl::Stop
    } else {
        SearchControl::Continue
    };
    *probes = probes.wrapping_add(1);
    outcome
}

/// A sink that only forwards probes to the control state — used while
/// materializing relations that emit nothing.
struct ProbeOnlySink<'c> {
    control: &'c SharedControl,
    probes: u32,
}

impl PathSink for ProbeOnlySink<'_> {
    fn emit(&mut self, _path: &[VertexId]) -> SearchControl {
        debug_assert!(false, "materialization phases never emit");
        SearchControl::Continue
    }

    fn probe(&mut self) -> SearchControl {
        strided_poll(self.control, &mut self.probes)
    }
}

/// Splits the DFS search space into prefix tasks, in DFS preorder.
///
/// Starts from `[s]` and expands the whole frontier one hop at a time —
/// preserving the neighbor order the sequential DFS would visit — until
/// there are at least `target` tasks, the depth cap is hit, or nothing
/// expands. A prefix that already reaches `t` is kept as an emit-only
/// task at its preorder position, so concatenating per-task outputs
/// reproduces the sequential emission order exactly. Expansion scans and
/// generated prefixes are charged to `counters` so the merged totals
/// match a sequential run.
fn split_dfs_tasks(index: &Index, target: usize, counters: &mut Counters) -> Vec<Vec<LocalId>> {
    let (Some(s_local), Some(t_local)) = (index.s_local(), index.t_local()) else {
        return Vec::new();
    };
    let k = index.k();
    let mut tasks: Vec<Vec<LocalId>> = vec![vec![s_local]];
    let max_depth = MAX_SPLIT_DEPTH.min(k.saturating_sub(1));
    let mut depth = 0u32;
    while tasks.len() < target && depth < max_depth {
        let mut next: Vec<Vec<LocalId>> = Vec::with_capacity(tasks.len() * 2);
        let mut grew = false;
        for prefix in &tasks {
            let last = *prefix.last().expect("prefixes are non-empty");
            let edges = prefix.len() as u32 - 1;
            if last == t_local && edges > 0 {
                next.push(prefix.clone());
                continue;
            }
            let budget = k - edges - 1;
            let neighbors = index.i_t(last, budget);
            counters.edges_accessed += neighbors.len() as u64;
            for &nb in neighbors {
                if prefix.contains(&nb) {
                    continue;
                }
                let mut extended = Vec::with_capacity(k as usize + 1);
                extended.extend_from_slice(prefix);
                extended.push(nb);
                counters.partial_results += 1;
                next.push(extended);
                grew = true;
            }
        }
        tasks = next;
        depth += 1;
        if !grew {
            break;
        }
    }
    tasks
}

/// Output slot of one task: the admitted paths (in task-local order)
/// plus the task's counters.
type TaskSlot = Mutex<(PathBuffer, Counters)>;

/// Replays per-task buffers into the caller's sink in task order,
/// merging counters along the way. A `Stop` from the caller's sink ends
/// delivery (counters still merge) — the caller issued that stop, so it
/// is not a request-level termination, mirroring the sequential
/// convention.
fn merge_outputs(slots: Vec<TaskSlot>, sink: &mut dyn PathSink, counters: &mut Counters) {
    let mut delivering = true;
    for slot in slots {
        let (buffer, task_counters) = slot.into_inner().expect("worker panics propagate earlier");
        counters.merge(&task_counters);
        if delivering {
            for path in buffer.iter() {
                if sink.emit(path) == SearchControl::Stop {
                    delivering = false;
                    break;
                }
            }
        }
    }
}

/// Parallel T-DFS: enumerates all hop-constrained s-t paths with
/// `workers` scoped threads, delivering into `sink` in the sequential
/// DFS emission order (see the module docs for the determinism
/// guarantee). Stopping rules live in `control`;
/// [`SharedControl::termination`] reports how the run ended and
/// [`SharedControl::delivered`] how many results were admitted.
///
/// `counters.results` counts results *found* (the sequential
/// convention: counted before the sink can refuse them); when a
/// stopping rule fires, `control.delivered()` is the authoritative
/// delivered count. Merged `results`, `partial_results`, and
/// `edges_accessed` equal the sequential totals exactly;
/// `invalid_partial_results` may come in *lower* than a sequential run
/// reports, because invalidity of the frontier prefixes that straddle
/// the split boundary (a subtree property) is not aggregated across
/// tasks.
pub fn parallel_dfs(
    index: &Index,
    workers: usize,
    control: &SharedControl,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) {
    let workers = workers.max(1);
    let tasks = split_dfs_tasks(index, workers * TASKS_PER_WORKER, counters);
    if tasks.is_empty() {
        return;
    }
    let workers = workers.min(tasks.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<TaskSlot> = (0..tasks.len())
        .map(|_| Mutex::new((PathBuffer::new(), Counters::default())))
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = SeededScratch::default();
                loop {
                    // ordering: work-stealing cursor — the RMW total order
                    // hands each worker a distinct task index; `tasks` is
                    // read-only and published by the scope spawn.
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks.len() || control.is_stopped() {
                        break;
                    }
                    let prefix = &tasks[i];
                    let mut task_sink = WorkerSink::new(control);
                    let mut task_counters = Counters::default();
                    // The seed's own neighbor scan is charged here; the
                    // split phase charged every level above it.
                    let last = *prefix.last().expect("prefixes are non-empty");
                    let edges = prefix.len() as u32 - 1;
                    if Some(last) != index.t_local() {
                        let budget = index.k() - edges - 1;
                        task_counters.edges_accessed += index.i_t(last, budget).len() as u64;
                    }
                    idx_dfs_seeded(
                        index,
                        prefix,
                        &mut scratch,
                        &mut task_sink,
                        &mut task_counters,
                    );
                    *slots[i].lock().expect("no poisoned task slot") =
                        (task_sink.out, task_counters);
                }
            });
        }
    });

    merge_outputs(slots, sink, counters);
}

/// One parallel-join task: a contiguous range of join-key groups.
struct KeyGroup {
    key: LocalId,
    /// Indices into `R_a`, in prefix order.
    prefixes: Vec<u32>,
}

/// Parallel IDX-JOIN at `cut`: materializes the prefix relation once,
/// partitions the join keys across `workers` scoped threads, and merges
/// in key first-occurrence order — canonical for every worker count.
///
/// `cut` must satisfy `0 < cut < k`, as for
/// [`idx_join`](crate::enumerate::idx_join).
pub fn parallel_join(
    index: &Index,
    cut: u32,
    workers: usize,
    control: &SharedControl,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) {
    let k = index.k();
    assert!(cut > 0 && cut < k, "cut position must satisfy 0 < cut < k");
    let (Some(s_local), Some(_)) = (index.s_local(), index.t_local()) else {
        return;
    };
    let workers = workers.max(1);

    // Phase 1: R_a = Q[0 : cut], materialized once on the coordinator.
    let mut r_a = TupleBuffer::new(cut as usize + 1);
    let mut probe_sink = ProbeOnlySink { control, probes: 0 };
    let mut side_tick = 0u32;
    let mut side_stack: Vec<LocalId> = Vec::new();
    if enumerate_side(
        index,
        s_local,
        0,
        cut,
        &mut side_stack,
        &mut r_a,
        &mut probe_sink,
        &mut side_tick,
        counters,
    ) == SearchControl::Stop
    {
        return;
    }

    // Phase 2: group prefix tuples by join key, first-occurrence order.
    let mut group_of: Vec<u32> = vec![u32::MAX; index.num_vertices()];
    let mut groups: Vec<KeyGroup> = Vec::new();
    for (i, tuple) in r_a.iter().enumerate() {
        let key = *tuple.last().expect("tuples are non-empty");
        let slot = &mut group_of[key as usize];
        if *slot == u32::MAX {
            *slot = groups.len() as u32;
            groups.push(KeyGroup {
                key,
                prefixes: Vec::new(),
            });
        }
        groups[*slot as usize].prefixes.push(i as u32);
    }
    if groups.is_empty() {
        return;
    }

    // Phase 3: chunk the key groups into tasks.
    let num_tasks = groups.len().min(workers * TASKS_PER_WORKER).max(1);
    let chunk_size = groups.len().div_ceil(num_tasks);
    let chunks: Vec<&[KeyGroup]> = groups.chunks(chunk_size).collect();
    let workers = workers.min(chunks.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<TaskSlot> = (0..chunks.len())
        .map(|_| Mutex::new((PathBuffer::new(), Counters::default())))
        .collect();
    let suffix_width = (k - cut) as usize + 1;
    let r_a = &r_a;
    let t_local = index.t_local().expect("non-empty index has t");

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Per-worker scratch, reused across tasks and keys: the
                // suffix relation, the joined tuple, and the global-id
                // path being emitted.
                let mut r_b = TupleBuffer::new(suffix_width);
                let mut side_stack: Vec<LocalId> = Vec::new();
                let mut combined: Vec<LocalId> = Vec::with_capacity(k as usize + 1);
                let mut path: Vec<VertexId> = Vec::with_capacity(k as usize + 1);
                let mut peak_suffix_vertices = 0usize;
                'tasks: loop {
                    // ordering: work-stealing cursor — the RMW total order
                    // hands each worker a distinct chunk; `chunks` is
                    // read-only and published by the scope spawn.
                    let ti = cursor.fetch_add(1, Ordering::Relaxed);
                    if ti >= chunks.len() || control.is_stopped() {
                        break;
                    }
                    let mut task_sink = WorkerSink::new(control);
                    let mut task_counters = Counters::default();
                    let mut probe_tick = 0u32;
                    for group in chunks[ti] {
                        // Enumerate this key's suffix relation.
                        r_b.clear();
                        if enumerate_side(
                            index,
                            group.key,
                            cut,
                            k,
                            &mut side_stack,
                            &mut r_b,
                            &mut task_sink,
                            &mut probe_tick,
                            &mut task_counters,
                        ) == SearchControl::Stop
                        {
                            store_join_slot(
                                &slots[ti],
                                task_sink,
                                task_counters,
                                r_a,
                                peak_suffix_vertices,
                            );
                            break 'tasks;
                        }
                        peak_suffix_vertices = peak_suffix_vertices.max(r_b.flat_len());
                        if r_b.len() == 0 {
                            // Every prefix ending at this key is a dead end.
                            task_counters.invalid_partial_results += group.prefixes.len() as u64;
                            continue;
                        }
                        // Join: every prefix with this key against every
                        // suffix, in (prefix, suffix) order.
                        for &pi in &group.prefixes {
                            let prefix = r_a.get(pi as usize);
                            for suffix in r_b.iter() {
                                if probe_tick & (PROBE_STRIDE - 1) == 0
                                    && task_sink.probe() == SearchControl::Stop
                                {
                                    store_join_slot(
                                        &slots[ti],
                                        task_sink,
                                        task_counters,
                                        r_a,
                                        peak_suffix_vertices,
                                    );
                                    break 'tasks;
                                }
                                probe_tick = probe_tick.wrapping_add(1);
                                combined.clear();
                                combined.extend_from_slice(prefix);
                                combined.extend_from_slice(&suffix[1..]);
                                if let Some(len) = valid_path_len(&combined, t_local) {
                                    task_counters.results += 1;
                                    path.clear();
                                    path.extend(combined[..len].iter().map(|&l| index.global(l)));
                                    if task_sink.emit(&path) == SearchControl::Stop {
                                        store_join_slot(
                                            &slots[ti],
                                            task_sink,
                                            task_counters,
                                            r_a,
                                            peak_suffix_vertices,
                                        );
                                        break 'tasks;
                                    }
                                } else {
                                    task_counters.invalid_partial_results += 1;
                                }
                            }
                        }
                    }
                    store_join_slot(
                        &slots[ti],
                        task_sink,
                        task_counters,
                        r_a,
                        peak_suffix_vertices,
                    );
                }
            });
        }
    });

    merge_outputs(slots, sink, counters);
}

/// Publishes one join task's results, folding the memory statistic in:
/// the whole prefix relation is alive throughout, plus this worker's
/// largest per-key suffix relation.
fn store_join_slot(
    slot: &TaskSlot,
    task_sink: WorkerSink<'_>,
    mut task_counters: Counters,
    r_a: &TupleBuffer,
    peak_suffix_vertices: usize,
) {
    task_counters.peak_materialized_vertices = task_counters
        .peak_materialized_vertices
        .max((r_a.flat_len() + peak_suffix_vertices) as u64);
    *slot.lock().expect("no poisoned task slot") = (task_sink.out, task_counters);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{idx_dfs, idx_join};
    use crate::index::test_support::*;
    use crate::query::Query;
    use crate::sink::CollectingSink;
    use pathenum_graph::generators::{complete_digraph, erdos_renyi};

    fn sequential_dfs(index: &Index) -> Vec<Vec<VertexId>> {
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        idx_dfs(index, &mut sink, &mut counters);
        sink.paths
    }

    #[test]
    fn parallel_dfs_matches_sequential_order_for_every_worker_count() {
        for (g, k) in [
            (figure1_graph(), 4),
            (erdos_renyi(40, 220, 9), 5),
            (complete_digraph(7), 4),
        ] {
            let index = Index::build(&g, Query::new(0, 1, k).unwrap());
            let expected = sequential_dfs(&index);
            for workers in [1, 2, 4, 8] {
                let control = SharedControl::unbounded();
                let mut sink = CollectingSink::default();
                let mut counters = Counters::default();
                parallel_dfs(&index, workers, &control, &mut sink, &mut counters);
                assert_eq!(sink.paths, expected, "workers={workers} k={k}");
                assert_eq!(counters.results, expected.len() as u64);
                assert_eq!(control.delivered(), expected.len() as u64);
                assert_eq!(control.termination(), Termination::Completed);
            }
        }
    }

    #[test]
    fn parallel_dfs_counters_match_sequential_iterative_totals() {
        let g = erdos_renyi(40, 220, 9);
        let index = Index::build(&g, Query::new(0, 1, 5).unwrap());
        let mut seq_sink = CollectingSink::default();
        let mut seq = Counters::default();
        crate::enumerate::idx_dfs_iterative(&index, &mut seq_sink, &mut seq);
        let control = SharedControl::unbounded();
        let mut sink = CollectingSink::default();
        let mut par = Counters::default();
        parallel_dfs(&index, 4, &control, &mut sink, &mut par);
        assert_eq!(par.results, seq.results);
        assert_eq!(par.partial_results, seq.partial_results);
        assert_eq!(par.edges_accessed, seq.edges_accessed);
    }

    #[test]
    fn parallel_join_is_canonical_and_set_equal_to_sequential() {
        for (g, k) in [(figure1_graph(), 4), (erdos_renyi(40, 260, 5), 5)] {
            let index = Index::build(&g, Query::new(0, 1, k).unwrap());
            for cut in 1..k {
                let mut seq_sink = CollectingSink::default();
                let mut seq_counters = Counters::default();
                idx_join(&index, cut, &mut seq_sink, &mut seq_counters);
                let expected_sorted = seq_sink.sorted_paths();

                let mut canonical: Option<Vec<Vec<VertexId>>> = None;
                for workers in [1, 2, 4, 8] {
                    let control = SharedControl::unbounded();
                    let mut sink = CollectingSink::default();
                    let mut counters = Counters::default();
                    parallel_join(&index, cut, workers, &control, &mut sink, &mut counters);
                    let mut sorted = sink.paths.clone();
                    sorted.sort_unstable();
                    assert_eq!(sorted, expected_sorted, "workers={workers} cut={cut}");
                    match &canonical {
                        None => canonical = Some(sink.paths),
                        Some(first) => {
                            assert_eq!(&sink.paths, first, "order varies at workers={workers}")
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shared_limit_never_over_admits() {
        let control = SharedControl::new(Some(10), None, None);
        let admitted = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        if control.try_admit() {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(admitted.load(Ordering::Relaxed), 10);
        assert_eq!(control.delivered(), 10);
        assert_eq!(control.termination(), Termination::LimitReached);
    }

    #[test]
    fn parallel_dfs_respects_a_shared_limit_exactly() {
        let g = complete_digraph(9);
        let index = Index::build(&g, Query::new(0, 8, 4).unwrap());
        let total = sequential_dfs(&index).len() as u64;
        for limit in [1u64, 7, 50] {
            assert!(limit < total, "limit must bite");
            let control = SharedControl::new(Some(limit), None, None);
            let mut sink = CollectingSink::default();
            let mut counters = Counters::default();
            parallel_dfs(&index, 4, &control, &mut sink, &mut counters);
            assert_eq!(sink.paths.len() as u64, limit);
            assert_eq!(control.delivered(), limit);
            assert_eq!(control.termination(), Termination::LimitReached);
        }
    }

    #[test]
    fn cancellation_stops_the_pool() {
        let g = complete_digraph(10);
        let index = Index::build(&g, Query::new(0, 9, 5).unwrap());
        let token = CancelToken::new();
        token.cancel();
        let control = SharedControl::new(None, None, Some(token));
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        parallel_dfs(&index, 4, &control, &mut sink, &mut counters);
        assert_eq!(control.termination(), Termination::Cancelled);
        // A pre-fired token is observed within one poll stride per
        // worker, long before the full result set (tens of thousands).
        assert!(
            (sink.paths.len() as u64) < 5_000,
            "delivered {}",
            sink.paths.len()
        );
    }

    #[test]
    fn expired_deadline_stops_the_pool() {
        let g = complete_digraph(10);
        let index = Index::build(&g, Query::new(0, 9, 5).unwrap());
        let control = SharedControl::new(
            None,
            Some(Instant::now() - std::time::Duration::from_millis(1)),
            None,
        );
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        parallel_join(&index, 2, 4, &control, &mut sink, &mut counters);
        assert_eq!(control.termination(), Termination::DeadlineExceeded);
    }

    #[test]
    fn empty_index_is_a_no_op() {
        let g = figure1_graph();
        let index = Index::build(&g, Query::new(T, S, 4).unwrap());
        let control = SharedControl::unbounded();
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        parallel_dfs(&index, 4, &control, &mut sink, &mut counters);
        parallel_join(&index, 2, 4, &control, &mut sink, &mut counters);
        assert!(sink.paths.is_empty());
        assert_eq!(control.termination(), Termination::Completed);
    }

    #[test]
    fn resolve_threads_maps_zero_to_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn intra_budget_splits_without_starving() {
        assert_eq!(intra_budget(8, 8), 1);
        assert_eq!(intra_budget(8, 2), 4);
        assert_eq!(intra_budget(8, 3), 2);
        assert_eq!(intra_budget(2, 8), 1, "never below one thread");
        assert_eq!(intra_budget(0, 0), 1, "degenerate inputs are sane");
    }
}

//! The preliminary cardinality estimator (Equation 5).

use crate::index::Index;

/// Estimated search-space size of IDX-DFS:
/// `T_hat = sum_{i=0..k-1} prod_{j=0..i} gamma_hat_j`, where
/// `gamma_hat_j` is the average admissible branching factor of level `j`
/// (`(1/|C_j|) * sum_{v in C_j} |I_t(v, k-j-1)|`).
///
/// Both inputs are collected during index construction, so this costs
/// `O(k)` here (`O(k^2)` in the paper's accounting, including the stats
/// pass folded into the build). Saturates at `u64::MAX`.
pub fn preliminary_estimate(index: &Index) -> u64 {
    if index.is_empty() {
        return 0;
    }
    let k = index.k();
    let mut total: f64 = 0.0;
    let mut product: f64 = 1.0;
    for j in 0..k {
        let size = index.level_size(j);
        if size == 0 {
            break; // no vertex can occupy this level: nothing deeper exists
        }
        let gamma = index.level_expansion(j) as f64 / size as f64;
        product *= gamma;
        total += product;
        if !total.is_finite() {
            return u64::MAX;
        }
    }
    if total >= u64::MAX as f64 {
        u64::MAX
    } else {
        total.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::query::Query;

    #[test]
    fn empty_index_estimates_zero() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(T, S, 4).unwrap());
        assert_eq!(preliminary_estimate(&idx), 0);
    }

    #[test]
    fn estimate_is_positive_and_bounded_on_figure1() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        let est = preliminary_estimate(&idx);
        // 5 paths, 6 walks; the relaxed search tree has a handful of
        // partials per level — the estimate must be in a sane band.
        assert!(est >= 2, "estimate {est} too small");
        assert!(est < 100, "estimate {est} too large");
    }

    #[test]
    fn estimate_grows_with_k_on_dense_graphs() {
        let g = pathenum_graph::generators::complete_digraph(12);
        let small = {
            let idx = Index::build(&g, Query::new(0, 1, 3).unwrap());
            preliminary_estimate(&idx)
        };
        let large = {
            let idx = Index::build(&g, Query::new(0, 1, 6).unwrap());
            preliminary_estimate(&idx)
        };
        assert!(large > small * 10, "small={small} large={large}");
    }

    #[test]
    fn estimate_tracks_relaxed_tree_on_uniform_graphs() {
        // On a complete digraph branching factors are near-uniform, so
        // Equation 5 should land close to the exact relaxed-tree size
        // `sum_i |M~_i|` (which includes the t-padding partials the
        // recurrence of Section 5.2 generates through the (t, t) loop).
        let g = pathenum_graph::generators::complete_digraph(8);
        let q = Query::new(0, 1, 4).unwrap();
        let idx = Index::build(&g, q);
        let est = preliminary_estimate(&idx);
        fn relaxed(idx: &Index, v: u32, depth: u32, k: u32) -> u64 {
            if depth == k {
                return 0;
            }
            let mut nodes = 0;
            for &n in idx.i_t(v, k - depth - 1) {
                nodes += 1 + relaxed(idx, n, depth + 1, k);
            }
            nodes
        }
        let exact = relaxed(&idx, idx.s_local().unwrap(), 0, 4);
        assert_eq!(exact, 418, "relaxed-tree arithmetic drifted");
        let ratio = est as f64 / exact as f64;
        assert!((0.7..=1.4).contains(&ratio), "est={est} exact={exact}");
    }
}

//! Cardinality estimation (Section 6.2).
//!
//! Two estimators with different cost/accuracy trade-offs drive the query
//! optimizer:
//!
//! * [`preliminary`] — Equation 5: a product of per-level average branching
//!   factors, `O(k^2)` using statistics collected during index build.
//! * [`full`] — Equations 6–7: an exact dynamic program over the index
//!   counting the walks of every prefix/suffix sub-query; `O(k |E_I|)`.

pub mod error;
pub mod full;
pub mod preliminary;

pub use error::{q_error, summarize_q_errors, QErrorSummary};
pub use full::FullEstimate;
pub use preliminary::preliminary_estimate;

//! Estimation-error metrics (q-error).
//!
//! Cardinality-estimation work (e.g. the G-CARE benchmark the paper
//! cites) reports the *q-error*: `max(estimate, actual) / min(estimate,
//! actual)`, the multiplicative factor by which an estimate misses in
//! either direction. Figure 18's accuracy discussion is quantified here
//! for both estimators.

/// The q-error of one estimate against the truth.
///
/// Always `>= 1.0` and always finite. The zero cases are handled
/// explicitly rather than by letting the ratio divide by zero:
///
/// * `estimate == 0 && actual == 0` — a perfect `1.0`;
/// * `estimate == 0 && actual > 0` — naively an *infinite*
///   underestimate. Following the G-CARE convention, the zero side is
///   clamped to 1, giving `q_error(0, a) == a`: a finite penalty that
///   grows with the mass the estimator missed, and keeps the summary
///   statistics (geometric mean in log space, percentiles) well-defined;
/// * `estimate > 0 && actual == 0` — symmetric: `q_error(e, 0) == e`.
pub fn q_error(estimate: u64, actual: u64) -> f64 {
    match (estimate, actual) {
        (0, 0) => 1.0,
        (0, a) => a as f64,
        (e, 0) => e as f64,
        (e, a) => {
            let e = e as f64;
            let a = a as f64;
            if e >= a {
                e / a
            } else {
                a / e
            }
        }
    }
}

/// Summary statistics of a set of q-errors.
#[derive(Debug, Clone, PartialEq)]
pub struct QErrorSummary {
    /// Geometric mean of the q-errors.
    pub geometric_mean: f64,
    /// Median q-error.
    pub median: f64,
    /// 95th-percentile q-error (nearest rank).
    pub p95: f64,
    /// Worst q-error.
    pub max: f64,
    /// Number of samples.
    pub samples: usize,
}

/// Summarizes paired `(estimate, actual)` samples.
pub fn summarize_q_errors(pairs: &[(u64, u64)]) -> Option<QErrorSummary> {
    if pairs.is_empty() {
        return None;
    }
    let mut errors: Vec<f64> = pairs.iter().map(|&(e, a)| q_error(e, a)).collect();
    errors.sort_unstable_by(|a, b| a.partial_cmp(b).expect("q-errors are finite"));
    let n = errors.len();
    let geometric_mean = (errors.iter().map(|e| e.ln()).sum::<f64>() / n as f64).exp();
    let rank = |pct: f64| -> f64 {
        let idx = ((pct * n as f64).ceil() as usize).clamp(1, n) - 1;
        errors[idx]
    };
    Some(QErrorSummary {
        geometric_mean,
        median: rank(0.5),
        p95: rank(0.95),
        max: errors[n - 1],
        samples: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_clamped() {
        assert_eq!(q_error(10, 100), 10.0);
        assert_eq!(q_error(100, 10), 10.0);
        assert_eq!(q_error(7, 7), 1.0);
        assert_eq!(q_error(0, 0), 1.0);
        assert_eq!(q_error(0, 50), 50.0);
        assert_eq!(q_error(50, 0), 50.0);
    }

    #[test]
    fn q_error_zero_estimate_against_positive_actual_is_finite() {
        // The documented edge case: an estimator that predicts 0 results
        // for a query that has some is "infinitely" wrong as a ratio; the
        // clamp turns it into a finite penalty equal to the actual count,
        // so downstream summaries never see inf/NaN.
        for actual in [1u64, 1_000, u64::MAX] {
            let e = q_error(0, actual);
            assert!(e.is_finite(), "actual={actual}");
            assert_eq!(e, actual as f64);
            assert!(e >= 1.0);
        }
        // And the summary built on top of it stays finite too.
        let s = summarize_q_errors(&[(0, 1_000_000), (1, 1)]).unwrap();
        assert!(s.geometric_mean.is_finite());
        assert_eq!(s.max, 1e6);
    }

    #[test]
    fn summary_statistics_are_ordered() {
        let pairs: Vec<(u64, u64)> = vec![(1, 1), (2, 1), (10, 1), (1, 100)];
        let s = summarize_q_errors(&pairs).unwrap();
        assert_eq!(s.samples, 4);
        assert_eq!(s.max, 100.0);
        assert!(s.geometric_mean >= 1.0);
        assert!(s.median <= s.p95 && s.p95 <= s.max);
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(summarize_q_errors(&[]).is_none());
    }

    #[test]
    fn perfect_estimates_summarize_to_one() {
        let pairs: Vec<(u64, u64)> = (1..20).map(|i| (i, i)).collect();
        let s = summarize_q_errors(&pairs).unwrap();
        assert_eq!(s.geometric_mean, 1.0);
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn full_estimator_q_error_beats_preliminary_on_figure1() {
        use crate::estimator::{preliminary_estimate, FullEstimate};
        use crate::index::test_support::*;
        use crate::index::Index;
        use crate::query::Query;
        use crate::reference::count_paths;

        let g = figure1_graph();
        let mut full_pairs = Vec::new();
        let mut prelim_pairs = Vec::new();
        for k in 3..=6u32 {
            let q = Query::new(S, T, k).unwrap();
            let idx = Index::build(&g, q);
            let actual = count_paths(&g, q);
            full_pairs.push((FullEstimate::compute(&idx).total_walks(), actual));
            prelim_pairs.push((preliminary_estimate(&idx), actual));
        }
        let full = summarize_q_errors(&full_pairs).unwrap();
        let prelim = summarize_q_errors(&prelim_pairs).unwrap();
        assert!(
            full.geometric_mean <= prelim.geometric_mean,
            "full {} vs preliminary {}",
            full.geometric_mean,
            prelim.geometric_mean
        );
    }
}

//! The full-fledged cardinality estimator (Equations 6–7, Algorithm 5's
//! two DP passes).
//!
//! For every index vertex `v` and position `i` the estimator computes
//!
//! * `suffix[i][v] = c_i^k(v)` — the number of tuples of the sub-query
//!   `Q[i : k]` starting with `v` (walk suffixes from `v` to `t`, with
//!   `t`-padding), via the backward recurrence
//!   `c_i^k(v) = sum_{v' in I_t(v, k-i-1)} c_{i+1}^k(v')`;
//! * `prefix[i][v] = c_i^0(v)` — tuples of `Q[0 : i]` *ending* with `v`
//!   (walk prefixes from `s`), via the mirrored recurrence over
//!   `I_s(v, i-1)`.
//!
//! Because the index stores every admissible edge, these DPs are *exact*
//! walk counts, not estimates: `suffix[0][s] = |W(s, t, k, G)| = |Q|`.
//! They estimate the number of *paths* only insofar as `delta_P` is close
//! to `delta_W` (Section 6.4). All arithmetic saturates.

use crate::index::{Index, LocalId};

/// The DP tables of the full-fledged estimator.
#[derive(Debug, Clone)]
pub struct FullEstimate {
    k: u32,
    /// `prefix[i][v] = |{tuples of Q[0:i] ending at v}|`; `(k+1) x |X|`.
    prefix: Vec<Vec<u64>>,
    /// `suffix[i][v] = |{tuples of Q[i:k] starting at v}|`; `(k+1) x |X|`.
    suffix: Vec<Vec<u64>>,
    /// `sum_v prefix[i][v]` = `|Q[0:i]|` per level.
    prefix_sums: Vec<u64>,
    /// `sum_v suffix[i][v]` = `|Q[i:k]|` per level.
    suffix_sums: Vec<u64>,
}

impl FullEstimate {
    /// Runs both DP passes over the index. `O(k * |E_I|)` time,
    /// `O(k * |X|)` space.
    pub fn compute(index: &Index) -> FullEstimate {
        let k = index.k();
        let n = index.num_vertices();
        let levels = k as usize + 1;
        let mut prefix = vec![vec![0u64; n]; levels];
        let mut suffix = vec![vec![0u64; n]; levels];

        if !index.is_empty() {
            // Suffix pass: c_k^k(v) = 1 for v in I(k), then walk backward.
            for v in index.level(k) {
                suffix[k as usize][v as usize] = 1;
            }
            for i in (0..k).rev() {
                for v in index.level(i) {
                    let mut total = 0u64;
                    for &n2 in index.i_t(v, k - i - 1) {
                        total = total.saturating_add(suffix[i as usize + 1][n2 as usize]);
                    }
                    suffix[i as usize][v as usize] = total;
                }
            }
            // Prefix pass: c_0(v) = 1 for v in I(0) = {s}, walk forward.
            for v in index.level(0) {
                prefix[0][v as usize] = 1;
            }
            for i in 1..=k {
                for v in index.level(i) {
                    let mut total = 0u64;
                    for &p in index.i_s(v, i - 1) {
                        total = total.saturating_add(prefix[i as usize - 1][p as usize]);
                    }
                    prefix[i as usize][v as usize] = total;
                }
            }
        }

        let prefix_sums = prefix
            .iter()
            .map(|row| row.iter().fold(0u64, |acc, &x| acc.saturating_add(x)))
            .collect();
        let suffix_sums = suffix
            .iter()
            .map(|row| row.iter().fold(0u64, |acc, &x| acc.saturating_add(x)))
            .collect();
        FullEstimate {
            k,
            prefix,
            suffix,
            prefix_sums,
            suffix_sums,
        }
    }

    /// `c_i^k(v)`: tuples of `Q[i:k]` starting at `v`.
    pub fn suffix_count(&self, i: u32, v: LocalId) -> u64 {
        self.suffix[i as usize][v as usize]
    }

    /// Tuples of `Q[0:i]` ending at `v`.
    pub fn prefix_count(&self, i: u32, v: LocalId) -> u64 {
        self.prefix[i as usize][v as usize]
    }

    /// `|Q[0:i]|`: size of the prefix sub-query's result.
    pub fn prefix_sum(&self, i: u32) -> u64 {
        self.prefix_sums[i as usize]
    }

    /// `|Q[i:k]|`: size of the suffix sub-query's result.
    pub fn suffix_sum(&self, i: u32) -> u64 {
        self.suffix_sums[i as usize]
    }

    /// `|Q|` — the exact number of hop-constrained s-t *walks*
    /// (`delta_W`), which is the estimator's stand-in for the result count.
    pub fn total_walks(&self) -> u64 {
        self.suffix_sums[0]
    }

    /// The hop constraint this estimate was computed for.
    pub fn k(&self) -> u32 {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::query::Query;
    use crate::reference::count_walks;
    use pathenum_graph::generators::{complete_digraph, erdos_renyi, layered_dag};

    fn estimate(g: &pathenum_graph::CsrGraph, q: Query) -> FullEstimate {
        FullEstimate::compute(&Index::build(g, q))
    }

    #[test]
    fn walk_count_is_exact_on_figure1() {
        let g = figure1_graph();
        let q = Query::new(S, T, 4).unwrap();
        let est = estimate(&g, q);
        assert_eq!(est.total_walks(), count_walks(&g, q));
    }

    #[test]
    fn walk_count_is_exact_on_complete_digraphs() {
        for n in [4usize, 6, 8] {
            for k in 2..=5u32 {
                let g = complete_digraph(n);
                let q = Query::new(0, (n - 1) as u32, k).unwrap();
                let est = estimate(&g, q);
                assert_eq!(est.total_walks(), count_walks(&g, q), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn walk_count_is_exact_on_random_graphs() {
        for seed in 0..5u64 {
            let g = erdos_renyi(40, 200, seed);
            let q = Query::new(0, 1, 5).unwrap();
            let est = estimate(&g, q);
            assert_eq!(est.total_walks(), count_walks(&g, q), "seed={seed}");
        }
    }

    #[test]
    fn prefix_and_suffix_totals_agree() {
        // |Q| can be read from either end of the chain.
        let g = erdos_renyi(30, 150, 9);
        let q = Query::new(2, 3, 4).unwrap();
        let est = estimate(&g, q);
        assert_eq!(est.prefix_sum(4), est.suffix_sum(0));
    }

    #[test]
    fn layered_dag_paths_equal_walks() {
        let (g, s, t) = layered_dag(3, 4, 2, 21);
        let q = Query::new(s, t, 4).unwrap();
        let est = estimate(&g, q);
        let walks = count_walks(&g, q);
        let paths = crate::reference::count_paths(&g, q);
        assert_eq!(est.total_walks(), walks);
        assert_eq!(walks, paths, "DAG walks are all simple");
    }

    #[test]
    fn empty_index_estimates_zero() {
        let g = figure1_graph();
        let est = estimate(&g, Query::new(T, S, 4).unwrap());
        assert_eq!(est.total_walks(), 0);
        assert_eq!(est.prefix_sum(2), 0);
    }
}

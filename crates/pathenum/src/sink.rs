//! Path emission: the `PathSink` visitor and stock implementations.
//!
//! Every enumerator in this workspace emits paths through a [`PathSink`]
//! instead of materializing a `Vec<Vec<VertexId>>`. This is what makes the
//! paper's metrics cheap to collect: *throughput* is a [`CountingSink`],
//! *response time* is a request with
//! [`limit(1000)`](crate::request::QueryRequest::limit), and the
//! constraint extensions of Appendix E are sinks/filters too. The
//! request layer's stopping rules (limit, deadline, cancellation) live
//! in [`ControlledSink`](crate::request::ControlledSink), which wraps
//! any sink here.

use pathenum_graph::VertexId;

/// Whether enumeration should keep producing results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchControl {
    /// Keep enumerating.
    Continue,
    /// Stop as soon as possible (used for response-time measurements and
    /// early termination).
    Stop,
}

/// Receiver for enumerated paths.
///
/// `path` is the full vertex sequence `s, ..., t` (no trailing padding);
/// the slice is only valid for the duration of the call.
pub trait PathSink {
    /// Called once per enumerated path.
    fn emit(&mut self, path: &[VertexId]) -> SearchControl;

    /// Called periodically by enumerators *between* emissions (once per
    /// search-tree node) so that sinks enforcing wall-clock or
    /// cancellation rules can interrupt barren stretches of the search —
    /// a query that emits rarely still observes its deadline. The
    /// default keeps searching.
    #[inline]
    fn probe(&mut self) -> SearchControl {
        SearchControl::Continue
    }
}

impl<S: PathSink + ?Sized> PathSink for &mut S {
    #[inline]
    fn emit(&mut self, path: &[VertexId]) -> SearchControl {
        (**self).emit(path)
    }

    #[inline]
    fn probe(&mut self) -> SearchControl {
        (**self).probe()
    }
}

/// Counts results without storing them.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Number of paths emitted so far.
    pub count: u64,
}

impl PathSink for CountingSink {
    #[inline]
    fn emit(&mut self, _path: &[VertexId]) -> SearchControl {
        self.count += 1;
        SearchControl::Continue
    }
}

/// Collects every path. Intended for tests and small workloads.
#[derive(Debug, Default, Clone)]
pub struct CollectingSink {
    /// All emitted paths, in emission order.
    pub paths: Vec<Vec<VertexId>>,
}

impl PathSink for CollectingSink {
    #[inline]
    fn emit(&mut self, path: &[VertexId]) -> SearchControl {
        self.paths.push(path.to_vec());
        SearchControl::Continue
    }
}

impl CollectingSink {
    /// Paths sorted lexicographically — the canonical form used when
    /// comparing the output of two algorithms.
    pub fn sorted_paths(mut self) -> Vec<Vec<VertexId>> {
        self.paths.sort_unstable();
        self.paths
    }
}

/// Counts results and stops after `limit` of them.
///
/// Deprecated: the stop-at-N rule is now a request-level option —
/// [`QueryRequest::limit`](crate::request::QueryRequest::limit) with
/// [`Termination::LimitReached`](crate::request::Termination) — enforced
/// by [`ControlledSink`](crate::request::ControlledSink). This type
/// survives as a thin adapter over that mechanism for existing callers.
#[deprecated(
    since = "0.2.0",
    note = "use QueryRequest::limit (Termination::LimitReached) or wrap a sink in ControlledSink"
)]
#[derive(Debug)]
pub struct LimitSink {
    /// Number of paths emitted so far.
    pub count: u64,
    inner: crate::request::ControlledSink<CountingSink>,
}

#[allow(deprecated)]
impl LimitSink {
    /// Sink that stops after `limit` results (the paper's response-time
    /// metric uses 1000).
    pub fn new(limit: u64) -> Self {
        LimitSink {
            count: 0,
            inner: crate::request::ControlledSink::new(
                CountingSink::default(),
                Some(limit),
                None,
                None,
            ),
        }
    }

    /// Whether the limit was reached.
    pub fn saturated(&self) -> bool {
        matches!(
            self.inner.termination(),
            crate::request::Termination::LimitReached
        )
    }
}

#[allow(deprecated)]
impl PathSink for LimitSink {
    #[inline]
    fn emit(&mut self, path: &[VertexId]) -> SearchControl {
        let control = self.inner.emit(path);
        self.count = self.inner.emitted();
        control
    }

    #[inline]
    fn probe(&mut self) -> SearchControl {
        self.inner.probe()
    }
}

/// Flat storage for variable-length paths: one contiguous `data` vector
/// plus per-path end offsets.
///
/// A `Vec<Vec<VertexId>>` pays one heap allocation per path; enumeration
/// workloads emit millions of short paths, so the intra-query parallel
/// workers ([`crate::parallel`]) buffer their partition's results here
/// and the coordinator replays them into the caller's sink in canonical
/// order. Also usable directly as a [`PathSink`].
#[derive(Debug, Default, Clone)]
pub struct PathBuffer {
    /// End offset (exclusive) of each stored path within `data`.
    /// Full-width offsets: a buffer past 2^32 total vertices must not
    /// silently wrap (offsets are one word per *path*, so the overhead
    /// relative to the vertex data is small).
    ends: Vec<usize>,
    /// Concatenated vertex sequences.
    data: Vec<VertexId>,
}

impl PathBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        PathBuffer::default()
    }

    /// Appends one path.
    pub fn push(&mut self, path: &[VertexId]) {
        self.data.extend_from_slice(path);
        self.ends.push(self.data.len());
    }

    /// Number of stored paths.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether no path is stored.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Removes every stored path, keeping the allocations.
    pub fn clear(&mut self) {
        self.ends.clear();
        self.data.clear();
    }

    /// The `i`-th stored path.
    pub fn get(&self, i: usize) -> &[VertexId] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        &self.data[start..self.ends[i]]
    }

    /// Iterates the stored paths in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[VertexId]> {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Approximate heap footprint in bytes (capacity, not length — this
    /// is what a byte-budgeted cache actually holds onto).
    pub fn heap_bytes(&self) -> usize {
        self.ends.capacity() * std::mem::size_of::<usize>()
            + self.data.capacity() * std::mem::size_of::<VertexId>()
    }
}

impl PathSink for PathBuffer {
    #[inline]
    fn emit(&mut self, path: &[VertexId]) -> SearchControl {
        self.push(path);
        SearchControl::Continue
    }
}

/// Adapts a closure into a sink.
pub struct FnSink<F: FnMut(&[VertexId]) -> SearchControl>(pub F);

impl<F: FnMut(&[VertexId]) -> SearchControl> PathSink for FnSink<F> {
    #[inline]
    fn emit(&mut self, path: &[VertexId]) -> SearchControl {
        (self.0)(path)
    }
}

/// A sink that counts results and aborts once a wall-clock deadline passes.
///
/// The experiment runner uses this for the paper's per-query time limit;
/// checking the clock only every `check_interval` emissions keeps overhead
/// negligible on high-throughput queries.
#[derive(Debug)]
pub struct DeadlineSink {
    /// Number of paths emitted so far.
    pub count: u64,
    deadline: std::time::Instant,
    check_interval: u64,
    probes: u64,
    /// Set to true if the deadline fired.
    pub timed_out: bool,
}

impl DeadlineSink {
    /// Sink that aborts after `budget` of wall-clock time.
    pub fn new(budget: std::time::Duration) -> Self {
        DeadlineSink {
            count: 0,
            deadline: std::time::Instant::now() + budget,
            check_interval: 1024,
            probes: 0,
            timed_out: false,
        }
    }
}

impl PathSink for DeadlineSink {
    #[inline]
    fn emit(&mut self, _path: &[VertexId]) -> SearchControl {
        self.count += 1;
        if self.count.is_multiple_of(self.check_interval)
            && std::time::Instant::now() >= self.deadline
        {
            self.timed_out = true;
            return SearchControl::Stop;
        }
        SearchControl::Continue
    }

    #[inline]
    fn probe(&mut self) -> SearchControl {
        if self.timed_out {
            return SearchControl::Stop;
        }
        if self.probes.is_multiple_of(self.check_interval)
            && std::time::Instant::now() >= self.deadline
        {
            self.timed_out = true;
            return SearchControl::Stop;
        }
        self.probes += 1;
        SearchControl::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::default();
        for _ in 0..5 {
            assert_eq!(sink.emit(&[0, 1]), SearchControl::Continue);
        }
        assert_eq!(sink.count, 5);
    }

    #[test]
    fn controlled_sink_is_the_canonical_stop_at_n_adapter() {
        // The deprecated LimitSink survives only as an adapter over this
        // mechanism; internal code uses ControlledSink directly.
        let mut sink =
            crate::request::ControlledSink::new(CountingSink::default(), Some(3), None, None);
        assert_eq!(sink.emit(&[0]), SearchControl::Continue);
        assert_eq!(sink.emit(&[0]), SearchControl::Continue);
        assert_eq!(sink.emit(&[0]), SearchControl::Stop);
        assert_eq!(
            sink.termination(),
            crate::request::Termination::LimitReached
        );
    }

    #[test]
    fn collecting_sink_sorts() {
        let mut sink = CollectingSink::default();
        sink.emit(&[0, 2, 1]);
        sink.emit(&[0, 1, 2]);
        assert_eq!(sink.sorted_paths(), vec![vec![0, 1, 2], vec![0, 2, 1]]);
    }

    #[test]
    fn path_buffer_round_trips_variable_length_paths() {
        let mut buf = PathBuffer::new();
        assert!(buf.is_empty());
        buf.push(&[0, 1, 2]);
        buf.push(&[3, 4]);
        assert_eq!(buf.emit(&[5, 6, 7, 8]), SearchControl::Continue);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.get(0), &[0, 1, 2]);
        assert_eq!(buf.get(1), &[3, 4]);
        assert_eq!(buf.get(2), &[5, 6, 7, 8]);
        let collected: Vec<Vec<VertexId>> = buf.iter().map(<[VertexId]>::to_vec).collect();
        assert_eq!(collected, vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 7, 8]]);
        buf.clear();
        assert!(buf.is_empty());
        buf.push(&[9]);
        assert_eq!(buf.get(0), &[9]);
    }

    #[test]
    fn fn_sink_invokes_closure() {
        let mut seen = Vec::new();
        {
            let mut sink = FnSink(|p: &[VertexId]| {
                seen.push(p.len());
                SearchControl::Continue
            });
            sink.emit(&[0, 1, 2]);
        }
        assert_eq!(seen, vec![3]);
    }

    #[test]
    fn deadline_sink_times_out() {
        let mut sink = DeadlineSink::new(std::time::Duration::ZERO);
        let mut control = SearchControl::Continue;
        for _ in 0..2048 {
            control = sink.emit(&[0]);
            if control == SearchControl::Stop {
                break;
            }
        }
        assert_eq!(control, SearchControl::Stop);
        assert!(sink.timed_out);
    }
}

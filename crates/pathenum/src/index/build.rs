//! Index construction (Algorithm 3).

use pathenum_graph::bfs::{distances_epoch_into, BfsOptions, Direction};
use pathenum_graph::epoch::EpochMap;
use pathenum_graph::types::{dist_add, Distance, INFINITE_DISTANCE};
use pathenum_graph::{NeighborAccess, VertexId};

use super::neighbor_table::{LocalId, NeighborTable};
use super::Index;
use crate::query::Query;

const ABSENT: u32 = u32::MAX;

/// Reusable buffers for index construction.
///
/// The build needs three `vertex -> value` maps (the two boundary
/// distance maps and the global-to-local id map) plus a BFS queue.
/// Real-time workloads issue queries back-to-back on the same graph;
/// holding the buffers in a [`BuildScratch`] (see
/// [`crate::engine::QueryEngine`]) reuses the allocations, and the maps
/// are epoch-stamped ([`EpochMap`]) so the per-query reset is O(1)
/// instead of an `O(|V|)` memset — on large graphs with small `k` the
/// reset, not the traversal, used to dominate the build.
#[derive(Debug, Clone)]
pub struct BuildScratch {
    dist_s: EpochMap,
    dist_t: EpochMap,
    queue: std::collections::VecDeque<VertexId>,
    local_of: EpochMap,
}

impl Default for BuildScratch {
    fn default() -> Self {
        BuildScratch {
            dist_s: EpochMap::new(INFINITE_DISTANCE),
            dist_t: EpochMap::new(INFINITE_DISTANCE),
            queue: std::collections::VecDeque::new(),
            local_of: EpochMap::new(ABSENT),
        }
    }
}

impl BuildScratch {
    /// The boundary distance maps left behind by the most recent build:
    /// `(dist_s, dist_t)`, keyed by global vertex id (unreached vertices
    /// read [`INFINITE_DISTANCE`]).
    ///
    /// The plan cache derives an entry's *reach footprint* from these
    /// (the vertex sets within `k - 1` hops of `s` / of `t`), which is
    /// what makes surgical retention under graph mutation sound.
    pub(crate) fn dist_maps(&self) -> (&EpochMap, &EpochMap) {
        (&self.dist_s, &self.dist_t)
    }

    /// Approximate heap footprint of the scratch arena in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.dist_s.heap_bytes()
            + self.dist_t.heap_bytes()
            + self.local_of.heap_bytes()
            + self.queue.capacity() * std::mem::size_of::<VertexId>()
    }
}

impl Index {
    /// Builds the light-weight index for `query` on `graph`.
    ///
    /// Cost is `O(|E| + |V|)`: two bounded BFS traversals plus one scan of
    /// the adjacency of the surviving vertices. If the index proves the
    /// query empty (no s-t path within `k` hops), an empty index is
    /// returned and [`Index::is_empty`] is true.
    ///
    /// Generic over [`NeighborAccess`]: the build runs identically on a
    /// materialized `CsrGraph` and on a borrowed
    /// [`OverlayView`](pathenum_graph::OverlayView) of a
    /// [`DynamicGraph`](pathenum_graph::DynamicGraph) — no snapshot
    /// needed to query a mutated graph.
    pub fn build<G: NeighborAccess>(graph: &G, query: Query) -> Index {
        Index::build_profiled(graph, query).0
    }

    /// As [`Index::build`], additionally reporting the time the two
    /// boundary BFS traversals took (the `BFS` series of Figures 12/17).
    pub fn build_profiled<G: NeighborAccess>(
        graph: &G,
        query: Query,
    ) -> (Index, std::time::Duration) {
        let mut scratch = BuildScratch::default();
        Index::build_reusing(graph, query, &mut scratch)
    }

    /// As [`Index::build_profiled`], reusing caller-owned scratch buffers
    /// across queries (allocation-free boundary BFS and id mapping).
    pub fn build_reusing<G: NeighborAccess>(
        graph: &G,
        query: Query,
        scratch: &mut BuildScratch,
    ) -> (Index, std::time::Duration) {
        let Query { s, t, k } = query;
        debug_assert!(query.validate(graph.num_vertices()).is_ok());

        // Boundary distances: v.s = S(s, v | G - {t}), v.t = S(v, t | G - {s}).
        let bfs_start = std::time::Instant::now();
        distances_epoch_into(
            graph,
            s,
            BfsOptions {
                direction: Direction::Forward,
                excluded: Some(t),
                max_depth: Some(k),
            },
            &mut scratch.dist_s,
            &mut scratch.queue,
        );
        distances_epoch_into(
            graph,
            t,
            BfsOptions {
                direction: Direction::Backward,
                excluded: Some(s),
                max_depth: Some(k),
            },
            &mut scratch.dist_t,
            &mut scratch.queue,
        );
        let BuildScratch {
            dist_s,
            dist_t,
            local_of,
            ..
        } = scratch;
        let bfs_time = bfs_start.elapsed();
        // The excluded endpoints get their distances from their boundary
        // edges: t.s via in-edges of t, s.t via out-edges of s. Each is a
        // first write of the epoch (the vertex was excluded from its own
        // BFS), so it lands on the touched list exactly once.
        let mut t_s = INFINITE_DISTANCE;
        graph.for_each_in(t, |u| t_s = t_s.min(dist_add(dist_s.get(u as usize), 1)));
        let mut s_t = INFINITE_DISTANCE;
        graph.for_each_out(s, |w| s_t = s_t.min(dist_add(dist_t.get(w as usize), 1)));
        dist_s.set(t as usize, t_s);
        dist_t.set(s as usize, s_t);

        if dist_add(dist_s.get(s as usize), dist_t.get(s as usize)) > k
            || dist_add(dist_s.get(t as usize), dist_t.get(t as usize)) > k
        {
            return (Index::empty(query), bfs_time);
        }

        // Partition X: vertices with v.s + v.t <= k, in global-id order.
        // Any member has finite v.s, so X is a subset of the forward
        // BFS's touched set — sorting that (small) set and filtering it
        // reproduces the ascending full-range scan without the O(|V|)
        // sweep.
        let mut vertices: Vec<VertexId> = Vec::new();
        local_of.reset(graph.num_vertices());
        dist_s.sort_touched();
        for &v in dist_s.touched() {
            if dist_add(dist_s.get(v as usize), dist_t.get(v as usize)) <= k {
                local_of.set(v as usize, vertices.len() as u32);
                vertices.push(v);
            }
        }
        let s_local = local_of.get(s as usize);
        let t_local = local_of.get(t as usize);
        debug_assert_ne!(s_local, ABSENT);
        debug_assert_ne!(t_local, ABSENT);

        let local_dist_s: Vec<Distance> =
            vertices.iter().map(|&v| dist_s.get(v as usize)).collect();
        let local_dist_t: Vec<Distance> =
            vertices.iter().map(|&v| dist_t.get(v as usize)).collect();

        // Forward table (H of Algorithm 3): admissible out-neighbors keyed
        // by distance-to-t. t keeps only the (t, t) padding loop.
        let mut fwd_lists: Vec<Vec<(LocalId, Distance)>> = vec![Vec::new(); vertices.len()];
        for (local, &gv) in vertices.iter().enumerate() {
            if gv == t {
                fwd_lists[local].push((t_local, 0));
                continue;
            }
            let vs = local_dist_s[local];
            let list = &mut fwd_lists[local];
            graph.for_each_out(gv, |n| {
                if n == s {
                    return; // interior vertices are never s
                }
                let nt = dist_t.get(n as usize);
                // Admission: v.s + v'.t + 1 <= k (Algorithm 3 line 9).
                if dist_add(dist_add(vs, nt), 1) <= k {
                    let n_local = local_of.get(n as usize);
                    debug_assert_ne!(n_local, ABSENT, "admission implies membership");
                    list.push((n_local, nt));
                }
            });
        }
        let fwd = NeighborTable::build(k, &fwd_lists);
        drop(fwd_lists);

        // Backward table: admissible in-neighbors keyed by
        // distance-from-s. s gets no predecessors; t additionally gets the
        // (t, t) padding loop.
        let mut bwd_lists: Vec<Vec<(LocalId, Distance)>> = vec![Vec::new(); vertices.len()];
        for (local, &gv) in vertices.iter().enumerate() {
            if gv == s {
                continue;
            }
            let vt = local_dist_t[local];
            let list = &mut bwd_lists[local];
            graph.for_each_in(gv, |p| {
                if p == t {
                    return; // t never has real out-edges in the relations
                }
                let ps = dist_s.get(p as usize);
                if dist_add(dist_add(ps, vt), 1) <= k {
                    let p_local = local_of.get(p as usize);
                    debug_assert_ne!(p_local, ABSENT, "admission implies membership");
                    list.push((p_local, ps));
                }
            });
            if gv == t {
                bwd_lists[local].push((t_local, local_dist_s[t_local as usize]));
            }
        }
        let bwd = NeighborTable::build(k, &bwd_lists);
        drop(bwd_lists);

        // Per-level statistics for the preliminary estimator.
        let mut level_sizes = vec![0u64; k as usize + 1];
        let mut level_expansion = vec![0u64; k as usize + 1];
        for i in 0..=k {
            let mut size = 0u64;
            let mut expansion = 0u64;
            for v in 0..vertices.len() as LocalId {
                if local_dist_s[v as usize] <= i && local_dist_t[v as usize] <= k - i {
                    size += 1;
                    if i < k {
                        expansion += fwd.neighbors_within(v, k - i - 1).len() as u64;
                    }
                }
            }
            level_sizes[i as usize] = size;
            level_expansion[i as usize] = expansion;
        }

        let index = Index {
            query,
            s_local: Some(s_local),
            t_local: Some(t_local),
            vertices,
            dist_s: local_dist_s,
            dist_t: local_dist_t,
            fwd,
            bwd,
            level_sizes,
            level_expansion,
        };
        (index, bfs_time)
    }

    /// An index proving the query has no result.
    pub(crate) fn empty(query: Query) -> Index {
        let k = query.k;
        Index {
            query,
            s_local: None,
            t_local: None,
            vertices: Vec::new(),
            dist_s: Vec::new(),
            dist_t: Vec::new(),
            fwd: NeighborTable::build(k, &[]),
            bwd: NeighborTable::build(k, &[]),
            level_sizes: vec![0; k as usize + 1],
            level_expansion: vec![0; k as usize + 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;

    #[test]
    fn direct_edge_only_queries_build_nonempty_index() {
        let mut b = pathenum_graph::GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        let g = b.finish();
        let idx = Index::build(&g, Query::new(0, 1, 2).unwrap());
        assert!(!idx.is_empty());
        assert_eq!(idx.num_vertices(), 2);
        let s = idx.s_local().unwrap();
        let t = idx.t_local().unwrap();
        assert_eq!(idx.i_t(s, 1), &[t]);
    }

    #[test]
    fn reverse_direction_query_is_empty_on_dag() {
        let g = figure1_graph();
        // No edges lead back from t to s.
        let idx = Index::build(&g, Query::new(T, S, 4).unwrap());
        assert!(idx.is_empty());
        assert_eq!(idx.num_edges(), 0);
    }

    #[test]
    fn admission_rule_prunes_far_neighbors() {
        // Chain 0 -> 1 -> 2 -> 3 plus shortcut 0 -> 3; k = 2 admits only
        // the shortcut and the 1-hop tails.
        let mut b = pathenum_graph::GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let g = b.finish();
        let idx = Index::build(&g, Query::new(0, 3, 2).unwrap());
        assert!(!idx.is_empty());
        // Vertex 1 sits at (v.s = 1, v.t = 2), sum 3 > 2: excluded.
        // Vertex 2 sits at (v.s = 2, v.t = 1), sum 3 > 2: excluded.
        let globals: Vec<VertexId> = (0..idx.num_vertices() as LocalId)
            .map(|l| idx.global(l))
            .collect();
        assert_eq!(globals, vec![0, 3]);
    }

    #[test]
    fn level_expansion_matches_manual_sum() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        for i in 0..4u32 {
            let manual: u64 = idx
                .level(i)
                .map(|v| idx.i_t(v, 4 - i - 1).len() as u64)
                .sum();
            assert_eq!(idx.level_expansion(i), manual, "level {i}");
        }
    }
}

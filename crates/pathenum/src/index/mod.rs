//! The query-dependent light-weight index `I` (Section 4.2, Algorithm 3).
//!
//! Given `q(s, t, k)` on `G`, the index keeps exactly the vertices that can
//! appear in some hop-constrained walk from `s` to `t` — those with
//! `v.s + v.t <= k`, where `v.s = S(s, v | G − {t})` and
//! `v.t = S(v, t | G − {s})` — and, per vertex, its admissible neighbors
//! bucketed by distance so that the two lookups of the paper are O(1):
//!
//! * `I(i)`   — vertices that can sit at position `i` of a result;
//! * `I_t(v, b)` — out-neighbors `v'` of `v` with `v'.t <= b`
//!   (and symmetrically `I_s(v, b)` over in-neighbors with `v'.s <= b`,
//!   which the full-fledged estimator's prefix DP uses).
//!
//! The index works in a dense *local* id space (`LocalId`); paths are
//! translated back to global ids at emission. The walk-closure conventions
//! of the join model are baked in: `t`'s only forward neighbor is itself
//! (the `(t, t)` padding self-loop), `s` has no backward neighbors, no
//! forward list contains `s`, and no backward list contains `t` except the
//! padding loop.

mod build;
mod neighbor_table;

pub use build::BuildScratch;
pub use neighbor_table::{LocalId, NeighborTable};

use pathenum_graph::types::Distance;
use pathenum_graph::VertexId;

use crate::query::Query;

/// The light-weight index for one query. Build with [`Index::build`].
///
/// ```
/// use pathenum::{Index, Query};
/// use pathenum_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
/// let graph = b.finish();
///
/// let index = Index::build(&graph, Query::new(0, 3, 2).unwrap());
/// assert!(!index.is_empty());
/// // Every indexed vertex can appear in some hop-bounded s-t walk.
/// assert_eq!(index.num_vertices(), 4);
/// // I_t(s, 1): neighbors of s within distance 1 of t.
/// let s = index.s_local().unwrap();
/// assert_eq!(index.i_t(s, 1).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Index {
    pub(crate) query: Query,
    /// Local ids of `s` and `t`; `None` when the index is empty (no result
    /// can exist).
    pub(crate) s_local: Option<LocalId>,
    pub(crate) t_local: Option<LocalId>,
    /// Local -> global vertex id.
    pub(crate) vertices: Vec<VertexId>,
    /// `v.s` per local vertex.
    pub(crate) dist_s: Vec<Distance>,
    /// `v.t` per local vertex.
    pub(crate) dist_t: Vec<Distance>,
    /// Forward table: out-neighbors keyed by distance-to-`t`.
    pub(crate) fwd: NeighborTable,
    /// Backward table: in-neighbors keyed by distance-from-`s`.
    pub(crate) bwd: NeighborTable,
    /// `|C_i|` for `i` in `0..=k`.
    pub(crate) level_sizes: Vec<u64>,
    /// `sum_{v in C_i} |I_t(v, k - i - 1)|` for `i` in `0..k`.
    pub(crate) level_expansion: Vec<u64>,
}

impl Index {
    /// The query this index was built for.
    pub fn query(&self) -> Query {
        self.query
    }

    /// The hop constraint `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.query.k
    }

    /// Whether the index proves the query has no results.
    pub fn is_empty(&self) -> bool {
        self.s_local.is_none() || self.t_local.is_none()
    }

    /// Local id of `s`; `None` iff the index is empty.
    #[inline]
    pub fn s_local(&self) -> Option<LocalId> {
        self.s_local
    }

    /// Local id of `t`; `None` iff the index is empty.
    #[inline]
    pub fn t_local(&self) -> Option<LocalId> {
        self.t_local
    }

    /// Number of indexed vertices (`|X|`).
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges stored in the forward table, *excluding* the
    /// synthetic `(t, t)` padding loop — the paper's "index size" metric
    /// (Figure 10).
    pub fn num_edges(&self) -> usize {
        self.fwd.num_edges().saturating_sub(1)
    }

    /// Global vertex id of a local id.
    #[inline]
    pub fn global(&self, local: LocalId) -> VertexId {
        self.vertices[local as usize]
    }

    /// `v.s` of a local vertex.
    #[inline]
    pub fn dist_s(&self, local: LocalId) -> Distance {
        self.dist_s[local as usize]
    }

    /// `v.t` of a local vertex.
    #[inline]
    pub fn dist_t(&self, local: LocalId) -> Distance {
        self.dist_t[local as usize]
    }

    /// `I_t(v, b)`: out-neighbors of `v` with distance-to-`t` `<= b`.
    #[inline]
    pub fn i_t(&self, v: LocalId, budget: Distance) -> &[LocalId] {
        self.fwd.neighbors_within(v, budget)
    }

    /// Hints the cache that `v`'s forward neighbor row is about to be
    /// read — issued by the DFS when a child is pushed, one level before
    /// the row is scanned.
    #[inline]
    pub fn prefetch_i_t(&self, v: LocalId) {
        self.fwd.prefetch(v);
    }

    /// `(start, len)` of the `I_t(v, b)` row inside
    /// [`fwd_raw_neighbors`](Self::fwd_raw_neighbors): the two-integer
    /// form of [`i_t`](Self::i_t) the iterative DFS caches per frame.
    #[inline]
    pub(crate) fn i_t_row_range(&self, v: LocalId, budget: Distance) -> (u32, u32) {
        self.fwd.row_range(v, budget)
    }

    /// The forward table's flat neighbor storage (see
    /// [`i_t_row_range`](Self::i_t_row_range)).
    #[inline]
    pub(crate) fn fwd_raw_neighbors(&self) -> &[LocalId] {
        self.fwd.raw_neighbors()
    }

    /// `I_s(v, b)`: in-neighbors of `v` with distance-from-`s` `<= b`.
    #[inline]
    pub fn i_s(&self, v: LocalId, budget: Distance) -> &[LocalId] {
        self.bwd.neighbors_within(v, budget)
    }

    /// `I(i)`: local ids of vertices that may appear at position `i`
    /// (`v.s <= i` and `v.t <= k - i`).
    pub fn level(&self, i: u32) -> impl Iterator<Item = LocalId> + '_ {
        let k = self.k();
        debug_assert!(i <= k);
        (0..self.vertices.len() as LocalId)
            .filter(move |&v| self.dist_s(v) <= i && self.dist_t(v) <= k - i)
    }

    /// `|C_i|`, precomputed at build time.
    pub fn level_size(&self, i: u32) -> u64 {
        self.level_sizes[i as usize]
    }

    /// `sum_{v in C_i} |I_t(v, k - i - 1)|`, precomputed at build time
    /// (the raw statistic behind the preliminary estimator's `gamma_i`).
    pub fn level_expansion(&self, i: u32) -> u64 {
        self.level_expansion[i as usize]
    }

    /// Approximate heap footprint in bytes (Table 7's "Index" row).
    pub fn heap_bytes(&self) -> usize {
        self.vertices.len() * std::mem::size_of::<VertexId>()
            + self.dist_s.len() * std::mem::size_of::<Distance>() * 2
            + self.fwd.heap_bytes()
            + self.bwd.heap_bytes()
            + (self.level_sizes.len() + self.level_expansion.len()) * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use pathenum_graph::{CsrGraph, GraphBuilder};

    /// Vertex names for the Figure 1a graph: s=0, t=1, v0..v7 = 2..9.
    pub const S: u32 = 0;
    pub const T: u32 = 1;
    pub const V: [u32; 8] = [2, 3, 4, 5, 6, 7, 8, 9];

    /// The running-example graph of the paper (Figure 1a).
    pub fn figure1_graph() -> CsrGraph {
        let mut b = GraphBuilder::new(10);
        let [v0, v1, v2, v3, v4, v5, v6, v7] = V;
        b.add_edges([
            (S, v0),
            (S, v1),
            (S, v3),
            (v0, v1),
            (v0, v6),
            (v0, T),
            (v1, v2),
            (v1, v3),
            (v2, v0),
            (v2, T),
            (v3, v4),
            (v4, v5),
            (v5, v2),
            (v5, T),
            (v6, v0),
            (v7, S),
        ])
        .unwrap();
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    fn index_k4() -> Index {
        Index::build(&figure1_graph(), Query::new(S, T, 4).unwrap())
    }

    #[test]
    fn partition_matches_figure4a() {
        // Figure 4a: X[0,2]=s? The figure places s at (0,2): s.s=0, s.t=2.
        let idx = index_k4();
        assert!(!idx.is_empty());
        let [v0, v1, v2, v3, v4, v5, v6, v7] = V;
        let find = |g: VertexId| -> Option<(u32, u32)> {
            (0..idx.num_vertices() as LocalId)
                .find(|&l| idx.global(l) == g)
                .map(|l| (idx.dist_s(l), idx.dist_t(l)))
        };
        assert_eq!(find(S), Some((0, 2)));
        assert_eq!(find(T), Some((2, 0)));
        assert_eq!(find(v0), Some((1, 1)));
        assert_eq!(find(v1), Some((1, 2)));
        assert_eq!(find(v2), Some((2, 1)));
        assert_eq!(find(v3), Some((1, 3)));
        assert_eq!(find(v4), Some((2, 2)));
        assert_eq!(find(v6), Some((2, 2)));
        assert_eq!(find(v5), Some((3, 1)));
        // v7 cannot appear in any result.
        assert_eq!(find(v7), None);
    }

    #[test]
    fn i_t_of_v0_matches_example_4_4() {
        // Example 4.4: neighbors of v0 within distance 2 of t are
        // {t, v1, v6}.
        let idx = index_k4();
        let v0_local = (0..idx.num_vertices() as LocalId)
            .find(|&l| idx.global(l) == V[0])
            .unwrap();
        let mut got: Vec<VertexId> = idx
            .i_t(v0_local, 2)
            .iter()
            .map(|&l| idx.global(l))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![T, V[1], V[6]]);
        // Within distance 0: only t.
        let got0: Vec<VertexId> = idx
            .i_t(v0_local, 0)
            .iter()
            .map(|&l| idx.global(l))
            .collect();
        assert_eq!(got0, vec![T]);
    }

    #[test]
    fn t_forward_list_is_padding_loop_only() {
        let idx = index_k4();
        let t_local = idx.t_local().unwrap();
        assert_eq!(idx.i_t(t_local, 4), &[t_local]);
        assert_eq!(idx.dist_t(t_local), 0);
    }

    #[test]
    fn s_has_no_backward_neighbors_and_no_fwd_occurrences() {
        let idx = index_k4();
        let s_local = idx.s_local().unwrap();
        assert!(idx.i_s(s_local, 4).is_empty());
        for v in 0..idx.num_vertices() as LocalId {
            assert!(
                !idx.i_t(v, 4).contains(&s_local),
                "forward list of {} contains s",
                idx.global(v)
            );
        }
    }

    #[test]
    fn level_zero_is_exactly_s() {
        let idx = index_k4();
        let level0: Vec<LocalId> = idx.level(0).collect();
        assert_eq!(level0, vec![idx.s_local().unwrap()]);
        let level_k: Vec<LocalId> = idx.level(4).collect();
        assert_eq!(level_k, vec![idx.t_local().unwrap()]);
    }

    #[test]
    fn level_sizes_match_level_iterator() {
        let idx = index_k4();
        for i in 0..=4u32 {
            assert_eq!(idx.level_size(i), idx.level(i).count() as u64, "level {i}");
        }
    }

    #[test]
    fn empty_index_when_t_unreachable() {
        let g = figure1_graph();
        // v7 (vertex 9) has no incoming edges, so q(s, v7, k) has none.
        let idx = Index::build(&g, Query::new(S, V[7], 4).unwrap());
        assert!(idx.is_empty());
    }

    #[test]
    fn empty_index_when_k_too_small_for_distance() {
        let mut b = pathenum_graph::GraphBuilder::new(6);
        // A single path of length 5: 0->1->2->3->4->5.
        b.add_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
            .unwrap();
        let g = b.finish();
        let idx = Index::build(&g, Query::new(0, 5, 4).unwrap());
        assert!(idx.is_empty());
        let idx = Index::build(&g, Query::new(0, 5, 5).unwrap());
        assert!(!idx.is_empty());
    }

    #[test]
    fn backward_lists_mirror_forward_lists() {
        // Every forward edge (u -> w) with w != t-loop must appear as a
        // backward edge of w, and vice versa (u != s rule aside).
        let idx = index_k4();
        let t_local = idx.t_local().unwrap();
        let s_local = idx.s_local().unwrap();
        let k = idx.k();
        for u in 0..idx.num_vertices() as LocalId {
            for &w in idx.i_t(u, k) {
                if u == t_local && w == t_local {
                    continue; // forward padding loop
                }
                assert!(
                    idx.i_s(w, k).contains(&u),
                    "fwd edge {} -> {} missing from bwd table",
                    idx.global(u),
                    idx.global(w)
                );
            }
            for &p in idx.i_s(u, k) {
                if u == t_local && p == t_local {
                    continue; // backward padding loop
                }
                assert!(
                    p != s_local || idx.dist_s(p) == 0,
                    "unexpected backward neighbor"
                );
                assert!(
                    idx.i_t(p, k).contains(&u),
                    "bwd edge {} <- {} missing from fwd table",
                    idx.global(u),
                    idx.global(p)
                );
            }
        }
    }

    #[test]
    fn index_edge_count_excludes_padding_loop() {
        let idx = index_k4();
        let total: usize = (0..idx.num_vertices() as LocalId)
            .map(|v| idx.i_t(v, 4).len())
            .sum();
        assert_eq!(idx.num_edges(), total - 1);
    }

    #[test]
    fn heap_bytes_positive() {
        assert!(index_k4().heap_bytes() > 0);
    }
}

//! The distance-bucketed neighbor table (`H` of Algorithm 3, Figure 4b).
//!
//! For each indexed vertex the table stores its admissible neighbors sorted
//! ascending by a *key distance* (distance-to-`t` for the forward table,
//! distance-from-`s` for the backward table), plus `k + 1` offset slots
//! that count how many neighbors have key distance `<= d`. The lookup
//! `I_t(v, b)` is then an O(1) slice.

use pathenum_graph::types::Distance;

/// Local (index-internal) vertex id. Dense over the indexed vertex set.
pub type LocalId = u32;

/// Immutable neighbor table over local ids.
#[derive(Debug, Clone)]
pub struct NeighborTable {
    k: u32,
    /// Flat neighbor storage, grouped by owner, sorted by key distance.
    neighbors: Vec<LocalId>,
    /// Per-owner start position into `neighbors`; length `num_vertices+1`.
    starts: Vec<u32>,
    /// Per-owner cumulative counts: `cuts[owner * (k + 1) + d]` = number of
    /// neighbors of `owner` whose key distance is `<= d`.
    cuts: Vec<u32>,
}

impl NeighborTable {
    /// Builds the table from per-vertex `(neighbor, key_distance)` lists.
    ///
    /// Key distances must be `<= k` (the index never stores a neighbor
    /// whose distance exceeds the budget any search could grant it).
    pub fn build(k: u32, per_vertex: &[Vec<(LocalId, Distance)>]) -> Self {
        let slots = (k + 1) as usize;
        let num_vertices = per_vertex.len();
        let total: usize = per_vertex.iter().map(Vec::len).sum();
        let mut neighbors = Vec::with_capacity(total);
        let mut starts = Vec::with_capacity(num_vertices + 1);
        let mut cuts = vec![0u32; num_vertices * slots];
        let mut scratch: Vec<(LocalId, Distance)> = Vec::new();
        starts.push(0u32);
        for (owner, list) in per_vertex.iter().enumerate() {
            scratch.clear();
            scratch.extend_from_slice(list);
            // Counting-sort-grade key range; a comparison sort on these tiny
            // lists is simpler and the secondary id key keeps output stable.
            scratch.sort_unstable_by_key(|&(id, d)| (d, id));
            let mut count_within = 0u32;
            let mut cursor = 0usize;
            let base = owner * slots;
            for d in 0..slots as Distance {
                while cursor < scratch.len() && scratch[cursor].1 <= d {
                    debug_assert!(scratch[cursor].1 <= k, "key distance exceeds k");
                    neighbors.push(scratch[cursor].0);
                    cursor += 1;
                    count_within += 1;
                }
                cuts[base + d as usize] = count_within;
            }
            debug_assert_eq!(cursor, scratch.len(), "a key distance exceeded k");
            starts.push(neighbors.len() as u32);
        }
        NeighborTable {
            k,
            neighbors,
            starts,
            cuts,
        }
    }

    /// Neighbors of `owner` whose key distance is `<= budget`
    /// (the `I_t(v, b)` / `I_s(v, b)` lookup). O(1).
    #[inline]
    pub fn neighbors_within(&self, owner: LocalId, budget: Distance) -> &[LocalId] {
        let (start, len) = self.row_range(owner, budget);
        &self.neighbors[start as usize..start as usize + len as usize]
    }

    /// `(start, len)` of the [`neighbors_within`](Self::neighbors_within)
    /// slice inside [`raw_neighbors`](Self::raw_neighbors) — lets a hot
    /// loop resolve the `starts`/`cuts` indirection once per vertex and
    /// carry the row as two integers.
    #[inline]
    pub fn row_range(&self, owner: LocalId, budget: Distance) -> (u32, u32) {
        let start = self.starts[owner as usize];
        let d = budget.min(self.k) as usize;
        let len = self.cuts[owner as usize * (self.k as usize + 1) + d];
        (start, len)
    }

    /// The flat neighbor storage that [`row_range`](Self::row_range)
    /// indexes into.
    #[inline]
    pub fn raw_neighbors(&self) -> &[LocalId] {
        &self.neighbors
    }

    /// All stored neighbors of `owner` (budget `k`).
    #[inline]
    pub fn all_neighbors(&self, owner: LocalId) -> &[LocalId] {
        self.neighbors_within(owner, self.k)
    }

    /// Hints the cache that `owner`'s neighbor row is about to be read
    /// (the `starts` indirection makes the row's address unpredictable to
    /// the hardware prefetcher). No-op off x86_64 or out of range.
    #[inline]
    pub fn prefetch(&self, owner: LocalId) {
        if let Some(&start) = self.starts.get(owner as usize) {
            pathenum_graph::prefetch::prefetch_read(&self.neighbors, start as usize);
        }
    }

    /// Number of stored (vertex, neighbor) pairs.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of owner vertices.
    pub fn num_vertices(&self) -> usize {
        self.starts.len() - 1
    }

    /// Approximate heap footprint in bytes (Table 7's index memory).
    pub fn heap_bytes(&self) -> usize {
        self.neighbors.len() * std::mem::size_of::<LocalId>()
            + self.starts.len() * std::mem::size_of::<u32>()
            + self.cuts.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NeighborTable {
        // Vertex 0 has neighbors at distances 0,1,1,3; vertex 1 none;
        // vertex 2 has one at distance 2.
        NeighborTable::build(
            3,
            &[
                vec![(10, 1), (11, 0), (12, 3), (13, 1)],
                vec![],
                vec![(14, 2)],
            ],
        )
    }

    #[test]
    fn lookup_respects_budget() {
        let t = sample();
        assert_eq!(t.neighbors_within(0, 0), &[11]);
        assert_eq!(t.neighbors_within(0, 1), &[11, 10, 13]);
        assert_eq!(t.neighbors_within(0, 2), &[11, 10, 13]);
        assert_eq!(t.neighbors_within(0, 3), &[11, 10, 13, 12]);
    }

    #[test]
    fn budget_clamps_to_k() {
        let t = sample();
        assert_eq!(t.neighbors_within(0, 100), t.neighbors_within(0, 3));
    }

    #[test]
    fn empty_vertex_has_no_neighbors() {
        let t = sample();
        assert!(t.neighbors_within(1, 3).is_empty());
    }

    #[test]
    fn sizes_are_reported() {
        let t = sample();
        assert_eq!(t.num_edges(), 5);
        assert_eq!(t.num_vertices(), 3);
        assert!(t.heap_bytes() > 0);
    }

    #[test]
    fn ordering_within_distance_is_by_id() {
        let t = NeighborTable::build(2, &[vec![(9, 1), (3, 1), (5, 1)]]);
        assert_eq!(t.neighbors_within(0, 1), &[3, 5, 9]);
    }
}
